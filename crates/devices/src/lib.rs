//! Simulated I/O devices for the UDMA mechanism.
//!
//! The paper stresses that UDMA "can be used with a wide variety of I/O
//! devices including network interfaces, data storage devices such as disks
//! and tape drives, and memory-mapped devices such as graphics
//! frame-buffers" (§1). This crate provides the non-network device models:
//!
//! - [`Disk`] — block storage where a device proxy page names a block (§4:
//!   "if the device is a disk, a device address might name a block"), with
//!   a seek + rotation + media-rate service-time model,
//! - [`FrameBuffer`] — a graphics target where a device proxy address names
//!   a pixel (§4: "a device address might specify a pixel"),
//! - [`Tape`] — a sequential-access drive with a winding-time model (the
//!   "tape drives" of §1),
//! - [`StreamSink`] / [`StreamSource`] — synthetic endpoints for tests and
//!   failure injection.
//!
//! All implement [`shrimp_dma::DevicePort`] plus the [`Device`] trait for
//! registration with the simulated machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod disk;
mod framebuffer;
mod stream;
mod tape;

pub use disk::{block_of, Disk, DiskGeometry};
pub use framebuffer::FrameBuffer;
pub use stream::{StreamSink, StreamSource};
pub use tape::{Tape, TapeGeometry};

use shrimp_dma::DevicePort;

/// A registrable simulated device: a [`DevicePort`] with a name.
pub trait Device: DevicePort {
    /// Human-readable device name ("disk0", "fb0", ...).
    fn name(&self) -> &str;

    /// Size of the device's proxy-addressable space in bytes (bounds the
    /// device proxy pages the kernel may grant for it).
    fn proxy_space_bytes(&self) -> u64;

    /// Programmed-I/O store to a memory-mapped device register at `offset`
    /// within the device's MMIO window. Used by non-DMA devices such as the
    /// §9 memory-mapped-FIFO baseline NIC. The default ignores the write.
    fn mmio_store(&mut self, _offset: u64, _value: u64, _now: shrimp_sim::SimTime) {}

    /// Programmed-I/O load from a memory-mapped device register. The
    /// default returns zero.
    fn mmio_load(&mut self, _offset: u64, _now: shrimp_sim::SimTime) -> u64 {
        0
    }

    /// Gives the device CPU-independent execution time up to `now` (e.g. a
    /// NIC draining its FIFO into the network). The default does nothing.
    fn tick(&mut self, _now: shrimp_sim::SimTime) {}

    /// Bus snoop of one CPU store to ordinary memory (physical address +
    /// 8-byte value). SHRIMP's *automatic update* strategy is built on
    /// exactly this: the network interface watches the memory bus and
    /// forwards writes to bound pages. The default ignores the store.
    fn snoop_store(&mut self, _pa: shrimp_mem::PhysAddr, _value: u64, _now: shrimp_sim::SimTime) {}

    /// Bus snoop of a bulk memory write (a burst of consecutive stores).
    /// The default ignores it.
    fn snoop_write(&mut self, _pa: shrimp_mem::PhysAddr, _data: &[u8], _now: shrimp_sim::SimTime) {}
}
