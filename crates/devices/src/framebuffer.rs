//! A graphics frame buffer whose device proxy addresses name pixels.

use shrimp_dma::DevicePort;
use shrimp_sim::{SimTime, StatSet};

use crate::Device;

/// A simulated frame buffer (8 bits per pixel, row-major).
///
/// Device address layout: `dev_addr = y * width + x`, so a device proxy
/// address "specifies a pixel" exactly as §4 suggests for graphics devices.
///
/// # Example
///
/// ```
/// use shrimp_devices::FrameBuffer;
/// use shrimp_dma::DevicePort;
/// use shrimp_sim::SimTime;
///
/// let mut fb = FrameBuffer::new("fb0", 64, 32);
/// fb.dma_write(64 + 5, &[0xff], SimTime::ZERO); // pixel (5, 1)
/// assert_eq!(fb.pixel(5, 1), 0xff);
/// ```
#[derive(Clone, Debug)]
pub struct FrameBuffer {
    name: String,
    width: u64,
    height: u64,
    pixels: Vec<u8>,
    stats: StatSet,
}

impl FrameBuffer {
    /// A cleared `width × height` frame buffer.
    ///
    /// # Panics
    ///
    /// Panics on a zero dimension.
    pub fn new(name: impl Into<String>, width: u64, height: u64) -> Self {
        assert!(width > 0 && height > 0, "frame buffer dimensions must be positive");
        FrameBuffer {
            name: name.into(),
            width,
            height,
            pixels: vec![0; (width * height) as usize],
            stats: StatSet::new("framebuffer"),
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u64 {
        self.height
    }

    /// The pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn pixel(&self, x: u64, y: u64) -> u8 {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of bounds");
        self.pixels[(y * self.width + x) as usize]
    }

    /// One row of pixels (test inspection).
    pub fn row(&self, y: u64) -> &[u8] {
        assert!(y < self.height, "row {y} out of bounds");
        let s = (y * self.width) as usize;
        &self.pixels[s..s + self.width as usize]
    }

    /// A simple content checksum for whole-frame assertions.
    pub fn checksum(&self) -> u64 {
        self.pixels.iter().fold(0u64, |acc, &p| acc.wrapping_mul(31).wrapping_add(u64::from(p)))
    }

    /// Access statistics.
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    fn len(&self) -> u64 {
        self.width * self.height
    }
}

impl DevicePort for FrameBuffer {
    fn dma_write(&mut self, dev_addr: u64, data: &[u8], _now: SimTime) {
        let end = dev_addr + data.len() as u64;
        assert!(end <= self.len(), "framebuffer write out of range");
        self.pixels[dev_addr as usize..end as usize].copy_from_slice(data);
        self.stats.bump("blits");
        self.stats.add("pixels_written", data.len() as u64);
    }

    fn dma_read(&mut self, dev_addr: u64, buf: &mut [u8], _now: SimTime) {
        let end = dev_addr + buf.len() as u64;
        assert!(end <= self.len(), "framebuffer read out of range");
        self.stats.bump("readbacks");
        buf.copy_from_slice(&self.pixels[dev_addr as usize..end as usize]);
    }

    fn validate(&self, dev_addr: u64, nbytes: u64) -> bool {
        dev_addr.checked_add(nbytes).is_some_and(|end| end <= self.len())
    }
}

impl Device for FrameBuffer {
    fn name(&self) -> &str {
        &self.name
    }

    fn proxy_space_bytes(&self) -> u64 {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blit_row() {
        let mut fb = FrameBuffer::new("fb", 16, 4);
        fb.dma_write(16, &[7; 16], SimTime::ZERO); // whole row 1
        assert!(fb.row(1).iter().all(|&p| p == 7));
        assert!(fb.row(0).iter().all(|&p| p == 0));
    }

    #[test]
    fn readback_matches_write() {
        let mut fb = FrameBuffer::new("fb", 8, 8);
        fb.dma_write(10, &[1, 2, 3], SimTime::ZERO);
        assert_eq!(fb.dma_read_vec(10, 3, SimTime::ZERO), vec![1, 2, 3]);
    }

    #[test]
    fn checksum_changes_with_content() {
        let mut fb = FrameBuffer::new("fb", 8, 8);
        let before = fb.checksum();
        fb.dma_write(0, &[1], SimTime::ZERO);
        assert_ne!(fb.checksum(), before);
    }

    #[test]
    fn validate_bounds() {
        let fb = FrameBuffer::new("fb", 8, 8);
        assert!(fb.validate(0, 64));
        assert!(!fb.validate(1, 64));
        assert!(!fb.validate(u64::MAX, 2));
    }

    #[test]
    fn device_trait() {
        let fb = FrameBuffer::new("fb0", 320, 200);
        assert_eq!(fb.name(), "fb0");
        assert_eq!(fb.proxy_space_bytes(), 64_000);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn pixel_bounds_checked() {
        let fb = FrameBuffer::new("fb", 4, 4);
        let _ = fb.pixel(4, 0);
    }
}
