//! Synthetic stream endpoints for tests and failure injection.

use shrimp_dma::DevicePort;
use shrimp_sim::SimTime;

use crate::Device;

/// A sink that records everything DMA'd into it, in arrival order.
///
/// Reads return zeros. Useful for asserting on exactly what a transfer
/// delivered and when.
#[derive(Clone, Debug, Default)]
pub struct StreamSink {
    name: String,
    writes: Vec<(u64, Vec<u8>, SimTime)>,
    /// When set, `validate` rejects everything (failure injection).
    reject_all: bool,
}

impl StreamSink {
    /// An empty sink.
    pub fn new(name: impl Into<String>) -> Self {
        StreamSink { name: name.into(), writes: Vec::new(), reject_all: false }
    }

    /// Makes `validate` reject every request (failure injection).
    pub fn reject_all(&mut self, reject: bool) {
        self.reject_all = reject;
    }

    /// All recorded writes: `(dev_addr, data, arrival_time)`.
    pub fn writes(&self) -> &[(u64, Vec<u8>, SimTime)] {
        &self.writes
    }

    /// Total bytes received.
    pub fn bytes_received(&self) -> u64 {
        self.writes.iter().map(|(_, d, _)| d.len() as u64).sum()
    }
}

impl DevicePort for StreamSink {
    fn dma_write(&mut self, dev_addr: u64, data: &[u8], now: SimTime) {
        self.writes.push((dev_addr, data.to_vec(), now));
    }

    fn dma_read(&mut self, _dev_addr: u64, buf: &mut [u8], _now: SimTime) {
        buf.fill(0);
    }

    fn validate(&self, _dev_addr: u64, _nbytes: u64) -> bool {
        !self.reject_all
    }
}

impl Device for StreamSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn proxy_space_bytes(&self) -> u64 {
        u64::MAX
    }
}

/// A source producing a deterministic byte pattern: byte `i` of device
/// address `a` is `(a + i) * 0x9E ^ seed`, so any subrange is checkable.
#[derive(Clone, Debug)]
pub struct StreamSource {
    name: String,
    seed: u8,
    reads: u64,
}

impl StreamSource {
    /// A pattern source.
    pub fn new(name: impl Into<String>, seed: u8) -> Self {
        StreamSource { name: name.into(), seed, reads: 0 }
    }

    /// The byte this source produces for device address `addr`.
    pub fn expected_byte(&self, addr: u64) -> u8 {
        (addr as u8).wrapping_mul(0x9e) ^ self.seed
    }

    /// Number of DMA reads served.
    pub fn read_count(&self) -> u64 {
        self.reads
    }
}

impl DevicePort for StreamSource {
    fn dma_write(&mut self, _dev_addr: u64, _data: &[u8], _now: SimTime) {
        // Writes into a pure source are dropped.
    }

    fn dma_read(&mut self, dev_addr: u64, buf: &mut [u8], _now: SimTime) {
        self.reads += 1;
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.expected_byte(dev_addr + i as u64);
        }
    }
}

impl Device for StreamSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn proxy_space_bytes(&self) -> u64 {
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_records_in_order() {
        let mut s = StreamSink::new("sink");
        s.dma_write(0, &[1], SimTime::from_nanos(5));
        s.dma_write(8, &[2, 3], SimTime::from_nanos(9));
        assert_eq!(s.writes().len(), 2);
        assert_eq!(s.writes()[1], (8, vec![2, 3], SimTime::from_nanos(9)));
        assert_eq!(s.bytes_received(), 3);
    }

    #[test]
    fn sink_failure_injection() {
        let mut s = StreamSink::new("sink");
        assert!(s.validate(0, 1));
        s.reject_all(true);
        assert!(!s.validate(0, 1));
    }

    #[test]
    fn source_pattern_is_deterministic() {
        let mut a = StreamSource::new("a", 0x55);
        let b = StreamSource::new("b", 0x55);
        let got = a.dma_read_vec(100, 16, SimTime::ZERO);
        for (i, &byte) in got.iter().enumerate() {
            assert_eq!(byte, b.expected_byte(100 + i as u64));
        }
        assert_eq!(a.read_count(), 1);
    }

    #[test]
    fn source_seeds_differ() {
        let a = StreamSource::new("a", 1);
        let b = StreamSource::new("b", 2);
        assert_ne!(a.expected_byte(0), b.expected_byte(0));
    }
}
