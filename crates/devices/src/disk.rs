//! A block storage device with a mechanical service-time model.

use shrimp_dma::DevicePort;
use shrimp_mem::{PAGE_MASK, PAGE_SHIFT, PAGE_SIZE};
use shrimp_sim::{SimDuration, SimTime, StatSet};

use crate::Device;

/// Mechanical parameters of the disk.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskGeometry {
    /// Number of page-sized blocks.
    pub blocks: u64,
    /// Average seek time.
    pub seek: SimDuration,
    /// Average rotational delay.
    pub rotation: SimDuration,
    /// Media transfer rate, MB/s.
    pub media_mb_per_s: f64,
}

impl Default for DiskGeometry {
    fn default() -> Self {
        // A period-plausible ~90 MB drive: 9 ms seek, 4.2 ms rotation
        // (7200 rpm would be 4.17 ms half-rotation), 5 MB/s media rate.
        DiskGeometry {
            blocks: 22_000,
            seek: SimDuration::from_us(9_000.0),
            rotation: SimDuration::from_us(4_200.0),
            media_mb_per_s: 5.0,
        }
    }
}

/// A simulated disk whose device proxy pages name blocks.
///
/// Device address layout: `dev_addr = block * PAGE_SIZE + offset`, so the
/// device proxy page number *is* the block number — exactly the paper's §4
/// suggestion. Sequential accesses to the same block pay no seek.
///
/// # Example
///
/// ```
/// use shrimp_devices::{Device, Disk, DiskGeometry};
/// use shrimp_dma::DevicePort;
/// use shrimp_sim::SimTime;
///
/// let mut disk = Disk::new("disk0", DiskGeometry { blocks: 16, ..Default::default() });
/// disk.dma_write(4096, b"block 1 data", SimTime::ZERO);
/// assert_eq!(disk.dma_read_vec(4096, 12, SimTime::ZERO), b"block 1 data");
/// ```
#[derive(Clone, Debug)]
pub struct Disk {
    name: String,
    geometry: DiskGeometry,
    data: Vec<u8>,
    /// Head position (block index) for the seek model.
    head_at: u64,
    stats: StatSet,
}

impl Disk {
    /// A zero-filled disk.
    pub fn new(name: impl Into<String>, geometry: DiskGeometry) -> Self {
        Disk {
            name: name.into(),
            data: vec![0; (geometry.blocks * PAGE_SIZE) as usize],
            geometry,
            head_at: 0,
            stats: StatSet::new("disk"),
        }
    }

    /// The disk's geometry.
    pub fn geometry(&self) -> DiskGeometry {
        self.geometry
    }

    /// Reads a whole block (test/setup convenience; not timed).
    pub fn block(&self, block: u64) -> &[u8] {
        let s = (block * PAGE_SIZE) as usize;
        &self.data[s..s + PAGE_SIZE as usize]
    }

    /// Overwrites a whole block (test/setup convenience; not timed).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not one page or `block` is out of range.
    pub fn set_block(&mut self, block: u64, data: &[u8]) {
        assert_eq!(data.len() as u64, PAGE_SIZE, "blocks are page-sized");
        assert!(block < self.geometry.blocks, "block {block} out of range");
        let s = (block * PAGE_SIZE) as usize;
        self.data[s..s + PAGE_SIZE as usize].copy_from_slice(data);
    }

    /// Access statistics.
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    fn in_range(&self, dev_addr: u64, nbytes: u64) -> bool {
        dev_addr.checked_add(nbytes).is_some_and(|end| end <= self.geometry.blocks * PAGE_SIZE)
    }
}

impl DevicePort for Disk {
    fn dma_write(&mut self, dev_addr: u64, data: &[u8], _now: SimTime) {
        assert!(self.in_range(dev_addr, data.len() as u64), "disk write out of range");
        let s = dev_addr as usize;
        self.data[s..s + data.len()].copy_from_slice(data);
        self.head_at = dev_addr >> PAGE_SHIFT;
        self.stats.bump("writes");
        self.stats.add("bytes_written", data.len() as u64);
    }

    fn dma_read(&mut self, dev_addr: u64, buf: &mut [u8], _now: SimTime) {
        let len = buf.len() as u64;
        assert!(self.in_range(dev_addr, len), "disk read out of range");
        let s = dev_addr as usize;
        self.head_at = dev_addr >> PAGE_SHIFT;
        self.stats.bump("reads");
        self.stats.add("bytes_read", len);
        buf.copy_from_slice(&self.data[s..s + len as usize]);
    }

    fn validate(&self, dev_addr: u64, nbytes: u64) -> bool {
        // The §5 alignment example: this device requires 4-byte alignment,
        // and transfers must stay on the media.
        dev_addr & 0x3 == 0 && self.in_range(dev_addr, nbytes)
    }

    fn service_time(&self, dev_addr: u64, nbytes: u64) -> SimDuration {
        let target = dev_addr >> PAGE_SHIFT;
        let mechanical = if target == self.head_at {
            // Head already on the track: rotational delay only.
            self.geometry.rotation
        } else {
            self.geometry.seek + self.geometry.rotation
        };
        mechanical + SimDuration::from_bytes_at_rate(nbytes, self.geometry.media_mb_per_s)
    }
}

impl Device for Disk {
    fn name(&self) -> &str {
        &self.name
    }

    fn proxy_space_bytes(&self) -> u64 {
        self.geometry.blocks * PAGE_SIZE
    }
}

/// Decomposes a disk device address into `(block, offset)`.
pub fn block_of(dev_addr: u64) -> (u64, u64) {
    (dev_addr >> PAGE_SHIFT, dev_addr & PAGE_MASK)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Disk {
        Disk::new("d", DiskGeometry { blocks: 8, ..Default::default() })
    }

    #[test]
    fn write_read_roundtrip() {
        let mut d = small();
        d.dma_write(2 * PAGE_SIZE + 16, &[1, 2, 3], SimTime::ZERO);
        assert_eq!(d.dma_read_vec(2 * PAGE_SIZE + 16, 3, SimTime::ZERO), vec![1, 2, 3]);
        assert_eq!(d.block(2)[16..19], [1, 2, 3]);
    }

    #[test]
    fn validate_alignment_and_bounds() {
        let d = small();
        assert!(d.validate(0, PAGE_SIZE));
        assert!(!d.validate(2, 8), "unaligned");
        assert!(!d.validate(7 * PAGE_SIZE, PAGE_SIZE + 4), "past end");
        assert!(!d.validate(u64::MAX - 3, 8), "overflow");
    }

    #[test]
    fn service_time_models_seek() {
        let mut d = small();
        let far = d.service_time(5 * PAGE_SIZE, PAGE_SIZE);
        // Move the head to block 5.
        d.dma_write(5 * PAGE_SIZE, &[0], SimTime::ZERO);
        let near = d.service_time(5 * PAGE_SIZE, PAGE_SIZE);
        assert!(far > near, "seek should dominate: far={far} near={near}");
        assert_eq!(far - near, d.geometry().seek);
    }

    #[test]
    fn set_block_and_block() {
        let mut d = small();
        d.set_block(3, &vec![9u8; PAGE_SIZE as usize]);
        assert!(d.block(3).iter().all(|&b| b == 9));
    }

    #[test]
    fn block_decomposition() {
        assert_eq!(block_of(3 * PAGE_SIZE + 7), (3, 7));
    }

    #[test]
    fn device_trait() {
        let d = small();
        assert_eq!(d.name(), "d");
        assert_eq!(d.proxy_space_bytes(), 8 * PAGE_SIZE);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_write_panics() {
        let mut d = small();
        d.dma_write(8 * PAGE_SIZE, &[1], SimTime::ZERO);
    }
}
