//! A sequential-access tape drive — the other storage class §1 names.
//!
//! Unlike the disk's per-access seek model, a tape pays *winding* time
//! proportional to the distance between the head position and the target,
//! then streams at the medium rate. Sequential access is therefore nearly
//! free while random access is catastrophic — a service-time profile at
//! the opposite extreme from the frame buffer's.

use shrimp_dma::DevicePort;
use shrimp_sim::{SimDuration, SimTime, StatSet};

use crate::Device;

/// Mechanical parameters of the tape drive.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TapeGeometry {
    /// Medium capacity in bytes.
    pub capacity: u64,
    /// Winding speed, bytes of tape passed per second (both directions).
    pub wind_bytes_per_s: f64,
    /// Streaming transfer rate, MB/s.
    pub stream_mb_per_s: f64,
    /// Fixed start/stop penalty per repositioning.
    pub start_stop: SimDuration,
}

impl Default for TapeGeometry {
    fn default() -> Self {
        // A period QIC-style drive: slow streaming, painful repositioning.
        TapeGeometry {
            capacity: 64 * 1024 * 1024,
            wind_bytes_per_s: 3_000_000.0,
            stream_mb_per_s: 0.5,
            start_stop: SimDuration::from_us(250_000.0),
        }
    }
}

/// A simulated tape drive. Device proxy addresses are absolute byte
/// positions on the medium.
///
/// # Example
///
/// ```
/// use shrimp_devices::{Tape, TapeGeometry};
/// use shrimp_dma::DevicePort;
/// use shrimp_sim::SimTime;
///
/// let mut tape = Tape::new("tape0", TapeGeometry::default());
/// tape.dma_write(0, b"archive record", SimTime::ZERO);
/// assert_eq!(tape.dma_read_vec(0, 7, SimTime::ZERO), b"archive");
/// ```
#[derive(Clone, Debug)]
pub struct Tape {
    name: String,
    geometry: TapeGeometry,
    data: Vec<u8>,
    /// Head position (byte offset on the medium).
    position: u64,
    stats: StatSet,
}

impl Tape {
    /// A blank tape.
    pub fn new(name: impl Into<String>, geometry: TapeGeometry) -> Self {
        Tape {
            name: name.into(),
            data: vec![0; geometry.capacity as usize],
            geometry,
            position: 0,
            stats: StatSet::new("tape"),
        }
    }

    /// The drive's geometry.
    pub fn geometry(&self) -> TapeGeometry {
        self.geometry
    }

    /// Current head position.
    pub fn position(&self) -> u64 {
        self.position
    }

    /// Rewinds to the beginning (not timed; use a DMA at position 0 for a
    /// timed repositioning).
    pub fn rewind(&mut self) {
        self.position = 0;
        self.stats.bump("rewinds");
    }

    /// Access statistics.
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    fn in_range(&self, dev_addr: u64, nbytes: u64) -> bool {
        dev_addr.checked_add(nbytes).is_some_and(|end| end <= self.geometry.capacity)
    }
}

impl DevicePort for Tape {
    fn dma_write(&mut self, dev_addr: u64, data: &[u8], _now: SimTime) {
        assert!(self.in_range(dev_addr, data.len() as u64), "tape write past end of medium");
        let s = dev_addr as usize;
        self.data[s..s + data.len()].copy_from_slice(data);
        self.position = dev_addr + data.len() as u64;
        self.stats.bump("writes");
        self.stats.add("bytes_written", data.len() as u64);
    }

    fn dma_read(&mut self, dev_addr: u64, buf: &mut [u8], _now: SimTime) {
        let len = buf.len() as u64;
        assert!(self.in_range(dev_addr, len), "tape read past end of medium");
        let s = dev_addr as usize;
        self.position = dev_addr + len;
        self.stats.bump("reads");
        self.stats.add("bytes_read", len);
        buf.copy_from_slice(&self.data[s..s + len as usize]);
    }

    fn validate(&self, dev_addr: u64, nbytes: u64) -> bool {
        self.in_range(dev_addr, nbytes)
    }

    fn service_time(&self, dev_addr: u64, nbytes: u64) -> SimDuration {
        let wind = if dev_addr == self.position {
            SimDuration::ZERO // streaming: head already there
        } else {
            let distance = dev_addr.abs_diff(self.position);
            self.geometry.start_stop
                + SimDuration::from_bytes_at_rate(
                    distance,
                    self.geometry.wind_bytes_per_s / 1_000_000.0 * 1_000_000.0,
                )
        };
        wind + SimDuration::from_bytes_at_rate(nbytes, self.geometry.stream_mb_per_s)
    }
}

impl Device for Tape {
    fn name(&self) -> &str {
        &self.name
    }

    fn proxy_space_bytes(&self) -> u64 {
        self.geometry.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Tape {
        Tape::new("t", TapeGeometry { capacity: 1024 * 1024, ..TapeGeometry::default() })
    }

    #[test]
    fn write_read_roundtrip_moves_head() {
        let mut t = small();
        t.dma_write(100, &[1, 2, 3], SimTime::ZERO);
        assert_eq!(t.position(), 103);
        assert_eq!(t.dma_read_vec(100, 3, SimTime::ZERO), vec![1, 2, 3]);
        assert_eq!(t.position(), 103);
    }

    #[test]
    fn sequential_access_is_cheap_random_is_not() {
        let mut t = small();
        t.dma_write(0, &[0; 4096], SimTime::ZERO); // head at 4096
        let sequential = t.service_time(4096, 4096);
        let random = t.service_time(900_000, 4096);
        assert!(random > sequential * 2, "random {random} must dwarf sequential {sequential}");
        // Sequential streaming pays no start/stop.
        assert!(sequential < t.geometry().start_stop);
    }

    #[test]
    fn validate_bounds() {
        let t = small();
        assert!(t.validate(0, 1024 * 1024));
        assert!(!t.validate(1, 1024 * 1024));
        assert!(!t.validate(u64::MAX, 8));
    }

    #[test]
    fn rewind_resets_position() {
        let mut t = small();
        t.dma_write(5000, &[1], SimTime::ZERO);
        t.rewind();
        assert_eq!(t.position(), 0);
        assert_eq!(t.stats().get("rewinds"), 1);
    }

    #[test]
    fn device_trait() {
        let t = small();
        assert_eq!(t.name(), "t");
        assert_eq!(t.proxy_space_bytes(), 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn overrun_panics() {
        let mut t = small();
        t.dma_write(1024 * 1024 - 1, &[1, 2], SimTime::ZERO);
    }
}
