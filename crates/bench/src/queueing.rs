//! §7 ablation: multi-page transfers with hardware queueing versus the
//! basic single-transfer device versus traditional kernel DMA.
//!
//! "Queueing allows a user-level process to start multi-page transfers
//! with only two instructions per page in the best case."

use shrimp_devices::StreamSink;
use shrimp_machine::{MachineConfig, UdmaMode};
use shrimp_mem::{VirtAddr, PAGE_SIZE};
use shrimp_os::{DmaStrategy, Node, NodeConfig};
use shrimp_sim::SimDuration;

/// One transfer-size comparison row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueueingPoint {
    /// Transfer size in bytes.
    pub bytes: u64,
    /// Basic UDMA (serialized per-page initiations with busy retries).
    pub basic: SimDuration,
    /// Queued UDMA (§7, queue depth per [`sweep`]'s argument).
    pub queued: SimDuration,
    /// Traditional kernel DMA (pin/unpin).
    pub kernel: SimDuration,
    /// Retries the basic device forced on the user library.
    pub basic_retries: u64,
    /// Retries under queueing (only on queue overflow).
    pub queued_retries: u64,
}

fn node(mode: UdmaMode, pages: u64) -> Node<StreamSink> {
    let config = NodeConfig {
        machine: MachineConfig {
            mem_bytes: (pages + 64) * PAGE_SIZE,
            udma: mode,
            ..MachineConfig::default()
        },
        user_frames: None,
    };
    Node::new(config, StreamSink::new("sink"))
}

fn measure_udma(mode: UdmaMode, bytes: u64) -> (SimDuration, u64) {
    let pages = bytes.div_ceil(PAGE_SIZE);
    let mut n = node(mode, pages);
    let pid = n.spawn();
    n.mmap(pid, 0x10_0000, pages, true).expect("map");
    n.grant_device_proxy(pid, 0, pages, true).expect("grant");
    n.write_user(pid, VirtAddr::new(0x10_0000), &vec![1u8; bytes as usize]).expect("fill");
    n.udma_send(pid, VirtAddr::new(0x10_0000), 0, 0, bytes).expect("warm");
    let r = n.udma_send(pid, VirtAddr::new(0x10_0000), 0, 0, bytes).expect("measured");
    (r.elapsed, r.retries)
}

fn measure_kernel(bytes: u64) -> SimDuration {
    let pages = bytes.div_ceil(PAGE_SIZE);
    let mut n = node(UdmaMode::Basic, pages);
    let pid = n.spawn();
    n.mmap(pid, 0x10_0000, pages, true).expect("map");
    n.write_user(pid, VirtAddr::new(0x10_0000), &vec![1u8; bytes as usize]).expect("fill");
    n.sys_dma_to_device(pid, VirtAddr::new(0x10_0000), 0, bytes, DmaStrategy::PinPages)
        .expect("warm");
    n.sys_dma_to_device(pid, VirtAddr::new(0x10_0000), 0, bytes, DmaStrategy::PinPages)
        .expect("measured")
        .elapsed
}

/// Runs the comparison at each transfer size with the given queue depth.
pub fn sweep(sizes: &[u64], queue_depth: usize) -> Vec<QueueingPoint> {
    sizes
        .iter()
        .map(|&bytes| {
            let (basic, basic_retries) = measure_udma(UdmaMode::Basic, bytes);
            let (queued, queued_retries) = measure_udma(UdmaMode::Queued(queue_depth), bytes);
            let kernel = measure_kernel(bytes);
            QueueingPoint { bytes, basic, queued, kernel, basic_retries, queued_retries }
        })
        .collect()
}

/// Default sizes: 1 page through 64 pages.
pub const DEFAULT_SIZES: [u64; 6] =
    [PAGE_SIZE, 4 * PAGE_SIZE, 8 * PAGE_SIZE, 16 * PAGE_SIZE, 32 * PAGE_SIZE, 64 * PAGE_SIZE];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queueing_beats_basic_for_multi_page() {
        let points = sweep(&[16 * PAGE_SIZE], 32);
        let p = points[0];
        assert!(p.queued < p.basic, "queued {} !< basic {}", p.queued, p.basic);
        // Two instructions per page: no busy retries with a deep queue.
        assert_eq!(p.queued_retries, 0);
        assert!(p.basic_retries >= 15, "basic retries = {}", p.basic_retries);
    }

    #[test]
    fn single_page_is_equivalent() {
        let points = sweep(&[PAGE_SIZE], 8);
        let p = points[0];
        let ratio = p.queued.as_micros_f64() / p.basic.as_micros_f64();
        assert!((0.9..1.1).contains(&ratio), "single page ratio {ratio:.2}");
    }

    #[test]
    fn both_udma_variants_beat_kernel_dma() {
        for p in sweep(&[4 * PAGE_SIZE, 16 * PAGE_SIZE], 32) {
            assert!(p.basic < p.kernel, "{}B basic {} !< kernel {}", p.bytes, p.basic, p.kernel);
            assert!(p.queued < p.kernel);
        }
    }

    #[test]
    fn shallow_queue_forces_overflow_retries() {
        let points = sweep(&[32 * PAGE_SIZE], 2);
        assert!(points[0].queued_retries > 0, "depth-2 queue must overflow on 32 pages");
    }
}
