//! Minimal aligned-table printing for the experiment binaries.

/// Prints a header line, a rule, and aligned rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats a byte count compactly (`512`, `4K`, `64K`...).
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1024 && b.is_multiple_of(1024) {
        format!("{}K", b / 1024)
    } else {
        format!("{b}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_bytes_cases() {
        assert_eq!(fmt_bytes(512), "512");
        assert_eq!(fmt_bytes(4096), "4K");
        assert_eq!(fmt_bytes(65536), "64K");
        assert_eq!(fmt_bytes(1000), "1000");
    }
}
