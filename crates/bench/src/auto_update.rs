//! Extension experiment: SHRIMP's two transfer strategies head to head.
//!
//! The paper's design discussion (§9) contrasts the current UDMA-based
//! *deliberate update* with the *automatic update* strategy of \[5\], which
//! the design retains: bound pages propagate ordinary stores automatically
//! via bus snooping, with zero initiation cost but a packet per store
//! burst. Deliberate update pays ~2 initiation references + DMA start per
//! transfer but moves arbitrary spans in one burst.
//!
//! The crossover is the interesting quantity: fine-grained updates favour
//! automatic update; bulk messages favour deliberate update.

use shrimp::Multicomputer;
use shrimp_mem::{VirtAddr, PAGE_SIZE};
use shrimp_sim::SimDuration;

/// One comparison point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AutoPoint {
    /// Bytes updated (as `words` 8-byte stores for automatic update, one
    /// contiguous send for deliberate update).
    pub bytes: u64,
    /// End-to-end time (sender start to last receiver delivery) for the
    /// automatically propagated stores.
    pub auto: SimDuration,
    /// Sender-CPU-only time of the automatic path (nearly free — that is
    /// the strategy's appeal).
    pub auto_cpu: SimDuration,
    /// End-to-end time of an explicit deliberate-update send.
    pub deliberate: SimDuration,
}

/// Result plus crossover.
#[derive(Clone, Debug)]
pub struct AutoResult {
    /// Points in ascending size.
    pub points: Vec<AutoPoint>,
    /// Smallest size where deliberate update wins.
    pub crossover_bytes: Option<u64>,
}

/// Measures both strategies for each update size (multiples of 8).
pub fn sweep(sizes: &[u64]) -> AutoResult {
    let mut points = Vec::new();
    for &bytes in sizes {
        assert!(bytes % 8 == 0 && bytes <= PAGE_SIZE, "8-byte words within one page");
        let mut mc = Multicomputer::new(2, Default::default());
        let a = mc.spawn_process(0);
        let b = mc.spawn_process(1);
        // Automatic-update pair.
        mc.map_user_buffer(0, a, 0x10_0000, 1).expect("map auto src");
        mc.map_user_buffer(1, b, 0x30_0000, 1).expect("map auto dst");
        mc.bind_auto_update(0, a, VirtAddr::new(0x10_0000), 1, 1, b, VirtAddr::new(0x30_0000))
            .expect("bind");
        // Deliberate-update pair.
        mc.map_user_buffer(0, a, 0x50_0000, 1).expect("map delib src");
        mc.map_user_buffer(1, b, 0x60_0000, 1).expect("map delib dst");
        let dev = mc.export(1, b, VirtAddr::new(0x60_0000), 1, 0, a).expect("export");
        mc.write_user(0, a, VirtAddr::new(0x50_0000), &vec![1u8; bytes as usize]).expect("fill");
        // Warm both paths.
        mc.store_user(0, a, VirtAddr::new(0x10_0000), 1).expect("warm auto");
        mc.send(0, a, VirtAddr::new(0x50_0000), dev, 0, bytes).expect("warm delib");

        // Deliberate first (so the automatic burst's receive-bus backlog
        // cannot queue-delay it): one explicit send, end-to-end.
        let t0 = mc.node(0).os().machine().now();
        mc.send(0, a, VirtAddr::new(0x50_0000), dev, 0, bytes).expect("delib send");
        mc.run_until_quiet();
        let deliberate = mc.last_delivery(1) - t0;

        // Automatic: `bytes/8` ordinary stores; end-to-end = last delivery.
        let t0 = mc.node(0).os().machine().now();
        for w in 0..bytes / 8 {
            mc.store_user(0, a, VirtAddr::new(0x10_0000 + w * 8), w as i64 + 1)
                .expect("auto store");
        }
        let auto_cpu = mc.node(0).os().machine().now() - t0;
        mc.run_until_quiet();
        let auto = mc.last_delivery(1) - t0;

        points.push(AutoPoint { bytes, auto, auto_cpu, deliberate });
    }
    let crossover_bytes = points.iter().find(|p| p.deliberate <= p.auto).map(|p| p.bytes);
    AutoResult { points, crossover_bytes }
}

/// Default sweep: one word through half a page.
pub const DEFAULT_SIZES: [u64; 8] = [8, 16, 32, 64, 128, 256, 1024, 2048];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn automatic_wins_single_word_updates() {
        let r = sweep(&[8]);
        let p = r.points[0];
        assert!(
            p.auto < p.deliberate,
            "one word end-to-end: auto {} should beat deliberate {}",
            p.auto,
            p.deliberate
        );
        // And the sender CPU is essentially free (one cached store per
        // word vs a whole initiation sequence).
        assert!(p.auto_cpu.as_nanos() * 50 < p.deliberate.as_nanos());
    }

    #[test]
    fn deliberate_wins_bulk_updates() {
        let r = sweep(&[2048]);
        let p = r.points[0];
        assert!(
            p.deliberate < p.auto,
            "2KB: deliberate {} should beat {} per-word snooped stores {}",
            p.deliberate,
            2048 / 8,
            p.auto
        );
    }

    #[test]
    fn crossover_exists_and_is_sub_page() {
        let r = sweep(&DEFAULT_SIZES);
        let x = r.crossover_bytes.expect("crossover exists");
        assert!((16..=2048).contains(&x), "crossover at {x}B");
    }

    #[test]
    fn both_paths_deliver_correct_data() {
        // Covered byte-exactly in the shrimp crate's tests; here assert
        // the sweep leaves consistent timing (monotone costs).
        let r = sweep(&[8, 64, 512]);
        assert!(r.points[0].auto < r.points[1].auto);
        assert!(r.points[1].auto < r.points[2].auto);
        assert!(r.points[0].deliberate <= r.points[2].deliberate);
        // Sender CPU cost of the automatic path stays tiny even at 512B.
        assert!(r.points[2].auto_cpu < SimDuration::from_us(10.0));
    }
}
