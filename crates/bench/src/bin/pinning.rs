//! Regenerates the **§6 I4 ablation**: per-transfer pinning vs the UDMA
//! register check — "much faster... no kernel action in the common case".
//!
//! Run: `cargo run --release -p shrimp-bench --bin pinning`

use shrimp_bench::pinning;
use shrimp_bench::table::print_table;

fn main() {
    let p = pinning::protection_cost(64);
    print_table(
        "A-pin (1) — per-transfer protection overhead, one-page transfers",
        &["path", "per-transfer(us)", "pin ops"],
        &[
            vec![
                "kernel DMA (pin/unpin)".into(),
                format!("{:.1}", p.kernel_per_transfer.as_micros_f64()),
                p.kernel_pins.to_string(),
            ],
            vec![
                "UDMA (register check)".into(),
                format!("{:.1}", p.udma_per_transfer.as_micros_f64()),
                p.udma_pins.to_string(),
            ],
        ],
    );

    let r = pinning::pressure_run(16, 4, 12);
    print_table(
        "A-pin (2) — UDMA transfers racing a page-thrashing process (4 user frames)",
        &["metric", "value"],
        &[
            vec!["transfers completed".into(), r.transfers.to_string()],
            vec!["evictions".into(), r.evictions.to_string()],
            vec!["I4 skips (frames held by hardware)".into(), r.i4_skips.to_string()],
            vec!["elapsed (us)".into(), format!("{:.0}", r.elapsed.as_micros_f64())],
        ],
    );
    println!("\n[paper §6 I4: the kernel checks the SOURCE/DESTINATION registers before");
    println!(" remapping and simply picks another page — invariants verified every step]");
}
