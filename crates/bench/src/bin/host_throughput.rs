//! Host wall-clock throughput of the simulator's data plane.
//!
//! Drives N-node streaming workloads through the serial driver and the
//! parallel engine, reports **host** messages/sec — the engineering
//! number that bounds every large-scale experiment — then writes
//! `BENCH_throughput.json`.
//!
//! Run: `cargo run --release -p shrimp-bench --bin host_throughput`
//!
//! Options:
//!   --quick            smoke-test sizing (CI): ~1/20 of the message count
//!   --threads <n>      determinism smoke: run the 8-node stream through
//!                      the serial driver, the unified engine at 1 shard,
//!                      and at <n> worker threads; fail if any state
//!                      digests differ (exit 1)
//!   --out <path>       output JSON path (default: BENCH_throughput.json)
//!   --compare <path>   embed a previous output as `"before"` and print
//!                      per-workload speedups against it
//!   --trace <path>     also run the 8-node stream with the flight
//!                      recorder enabled, write the Perfetto trace-event
//!                      JSON to <path>, and record the traced run (its
//!                      digest must match the untraced runs)
//!
//! The default (no `--threads`) suite covers the serial baselines, a
//! thread sweep on the 8-node stream, and 8→16-node scaling through the
//! parallel engine. Every entry records its thread count, commit hash,
//! and the FNV digest of final machine state; equal-workload entries must
//! carry equal digests regardless of thread count.
//!
//! Build with `--features count-allocs` to register the counting
//! allocator and report steady-state heap allocations per message.

use std::fs;

use shrimp_bench::host_perf::{self, ThroughputResult};
use shrimp_bench::table::print_table;

#[cfg(feature = "count-allocs")]
#[global_allocator]
static ALLOC: shrimp_bench::alloc_count::CountingAlloc = shrimp_bench::alloc_count::CountingAlloc;

/// Scans `json` for `key` (e.g. `"spans":`) and parses the integer that
/// follows it (our own format; no JSON dep).
fn baseline_field_u64(json: &str, key: &str) -> Option<u64> {
    let rest = &json[json.find(key)? + key.len()..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Pulls `"msgs_per_sec":<n>` for workload `name` out of a previous
/// output with plain string scanning (our own format; no JSON dep).
fn baseline_msgs_per_sec(json: &str, name: &str) -> Option<f64> {
    let key = format!("\"name\":\"{name}\"");
    let obj = &json[json.find(&key)?..];
    let field = "\"msgs_per_sec\":";
    let rest = &obj[obj.find(field)? + field.len()..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Extracts the most recent runs array (`"after"` if present, else
/// `"runs"`) from a previous output, verbatim, by bracket matching.
fn extract_runs_array(json: &str) -> Option<&str> {
    let key_pos = json
        .find("\"after\":")
        .map(|p| p + "\"after\":".len())
        .or_else(|| json.find("\"runs\":").map(|p| p + "\"runs\":".len()))?;
    let rest = &json[key_pos..];
    let open = rest.find('[')?;
    let mut depth = 0usize;
    for (i, c) in rest[open..].char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[open..=open + i]);
                }
            }
            _ => {}
        }
    }
    None
}

const USAGE: &str = "usage: host_throughput [--quick] [--threads <n>] [--out <path>] \
     [--compare <path>] [--trace <path>]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut smoke_threads: Option<usize> = None;
    let mut out_path = "BENCH_throughput.json".to_string();
    let mut compare_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" | "--compare" | "--threads" | "--trace" => {
                let Some(v) = it.next() else {
                    eprintln!("error: {a} requires a value\n{USAGE}");
                    std::process::exit(2);
                };
                match a.as_str() {
                    "--out" => out_path = v.clone(),
                    "--compare" => compare_path = Some(v.clone()),
                    "--trace" => trace_path = Some(v.clone()),
                    _ => match v.parse::<usize>() {
                        Ok(n) if n >= 1 => smoke_threads = Some(n),
                        _ => {
                            eprintln!("error: --threads needs a positive integer\n{USAGE}");
                            std::process::exit(2);
                        }
                    },
                }
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let compare = compare_path.map(|p| match fs::read_to_string(&p) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read --compare file `{p}`: {e}");
            std::process::exit(2);
        }
    });

    let scale: u32 = if quick { 20 } else { 1 };
    // (nodes, msg_bytes, messages per pair, threads); threads 0 = serial
    // driver. The serial trio keeps the pre-parallel workload names so
    // `--compare` lines up across PRs; the rest sweep threads on 8 nodes
    // and scale 8 → 16 nodes through the parallel engine.
    let workloads: Vec<(u16, u64, u32, usize)> = match smoke_threads {
        // Determinism smoke: one stream through the serial driver, the
        // unified engine at one shard, and the unified engine at <n>
        // shards; the digest comparison below is the pass/fail signal.
        Some(n) => vec![
            (8, 4096, 50_000 / scale, 0),
            (8, 4096, 50_000 / scale, 1),
            (8, 4096, 50_000 / scale, n),
        ],
        None => vec![
            (2, 4096, 200_000 / scale, 0),
            (2, 256, 400_000 / scale, 0),
            (8, 4096, 50_000 / scale, 0),
            (8, 4096, 50_000 / scale, 1),
            (8, 4096, 50_000 / scale, 2),
            (8, 4096, 50_000 / scale, 4),
            (16, 4096, 25_000 / scale, 4),
        ],
    };

    let mut runs: Vec<ThroughputResult> = Vec::new();
    for &(nodes, bytes, msgs, threads) in &workloads {
        runs.push(host_perf::stream_pairs(nodes, bytes, msgs, threads));
    }

    // Tracing smoke: rerun the 8-node stream with the flight recorder on.
    // The traced entry joins `runs`, so the digest-equality check below
    // also proves tracing never perturbs the simulated timeline.
    if let Some(path) = &trace_path {
        let (result, trace) = host_perf::stream_pairs_traced(8, 4096, 50_000 / scale, 2);
        let spans = baseline_field_u64(&trace, "\"spans\":").unwrap_or(0);
        fs::write(path, &trace).expect("write trace JSON");
        println!("wrote {spans}-span Perfetto trace to {path}");
        runs.push(result);
    }

    // Compare against the *most recent* runs in the old file (its
    // "after" array), not whatever array a raw scan hits first.
    let before = compare.as_deref().and_then(extract_runs_array);
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let speedup = before
                .and_then(|old| baseline_msgs_per_sec(old, &r.name))
                .map(|b| format!("{:.2}x", r.msgs_per_sec / b))
                .unwrap_or_else(|| "-".to_string());
            vec![
                r.name.clone(),
                format!("{}", r.messages),
                format!("{}", r.threads),
                format!("{:.0}", r.msgs_per_sec),
                format!("{:.1}", r.mb_per_sec),
                format!("{:016x}", r.digest),
                speedup,
            ]
        })
        .collect();
    print_table(
        "host_throughput — simulator data-plane wall-clock throughput",
        &["workload", "msgs", "threads", "msgs/s", "MB/s", "digest", "vs before"],
        &rows,
    );

    // Equal workloads must digest identically at every thread count — the
    // conservative engine's whole contract. Check every (nodes, bytes,
    // messages) group, not just the smoke pair.
    let mut divergent = false;
    for (i, a) in runs.iter().enumerate() {
        for b in &runs[i + 1..] {
            if (a.nodes, a.msg_bytes, a.messages) == (b.nodes, b.msg_bytes, b.messages)
                && a.digest != b.digest
            {
                eprintln!(
                    "DETERMINISM FAILURE: {} digest {:016x} != {} digest {:016x}",
                    a.name, a.digest, b.name, b.digest
                );
                divergent = true;
            }
        }
    }

    let after = host_perf::runs_to_json(&runs);
    let json = match before {
        Some(before) => format!(
            "{{\n  \"bench\": \"host_throughput\",\n  \"before\": {before},\n  \"after\": {after}\n}}\n",
        ),
        None => format!("{{\n  \"bench\": \"host_throughput\",\n  \"runs\": {after}\n}}\n"),
    };
    fs::write(&out_path, &json).expect("write BENCH_throughput.json");
    println!("\nwrote {out_path}");

    if divergent {
        std::process::exit(1);
    }
}
