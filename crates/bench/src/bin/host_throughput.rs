//! Host wall-clock throughput of the simulator's data plane.
//!
//! Drives N-node streaming workloads and reports **host** messages/sec —
//! the engineering number that bounds every large-scale experiment — then
//! writes `BENCH_throughput.json`.
//!
//! Run: `cargo run --release -p shrimp-bench --bin host_throughput`
//!
//! Options:
//!   --quick            smoke-test sizing (CI): ~1/20 of the message count
//!   --out <path>       output JSON path (default: BENCH_throughput.json)
//!   --compare <path>   embed a previous output as `"before"` and print
//!                      per-workload speedups against it
//!
//! Build with `--features count-allocs` to register the counting
//! allocator and report steady-state heap allocations per message.

use std::fs;

use shrimp_bench::host_perf::{self, ThroughputResult};
use shrimp_bench::table::print_table;

#[cfg(feature = "count-allocs")]
#[global_allocator]
static ALLOC: shrimp_bench::alloc_count::CountingAlloc = shrimp_bench::alloc_count::CountingAlloc;

/// Pulls `"msgs_per_sec":<n>` for workload `name` out of a previous
/// output with plain string scanning (our own format; no JSON dep).
fn baseline_msgs_per_sec(json: &str, name: &str) -> Option<f64> {
    let key = format!("\"name\":\"{name}\"");
    let obj = &json[json.find(&key)?..];
    let field = "\"msgs_per_sec\":";
    let rest = &obj[obj.find(field)? + field.len()..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Extracts the most recent runs array (`"after"` if present, else
/// `"runs"`) from a previous output, verbatim, by bracket matching.
fn extract_runs_array(json: &str) -> Option<&str> {
    let key_pos = json
        .find("\"after\":")
        .map(|p| p + "\"after\":".len())
        .or_else(|| json.find("\"runs\":").map(|p| p + "\"runs\":".len()))?;
    let rest = &json[key_pos..];
    let open = rest.find('[')?;
    let mut depth = 0usize;
    for (i, c) in rest[open..].char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[open..=open + i]);
                }
            }
            _ => {}
        }
    }
    None
}

const USAGE: &str = "usage: host_throughput [--quick] [--out <path>] [--compare <path>]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path = "BENCH_throughput.json".to_string();
    let mut compare_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" | "--compare" => {
                let Some(v) = it.next() else {
                    eprintln!("error: {a} requires a value\n{USAGE}");
                    std::process::exit(2);
                };
                if a == "--out" {
                    out_path = v.clone();
                } else {
                    compare_path = Some(v.clone());
                }
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let compare = compare_path.map(|p| match fs::read_to_string(&p) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read --compare file `{p}`: {e}");
            std::process::exit(2);
        }
    });

    let scale: u32 = if quick { 20 } else { 1 };
    // (nodes, msg_bytes, messages per pair)
    let workloads: [(u16, u64, u32); 3] =
        [(2, 4096, 200_000 / scale), (2, 256, 400_000 / scale), (8, 4096, 50_000 / scale)];

    let mut runs: Vec<ThroughputResult> = Vec::new();
    for (nodes, bytes, msgs) in workloads {
        runs.push(host_perf::stream_pairs(nodes, bytes, msgs));
    }

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let speedup = compare
                .as_deref()
                .and_then(|old| baseline_msgs_per_sec(old, &r.name))
                .map(|b| format!("{:.2}x", r.msgs_per_sec / b))
                .unwrap_or_else(|| "-".to_string());
            vec![
                r.name.clone(),
                format!("{}", r.messages),
                format!("{:.0}", r.msgs_per_sec),
                format!("{:.1}", r.mb_per_sec),
                r.allocs_per_msg.map_or("-".to_string(), |a| format!("{a:.2}")),
                speedup,
            ]
        })
        .collect();
    print_table(
        "host_throughput — simulator data-plane wall-clock throughput",
        &["workload", "msgs", "msgs/s", "MB/s", "allocs/msg", "vs before"],
        &rows,
    );

    let after = host_perf::runs_to_json(&runs);
    let json = match compare.as_deref().and_then(extract_runs_array) {
        Some(before) => format!(
            "{{\n  \"bench\": \"host_throughput\",\n  \"before\": {before},\n  \"after\": {after}\n}}\n",
        ),
        None => format!("{{\n  \"bench\": \"host_throughput\",\n  \"runs\": {after}\n}}\n"),
    };
    fs::write(&out_path, &json).expect("write BENCH_throughput.json");
    println!("\nwrote {out_path}");
}
