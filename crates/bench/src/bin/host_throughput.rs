//! Host wall-clock throughput of the simulator's data plane.
//!
//! Drives N-node streaming workloads through the serial driver and the
//! parallel engine, reports **host** messages/sec — the engineering
//! number that bounds every large-scale experiment — then writes
//! `BENCH_throughput.json`.
//!
//! Run: `cargo run --release -p shrimp-bench --bin host_throughput`
//!
//! Options:
//!   --quick            smoke-test sizing (CI): ~1/20 of the message count
//!   --threads <n>      determinism smoke: run the 8-node stream through
//!                      the serial driver, the unified engine at 1 shard,
//!                      and at <n> worker threads, plus a 256-node mesh
//!                      serial vs <n> threads; fail if any state digests
//!                      differ (exit 1)
//!   --out <path>       output JSON path (default: BENCH_throughput.json)
//!   --compare <path>   embed a previous output as `"before"` and print
//!                      per-workload speedups against it
//!   --baseline-bin <path>
//!                      interleaved A/B: alternate full passes of the
//!                      given (previously built) host_throughput binary
//!                      and the current build, keep each side's best pass
//!                      per workload, and compare those — slow host drift
//!                      (thermal, noisy neighbours) then biases neither
//!                      side. The baseline's best rows become `"before"`.
//!   --trace <path>     also run the 8-node stream with the flight
//!                      recorder enabled, write the Perfetto trace-event
//!                      JSON to <path>, and record the traced run (its
//!                      digest must match the untraced runs)
//!   --trace-bin <path> like --trace but writes the compact `SHRTRC01`
//!                      binary span format (convertible to the identical
//!                      JSON with `shrimp::trace_bin_to_json`)
//!   --metrics <path>   also run a traced + metered 64-node mesh smoke
//!                      (t=2) and a traced 2-node stream, write the
//!                      machine-wide metrics snapshot (stable text form)
//!                      to <path>, and record both runs — the 2-node row
//!                      then carries per-stage p50/p99 latencies in the
//!                      output JSON
//!   --sample-trace <path>
//!                      write the small fixed 2-node workload's SHRTRC01
//!                      binary trace to <path> and exit — regenerates the
//!                      committed `traces/sample_2node.shrtrc`
//!                      byte-identically (the workload is deterministic)
//!
//! The default (no `--threads`) suite covers the serial baselines, a
//! thread sweep on the 8-node stream, 8→16-node scaling, and big-machine
//! meshes at 64, 256 and 1024 nodes (serial plus a t=1/2/4 sweep each).
//! Every entry records its thread count, commit hash, host logical-core
//! count, and the FNV digest of final machine state; equal-workload
//! entries must carry equal digests regardless of thread count. Parallel
//! rows also carry the epoch-phase breakdown (execute / barrier / merge /
//! commit host-time totals). On a host with >= 2 logical cores, a t>=2
//! row of a >= 64-node mesh must beat the serial driver (exit 1
//! otherwise); on a 1-core host those rows verify determinism only and
//! the output says so. When a traced run happens, the output also records
//! the traced-vs-untraced throughput ratio (`"traced_overhead"`).
//!
//! Build with `--features count-allocs` to register the counting
//! allocator and report steady-state heap allocations per message.

use std::fs;
use std::process::Command;

use shrimp_bench::host_perf::{self, ThroughputResult};
use shrimp_bench::table::print_table;

#[cfg(feature = "count-allocs")]
#[global_allocator]
static ALLOC: shrimp_bench::alloc_count::CountingAlloc = shrimp_bench::alloc_count::CountingAlloc;

/// Scans `json` for `key` (e.g. `"spans":`) and parses the integer that
/// follows it (our own format; no JSON dep).
fn baseline_field_u64(json: &str, key: &str) -> Option<u64> {
    let rest = &json[json.find(key)? + key.len()..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Pulls `"msgs_per_sec":<n>` for workload `name` out of a previous
/// output with plain string scanning (our own format; no JSON dep).
fn baseline_msgs_per_sec(json: &str, name: &str) -> Option<f64> {
    let key = format!("\"name\":\"{name}\"");
    let obj = &json[json.find(&key)?..];
    let field = "\"msgs_per_sec\":";
    let rest = &obj[obj.find(field)? + field.len()..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Extracts the most recent runs array (`"after"` if present, else
/// `"runs"`) from a previous output, verbatim, by bracket matching.
fn extract_runs_array(json: &str) -> Option<&str> {
    let key_pos = json
        .find("\"after\":")
        .map(|p| p + "\"after\":".len())
        .or_else(|| json.find("\"runs\":").map(|p| p + "\"runs\":".len()))?;
    let rest = &json[key_pos..];
    let open = rest.find('[')?;
    let mut depth = 0usize;
    for (i, c) in rest[open..].char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[open..=open + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts workload `name`'s whole `{...}` row from a runs array by
/// brace matching (rows nest sub-objects: `"phases"`, per-stage
/// percentiles — taking the first `}` would truncate the row).
fn extract_run_object<'a>(array: &'a str, name: &str) -> Option<&'a str> {
    let key = format!("\"name\":\"{name}\"");
    let pos = array.find(&key)?;
    let start = array[..pos].rfind('{')?;
    let mut depth = 0usize;
    for (i, c) in array[start..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&array[start..=start + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Interleaved A/B passes (per side) for `--baseline-bin`.
const AB_ROUNDS: usize = 2;

const USAGE: &str = "usage: host_throughput [--quick] [--threads <n>] [--out <path>] \
     [--compare <path>] [--baseline-bin <path>] [--trace <path>] [--trace-bin <path>] \
     [--metrics <path>] [--sample-trace <path>]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut smoke_threads: Option<usize> = None;
    let mut out_path = "BENCH_throughput.json".to_string();
    let mut compare_path: Option<String> = None;
    let mut baseline_bin: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut trace_bin_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" | "--compare" | "--baseline-bin" | "--threads" | "--trace" | "--trace-bin"
            | "--metrics" | "--sample-trace" => {
                let Some(v) = it.next() else {
                    eprintln!("error: {a} requires a value\n{USAGE}");
                    std::process::exit(2);
                };
                match a.as_str() {
                    "--out" => out_path = v.clone(),
                    "--compare" => compare_path = Some(v.clone()),
                    "--baseline-bin" => baseline_bin = Some(v.clone()),
                    "--trace" => trace_path = Some(v.clone()),
                    "--trace-bin" => trace_bin_path = Some(v.clone()),
                    "--metrics" => metrics_path = Some(v.clone()),
                    "--sample-trace" => {
                        // Fixed small deterministic workload: same bytes
                        // on every host, safe to commit as a sample.
                        let (r, _, bin) = host_perf::stream_pairs_traced_bin(2, 4096, 200, 1);
                        fs::write(v, &bin).expect("write sample trace");
                        println!(
                            "wrote {}-byte sample trace ({} msgs, digest {:016x}) to {v}",
                            bin.len(),
                            r.messages,
                            r.digest
                        );
                        return;
                    }
                    _ => match v.parse::<usize>() {
                        Ok(n) if n >= 1 => smoke_threads = Some(n),
                        _ => {
                            eprintln!("error: --threads needs a positive integer\n{USAGE}");
                            std::process::exit(2);
                        }
                    },
                }
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if compare_path.is_some() && baseline_bin.is_some() {
        eprintln!("error: --compare and --baseline-bin are mutually exclusive\n{USAGE}");
        std::process::exit(2);
    }
    let compare = compare_path.map(|p| match fs::read_to_string(&p) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read --compare file `{p}`: {e}");
            std::process::exit(2);
        }
    });

    let scale: u32 = if quick { 20 } else { 1 };
    // (nodes, msg_bytes, full messages per pair, quick messages per pair,
    // threads); threads 0 = serial driver. The serial trio keeps the
    // pre-parallel workload names *and* its 1/20 quick scaling so
    // `--compare` lines up across PRs. Every other row keeps its full
    // count even under `--quick`: parallel and big-mesh rows are already
    // sized so the steady state dominates (and so the per-message
    // allocation figure reflects the steady state, not setup), and the
    // 64/256/1024-node meshes shrink the per-pair count as the pair count
    // grows, but never below a few thousand sends per flow: with only
    // hundreds, per-flow burst calibration, cold machine state and the
    // one-time per-run scratch (which scales with node count) would
    // dominate, and the row would measure setup — and render nonzero
    // allocs/msg — instead of steady-state throughput.
    let workloads: Vec<(u16, u64, u32, u32, usize)> = match smoke_threads {
        // Determinism smoke: the 8-node stream through the serial driver,
        // the unified engine at one shard, and the unified engine at <n>
        // shards — plus a 256-node mesh serial vs <n> shards, so the
        // digest comparison also covers the big-machine path.
        Some(n) => vec![
            (8, 4096, 50_000, 2_500, 0),
            (8, 4096, 50_000, 2_500, 1),
            (8, 4096, 50_000, 2_500, n),
            (256, 4096, 200, 200, 0),
            (256, 4096, 200, 200, n),
        ],
        None => vec![
            (2, 4096, 200_000, 10_000, 0),
            (2, 256, 400_000, 20_000, 0),
            (8, 4096, 50_000, 2_500, 0),
            (8, 4096, 50_000, 50_000, 1),
            (8, 4096, 50_000, 50_000, 2),
            (8, 4096, 50_000, 50_000, 4),
            (16, 4096, 25_000, 25_000, 4),
            (64, 4096, 6_000, 6_000, 0),
            (64, 4096, 6_000, 6_000, 1),
            (64, 4096, 6_000, 6_000, 2),
            (64, 4096, 6_000, 6_000, 4),
            (256, 4096, 4_000, 4_000, 0),
            (256, 4096, 4_000, 4_000, 1),
            (256, 4096, 4_000, 4_000, 2),
            (256, 4096, 4_000, 4_000, 4),
            (1024, 4096, 4_000, 4_000, 0),
            (1024, 4096, 4_000, 4_000, 1),
            (1024, 4096, 4_000, 4_000, 2),
            (1024, 4096, 4_000, 4_000, 4),
        ],
    };
    let workloads: Vec<(u16, u64, u32, usize)> = workloads
        .into_iter()
        .map(|(nodes, bytes, full, q, threads)| {
            (nodes, bytes, if quick { q } else { full }, threads)
        })
        .collect();
    let run_suite = |runs: &mut Vec<ThroughputResult>| {
        for (i, &(nodes, bytes, msgs, threads)) in workloads.iter().enumerate() {
            let result = host_perf::stream_pairs(nodes, bytes, msgs, threads);
            match runs.get_mut(i) {
                // A later A/B pass keeps each workload's best side.
                Some(best) => {
                    if result.msgs_per_sec > best.msgs_per_sec {
                        *best = result;
                    }
                }
                None => runs.push(result),
            }
        }
    };

    let mut runs: Vec<ThroughputResult> = Vec::new();
    // With a baseline binary: interleave full passes (baseline, own,
    // baseline, own, …) so slow host drift hits both sides equally, and
    // keep each side's best pass per workload. `baseline_best` maps our
    // workload order to the baseline's best row text + msgs/sec.
    let mut baseline_best: Vec<Option<(f64, String)>> = vec![None; workloads.len()];
    let mode = if baseline_bin.is_some() { "interleaved_ab" } else { "single_pass" };
    match &baseline_bin {
        Some(bin) => {
            let tmp = format!("{out_path}.baseline.tmp");
            for _ in 0..AB_ROUNDS {
                let mut cmd = Command::new(bin);
                if quick {
                    cmd.arg("--quick");
                }
                cmd.args(["--out", &tmp]);
                match cmd.status() {
                    Ok(s) if s.success() => {}
                    Ok(s) => {
                        eprintln!("error: baseline binary `{bin}` exited with {s}");
                        std::process::exit(2);
                    }
                    Err(e) => {
                        eprintln!("error: cannot run baseline binary `{bin}`: {e}");
                        std::process::exit(2);
                    }
                }
                let json = fs::read_to_string(&tmp).unwrap_or_default();
                if let Some(array) = extract_runs_array(&json) {
                    for (i, &(nodes, bytes, _, threads)) in workloads.iter().enumerate() {
                        let suffix =
                            if threads == 0 { String::new() } else { format!("_t{threads}") };
                        let name = format!("stream_{bytes}b_{nodes}node{suffix}");
                        let Some(rate) = baseline_msgs_per_sec(array, &name) else { continue };
                        let Some(obj) = extract_run_object(array, &name) else { continue };
                        if baseline_best[i].as_ref().is_none_or(|(best, _)| rate > *best) {
                            baseline_best[i] = Some((rate, obj.to_string()));
                        }
                    }
                }
                run_suite(&mut runs);
            }
            let _ = fs::remove_file(&tmp);
        }
        None => run_suite(&mut runs),
    }

    // Tracing smoke: rerun the 8-node stream with the flight recorder on.
    // The traced entry joins `runs`, so the digest-equality check below
    // also proves tracing never perturbs the simulated timeline.
    let mut traced_overhead = String::new();
    if trace_path.is_some() || trace_bin_path.is_some() {
        let (result, trace, bin) = host_perf::stream_pairs_traced_bin(8, 4096, 50_000 / scale, 2);
        let spans = baseline_field_u64(&trace, "\"spans\":").unwrap_or(0);
        if let Some(path) = &trace_path {
            fs::write(path, &trace).expect("write trace JSON");
            println!("wrote {spans}-span Perfetto trace to {path}");
        }
        if let Some(path) = &trace_bin_path {
            let roundtrip = shrimp::trace_bin_to_json(&bin).expect("well-formed binary trace");
            assert_eq!(roundtrip, trace, "binary trace must convert back to the exact JSON");
            fs::write(path, &bin).expect("write binary trace");
            println!(
                "wrote {spans}-span binary trace to {path} ({} bytes vs {} JSON)",
                bin.len(),
                trace.len()
            );
        }
        // The traced-vs-untraced throughput delta, against the same
        // workload's untraced row from this invocation.
        if let Some(untraced) = runs.iter().find(|r| {
            (r.nodes, r.msg_bytes, r.messages, r.threads)
                == (result.nodes, result.msg_bytes, result.messages, result.threads)
                && !r.name.ends_with("_traced")
        }) {
            traced_overhead = format!(
                "\n  \"traced_overhead\": {{\"untraced_msgs_per_sec\":{:.1},\
                 \"traced_msgs_per_sec\":{:.1},\"ratio\":{:.3}}},",
                untraced.msgs_per_sec,
                result.msgs_per_sec,
                result.msgs_per_sec / untraced.msgs_per_sec,
            );
        }
        runs.push(result);
    }

    // Metrics smoke: a traced + metered 64-node mesh (t=2) whose pinned
    // snapshot goes to disk for CI to validate, plus a traced 2-node
    // stream so the output JSON carries per-stage p50/p99 latencies for
    // the paper's canonical two-node transfer.
    if let Some(path) = &metrics_path {
        // Same per-pair count as the suite's 64-node rows (full even under
        // --quick): the metered digest then joins the equality check
        // against the untraced rows, and one-time shard setup amortizes
        // below the 0.002 allocs/msg contract.
        let (result, _, _, metrics) =
            host_perf::stream_pairs_traced_metered_bin(64, 4096, 6_000, 2);
        fs::write(path, &metrics).expect("write metrics snapshot");
        println!("wrote {}-line metrics snapshot to {path}", metrics.lines().count());
        runs.push(result);
        let msgs = if quick { 10_000 } else { 200_000 };
        let (two_node, _) = host_perf::stream_pairs_traced(2, 4096, msgs, 0);
        runs.push(two_node);
    }

    // Serving rows: the multi-tenant request/reply workload — tenant
    // processes contending for a deliberately undersized NIPT, mixed §7
    // priorities, closed-loop RPC latency. Run at one shard and two so
    // the digest-equality check below covers the reactive-program path
    // too. Sizing is identical in full and quick mode: the request
    // percentiles are *simulated* figures (deterministic on any host),
    // and CI gates on them against the committed row — the workload must
    // therefore be the same workload in every invocation.
    // The t=2 row runs traced so the committed JSON also carries the
    // per-stage p50/p90/p99 split of the serving path (tracing is pure
    // observation: its digest must still equal the t=1 row's).
    let serving_t1 = shrimp_bench::serving::serving(64, 16, 4, 1);
    let (serving_t2, _trace) = shrimp_bench::serving::serving_traced(64, 16, 4, 2);
    for out in [serving_t1, serving_t2] {
        assert!(out.nipt_evictions > 0, "serving must churn the NIPT");
        assert!(out.nipt_refaults > 0, "serving must refault stale slots");
        runs.push(out.result);
    }

    // "before": the baseline binary's best rows (interleaved mode), or
    // the *most recent* runs in the --compare file (its "after" array).
    let baseline_rows: Vec<String> =
        baseline_best.iter().flatten().map(|(_, obj)| format!("    {obj}")).collect();
    let before: Option<String> = if baseline_rows.is_empty() {
        compare.as_deref().and_then(extract_runs_array).map(str::to_string)
    } else {
        Some(format!("[\n{}\n  ]", baseline_rows.join(",\n")))
    };
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let speedup = before
                .as_deref()
                .and_then(|old| baseline_msgs_per_sec(old, &r.name))
                .map(|b| format!("{:.2}x", r.msgs_per_sec / b))
                .unwrap_or_else(|| "-".to_string());
            vec![
                r.name.clone(),
                format!("{}", r.messages),
                format!("{}", r.threads),
                format!("{:.0}", r.msgs_per_sec),
                format!("{:.1}", r.mb_per_sec),
                format!("{:016x}", r.digest),
                speedup,
            ]
        })
        .collect();
    print_table(
        &format!(
            "host_throughput — simulator data-plane wall-clock throughput \
             ({} logical cores, {mode})",
            host_perf::host_logical_cores()
        ),
        &["workload", "msgs", "threads", "msgs/s", "MB/s", "digest", "vs before"],
        &rows,
    );

    // Epoch-phase breakdown (parallel rows only): where each run's host
    // time went, summed across shards. A large barrier share is straggler
    // wait (shard imbalance or an oversubscribed host), not engine cost.
    let phased: Vec<&ThroughputResult> = runs.iter().filter(|r| r.phases.is_some()).collect();
    if !phased.is_empty() {
        println!("\nepoch phases (host time, all shards): crossings exec/barrier/merge/commit");
        for r in phased {
            let [crossings, execute_ns, barrier_ns, merge_ns, commit_ns] =
                r.phases.expect("filtered on phases");
            let total = (execute_ns + barrier_ns + merge_ns + commit_ns).max(1) as f64;
            println!(
                "  {:>24} {:>7}  {:>3.0}% / {:>3.0}% / {:>3.0}% / {:>3.0}%",
                r.name,
                crossings,
                100.0 * execute_ns as f64 / total,
                100.0 * barrier_ns as f64 / total,
                100.0 * merge_ns as f64 / total,
                100.0 * commit_ns as f64 / total,
            );
        }
    }

    // Equal workloads must digest identically at every thread count — the
    // conservative engine's whole contract. Check every (nodes, bytes,
    // messages) group, not just the smoke pair.
    let mut divergent = false;
    for (i, a) in runs.iter().enumerate() {
        for b in &runs[i + 1..] {
            if (a.nodes, a.msg_bytes, a.messages) == (b.nodes, b.msg_bytes, b.messages)
                && a.digest != b.digest
            {
                eprintln!(
                    "DETERMINISM FAILURE: {} digest {:016x} != {} digest {:016x}",
                    a.name, a.digest, b.name, b.digest
                );
                divergent = true;
            }
        }
    }

    // Parallel speedup is only observable with real cores: on a
    // multi-core host, a t>=2 row of a big mesh (>= 64 nodes, where each
    // barrier crossing carries enough work to amortize coordination)
    // should beat the serial driver; inside a 1-core container that claim
    // is meaningless, so say so instead of failing (the digest checks
    // above still hold — determinism does not need cores).
    let cores = host_perf::host_logical_cores();
    if cores >= 2 {
        for a in &runs {
            if a.threads < 2 || a.nodes < 64 || a.name.ends_with("_traced") {
                continue;
            }
            if let Some(serial) = runs.iter().find(|s| {
                s.threads == 0
                    && (s.nodes, s.msg_bytes, s.messages) == (a.nodes, a.msg_bytes, a.messages)
            }) {
                if a.msgs_per_sec < serial.msgs_per_sec {
                    eprintln!(
                        "SPEEDUP FAILURE ({cores} cores): {} at {:.0} msgs/s did not beat {} at {:.0} msgs/s",
                        a.name, a.msgs_per_sec, serial.name, serial.msgs_per_sec
                    );
                    divergent = true;
                }
            }
        }
    } else {
        println!(
            "note: 1 logical core — parallel rows verify determinism only; \
             speedup-vs-serial is not checked"
        );
    }

    let after = host_perf::runs_to_json(&runs);
    let metrics_head = metrics_path
        .as_deref()
        .map(|p| format!("\n  \"metrics_snapshot\": \"{p}\","))
        .unwrap_or_default();
    let head = format!(
        "{{\n  \"bench\": \"host_throughput\",\n  \"host_cores\": {},\n  \"mode\": \"{mode}\",{traced_overhead}{metrics_head}",
        host_perf::host_logical_cores()
    );
    let json = match before {
        Some(before) => format!("{head}\n  \"before\": {before},\n  \"after\": {after}\n}}\n"),
        None => format!("{head}\n  \"runs\": {after}\n}}\n"),
    };
    fs::write(&out_path, &json).expect("write BENCH_throughput.json");
    println!("\nwrote {out_path}");

    if divergent {
        std::process::exit(1);
    }
}
