//! Regenerates the **§1 motivation table**: traditional kernel DMA on a
//! 100 MB/s Paragon/HIPPI channel — overhead makes fine-grained transfers
//! useless.
//!
//! Run: `cargo run --release -p shrimp-bench --bin t1_hippi`

use shrimp_bench::hippi;
use shrimp_bench::table::{fmt_bytes, print_table};

fn main() {
    let points = hippi::sweep(&hippi::DEFAULT_SIZES);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                fmt_bytes(p.bytes),
                format!("{:.2}", p.mb_per_s),
                format!("{:.1}%", p.pct_of_raw * 100.0),
                format!("{:.0}", p.overhead_us),
            ]
        })
        .collect();
    print_table(
        "T1 — traditional DMA on a 100 MB/s HIPPI channel (Paragon, [13])",
        &["block", "MB/s", "% of raw", "overhead(us)"],
        &rows,
    );

    println!("\nPaper checkpoints (§1):");
    let p1k = points.iter().find(|p| p.bytes == 1024).expect("1KB in sweep");
    println!(
        "  1KB block  => {:.2} MB/s, {:.0}us overhead  (paper: 2.7 MB/s, >350us)",
        p1k.mb_per_s, p1k.overhead_us
    );
    let p64k = points.iter().find(|p| p.bytes == 65536).expect("64KB in sweep");
    let big = points.iter().find(|p| p.mb_per_s >= 80.0);
    println!(
        "  64KB block => {:.1} MB/s (<80)             (paper: 80 MB/s needs >64KB)",
        p64k.mb_per_s
    );
    match big {
        Some(p) => println!("  80 MB/s first reached at block size {}", fmt_bytes(p.bytes)),
        None => println!("  80 MB/s not reached in sweep"),
    }
}
