//! Offline analyzer for SHRIMP transfer traces.
//!
//! Reads a trace produced by `host_throughput --trace[-bin]` (or any
//! [`shrimp::Multicomputer::export_trace`]/`export_trace_bin` output) in
//! either format — the compact `SHRTRC01` binary or the Perfetto
//! trace-event JSON — and reports where transfer time went:
//!
//! * per-stage latency percentiles (p50/p90/p99/max) from the same
//!   log-scaled histograms the simulator uses internally,
//! * per-node (sender) and per-link (src→dst) traffic breakdowns,
//! * the slowest N transfers with their dominant stage, and
//! * `--diff <other>`: the same percentile table for two traces side by
//!   side with deltas — byte-identical traces show every delta as 0 and
//!   exit 0; any difference exits 1 (usable as a CI regression gate).
//!
//! Run: `cargo run --release -p shrimp-bench --bin shrimp_trace -- \
//!       traces/sample_2node.shrtrc`
//!
//! The format is sniffed from the content (magic bytes vs `{`), never
//! the file name. No JSON library: the Perfetto parser is plain string
//! scanning over the exporter's own line-per-event layout.

use std::fs;
use std::process::ExitCode;

use shrimp::TRACE_BIN_MAGIC;
use shrimp_sim::{Histogram, Stage, STAGE_COUNT};

/// One normalized transfer span: identity, endpoints, and the duration
/// of each pipeline stage in nanoseconds.
#[derive(Clone, Copy, Debug)]
struct Span {
    /// Raw transfer id (`src << 48 | seq`).
    id: u64,
    src: u16,
    dst: u16,
    bytes: u32,
    stage_ns: [u64; STAGE_COUNT],
}

impl Span {
    fn total_ns(&self) -> u64 {
        self.stage_ns.iter().sum()
    }

    /// The stage this span spent the most time in.
    fn dominant(&self) -> Stage {
        let mut best = 0;
        for (i, &ns) in self.stage_ns.iter().enumerate() {
            if ns > self.stage_ns[best] {
                best = i;
            }
        }
        Stage::ALL[best]
    }
}

/// A parsed trace, whichever format it came from.
#[derive(Debug)]
struct Trace {
    nodes: u16,
    /// Spans the recorder *observed* (>= `spans.len()` if a ring filled).
    recorded: u64,
    /// Spans the recorder's rings had no room for.
    ring_dropped: u64,
    spans: Vec<Span>,
}

/// Decodes the `SHRTRC01` binary format (layout documented at
/// [`shrimp::Multicomputer::export_trace_bin`]): the 192-byte header,
/// then one 64-byte record per span carrying six stage-boundary
/// timestamps, here reduced to five stage durations.
fn parse_bin(bytes: &[u8]) -> Option<Trace> {
    struct Reader<'a> {
        b: &'a [u8],
    }
    impl Reader<'_> {
        fn take<const N: usize>(&mut self) -> Option<[u8; N]> {
            let (head, rest) = self.b.split_at_checked(N)?;
            self.b = rest;
            head.try_into().ok()
        }
        fn u16(&mut self) -> Option<u16> {
            self.take().map(u16::from_le_bytes)
        }
        fn u32(&mut self) -> Option<u32> {
            self.take().map(u32::from_le_bytes)
        }
        fn u64(&mut self) -> Option<u64> {
            self.take().map(u64::from_le_bytes)
        }
    }

    let mut r = Reader { b: bytes };
    if &r.take::<8>()? != TRACE_BIN_MAGIC {
        return None;
    }
    let nodes = r.u16()?;
    let _reserved = r.u16()?;
    let count = r.u32()? as usize;
    let recorded = r.u64()?;
    let ring_dropped = r.u64()?;
    // Per-stage summary block (count/min/max/mean-bits): recomputable
    // from the spans, so the analyzer skips it.
    for _ in 0..STAGE_COUNT * 4 {
        r.u64()?;
    }
    let mut spans = Vec::with_capacity(count);
    for _ in 0..count {
        let id = r.u64()?;
        let (src, dst, bytes) = (r.u16()?, r.u16()?, r.u32()?);
        let mut ts = [0u64; STAGE_COUNT + 1];
        for t in &mut ts {
            *t = r.u64()?;
        }
        let mut stage_ns = [0u64; STAGE_COUNT];
        for (i, d) in stage_ns.iter_mut().enumerate() {
            *d = ts[i + 1].saturating_sub(ts[i]);
        }
        spans.push(Span { id, src, dst, bytes, stage_ns });
    }
    r.b.is_empty().then_some(Trace { nodes, recorded, ring_dropped, spans })
}

/// Pulls the value after `key` out of `line`, up to the next `,` or `}`.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = &line[line.find(key)? + key.len()..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

/// Parses the exporter's Perfetto trace-event JSON: one `"ph":"X"` line
/// per (span, stage), grouped per span in stage order, plus one
/// `process_name` metadata line per node. Produces the same [`Trace`] as
/// [`parse_bin`] on the matching binary export.
fn parse_json(text: &str) -> Option<Trace> {
    let mut nodes: u16 = 0;
    let mut spans: Vec<Span> = Vec::new();
    let mut current: Option<Span> = None;
    for line in text.lines() {
        if line.contains("\"process_name\"") {
            nodes += 1;
            continue;
        }
        if !line.contains("\"ph\":\"X\"") {
            continue;
        }
        let stage_name = field(line, "\"name\":")?;
        let stage = *Stage::ALL.iter().find(|s| s.name() == stage_name)?;
        let dur_us: f64 = field(line, "\"dur\":")?.parse().ok()?;
        let src: u16 = field(line, "\"pid\":")?.parse().ok()?;
        let dst: u16 = field(line, "\"tid\":")?.parse().ok()?;
        let bytes: u32 = field(line, "\"bytes\":")?.parse().ok()?;
        let (id_node, id_seq) = field(line, "\"xfer\":")?.split_once(':')?;
        let id = (id_node.parse::<u64>().ok()? << 48) | id_seq.parse::<u64>().ok()?;
        if current.as_ref().is_none_or(|s| s.id != id) {
            if let Some(done) = current.take() {
                spans.push(done);
            }
            current = Some(Span { id, src, dst, bytes, stage_ns: [0; STAGE_COUNT] });
        }
        // Exported timestamps are microseconds with three decimals, so
        // nanoseconds round-trip exactly.
        current.as_mut()?.stage_ns[stage.index()] = (dur_us * 1000.0).round() as u64;
    }
    spans.extend(current);
    let recorded = field(text, "\"spans\":").and_then(|v| v.parse().ok())?;
    let ring_dropped = field(text, "\"dropped\":").and_then(|v| v.parse().ok())?;
    Some(Trace { nodes, recorded, ring_dropped, spans })
}

/// Sniffs the format and parses: `SHRTRC01` magic → binary, else JSON.
fn parse(bytes: &[u8]) -> Option<Trace> {
    if bytes.starts_with(TRACE_BIN_MAGIC) {
        parse_bin(bytes)
    } else {
        parse_json(std::str::from_utf8(bytes).ok()?)
    }
}

/// Per-stage latency histograms plus the end-to-end total, rebuilt from
/// the retained spans with the simulator's own log-scaled [`Histogram`].
fn stage_histograms(t: &Trace) -> [Histogram; STAGE_COUNT + 1] {
    let mut hists: [Histogram; STAGE_COUNT + 1] = Default::default();
    for span in &t.spans {
        for (i, &ns) in span.stage_ns.iter().enumerate() {
            hists[i].record(ns);
        }
        hists[STAGE_COUNT].record(span.total_ns());
    }
    hists
}

/// Row label for histogram index `i`: a stage name or `end-to-end`.
fn row_name(i: usize) -> &'static str {
    if i < STAGE_COUNT {
        Stage::ALL[i].name()
    } else {
        "end-to-end"
    }
}

/// The four reported figures of one histogram: p50/p90/p99/max (ns).
fn figures(h: &Histogram) -> [u64; 4] {
    [
        h.quantile(0.50).unwrap_or(0),
        h.quantile(0.90).unwrap_or(0),
        h.quantile(0.99).unwrap_or(0),
        h.max().unwrap_or(0),
    ]
}

fn print_stage_table(hists: &[Histogram; STAGE_COUNT + 1]) {
    println!("stage latency (ns)      count        p50        p90        p99        max");
    for (i, h) in hists.iter().enumerate() {
        let [p50, p90, p99, max] = figures(h);
        println!(
            "  {:<18} {:>8} {:>10} {:>10} {:>10} {:>10}",
            row_name(i),
            h.count(),
            p50,
            p90,
            p99,
            max
        );
    }
}

/// Breakdown rows capped for huge meshes; the cap is always announced.
const TOP_ROWS: usize = 8;

fn print_node_breakdown(t: &Trace) {
    // Aggregate by sender; index by node id (bounded by the header).
    let n = usize::from(t.nodes).max(1);
    let mut spans_by = vec![0u64; n];
    let mut bytes_by = vec![0u64; n];
    let mut ns_by = vec![0u64; n];
    for s in &t.spans {
        let i = usize::from(s.src).min(n - 1);
        spans_by[i] += 1;
        bytes_by[i] += u64::from(s.bytes);
        ns_by[i] += s.total_ns();
    }
    let mut order: Vec<usize> = (0..n).filter(|&i| spans_by[i] > 0).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(bytes_by[i]), i));
    let shown = order.len().min(TOP_ROWS);
    println!(
        "\nper-node (sender) breakdown{}:",
        if order.len() > shown {
            format!(" (top {shown} of {} senders)", order.len())
        } else {
            String::new()
        }
    );
    println!("  node      spans        bytes   mean end-to-end ns");
    for &i in &order[..shown] {
        println!(
            "  {:<6} {:>8} {:>12} {:>20}",
            i,
            spans_by[i],
            bytes_by[i],
            ns_by[i] / spans_by[i].max(1),
        );
    }
}

fn print_link_breakdown(t: &Trace) {
    // Aggregate by (src, dst); a stream workload has nodes/2 live links.
    let mut links: Vec<(u32, u64, u64, Histogram)> = Vec::new();
    for s in &t.spans {
        let key = (u32::from(s.src) << 16) | u32::from(s.dst);
        let slot = match links.iter_mut().find(|(k, ..)| *k == key) {
            Some(slot) => slot,
            None => {
                links.push((key, 0, 0, Histogram::default()));
                links.last_mut().expect("just pushed")
            }
        };
        slot.1 += 1;
        slot.2 += u64::from(s.bytes);
        slot.3.record(s.stage_ns[Stage::Wire.index()]);
    }
    links.sort_by_key(|&(k, _, bytes, _)| (std::cmp::Reverse(bytes), k));
    let shown = links.len().min(TOP_ROWS);
    println!(
        "\nper-link breakdown{}:",
        if links.len() > shown {
            format!(" (top {shown} of {} links)", links.len())
        } else {
            String::new()
        }
    );
    println!("  link            spans        bytes     wire p99 ns");
    for (key, spans, bytes, wire) in &links[..shown] {
        let label = format!("{}\u{2192}{}", key >> 16, key & 0xffff);
        println!(
            "  {:<14} {:>8} {:>12} {:>15}",
            label,
            spans,
            bytes,
            wire.quantile(0.99).unwrap_or(0)
        );
    }
}

fn print_slowest(t: &Trace, top: usize) {
    let mut order: Vec<usize> = (0..t.spans.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(t.spans[i].total_ns()), t.spans[i].id));
    let shown = order.len().min(top);
    println!("\nslowest {shown} transfers:");
    println!("  xfer             link        bytes      total ns   dominant stage");
    for &i in &order[..shown] {
        let s = &t.spans[i];
        let stage = s.dominant();
        let share = 100.0 * s.stage_ns[stage.index()] as f64 / s.total_ns().max(1) as f64;
        println!(
            "  {:<16} {:<11} {:>8} {:>13}   {} ({share:.0}%)",
            format!("{}:{}", s.id >> 48, s.id & ((1 << 48) - 1)),
            format!("{}\u{2192}{}", s.src, s.dst),
            s.bytes,
            s.total_ns(),
            stage.name(),
        );
    }
}

/// Side-by-side percentile diff. Returns how many figures differ.
fn print_diff(a: &Trace, b: &Trace) -> usize {
    let (ha, hb) = (stage_histograms(a), stage_histograms(b));
    let mut differing = 0;
    println!("stage figure diff (ns): p50 p90 p99 max — (b - a)");
    for i in 0..=STAGE_COUNT {
        let (fa, fb) = (figures(&ha[i]), figures(&hb[i]));
        let mut deltas = String::new();
        for (x, y) in fa.iter().zip(fb.iter()) {
            let d = *y as i128 - *x as i128;
            if d != 0 {
                differing += 1;
            }
            deltas.push_str(&format!(" {d:+}"));
        }
        println!("  {:<18}{deltas}", row_name(i));
    }
    let total = 4 * (STAGE_COUNT + 1);
    println!("diff: {differing} of {total} stage figures differ");
    differing
}

fn load(path: &str) -> Trace {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read `{path}`: {e}");
            std::process::exit(2);
        }
    };
    match parse(&bytes) {
        Some(t) => t,
        None => {
            eprintln!("error: `{path}` is neither a SHRTRC01 binary nor an exporter JSON trace");
            std::process::exit(2);
        }
    }
}

const USAGE: &str = "usage: shrimp_trace <trace> [--diff <other>] [--top <n>]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut diff_path: Option<String> = None;
    let mut top = 5usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--diff" | "--top" => {
                let Some(v) = it.next() else {
                    eprintln!("error: {a} requires a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                if a == "--diff" {
                    diff_path = Some(v.clone());
                } else {
                    match v.parse() {
                        Ok(n) => top = n,
                        Err(_) => {
                            eprintln!("error: --top needs an integer\n{USAGE}");
                            return ExitCode::from(2);
                        }
                    }
                }
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => {
                eprintln!("error: unexpected argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    let trace = load(&path);
    println!(
        "trace: {path} — {} nodes, {} spans retained ({} recorded, {} ring-dropped)",
        trace.nodes,
        trace.spans.len(),
        trace.recorded,
        trace.ring_dropped
    );
    if let Some(other) = diff_path {
        let b = load(&other);
        println!("  vs: {other} — {} nodes, {} spans retained", b.nodes, b.spans.len());
        let differing = print_diff(&trace, &b);
        return if differing == 0 { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    print_stage_table(&stage_histograms(&trace));
    print_node_breakdown(&trace);
    print_link_breakdown(&trace);
    print_slowest(&trace, top);
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-encodes a two-node SHRTRC01 trace with `stamps` as each
    /// span's six stage-boundary timestamps.
    fn encode(stamps: &[[u64; 6]]) -> Vec<u8> {
        let mut b = Vec::new();
        b.extend_from_slice(TRACE_BIN_MAGIC);
        b.extend_from_slice(&2u16.to_le_bytes());
        b.extend_from_slice(&0u16.to_le_bytes());
        b.extend_from_slice(&(stamps.len() as u32).to_le_bytes());
        b.extend_from_slice(&(stamps.len() as u64).to_le_bytes());
        b.extend_from_slice(&0u64.to_le_bytes());
        for _ in 0..STAGE_COUNT * 4 {
            b.extend_from_slice(&0u64.to_le_bytes());
        }
        for (seq, ts) in stamps.iter().enumerate() {
            b.extend_from_slice(&(seq as u64).to_le_bytes()); // id: node 0, seq
            b.extend_from_slice(&0u16.to_le_bytes()); // src
            b.extend_from_slice(&1u16.to_le_bytes()); // dst
            b.extend_from_slice(&4096u32.to_le_bytes());
            for t in ts {
                b.extend_from_slice(&t.to_le_bytes());
            }
        }
        b
    }

    const STAMPS: [[u64; 6]; 3] = [
        [0, 100, 300, 1300, 1500, 1600],
        [1000, 1100, 1400, 2400, 2600, 2700],
        [2000, 2050, 2500, 3900, 4100, 4200],
    ];

    #[test]
    fn binary_parse_recovers_stage_durations() {
        let t = parse(&encode(&STAMPS)).expect("valid trace");
        assert_eq!(t.nodes, 2);
        assert_eq!(t.recorded, 3);
        assert_eq!(t.ring_dropped, 0);
        assert_eq!(t.spans.len(), 3);
        assert_eq!(t.spans[0].stage_ns, [100, 200, 1000, 200, 100]);
        assert_eq!(t.spans[2].stage_ns, [50, 450, 1400, 200, 100]);
        assert_eq!(t.spans[0].total_ns(), 1600);
        assert_eq!(t.spans[0].dominant(), Stage::Wire);
        assert_eq!(t.spans[0].src, 0);
        assert_eq!(t.spans[0].dst, 1);
    }

    #[test]
    fn truncated_or_bad_magic_is_rejected() {
        let good = encode(&STAMPS);
        assert!(parse(&good[..good.len() - 1]).is_none(), "truncated record");
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(parse(&bad).is_none(), "wrong magic");
    }

    #[test]
    fn json_parse_matches_binary_parse() {
        let bin = encode(&STAMPS);
        let json = shrimp::trace_bin_to_json(&bin).expect("round-trip");
        let (a, b) = (parse(&bin).unwrap(), parse(json.as_bytes()).unwrap());
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.recorded, b.recorded);
        assert_eq!(a.spans.len(), b.spans.len());
        for (x, y) in a.spans.iter().zip(b.spans.iter()) {
            assert_eq!(x.id, y.id);
            assert_eq!((x.src, x.dst, x.bytes), (y.src, y.dst, y.bytes));
            assert_eq!(x.stage_ns, y.stage_ns, "durations survive the µs round-trip");
        }
    }

    #[test]
    fn stage_histograms_report_percentiles() {
        let t = parse(&encode(&STAMPS)).unwrap();
        let hists = stage_histograms(&t);
        let wire = &hists[Stage::Wire.index()];
        assert_eq!(wire.count(), 3);
        assert_eq!(wire.max(), Some(1400));
        assert!(wire.quantile(0.50).unwrap() >= 1000);
        let end_to_end = &hists[STAGE_COUNT];
        assert_eq!(end_to_end.count(), 3);
        assert_eq!(end_to_end.max(), Some(2200));
    }

    #[test]
    fn identical_traces_diff_to_zero() {
        let (a, b) = (parse(&encode(&STAMPS)).unwrap(), parse(&encode(&STAMPS)).unwrap());
        assert_eq!(print_diff(&a, &b), 0);
        // A genuinely different trace must not diff to zero.
        let mut other = STAMPS;
        other[0][3] += 5000;
        let c = parse(&encode(&other)).unwrap();
        assert_ne!(print_diff(&a, &c), 0);
    }
}
