//! Extension experiment: **one-way latency breakdown** for deliberate
//! update — the companion to Figure 8's bandwidth curve.
//!
//! Run: `cargo run --release -p shrimp-bench --bin latency`

use shrimp_bench::latency;
use shrimp_bench::table::{fmt_bytes, print_table};

fn main() {
    let points = latency::sweep(&latency::DEFAULT_SIZES);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                fmt_bytes(p.bytes),
                format!("{:.2}", p.end_to_end.as_micros_f64()),
                format!("{:.2}", p.initiation.as_micros_f64()),
                format!("{:.2}", p.sender_dma.as_micros_f64()),
                format!("{:.2}", p.packetize.as_micros_f64()),
                format!("{:.2}", p.fabric.as_micros_f64()),
                format!("{:.2}", p.receive_dma.as_micros_f64()),
            ]
        })
        .collect();
    print_table(
        "X-lat — one-way latency and component breakdown (us)",
        &["size", "end-to-end", "init+lib", "send DMA", "packetize", "fabric", "recv DMA"],
        &rows,
    );
    println!("\n[software initiation is a fixed ~11us of which 2.8us is the two-reference");
    println!(" sequence; everything else already overlaps or scales with the payload]");
}
