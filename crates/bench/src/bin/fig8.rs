//! Regenerates **Figure 8**: bandwidth of deliberate-update UDMA transfers
//! as a percentage of the maximum measured bandwidth, vs message size.
//!
//! Run: `cargo run --release -p shrimp-bench --bin fig8`

use shrimp_bench::fig8;
use shrimp_bench::table::{fmt_bytes, print_table};
use shrimp_machine::UdmaMode;

fn main() {
    // The paper's x-axis: 0–8 KB. 64-byte steps give a smooth curve.
    let curve = fig8::sweep(64, 8192, 4);

    let rows: Vec<Vec<String>> = curve
        .points
        .iter()
        .map(|p| {
            let bar = "#".repeat((p.pct_of_peak * 50.0).round() as usize);
            vec![
                fmt_bytes(p.bytes),
                format!("{:.2}", p.mb_per_s),
                format!("{:.1}%", p.pct_of_peak * 100.0),
                bar,
            ]
        })
        .collect();
    print_table(
        "Figure 8 — deliberate update bandwidth vs message size",
        &["size", "MB/s", "% of max", ""],
        &rows,
    );
    println!("\nmaximum measured bandwidth: {:.2} MB/s", curve.peak_mb_per_s);

    println!("\nPaper checkpoints (§8):");
    let p512 = curve.at(512);
    println!(
        "  512B  => {:>5.1}% of max   (paper: exceeds 50%)          {}",
        p512.pct_of_peak * 100.0,
        if p512.pct_of_peak > 0.5 { "OK" } else { "MISS" }
    );
    let p4k = curve.at(4096);
    println!(
        "  4KB   => {:>5.1}% of max   (paper: 94%)                  {}",
        p4k.pct_of_peak * 100.0,
        if (0.88..=1.0).contains(&p4k.pct_of_peak) { "OK" } else { "MISS" }
    );
    let dip = curve.at(4096 + 256);
    println!(
        "  4.25K => {:>5.1}% of max   (paper: slight dip after 4KB) {}",
        dip.pct_of_peak * 100.0,
        if dip.pct_of_peak < p4k.pct_of_peak { "OK" } else { "MISS" }
    );
    let p8k = curve.at(8192);
    println!(
        "  8KB   => {:>5.1}% of max   (paper: max sustained >8KB)   {}",
        p8k.pct_of_peak * 100.0,
        if p8k.pct_of_peak > 0.93 { "OK" } else { "MISS" }
    );

    // What-if: the §7 queueing hardware (the real board has none).
    let queued = fig8::sweep_with_mode(512, 8192, 4, UdmaMode::Queued(16));
    println!("\nWith the §7 hardware queue (what-if, depth 16):");
    for bytes in [4096u64, 4608, 8192] {
        let b = curve.at(bytes);
        let q = queued.at(bytes);
        println!(
            "  {:>5}: basic {:>5.2} MB/s   queued {:>5.2} MB/s",
            fmt_bytes(bytes),
            b.mb_per_s,
            q.mb_per_s
        );
    }
    println!("  (the post-4KB dip comes from the serialized second initiation;");
    println!("   the queue accepts both pages' references immediately)");
}
