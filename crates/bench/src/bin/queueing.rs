//! Regenerates the **§7 queueing ablation**: basic single-transfer UDMA vs
//! the hardware-queued extension vs traditional kernel DMA, for multi-page
//! transfers.
//!
//! Run: `cargo run --release -p shrimp-bench --bin queueing`

use shrimp_bench::queueing;
use shrimp_bench::table::{fmt_bytes, print_table};

fn main() {
    const DEPTH: usize = 32;
    let points = queueing::sweep(&queueing::DEFAULT_SIZES, DEPTH);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                fmt_bytes(p.bytes),
                format!("{:.1}", p.basic.as_micros_f64()),
                format!("{:.1}", p.queued.as_micros_f64()),
                format!("{:.1}", p.kernel.as_micros_f64()),
                p.basic_retries.to_string(),
                p.queued_retries.to_string(),
                format!("{:.2}x", p.basic.as_micros_f64() / p.queued.as_micros_f64()),
            ]
        })
        .collect();
    print_table(
        &format!("A-queue — multi-page transfer time (queue depth {DEPTH})"),
        &["size", "basic(us)", "queued(us)", "kernel(us)", "b-retry", "q-retry", "q speedup"],
        &rows,
    );
    println!("\n[paper §7: queueing gives multi-page transfers at two instructions per page;");
    println!(" a request is refused only when the queue is full]");
}
