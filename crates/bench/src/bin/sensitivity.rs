//! Extension experiment: **parameter sensitivity** of the fine-grain DMA
//! result — where the half-peak message size lands as the platform
//! changes.
//!
//! Run: `cargo run --release -p shrimp-bench --bin sensitivity`

use shrimp_bench::sensitivity;
use shrimp_bench::table::{fmt_bytes, print_table};

fn main() {
    let (bus, proxy) = sensitivity::sweep();

    let rows: Vec<Vec<String>> = bus
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.bus_mb_per_s),
                format!("{:.1}", p.peak_mb_per_s),
                fmt_bytes(p.half_peak_bytes),
                format!("{:.1}%", p.at_4k * 100.0),
            ]
        })
        .collect();
    print_table(
        "X-sens (1) — bus bandwidth sweep (proxy ref fixed at 1.1us)",
        &["bus MB/s", "peak MB/s", "half-peak size", "4KB % of peak"],
        &rows,
    );

    let rows: Vec<Vec<String>> = proxy
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.proxy_ref.as_micros_f64()),
                format!("{:.1}", p.peak_mb_per_s),
                fmt_bytes(p.half_peak_bytes),
                format!("{:.1}%", p.at_4k * 100.0),
            ]
        })
        .collect();
    print_table(
        "X-sens (2) — proxy reference cost sweep (bus fixed at 33 MB/s)",
        &["proxy ref (us)", "peak MB/s", "half-peak size", "4KB % of peak"],
        &rows,
    );

    println!("\n[the half-peak point tracks overhead x bandwidth: faster channels need even");
    println!(" cheaper initiation — the path from UDMA to doorbell-based RDMA initiation]");
}
