//! Extension experiment: **automatic update vs deliberate update** — the
//! two SHRIMP transfer strategies (§9, \[5\]).
//!
//! Run: `cargo run --release -p shrimp-bench --bin auto_update`

use shrimp_bench::auto_update;
use shrimp_bench::table::{fmt_bytes, print_table};

fn main() {
    let r = auto_update::sweep(&auto_update::DEFAULT_SIZES);
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            let winner = if p.auto < p.deliberate { "auto" } else { "deliberate" };
            vec![
                fmt_bytes(p.bytes),
                format!("{:.2}", p.auto.as_micros_f64()),
                format!("{:.2}", p.auto_cpu.as_micros_f64()),
                format!("{:.2}", p.deliberate.as_micros_f64()),
                winner.to_string(),
            ]
        })
        .collect();
    print_table(
        "X-auto — automatic update (snooped stores) vs deliberate update (UDMA send)",
        &["update", "auto e2e(us)", "auto cpu(us)", "deliberate e2e(us)", "winner"],
        &rows,
    );
    match r.crossover_bytes {
        Some(b) => println!("\ncrossover: deliberate update wins from {} bytes", b),
        None => println!("\nno crossover in sweep"),
    }
    println!("[§9/[5]: the design retains automatic update alongside UDMA's deliberate update;");
    println!(" fine-grained shared-memory-style updates are free, bulk messages use DMA]");
}
