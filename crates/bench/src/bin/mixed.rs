//! Extension experiment: **message-size mixes** — the fine-grained traffic
//! the paper's introduction motivates, across all three send mechanisms.
//!
//! Run: `cargo run --release -p shrimp-bench --bin mixed`

use shrimp_bench::table::print_table;
use shrimp_bench::workloads::{run_cell, Mechanism, DISTS};

fn main() {
    const MESSAGES: u32 = 64;
    const SEED: u64 = 2026;

    let mut rows = Vec::new();
    for dist in DISTS {
        let udma = run_cell(dist, Mechanism::Udma, MESSAGES, SEED);
        let kernel = run_cell(dist, Mechanism::KernelDma, MESSAGES, SEED);
        let pio = run_cell(dist, Mechanism::Pio, MESSAGES, SEED);
        rows.push(vec![
            dist.label(),
            format!("{}", udma.bytes / u64::from(MESSAGES)),
            format!("{:.2}", udma.mb_per_s),
            format!("{:.2}", kernel.mb_per_s),
            format!("{:.2}", pio.mb_per_s),
            format!("{:.2}x", udma.mb_per_s / kernel.mb_per_s),
        ]);
    }
    print_table(
        "X-mix — goodput by message-size distribution (same draws per row)",
        &["distribution", "mean size", "UDMA MB/s", "kernel MB/s", "PIO MB/s", "UDMA vs kernel"],
        &rows,
    );
    println!("\n[§1: overhead dominates fine-grained transfers — UDMA's advantage is largest");
    println!(" exactly where traditional DMA is weakest, without PIO's bandwidth ceiling]");
}
