//! Extension experiment: **multicomputer scaling** — aggregate bandwidth
//! under permutation vs fan-in traffic as the node count grows.
//!
//! Run: `cargo run --release -p shrimp-bench --bin scaling`

use shrimp_bench::scaling::{measure, Pattern};
use shrimp_bench::table::print_table;

fn main() {
    const ROUNDS: u32 = 8;
    let mut rows = Vec::new();
    for n in [2u16, 4, 8, 16] {
        let perm = measure(n, Pattern::Permutation, ROUNDS);
        let fan = measure(n, Pattern::FanIn, ROUNDS);
        rows.push(vec![
            n.to_string(),
            format!("{:.1}", perm.aggregate_mb_per_s),
            format!("{:.1}", fan.aggregate_mb_per_s),
            format!("{:.1}x", perm.aggregate_mb_per_s / fan.aggregate_mb_per_s),
        ]);
    }
    print_table(
        "X-scale — aggregate delivered bandwidth (MB/s), page-sized messages",
        &["nodes", "permutation", "fan-in (all->0)", "ratio"],
        &rows,
    );
    println!("\n[permutation scales with private destination links; fan-in serializes on");
    println!(" the receiver's inbound link + EISA bus — deliberate update is receiver-passive");
    println!(" but not receiver-free]");
}
