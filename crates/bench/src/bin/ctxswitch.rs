//! Regenerates the **§6 I1 ablation**: context-switch Invals split
//! two-instruction initiation sequences; user code retries; no data is
//! lost, at a measurable throughput cost under harsh schedules.
//!
//! Run: `cargo run --release -p shrimp-bench --bin ctxswitch`

use shrimp_bench::ctxswitch;
use shrimp_bench::table::print_table;

fn main() {
    let points = ctxswitch::sweep_mixed(&[2, 3, 4, 8, 16, 64], 2, 1, 64, 2048);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.quantum.to_string(),
                p.context_switches.to_string(),
                p.inval_retries.to_string(),
                p.busy_retries.to_string(),
                p.messages.to_string(),
                format!("{:.0}", p.elapsed_us),
                format!("{:.2}", p.mb_per_s),
            ]
        })
        .collect();
    print_table(
        "A-ctx — two senders + one compute process, round-robin at varying quanta",
        &[
            "quantum(ops)",
            "switches",
            "i1-retries",
            "busy-retries",
            "messages",
            "elapsed(us)",
            "MB/s",
        ],
        &rows,
    );
    println!("\n[paper §6 I1: the kernel Invals on every switch with one STORE; interrupted");
    println!(" processes observe a failed initiation and re-try — no loss of protection or data]");
}
