//! Regenerates the **initiation-cost comparison** (§8's 2.8 µs figure vs
//! §2's "hundreds, possibly thousands of CPU instructions").
//!
//! Run: `cargo run --release -p shrimp-bench --bin t2_init_cost`

use shrimp_bench::init_cost;
use shrimp_bench::table::print_table;

fn main() {
    let m = init_cost::measure(&[1, 2, 4, 8, 16]);

    println!("\nUDMA initiation (two user-level references + alignment check):");
    println!(
        "  {:.2} us  (~{} instructions at 60 MHz)   [paper §8: ~2.8 us]",
        m.udma.as_micros_f64(),
        m.udma_instructions
    );

    let rows: Vec<Vec<String>> = m
        .kernel
        .iter()
        .zip(&m.kernel_instructions)
        .map(|(&(pages, d), &(_, instr))| {
            vec![
                pages.to_string(),
                format!("{:.1}", d.as_micros_f64()),
                instr.to_string(),
                format!("{:.0}x", d.as_micros_f64() / m.udma.as_micros_f64()),
            ]
        })
        .collect();
    print_table(
        "T2 — traditional kernel DMA overhead (syscall + pin + descriptor + interrupt + unpin)",
        &["pages", "overhead(us)", "~instructions", "vs UDMA"],
        &rows,
    );
    println!("\n[paper §2: \"hundreds, possibly thousands of CPU instructions\"]");
}
