//! Regenerates the **§9 UDMA vs memory-mapped-FIFO (PIO) comparison**:
//! PIO wins latency for short messages, DMA wins bandwidth for long ones.
//!
//! Run: `cargo run --release -p shrimp-bench --bin crossover_pio`

use shrimp_bench::crossover;
use shrimp_bench::table::{fmt_bytes, print_table};

fn main() {
    let r = crossover::sweep(&crossover::DEFAULT_SIZES);
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            let winner = if p.pio < p.udma { "PIO" } else { "UDMA" };
            vec![
                fmt_bytes(p.bytes),
                format!("{:.2}", p.udma.as_micros_f64()),
                format!("{:.2}", p.pio.as_micros_f64()),
                format!("{:.2}", p.bytes as f64 / p.udma.as_micros_f64()),
                format!("{:.2}", p.bytes as f64 / p.pio.as_micros_f64()),
                winner.to_string(),
            ]
        })
        .collect();
    print_table(
        "F-crossover — UDMA vs memory-mapped FIFO (programmed I/O)",
        &["size", "udma(us)", "pio(us)", "udma MB/s", "pio MB/s", "winner"],
        &rows,
    );
    match r.crossover_bytes {
        Some(b) => println!("\ncrossover: UDMA overtakes PIO at {} bytes", b),
        None => println!("\nno crossover found in sweep"),
    }
    println!("[paper §9: FIFO \"good latency for short messages\"; DMA wins for long ones]");
}
