//! §8 / §2 initiation-cost comparison: the UDMA two-instruction sequence
//! (~2.8 µs, two user-level references) against the traditional kernel DMA
//! setup path ("hundreds, possibly thousands of CPU instructions").
//!
//! Both are measured on the same simulated node; the traditional path's
//! data-movement time is subtracted out so the table isolates *overhead*.

use shrimp_devices::StreamSink;
use shrimp_machine::MachineConfig;
use shrimp_mem::{VirtAddr, DEV_PROXY_BASE, PAGE_SIZE};
use shrimp_os::{DmaStrategy, Node, NodeConfig};
use shrimp_sim::SimDuration;

/// Initiation-cost measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct InitCost {
    /// Steady-state UDMA initiation (two proxy refs + alignment check).
    pub udma: SimDuration,
    /// Equivalent instruction count at the node's clock rate.
    pub udma_instructions: u64,
    /// Traditional kernel DMA overhead for an `n`-page transfer, per entry
    /// `(pages, overhead)`.
    pub kernel: Vec<(u64, SimDuration)>,
    /// Equivalent instruction counts for each kernel entry.
    pub kernel_instructions: Vec<(u64, u64)>,
}

fn to_instructions(d: SimDuration, mhz: f64) -> u64 {
    (d.as_micros_f64() * mhz).round() as u64
}

/// Runs the comparison for the given traditional-DMA page counts.
pub fn measure(page_counts: &[u64]) -> InitCost {
    let config = NodeConfig {
        machine: MachineConfig { mem_bytes: 1024 * PAGE_SIZE, ..MachineConfig::default() },
        user_frames: None,
    };
    let mut node = Node::new(config, StreamSink::new("sink"));
    let mhz = node.machine().cost().cpu_mhz;
    let pid = node.spawn();
    let max_pages = page_counts.iter().copied().max().unwrap_or(1);
    node.mmap(pid, 0x10_0000, max_pages + 1, true).expect("map buffer");
    node.grant_device_proxy(pid, 0, max_pages + 1, true).expect("grant device");
    node.write_user(pid, VirtAddr::new(0x10_0000), &vec![1u8; (max_pages * PAGE_SIZE) as usize])
        .expect("fill");

    // --- UDMA: measure the steady-state two-instruction sequence + check.
    // Warm mappings with a full send, then time STORE+LOAD directly.
    node.udma_send(pid, VirtAddr::new(0x10_0000), 0, 0, 64).expect("warm");
    let vdev = VirtAddr::new(DEV_PROXY_BASE);
    let vproxy = node
        .machine()
        .layout()
        .proxy_of_virt(VirtAddr::new(0x10_0000))
        .expect("user buffer is in memory region");
    // The §8 figure includes the user-level alignment check.
    let check = node.machine().cost().udma_user_check;
    let t0 = node.machine().now();
    node.machine_mut().advance(check);
    let status = node.udma_initiate(pid, vdev, vproxy, 64).expect("initiate");
    assert!(status.started(), "initiation must succeed: {status}");
    let udma = node.machine().now() - t0;
    // Drain before the kernel measurements.
    let drained = node.machine().udma_drained_at();
    node.machine_mut().advance_to(drained);

    // --- Traditional DMA: overhead = elapsed - pure data time.
    let mut kernel = Vec::new();
    for &pages in page_counts {
        let bytes = pages * PAGE_SIZE;
        // Warm residency so we measure the syscall path, not paging.
        node.sys_dma_to_device(pid, VirtAddr::new(0x10_0000), 0, bytes, DmaStrategy::PinPages)
            .expect("warm");
        let r = node
            .sys_dma_to_device(pid, VirtAddr::new(0x10_0000), 0, bytes, DmaStrategy::PinPages)
            .expect("measured");
        let data_time =
            node.machine().cost().bus_transfer(bytes) + node.machine().cost().dma_start * pages;
        kernel.push((pages, r.elapsed.saturating_sub(data_time)));
    }

    InitCost {
        udma,
        udma_instructions: to_instructions(udma, mhz),
        kernel_instructions: kernel.iter().map(|&(p, d)| (p, to_instructions(d, mhz))).collect(),
        kernel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udma_initiation_is_about_2_8_us() {
        let m = measure(&[1]);
        let us = m.udma.as_micros_f64();
        assert!((2.6..3.1).contains(&us), "initiation = {us:.2}us (paper: ~2.8us)");
    }

    #[test]
    fn kernel_path_is_hundreds_of_instructions_minimum() {
        let m = measure(&[1, 4]);
        // "hundreds, possibly thousands of CPU instructions" [2].
        let (_, one_page) = m.kernel_instructions[0];
        assert!(one_page > 500, "1-page kernel overhead = {one_page} instructions");
        // And it grows with page count (per-page pin/unpin).
        assert!(m.kernel[1].1 > m.kernel[0].1);
    }

    #[test]
    fn udma_is_at_least_an_order_of_magnitude_cheaper() {
        let m = measure(&[1]);
        let ratio = m.kernel[0].1.as_micros_f64() / m.udma.as_micros_f64();
        assert!(ratio > 8.0, "kernel/udma overhead ratio = {ratio:.1}");
    }
}
