//! §6 I1 ablation: the context-switch Inval and user-level retry.
//!
//! Two processes stream UDMA transfers through one shared device while a
//! round-robin scheduler interleaves them at varying quanta. Every switch
//! fires the I1 Inval store; a process whose (STORE, LOAD) pair was split
//! by a switch observes a failed initiation and retries — "the user
//! process can deduce what happened and re-try its operation".

use std::cell::Cell;
use std::rc::Rc;

use shrimp_devices::StreamSink;
use shrimp_machine::MachineConfig;
use shrimp_mem::{VirtAddr, DEV_PROXY_BASE, PAGE_SIZE};
use shrimp_os::{Driver, Node, NodeConfig, Pid, Progress, Trap, Workload};
use udma_core::UdmaStatus;

/// Result of one scheduling-quantum run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CtxPoint {
    /// Operations per scheduling quantum (1 = switch after every memory
    /// reference — the harshest schedule).
    pub quantum: usize,
    /// Context switches the kernel performed.
    pub context_switches: u64,
    /// Sequences split by a context-switch Inval (LOAD saw INVALID).
    pub inval_retries: u64,
    /// Sequences refused because the device was mid-transfer.
    pub busy_retries: u64,
    /// Messages delivered (all of them — retries never lose data).
    pub messages: u64,
    /// Total simulated time, µs.
    pub elapsed_us: f64,
    /// Aggregate goodput, MB/s.
    pub mb_per_s: f64,
}

/// A process streaming `messages` transfers of `nbytes`, one memory
/// reference per driver step.
struct Sender {
    pid: Pid,
    vdev: VirtAddr,
    vproxy: VirtAddr,
    nbytes: u64,
    remaining: u64,
    loaded: bool,
    inval_retries: Rc<Cell<u64>>,
    busy_retries: Rc<Cell<u64>>,
    sent: Rc<Cell<u64>>,
}

impl Workload<StreamSink> for Sender {
    fn step(&mut self, node: &mut Node<StreamSink>) -> Result<Progress, Trap> {
        if !self.loaded {
            // First half of the initiation sequence.
            node.user_store(self.pid, self.vdev, self.nbytes as i64)?;
            self.loaded = true;
            return Ok(Progress::Ready);
        }
        // Second half: the initiating LOAD.
        self.loaded = false;
        let status = UdmaStatus::unpack(node.user_load(self.pid, self.vproxy)?);
        if status.started() {
            self.sent.set(self.sent.get() + 1);
            self.remaining -= 1;
            return Ok(if self.remaining == 0 { Progress::Done } else { Progress::Ready });
        }
        if status.should_retry() {
            // Redo the whole two-instruction sequence. INVALID means a
            // context-switch Inval consumed the latched destination (I1);
            // TRANSFERRING means the shared device was simply busy — let
            // it drain so retries terminate.
            if status.transferring {
                self.busy_retries.set(self.busy_retries.get() + 1);
                let drained = node.machine().udma_drained_at();
                node.machine_mut().advance_to(drained);
            } else {
                self.inval_retries.set(self.inval_retries.get() + 1);
            }
            return Ok(Progress::Ready);
        }
        Err(Trap::DeviceError { code: status.device_error })
    }
}

/// A compute-only process: touches its own memory every step, causing
/// context switches without competing for the UDMA device (the classic
/// "interactive process" in a multiprogrammed mix). Finishes once every
/// sender is done.
struct Toucher {
    pid: Pid,
    va: VirtAddr,
    sent: Rc<Cell<u64>>,
    target: u64,
}

impl Workload<StreamSink> for Toucher {
    fn step(&mut self, node: &mut Node<StreamSink>) -> Result<Progress, Trap> {
        node.user_store(self.pid, self.va, 1)?;
        Ok(if self.sent.get() >= self.target { Progress::Done } else { Progress::Ready })
    }
}

/// Runs `senders` competing processes, each sending `messages` transfers of
/// `nbytes`, plus `touchers` compute-only processes, at each scheduling
/// quantum.
pub fn sweep_mixed(
    quanta: &[usize],
    senders: u32,
    touchers: u32,
    messages: u64,
    nbytes: u64,
) -> Vec<CtxPoint> {
    sweep_inner(quanta, senders, touchers, messages, nbytes)
}

/// [`sweep_mixed`] with no compute-only processes.
pub fn sweep(quanta: &[usize], senders: u32, messages: u64, nbytes: u64) -> Vec<CtxPoint> {
    sweep_inner(quanta, senders, 0, messages, nbytes)
}

fn sweep_inner(
    quanta: &[usize],
    senders: u32,
    touchers: u32,
    messages: u64,
    nbytes: u64,
) -> Vec<CtxPoint> {
    let mut out = Vec::new();
    for &quantum in quanta {
        let config = NodeConfig {
            machine: MachineConfig { mem_bytes: 512 * PAGE_SIZE, ..MachineConfig::default() },
            user_frames: None,
        };
        let mut node = Node::new(config, StreamSink::new("sink"));
        let inval_retries = Rc::new(Cell::new(0));
        let busy_retries = Rc::new(Cell::new(0));
        let sent = Rc::new(Cell::new(0));
        let mut driver = Driver::new(quantum);
        for s in 0..senders {
            let pid = node.spawn();
            let va = 0x10_0000 + u64::from(s) * PAGE_SIZE;
            node.mmap(pid, va, 1, true).expect("map");
            node.grant_device_proxy(pid, u64::from(s), 1, true).expect("grant");
            node.write_user(pid, VirtAddr::new(va), &vec![1u8; nbytes as usize]).expect("fill");
            let vproxy = node
                .machine()
                .layout()
                .proxy_of_virt(VirtAddr::new(va))
                .expect("buffer in memory region");
            // Fault in the proxy mappings once so steps are pure references.
            let _ = node.user_load(pid, vproxy).expect("warm proxy");
            node.user_store(pid, vproxy, nbytes as i64).expect("warm dirty/writable");
            node.machine_mut().kernel_inval_udma();
            driver.add(Sender {
                pid,
                vdev: VirtAddr::new(DEV_PROXY_BASE + u64::from(s) * PAGE_SIZE),
                vproxy,
                nbytes,
                remaining: messages,
                loaded: false,
                inval_retries: Rc::clone(&inval_retries),
                busy_retries: Rc::clone(&busy_retries),
                sent: Rc::clone(&sent),
            });
        }
        for t in 0..touchers {
            let pid = node.spawn();
            let va = 0x80_0000 + u64::from(t) * PAGE_SIZE;
            node.mmap(pid, va, 1, true).expect("map toucher");
            node.user_store(pid, VirtAddr::new(va), 0).expect("warm toucher");
            driver.add(Toucher {
                pid,
                va: VirtAddr::new(va),
                sent: Rc::clone(&sent),
                target: u64::from(senders) * messages,
            });
        }
        let t0 = node.machine().now();
        driver.run(&mut node).expect("run senders");
        let drained = node.machine().udma_drained_at();
        node.machine_mut().advance_to(drained);
        let elapsed = node.machine().now() - t0;
        let total_msgs = sent.get();
        out.push(CtxPoint {
            quantum,
            context_switches: node.stats().get("context_switches"),
            inval_retries: inval_retries.get(),
            busy_retries: busy_retries.get(),
            messages: total_msgs,
            elapsed_us: elapsed.as_micros_f64(),
            mb_per_s: (total_msgs * nbytes) as f64 / elapsed.as_micros_f64(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_os::Driver;

    #[test]
    fn all_messages_survive_every_quantum() {
        for p in sweep(&[2, 3, 4, 16], 2, 8, 1024) {
            assert_eq!(p.messages, 16, "quantum {}: messages lost", p.quantum);
        }
    }

    #[test]
    fn harsher_schedules_force_more_switches_and_retries() {
        let points = sweep(&[3, 16], 2, 8, 1024);
        assert!(points[0].context_switches > points[1].context_switches);
        // Contention retries (busy device) occur at every quantum.
        assert!(points[0].busy_retries + points[0].inval_retries > 0);
        assert!(points[1].busy_retries + points[1].inval_retries > 0);
    }

    #[test]
    fn odd_quanta_split_initiation_sequences() {
        // One sender + one compute process: an odd quantum leaves a
        // trailing STORE at the end of each sender slice; the compute
        // process's switch Invals it and the sender's next LOAD observes
        // INVALID — a pure I1 retry (tiny transfers keep the device idle
        // across slices, so contention can't mask the effect). An even
        // quantum keeps every (STORE, LOAD) pair inside one slice.
        let odd = sweep_mixed(&[3], 1, 1, 8, 8);
        let even = sweep_mixed(&[2], 1, 1, 8, 8);
        assert!(odd[0].inval_retries > 0, "odd quantum: {:?}", odd[0]);
        assert!(
            even[0].inval_retries < odd[0].inval_retries,
            "even {:?} vs odd {:?}",
            even[0],
            odd[0]
        );
    }

    #[test]
    fn quantum_one_livelocks_by_construction() {
        // Switching after EVERY reference puts an Inval between each
        // process's STORE and LOAD: no initiation can ever complete. The
        // paper's schedule (switches are rare relative to two
        // instructions) avoids this by many orders of magnitude; the
        // bounded driver lets us observe the pathology safely.
        let mut node = shrimp_os::Node::new(
            shrimp_os::NodeConfig::default(),
            shrimp_devices::StreamSink::new("sink"),
        );
        let retries = Rc::new(Cell::new(0));
        let sent = Rc::new(Cell::new(0));
        let mut driver = Driver::new(1);
        for s in 0..2u64 {
            let pid = node.spawn();
            let va = 0x10_0000 + s * PAGE_SIZE;
            node.mmap(pid, va, 1, true).unwrap();
            node.grant_device_proxy(pid, s, 1, true).unwrap();
            let vproxy = node.machine().layout().proxy_of_virt(VirtAddr::new(va)).unwrap();
            node.user_store(pid, vproxy, 64).unwrap();
            node.machine_mut().kernel_inval_udma();
            driver.add(Sender {
                pid,
                vdev: VirtAddr::new(DEV_PROXY_BASE + s * PAGE_SIZE),
                vproxy,
                nbytes: 64,
                remaining: 1,
                loaded: false,
                inval_retries: Rc::clone(&retries),
                busy_retries: Rc::clone(&retries),
                sent: Rc::clone(&sent),
            });
        }
        let outcome = driver.run_bounded(&mut node, 2_000).unwrap();
        assert_eq!(outcome, None, "quantum 1 must never finish");
        assert_eq!(sent.get(), 0, "no initiation can complete");
        assert!(retries.get() > 100, "continuous I1 retries");
    }

    #[test]
    fn throughput_improves_with_longer_quanta() {
        let points = sweep(&[2, 16], 2, 8, 2048);
        assert!(
            points[1].mb_per_s >= points[0].mb_per_s,
            "q=16 {:.2} MB/s !>= q=2 {:.2} MB/s",
            points[1].mb_per_s,
            points[0].mb_per_s
        );
    }
}
