//! Figure 8: bandwidth of deliberate-update UDMA transfers as a percentage
//! of the maximum measured bandwidth, versus message size (0–8 KB).
//!
//! Setup mirrors §8: one sender streams messages of a given size to one
//! receiver over the SHRIMP NIC; the SHRIMP board's UDMA device has no
//! multi-page queue, so multi-page messages pay one two-instruction
//! initiation per page. Bandwidth is steady-state sender-side throughput.

use shrimp::Multicomputer;
use shrimp_machine::{MachineConfig, UdmaMode};
use shrimp_mem::{VirtAddr, PAGE_SIZE};

/// One point of the Figure 8 curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig8Point {
    /// Message size in bytes.
    pub bytes: u64,
    /// Steady-state bandwidth in MB/s.
    pub mb_per_s: f64,
    /// Bandwidth as a fraction of the sweep's maximum (0..=1).
    pub pct_of_peak: f64,
}

/// The full sweep result.
#[derive(Clone, Debug, Default)]
pub struct Fig8Curve {
    /// Curve points in ascending message size.
    pub points: Vec<Fig8Point>,
    /// Maximum measured bandwidth in MB/s (the normalizer).
    pub peak_mb_per_s: f64,
}

impl Fig8Curve {
    /// The point nearest to `bytes`.
    pub fn at(&self, bytes: u64) -> Fig8Point {
        *self.points.iter().min_by_key(|p| p.bytes.abs_diff(bytes)).expect("curve is non-empty")
    }

    /// The smallest message size achieving at least `frac` of peak.
    pub fn first_size_reaching(&self, frac: f64) -> Option<u64> {
        self.points.iter().find(|p| p.pct_of_peak >= frac).map(|p| p.bytes)
    }
}

/// Measures steady-state bandwidth for one message size (MB/s).
pub fn stream_bandwidth(mc: &mut Multicomputer, msg_bytes: u64, messages: u32) -> f64 {
    let sender = mc.spawn_process(0);
    let receiver = mc.spawn_process(1);
    let pages = msg_bytes.div_ceil(PAGE_SIZE).max(1) + 1;
    mc.map_user_buffer(0, sender, 0x10_0000, pages).expect("map sender buffer");
    mc.map_user_buffer(1, receiver, 0x40_0000, pages).expect("map receiver buffer");
    let dev_page = mc
        .export(1, receiver, VirtAddr::new(0x40_0000), pages, 0, sender)
        .expect("export receive buffer");
    let payload = vec![0xabu8; msg_bytes as usize];
    mc.write_user(0, sender, VirtAddr::new(0x10_0000), &payload).expect("fill buffer");

    // Warm: mappings, proxy PTEs, dirty bits, TLB.
    mc.send(0, sender, VirtAddr::new(0x10_0000), dev_page, 0, msg_bytes).expect("warm send");

    let t0 = mc.node(0).os().machine().now();
    for _ in 0..messages {
        mc.send(0, sender, VirtAddr::new(0x10_0000), dev_page, 0, msg_bytes)
            .expect("steady-state send");
    }
    let elapsed = mc.node(0).os().machine().now() - t0;
    (msg_bytes * u64::from(messages)) as f64 / elapsed.as_micros_f64()
}

/// Runs the Figure 8 sweep: message sizes `step..=max_bytes` in `step`
/// increments (the paper's x-axis runs to 8 KB), on the SHRIMP board's
/// basic (no-queue) UDMA device.
pub fn sweep(step: u64, max_bytes: u64, messages: u32) -> Fig8Curve {
    sweep_with_mode(step, max_bytes, messages, UdmaMode::Basic)
}

/// The same sweep on a chosen UDMA hardware variant. Running it with
/// [`UdmaMode::Queued`] answers the what-if the §7 extension poses: the
/// post-4 KB dip (the serialized second initiation) disappears because the
/// queue accepts every page's two references immediately.
pub fn sweep_with_mode(step: u64, max_bytes: u64, messages: u32, mode: UdmaMode) -> Fig8Curve {
    assert!(step >= 4 && step.is_multiple_of(4), "NIC requires 4-byte-aligned sizes");
    let mut points = Vec::new();
    let mut peak: f64 = 0.0;
    let mut size = step;
    while size <= max_bytes {
        // A fresh multicomputer per point keeps points independent.
        let mut mc = Multicomputer::with_machine_config(
            2,
            MachineConfig { udma: mode, ..MachineConfig::default() },
        );
        let bw = stream_bandwidth(&mut mc, size, messages);
        peak = peak.max(bw);
        points.push(Fig8Point { bytes: size, mb_per_s: bw, pct_of_peak: 0.0 });
        size += step;
    }
    for p in &mut points {
        p.pct_of_peak = p.mb_per_s / peak;
    }
    Fig8Curve { points, peak_mb_per_s: peak }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §8 checkpoints the reproduction must hit (see EXPERIMENTS.md).
    #[test]
    fn paper_checkpoints_hold() {
        // Coarse sweep for test speed; the binary runs the fine one.
        let curve = sweep(256, 8192, 4);

        // "The bandwidth exceeds 50% of the maximum measured at a message
        // size of only 512 bytes."
        assert!(
            curve.at(512).pct_of_peak > 0.5,
            "512B = {:.1}% of peak",
            curve.at(512).pct_of_peak * 100.0
        );

        // "The largest single UDMA transfer is a page of 4 Kbytes, which
        // achieves 94% of the maximum bandwidth." (shape: 88–100%)
        let at_4k = curve.at(4096).pct_of_peak;
        assert!((0.88..=1.0).contains(&at_4k), "4KB = {:.1}% of peak", at_4k * 100.0);

        // "The slight dip in the curve after that point reflects the cost
        // of initiating and starting a second UDMA transfer."
        let just_past = curve.at(4096 + 256).pct_of_peak;
        assert!(just_past < at_4k, "dip after 4KB: {just_past} !< {at_4k}");

        // "The maximum is sustained for messages exceeding 8 Kbytes":
        // by 8KB the curve recovers close to peak.
        assert!(curve.at(8192).pct_of_peak > at_4k.min(0.95) - 0.02);

        // The curve rises rapidly: monotone-ish growth below 2KB.
        assert!(curve.at(1024).pct_of_peak > curve.at(256).pct_of_peak);
        assert!(curve.at(2048).pct_of_peak > curve.at(1024).pct_of_peak);
    }

    #[test]
    fn queued_hardware_removes_the_post_4k_dip() {
        let basic = sweep_with_mode(512, 6144, 4, UdmaMode::Basic);
        let queued = sweep_with_mode(512, 6144, 4, UdmaMode::Queued(16));
        // Basic: the 4.5KB point dips below 4KB (second initiation).
        let basic_dip = basic.at(4608).mb_per_s / basic.at(4096).mb_per_s;
        // Queued: the same ratio stays at or above basic's.
        let queued_dip = queued.at(4608).mb_per_s / queued.at(4096).mb_per_s;
        assert!(basic_dip < 1.0, "basic must dip: ratio {basic_dip:.3}");
        assert!(
            queued_dip > basic_dip,
            "queueing must soften the dip: {queued_dip:.3} !> {basic_dip:.3}"
        );
        // And multi-page bandwidth is at least as good.
        assert!(queued.at(6144).mb_per_s >= basic.at(6144).mb_per_s * 0.99);
    }

    #[test]
    fn first_size_reaching_is_monotone_helper() {
        let curve = sweep(512, 4096, 2);
        let half = curve.first_size_reaching(0.5).expect("50% is reached");
        assert!(half <= 1024, "half-peak at {half}B");
    }
}
