//! Host wall-clock throughput of the simulator's data plane.
//!
//! Unlike the `fig8`/`hippi`/... experiments, which report *simulated*
//! time, this module measures how fast the simulator itself executes the
//! send → packetize → fabric → deliver pipeline on the host — the number
//! that bounds every large-scale experiment the ROADMAP asks for. The
//! `host_throughput` binary drives these workloads and emits
//! `BENCH_throughput.json` so each perf PR has a measured baseline.
//!
//! Workloads run either through the serial driver loop (`threads == 0`)
//! or through [`Multicomputer::run`] (`threads >= 1`) — since the
//! single-engine refactor these are the same delivery core. Each
//! entry records the thread count, the FNV digest of the final machine
//! state, and the commit hash, so a result can be traced to the exact
//! code and cross-checked for determinism: the digest of a stream must
//! not depend on the thread count.

use std::process::Command;
use std::sync::OnceLock;
use std::time::Instant;

use shrimp::{Multicomputer, NodePlan, PacketClass, SendOp};
use shrimp_machine::MachineConfig;
use shrimp_mem::{VirtAddr, PAGE_SIZE};
use shrimp_sim::{Stage, STAGE_COUNT};

use crate::alloc_count;

/// Node count above which streams use small per-node memory: the
/// data plane only touches the mapped buffers, and whole-memory state
/// digests over hundreds of default-sized (8 MB) nodes would measure
/// the digest, not the engine.
const SMALL_NODE_THRESHOLD: u16 = 16;

/// Monotonic host nanoseconds since the first call, for injection as the
/// engine's phase clock ([`Multicomputer::set_phase_clock`]). The
/// simulator core never reads host time itself; this lives in the bench
/// layer and is handed in as a plain `fn` pointer.
pub fn host_nanos() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Host-time epoch-phase totals of a parallel run as read back from the
/// engine-metrics plane (`None` on serial rows), in fixed order:
/// `[crossings, execute_ns, barrier_ns, merge_ns, commit_ns]`. A large
/// `barrier_ns` share means shard imbalance, not engine cost.
pub type PhaseTotals = [u64; 5];

/// Per-stage simulated-time latency percentiles `[p50, p90, p99]` in
/// nanoseconds, indexed by [`Stage::ALL`] order (`None` on untraced
/// rows — the flight recorder is the source).
pub type StageLatencies = [[u64; 3]; STAGE_COUNT];

fn phases_to_json(p: PhaseTotals) -> String {
    let [crossings, execute_ns, barrier_ns, merge_ns, commit_ns] = p;
    format!(
        concat!(
            "{{\"crossings\":{},\"execute_ns\":{},\"barrier_ns\":{},",
            "\"merge_ns\":{},\"commit_ns\":{}}}"
        ),
        crossings, execute_ns, barrier_ns, merge_ns, commit_ns,
    )
}

fn stages_to_json(s: &StageLatencies) -> String {
    let body: Vec<String> = Stage::ALL
        .iter()
        .zip(s.iter())
        .map(|(stage, pq)| format!("\"{}\":[{},{},{}]", stage.name(), pq[0], pq[1], pq[2]))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// One measured workload.
#[derive(Clone, Debug)]
pub struct ThroughputResult {
    /// Workload name (`stream_<size>_<n>node[_t<threads>]`).
    pub name: String,
    /// Node count (half senders, half receivers).
    pub nodes: u16,
    /// Per-message payload bytes.
    pub msg_bytes: u64,
    /// Total messages sent across all pairs.
    pub messages: u64,
    /// Worker threads (`0` = serial driver loop, `>=1` = parallel engine).
    pub threads: usize,
    /// Host wall-clock seconds for the steady-state loop.
    pub wall_s: f64,
    /// Messages per host wall-clock second.
    pub msgs_per_sec: f64,
    /// Payload megabytes per host wall-clock second.
    pub mb_per_sec: f64,
    /// FNV-1a digest of final machine state (clocks, deliveries, memory).
    /// Identical workloads must digest identically at every thread count.
    pub digest: u64,
    /// `git rev-parse --short HEAD` at measurement time (or `unknown`).
    pub commit: String,
    /// Logical cores the host exposed to this process — a thread-sweep
    /// speedup claim from a 1-core container should say so itself.
    pub host_cores: usize,
    /// Steady-state heap allocations per message (`None` unless the
    /// counting allocator is registered — build with `count-allocs` and
    /// the `host_throughput` binary registers it).
    pub allocs_per_msg: Option<f64>,
    /// Epoch-phase breakdown in host nanoseconds (parallel rows only),
    /// harvested from [`Multicomputer::engine_metrics`].
    pub phases: Option<PhaseTotals>,
    /// Per-stage `[p50, p90, p99]` simulated latency in nanoseconds
    /// (traced rows only), from the flight recorder's stage histograms.
    pub stage_ns: Option<StageLatencies>,
    /// Request-latency percentiles `[p50, p90, p99]` in simulated
    /// nanoseconds (serving rows only) — deterministic at every thread
    /// count, so CI can gate on them.
    pub request_ns: Option<[u64; 3]>,
    /// Machine-wide NIPT churn `[evictions, refaults]` (serving rows
    /// only): slot runs recycled for another tenant, and sends that
    /// found their slot recycled and reloaded it.
    pub nipt_churn: Option<[u64; 2]>,
}

impl ThroughputResult {
    /// Renders the result as one JSON object (no external deps).
    pub fn to_json(&self) -> String {
        let allocs = match self.allocs_per_msg {
            Some(a) => format!("{a:.3}"),
            None => "null".to_string(),
        };
        let phases = match self.phases {
            Some(p) => phases_to_json(p),
            None => "null".to_string(),
        };
        let stage_ns = match &self.stage_ns {
            Some(s) => stages_to_json(s),
            None => "null".to_string(),
        };
        let request_ns = match self.request_ns {
            Some([p50, p90, p99]) => format!("[{p50},{p90},{p99}]"),
            None => "null".to_string(),
        };
        let nipt_churn = match self.nipt_churn {
            Some([evictions, refaults]) => format!("[{evictions},{refaults}]"),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"name\":\"{}\",\"nodes\":{},\"msg_bytes\":{},\"messages\":{},",
                "\"threads\":{},\"wall_s\":{:.4},\"msgs_per_sec\":{:.1},\"mb_per_sec\":{:.2},",
                "\"digest\":\"{:#018x}\",\"commit\":\"{}\",\"host_cores\":{},",
                "\"allocs_per_msg\":{},\"phases\":{},\"stage_p50_p90_p99_ns\":{},",
                "\"request_p50_p90_p99_ns\":{},\"nipt_evictions_refaults\":{}}}"
            ),
            self.name,
            self.nodes,
            self.msg_bytes,
            self.messages,
            self.threads,
            self.wall_s,
            self.msgs_per_sec,
            self.mb_per_sec,
            self.digest,
            self.commit,
            self.host_cores,
            allocs,
            phases,
            stage_ns,
            request_ns,
            nipt_churn,
        )
    }
}

/// Renders a run list as a JSON array.
pub fn runs_to_json(runs: &[ThroughputResult]) -> String {
    let body: Vec<String> = runs.iter().map(|r| format!("    {}", r.to_json())).collect();
    format!("[\n{}\n  ]", body.join(",\n"))
}

/// Logical cores the host exposes to this process (`1` when the OS will
/// not say). Every [`ThroughputResult`] records it: a parallel-speedup
/// claim measured inside a 1-core container must label itself as such.
pub fn host_logical_cores() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// The current commit's short hash, or `unknown` outside a git checkout.
pub fn commit_hash() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Streams `messages_per_pair` messages of `msg_bytes` down `nodes / 2`
/// disjoint sender→receiver pairs and reports host throughput.
///
/// With `threads == 0` the senders are driven round-robin through the
/// serial driver (`Multicomputer::send` + `run_until_quiet`) — the
/// call-per-message baseline. With `threads >= 1` every sender's
/// messages become a [`NodePlan`] executed by [`Multicomputer::run`] on
/// that many worker threads. Either way the simulated timeline — and
/// therefore the state digest — is identical; only the host clock moves.
///
/// # Panics
///
/// Panics on kernel traps during setup (the workload is statically valid).
pub fn stream_pairs(
    nodes: u16,
    msg_bytes: u64,
    messages_per_pair: u32,
    threads: usize,
) -> ThroughputResult {
    stream_pairs_impl(nodes, msg_bytes, messages_per_pair, threads, false, false).0
}

/// [`stream_pairs`] with the flight recorder enabled: tracing is switched
/// on *after* warm-up (so ring storage is reserved outside the measured
/// region) and the Perfetto trace-event JSON is exported afterwards. The
/// workload name gains a `_traced` suffix; the digest must equal the
/// untraced run's (tracing is pure observation).
///
/// # Panics
///
/// Panics on kernel traps during setup (the workload is statically valid).
pub fn stream_pairs_traced(
    nodes: u16,
    msg_bytes: u64,
    messages_per_pair: u32,
    threads: usize,
) -> (ThroughputResult, String) {
    let (result, trace, _) =
        stream_pairs_impl(nodes, msg_bytes, messages_per_pair, threads, true, false);
    let (json, _) = trace.expect("tracing was enabled");
    (result, json)
}

/// [`stream_pairs_traced`] returning the trace in both export formats:
/// the Perfetto JSON and the compact `SHRTRC01` binary
/// ([`shrimp::Multicomputer::export_trace_bin`]) of the same spans.
///
/// # Panics
///
/// Panics on kernel traps during setup (the workload is statically valid).
pub fn stream_pairs_traced_bin(
    nodes: u16,
    msg_bytes: u64,
    messages_per_pair: u32,
    threads: usize,
) -> (ThroughputResult, String, Vec<u8>) {
    let (result, trace, _) =
        stream_pairs_impl(nodes, msg_bytes, messages_per_pair, threads, true, false);
    let (json, bin) = trace.expect("tracing was enabled");
    (result, json, bin)
}

/// [`stream_pairs`] with metrics harvesting: after the measured window
/// the machine-wide snapshot ([`Multicomputer::metrics_snapshot`]) is
/// rendered to its stable text form and returned alongside the result.
/// Harvesting happens outside the timed region and must not disturb the
/// digest or the steady-state allocation count.
///
/// # Panics
///
/// Panics on kernel traps during setup (the workload is statically valid).
pub fn stream_pairs_metered(
    nodes: u16,
    msg_bytes: u64,
    messages_per_pair: u32,
    threads: usize,
) -> (ThroughputResult, String) {
    let (result, _, metrics) =
        stream_pairs_impl(nodes, msg_bytes, messages_per_pair, threads, false, true);
    (result, metrics.expect("metering was enabled"))
}

/// Traced *and* metered stream: returns the result, the Perfetto JSON
/// trace, the `SHRTRC01` binary trace, and the rendered metrics
/// snapshot — the full observability surface of one run, for the CI
/// smoke job and `host_throughput --metrics`.
///
/// # Panics
///
/// Panics on kernel traps during setup (the workload is statically valid).
pub fn stream_pairs_traced_metered_bin(
    nodes: u16,
    msg_bytes: u64,
    messages_per_pair: u32,
    threads: usize,
) -> (ThroughputResult, String, Vec<u8>, String) {
    let (result, trace, metrics) =
        stream_pairs_impl(nodes, msg_bytes, messages_per_pair, threads, true, true);
    let (json, bin) = trace.expect("tracing was enabled");
    (result, json, bin, metrics.expect("metering was enabled"))
}

/// Trace exports of one run: `(perfetto_json, shrtrc01_bytes)`.
type TraceExports = (String, Vec<u8>);

fn stream_pairs_impl(
    nodes: u16,
    msg_bytes: u64,
    messages_per_pair: u32,
    threads: usize,
    traced: bool,
    metered: bool,
) -> (ThroughputResult, Option<TraceExports>, Option<String>) {
    assert!(nodes >= 2 && nodes.is_multiple_of(2), "need sender/receiver pairs");
    let machine = if nodes > SMALL_NODE_THRESHOLD {
        MachineConfig { mem_bytes: 64 * PAGE_SIZE, ..MachineConfig::default() }
    } else {
        MachineConfig::default()
    };
    let mut mc = Multicomputer::with_machine_config(nodes, machine);
    let pairs = usize::from(nodes) / 2;
    let pages = msg_bytes.div_ceil(PAGE_SIZE).max(1) + 1;

    let mut flows = Vec::with_capacity(pairs);
    for p in 0..pairs {
        let (send_node, recv_node) = (2 * p, 2 * p + 1);
        let sender = mc.spawn_process(send_node);
        let receiver = mc.spawn_process(recv_node);
        mc.map_user_buffer(send_node, sender, 0x10_0000, pages).expect("map sender");
        mc.map_user_buffer(recv_node, receiver, 0x40_0000, pages).expect("map receiver");
        let dev_page = mc
            .export(recv_node, receiver, VirtAddr::new(0x40_0000), pages, send_node, sender)
            .expect("export");
        let payload: Vec<u8> = (0..msg_bytes).map(|i| (i % 251) as u8).collect();
        mc.write_user(send_node, sender, VirtAddr::new(0x10_0000), &payload).expect("fill");
        flows.push((send_node, sender, dev_page));
    }

    // Warm every flow: mappings, proxy PTEs, dirty bits, TLB, NIC scratch.
    for &(send_node, sender, dev_page) in &flows {
        mc.send(send_node, sender, VirtAddr::new(0x10_0000), dev_page, 0, msg_bytes)
            .expect("warm send");
    }
    mc.run_until_quiet();
    if traced {
        // Reserve every trace ring now, before the allocation mark: the
        // traced steady state must stay allocation-free too.
        mc.set_tracing(true);
    }

    let total = u64::from(messages_per_pair) * pairs as u64;
    // Plans are workload *input*, not data-plane work: build them before
    // the allocation mark so the steady-state figure measures the engine.
    let plans: Vec<NodePlan> = if threads == 0 {
        Vec::new()
    } else {
        flows
            .iter()
            .map(|&(send_node, sender, dev_page)| NodePlan {
                node: send_node,
                ops: vec![
                    SendOp {
                        pid: sender,
                        src_va: VirtAddr::new(0x10_0000),
                        dev_page,
                        dev_off: 0,
                        nbytes: msg_bytes,
                        class: PacketClass::User,
                    };
                    messages_per_pair as usize
                ],
            })
            .collect()
    };
    if threads > 0 {
        // Warm the clock's epoch outside the measured region, then hand
        // it to the engine so parallel rows report a phase breakdown.
        let _ = host_nanos();
        mc.set_phase_clock(Some(host_nanos));
    }
    let alloc_mark = alloc_count::allocation_count();
    let wall_s = if threads == 0 {
        // Each flow is a §7 message train: the serial driver batches its
        // steady-state tail through `send_burst` (flows are disjoint
        // pairs, so per-flow order and round-robin order share one
        // timeline — the digest check below would catch any drift).
        let t0 = Instant::now();
        for &(send_node, sender, dev_page) in &flows {
            mc.send_burst(
                send_node,
                sender,
                VirtAddr::new(0x10_0000),
                dev_page,
                0,
                msg_bytes,
                u64::from(messages_per_pair),
            )
            .expect("steady-state burst");
        }
        mc.run_until_quiet();
        t0.elapsed().as_secs_f64()
    } else {
        let t0 = Instant::now();
        mc.run(&plans, threads).expect("steady-state parallel run");
        t0.elapsed().as_secs_f64()
    };
    let allocs = alloc_count::delta_since(alloc_mark);

    assert_eq!(mc.dropped_packets(), 0, "workload must not drop packets");
    let trace = traced.then(|| (mc.export_trace(), mc.export_trace_bin()));
    let metrics = metered.then(|| mc.metrics_snapshot().render_text());
    let phases = (threads > 0).then(|| {
        let em = mc.engine_metrics();
        let ns =
            |name: &str| em.get_hist("phase", name, None).map_or(0, shrimp_sim::Histogram::sum);
        let crossings =
            em.get_hist("phase", "execute_ns", None).map_or(0, shrimp_sim::Histogram::count);
        [crossings, ns("execute_ns"), ns("barrier_ns"), ns("merge_ns"), ns("commit_ns")]
    });
    let stage_ns = traced.then(|| {
        let mut out = [[0u64; 3]; STAGE_COUNT];
        for (slot, stage) in out.iter_mut().zip(Stage::ALL) {
            let h = mc.recorder().stage_histogram(stage);
            let q = |p: f64| h.quantile(p).unwrap_or(0);
            *slot = [q(0.50), q(0.90), q(0.99)];
        }
        out
    });

    let threads_suffix = if threads == 0 { String::new() } else { format!("_t{threads}") };
    let traced_suffix = if traced { "_traced" } else { "" };
    let result = ThroughputResult {
        name: format!("stream_{}b_{}node{}{}", msg_bytes, nodes, threads_suffix, traced_suffix),
        nodes,
        msg_bytes,
        messages: total,
        threads,
        wall_s,
        msgs_per_sec: total as f64 / wall_s,
        mb_per_sec: (total * msg_bytes) as f64 / wall_s / (1024.0 * 1024.0),
        digest: mc.state_digest(),
        commit: commit_hash(),
        host_cores: host_logical_cores(),
        allocs_per_msg: if alloc_count::is_active() {
            Some(allocs as f64 / total as f64)
        } else {
            None
        },
        phases,
        stage_ns,
        request_ns: None,
        nipt_churn: None,
    };
    (result, trace, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_pairs_moves_data_and_reports_sane_numbers() {
        let r = stream_pairs(2, 4096, 16, 0);
        assert_eq!(r.messages, 16);
        assert_eq!(r.threads, 0);
        assert!(r.msgs_per_sec > 0.0);
        assert!(r.mb_per_sec > 0.0);
        assert!(r.wall_s > 0.0);
        assert_ne!(r.digest, 0);
    }

    #[test]
    fn serial_and_parallel_digests_agree() {
        let serial = stream_pairs(4, 512, 8, 0);
        let par1 = stream_pairs(4, 512, 8, 1);
        let par2 = stream_pairs(4, 512, 8, 2);
        assert_eq!(serial.digest, par1.digest, "serial vs 1 thread");
        assert_eq!(par1.digest, par2.digest, "1 vs 2 threads");
        assert_eq!(par2.name, "stream_512b_4node_t2");
    }

    #[test]
    fn json_shape_is_stable() {
        let r = stream_pairs(2, 256, 4, 0);
        let j = r.to_json();
        assert!(j.contains("\"name\":\"stream_256b_2node\""), "{j}");
        assert!(j.contains("\"msgs_per_sec\":"), "{j}");
        assert!(j.contains("\"threads\":0"), "{j}");
        assert!(j.contains("\"digest\":\"0x"), "{j}");
        assert!(j.contains("\"commit\":"), "{j}");
        assert!(j.contains("\"host_cores\":"), "{j}");
        assert!(j.contains("\"allocs_per_msg\":"), "{j}");
        assert!(j.contains("\"phases\":null"), "serial row has no phases: {j}");
        assert!(j.contains("\"stage_p50_p90_p99_ns\":null"), "untraced row has no stages: {j}");
        assert!(j.contains("\"request_p50_p90_p99_ns\":null"), "stream row: {j}");
        assert!(j.contains("\"nipt_evictions_refaults\":null"), "stream row: {j}");
    }

    #[test]
    fn parallel_phases_come_from_engine_metrics() {
        let r = stream_pairs(4, 512, 8, 2);
        let [crossings, execute_ns, ..] = r.phases.expect("parallel row has phases");
        assert!(crossings > 0, "phase clock sampled at least one crossing");
        assert!(execute_ns > 0, "execute phase accumulated host time");
        let j = r.to_json();
        assert!(j.contains("\"crossings\":"), "{j}");
        assert!(j.contains("\"commit_ns\":"), "{j}");
    }

    #[test]
    fn traced_rows_report_stage_percentiles() {
        let (r, _json) = stream_pairs_traced(2, 4096, 16, 1);
        let stages = r.stage_ns.expect("traced row has stage latencies");
        let wire = stages[Stage::Wire.index()];
        assert!(wire[0] > 0, "wire p50 nonzero for 4 KB payloads");
        assert!(wire[1] >= wire[0] && wire[2] >= wire[1], "p50 <= p90 <= p99");
        let j = r.to_json();
        assert!(j.contains("\"stage_p50_p90_p99_ns\":{\"initiation\":["), "{j}");
        assert!(j.contains("\"status-observed\":["), "{j}");
    }

    #[test]
    fn metered_run_renders_snapshot_with_live_counters() {
        let (r, metrics) = stream_pairs_metered(2, 256, 8, 1);
        assert_ne!(r.digest, 0);
        assert!(metrics.starts_with("# shrimp-metrics v1"), "{metrics}");
        let delivered = metrics
            .lines()
            .find(|l| l.starts_with("delivery/delivered"))
            .expect("snapshot has delivery.delivered");
        let count: u64 = delivered.split_whitespace().last().unwrap().parse().unwrap();
        // 8 steady-state messages + 1 warm-up send on the single pair.
        assert_eq!(count, 9, "{metrics}");
    }
}
