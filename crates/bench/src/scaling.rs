//! Extension experiment: multicomputer scaling.
//!
//! Two traffic patterns on an N-node SHRIMP:
//!
//! - **permutation** — node *i* streams to node *i+1* (mod N): every
//!   sender has a private destination link, so aggregate bandwidth should
//!   scale with N,
//! - **fan-in** — every node streams to node 0: the receiver's inbound
//!   link and EISA bus serialize everything, so aggregate bandwidth
//!   plateaus at a single link's rate regardless of N.
//!
//! Aggregate bandwidth = total delivered payload ÷ (latest delivery time).

use shrimp::{Multicomputer, MulticomputerConfig};
use shrimp_mem::{VirtAddr, PAGE_SIZE};
use shrimp_os::Pid;
use shrimp_sim::SimTime;

/// Traffic pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pattern {
    /// i -> (i + 1) mod N.
    Permutation,
    /// i -> 0 for all i > 0.
    FanIn,
}

/// One (N, pattern) measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalingPoint {
    /// Node count.
    pub nodes: u16,
    /// Pattern measured.
    pub pattern: Pattern,
    /// Aggregate delivered bandwidth, MB/s.
    pub aggregate_mb_per_s: f64,
}

/// Streams `rounds` pages per sender under `pattern` on `n` nodes.
pub fn measure(n: u16, pattern: Pattern, rounds: u32) -> ScalingPoint {
    assert!(n >= 2, "need at least two nodes");
    // Active receivers everywhere: flows must overlap, not ping-pong.
    let mut mc = Multicomputer::new(
        n,
        MulticomputerConfig { passive_receivers: false, ..MulticomputerConfig::default() },
    );

    // Set up one (sender pid, dev page) pair per flow.
    struct Flow {
        src_node: usize,
        pid: Pid,
        dev_page: u64,
    }
    let senders: Vec<usize> = match pattern {
        Pattern::Permutation => (0..n as usize).collect(),
        Pattern::FanIn => (1..n as usize).collect(),
    };
    // Receivers need distinct buffers per inbound flow.
    let mut recv_pids = vec![None::<Pid>; n as usize];
    let mut flows = Vec::new();
    for (k, &src) in senders.iter().enumerate() {
        let dst = match pattern {
            Pattern::Permutation => (src + 1) % n as usize,
            Pattern::FanIn => 0,
        };
        let pid = mc.spawn_process(src);
        mc.map_user_buffer(src, pid, 0x10_0000, 1).expect("map src");
        let rpid = *recv_pids[dst].get_or_insert_with(|| mc.spawn_process(dst));
        let recv_va = 0x40_0000 + (k as u64) * PAGE_SIZE;
        mc.map_user_buffer(dst, rpid, recv_va, 1).expect("map dst");
        let dev_page = mc.export(dst, rpid, VirtAddr::new(recv_va), 1, src, pid).expect("export");
        mc.write_user(src, pid, VirtAddr::new(0x10_0000), &vec![k as u8; PAGE_SIZE as usize])
            .expect("fill");
        // Warm.
        mc.send(src, pid, VirtAddr::new(0x10_0000), dev_page, 0, PAGE_SIZE).expect("warm");
        flows.push(Flow { src_node: src, pid, dev_page });
    }

    // Barrier: all flows start at the same instant.
    let t0: SimTime = mc.barrier_sync();
    // Round-robin across senders: node clocks advance independently, so
    // flows overlap in simulated time.
    for _ in 0..rounds {
        for f in &flows {
            mc.send(f.src_node, f.pid, VirtAddr::new(0x10_0000), f.dev_page, 0, PAGE_SIZE)
                .expect("send");
        }
    }
    mc.run_until_quiet();
    let last = (0..n as usize).map(|i| mc.last_delivery(i)).max().expect("deliveries happened");
    let bytes = flows.len() as u64 * u64::from(rounds) * PAGE_SIZE;
    ScalingPoint {
        nodes: n,
        pattern,
        aggregate_mb_per_s: bytes as f64 / (last - t0).as_micros_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_traffic_scales_with_nodes() {
        let two = measure(2, Pattern::Permutation, 6);
        let eight = measure(8, Pattern::Permutation, 6);
        assert!(
            eight.aggregate_mb_per_s > two.aggregate_mb_per_s * 2.5,
            "8 nodes {:.1} !> 2.5x 2 nodes {:.1}",
            eight.aggregate_mb_per_s,
            two.aggregate_mb_per_s
        );
    }

    #[test]
    fn fan_in_plateaus_at_the_receiver_link() {
        let four = measure(4, Pattern::FanIn, 6);
        let eight = measure(8, Pattern::FanIn, 6);
        // Doubling the senders gains little: the receiver serializes.
        assert!(
            eight.aggregate_mb_per_s < four.aggregate_mb_per_s * 1.5,
            "fan-in must plateau: 8 senders {:.1} vs 4 senders {:.1}",
            eight.aggregate_mb_per_s,
            four.aggregate_mb_per_s
        );
    }

    #[test]
    fn permutation_beats_fan_in_at_scale() {
        let perm = measure(8, Pattern::Permutation, 4);
        let fan = measure(8, Pattern::FanIn, 4);
        assert!(perm.aggregate_mb_per_s > fan.aggregate_mb_per_s * 2.0);
    }
}
