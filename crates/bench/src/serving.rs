//! Multi-tenant request/response serving on the reactive program layer.
//!
//! The streaming rows in `BENCH_throughput.json` measure the data plane
//! at its best: one process per node, mappings imported once, traffic
//! known up front. `serving` measures the other end of the design space
//! the paper's protection story exists for: every client node
//! multiplexes dozens of tenant *processes*, each with its own
//! deliberate-update window on a server node, all contending for a NIPT
//! deliberately sized far below the working set — so the kernel's
//! demand-paging path (evict a victim tenant's slot run, revoke its
//! proxy grant, reimport on refault) runs continuously, under churn,
//! while requests and replies flow.
//!
//! Topology: node `2p` is a client, node `2p+1` its server. Each client
//! runs a [`ServingClient`] — a tenant mux that round-robins its tenant
//! processes, each a closed-loop RPC flow (the node's CPU runs one
//! process at a time; `udma_send` context-switches to the issuing
//! tenant, so the mux is also a context-switch workout). Each server
//! runs a [`ServingServer`] that routes every request landing in a
//! tenant's window to that tenant's reply send. Every fourth tenant's
//! requests — and all replies — travel [`PacketClass::System`], so the
//! §7 two-priority arbitration sees mixed classes on every link.
//!
//! Request latency (issue instant → reply EISA-DMA completion) is
//! simulated time, recorded per client into a [`Histogram`] and merged
//! machine-wide: the p50/p90/p99 in the output row are deterministic
//! figures of the modelled serving path, not host noise — which is what
//! lets CI gate on them.

use std::time::Instant;

use shrimp::{
    DeliveryEvent, Multicomputer, MulticomputerConfig, NiptDirectory, PacketClass, ProgramPlan,
    SendOp, ShrimpNode, TrafficProgram,
};
use shrimp_machine::MachineConfig;
use shrimp_mem::{PhysAddr, VirtAddr, PAGE_SIZE};
use shrimp_net::NodeId;
use shrimp_os::{NodeConfig, Pid, Trap};
use shrimp_sim::{Histogram, SimTime};

use crate::host_perf::{commit_hash, host_logical_cores, ThroughputResult};

/// Per-tenant virtual layout (each tenant is its own process, so the
/// addresses repeat per tenant): the outbound payload page and the
/// exported one-page window inbound traffic lands in.
const SRC_VA: u64 = 0x10_0000;
const WINDOW_VA: u64 = 0x40_0000;

/// One client-side tenant flow: the local process that issues requests
/// and the window its replies land in.
#[derive(Clone, Copy, Debug)]
struct ClientTenant {
    /// The tenant process on the client node.
    pid: Pid,
    /// Directory handle of the request window on the server.
    handle: usize,
    /// Local physical page replies land in (exact landing address —
    /// replies are single-page sends at offset 0).
    reply_paddr: PhysAddr,
    /// §7 priority class of this tenant's requests.
    class: PacketClass,
}

/// The client-node tenant mux: round-robins its tenants, one closed-loop
/// request in flight at a time. Before each request the tenant's NIPT
/// mapping is demand-ensured ([`NiptDirectory::ensure`]) — with more
/// tenants than table slots, that is a steady diet of evictions and
/// refaults, exactly the churn the row exists to measure.
#[derive(Debug)]
pub struct ServingClient {
    dir: NiptDirectory,
    tenants: Vec<ClientTenant>,
    /// Request payload bytes.
    msg_bytes: u64,
    /// Requests to issue across all tenants.
    total: usize,
    issued: usize,
    completed: usize,
    /// The outstanding request: `(tenant index, issue instant)`.
    in_flight: Option<(usize, SimTime)>,
    latency: Histogram,
}

impl ServingClient {
    /// Replies received so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// The request-latency histogram (issue → reply delivery, simulated).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }
}

impl TrafficProgram for ServingClient {
    fn planned_hint(&self) -> usize {
        self.total.saturating_sub(1)
    }

    fn step(
        &mut self,
        node: &mut ShrimpNode,
        inbox: &[DeliveryEvent],
        out: &mut Vec<SendOp>,
    ) -> Result<(), Trap> {
        for ev in inbox {
            if let Some((t, issued_at)) = self.in_flight {
                if ev.dst_paddr == self.tenants[t].reply_paddr {
                    self.latency.record(ev.done.saturating_duration_since(issued_at).as_nanos());
                    self.completed += 1;
                    self.in_flight = None;
                }
            }
        }
        if self.in_flight.is_none() && self.issued < self.total {
            let tenant = self.tenants[self.issued % self.tenants.len()];
            // Demand-ensure the tenant's mapping: one NIPT probe when the
            // slot run survived, the full revoke + reimport kernel path
            // when another tenant recycled it.
            let dev_page = self.dir.ensure(tenant.handle, node)?;
            out.push(SendOp {
                pid: tenant.pid,
                src_va: VirtAddr::new(SRC_VA),
                dev_page,
                dev_off: 0,
                nbytes: self.msg_bytes,
                class: tenant.class,
            });
            self.in_flight = Some((self.issued % self.tenants.len(), node.os().machine().now()));
            self.issued += 1;
        }
        Ok(())
    }

    fn finished(&self) -> bool {
        self.completed >= self.total
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// One server-side tenant: where its requests land and which process
/// answers them.
#[derive(Clone, Copy, Debug)]
struct ServerTenant {
    /// The tenant's serving process on this node.
    pid: Pid,
    /// Exact physical landing address of the tenant's requests.
    request_paddr: PhysAddr,
    /// Directory handle of the client's reply window.
    handle: usize,
}

/// The server-node mux: routes each request delivery to its tenant's
/// reply send. Replies travel [`PacketClass::System`] — the kernel-side
/// priority a server issues on a tenant's behalf — and the reply
/// window's NIPT mapping is demand-ensured per reply, so the server's
/// table churns just like the client's.
#[derive(Debug)]
pub struct ServingServer {
    dir: NiptDirectory,
    tenants: Vec<ServerTenant>,
    /// Reply payload bytes.
    msg_bytes: u64,
    /// Requests this server will answer before it is finished.
    expected: usize,
    replied: usize,
}

impl ServingServer {
    /// Requests answered so far.
    pub fn replied(&self) -> usize {
        self.replied
    }
}

impl TrafficProgram for ServingServer {
    fn planned_hint(&self) -> usize {
        self.expected
    }

    fn step(
        &mut self,
        node: &mut ShrimpNode,
        inbox: &[DeliveryEvent],
        out: &mut Vec<SendOp>,
    ) -> Result<(), Trap> {
        for ev in inbox {
            // A handful of tenants per node: linear scan, no hash map on
            // the data path (D1).
            let Some(tenant) = self.tenants.iter().find(|t| t.request_paddr == ev.dst_paddr) else {
                continue;
            };
            let (pid, handle) = (tenant.pid, tenant.handle);
            let dev_page = self.dir.ensure(handle, node)?;
            out.push(SendOp {
                pid,
                src_va: VirtAddr::new(SRC_VA),
                dev_page,
                dev_off: 0,
                nbytes: self.msg_bytes,
                class: PacketClass::System,
            });
            self.replied += 1;
        }
        Ok(())
    }

    fn finished(&self) -> bool {
        self.replied >= self.expected
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Request/reply payload bytes (single-packet sends: the row measures
/// the per-message serving path, not wire bandwidth).
pub const SERVING_MSG_BYTES: u64 = 256;

/// A fully wired serving machine plus its traffic programs, ready for
/// [`Multicomputer::run_programs`].
pub struct ServingRig {
    /// The machine: even nodes clients, odd nodes servers.
    pub mc: Multicomputer,
    /// One [`ServingClient`] per even node, one [`ServingServer`] per odd
    /// node.
    pub programs: Vec<ProgramPlan>,
    /// Total requests the clients will issue.
    pub requests: u64,
}

/// Builds the serving machine: `nodes / 2` client/server pairs,
/// `tenants_per_client` tenant processes on each side of every pair,
/// each tenant a closed-loop request/reply flow issuing
/// `requests_per_tenant` requests. The per-node NIPT is sized to a
/// quarter of the tenant working set (floor 2), so slot churn is
/// guaranteed, and every fourth tenant's requests travel
/// [`PacketClass::System`].
///
/// # Panics
///
/// Panics on kernel traps during setup (the rig is statically valid) and
/// when `nodes` is odd or less than 2.
pub fn serving_rig(nodes: u16, tenants_per_client: usize, requests_per_tenant: u32) -> ServingRig {
    assert!(nodes >= 2 && nodes.is_multiple_of(2), "need client/server pairs");
    assert!(tenants_per_client >= 1);
    // A quarter of the per-node mapping working set: small enough that
    // the round-robin mux thrashes the table (every visit refaults),
    // large enough that the one mapping a step needs always fits.
    let nipt_entries = (tenants_per_client / 4).max(2);
    let config = MulticomputerConfig {
        node: NodeConfig {
            // Tenant pages, not streams, bound the footprint: a small
            // memory keeps 64-node digests measuring the engine.
            machine: MachineConfig { mem_bytes: 256 * PAGE_SIZE, ..MachineConfig::default() },
            user_frames: None,
        },
        nipt_entries,
        ..MulticomputerConfig::default()
    };
    let mut mc = Multicomputer::new(nodes, config);
    let pairs = usize::from(nodes) / 2;
    let mut programs = Vec::with_capacity(usize::from(nodes));
    let per_client = tenants_per_client * requests_per_tenant as usize;

    for p in 0..pairs {
        let (client_node, server_node) = (2 * p, 2 * p + 1);
        let client_id = NodeId::new(client_node as u16);
        let server_id = NodeId::new(server_node as u16);
        let mut client_dir = NiptDirectory::new();
        let mut server_dir = NiptDirectory::new();
        let mut client_tenants = Vec::with_capacity(tenants_per_client);
        let mut server_tenants = Vec::with_capacity(tenants_per_client);
        for t in 0..tenants_per_client {
            // The tenant pair: one process on each side, each with an
            // outbound payload page and an exported one-page window.
            let cpid = mc.spawn_process(client_node);
            let spid = mc.spawn_process(server_node);
            for (node, pid) in [(client_node, cpid), (server_node, spid)] {
                mc.map_user_buffer(node, pid, SRC_VA, 1).expect("map payload page");
                mc.map_user_buffer(node, pid, WINDOW_VA, 1).expect("map window page");
            }
            let request: Vec<u8> =
                (0..SERVING_MSG_BYTES).map(|i| (i.wrapping_add(t as u64) % 251) as u8).collect();
            mc.write_user(client_node, cpid, VirtAddr::new(SRC_VA), &request).expect("fill req");
            let reply: Vec<u8> =
                (0..SERVING_MSG_BYTES).map(|i| (i.wrapping_mul(3) % 239) as u8).collect();
            mc.write_user(server_node, spid, VirtAddr::new(SRC_VA), &reply).expect("fill rep");

            // Cross-export the windows. The frames go into each side's
            // NIPT *directory*, not the table: mappings are imported on
            // demand, mid-run, under contention.
            let req_frames = mc
                .node_mut(server_node)
                .export_pages(spid, VirtAddr::new(WINDOW_VA), 1)
                .expect("export request window");
            let rep_frames = mc
                .node_mut(client_node)
                .export_pages(cpid, VirtAddr::new(WINDOW_VA), 1)
                .expect("export reply window");
            let request_paddr = req_frames[0].base();
            let reply_paddr = rep_frames[0].base();
            let c_handle = client_dir.register(cpid, server_id, req_frames);
            let s_handle = server_dir.register(spid, client_id, rep_frames);
            let class = if t.is_multiple_of(4) { PacketClass::System } else { PacketClass::User };
            client_tenants.push(ClientTenant { pid: cpid, handle: c_handle, reply_paddr, class });
            server_tenants.push(ServerTenant { pid: spid, request_paddr, handle: s_handle });
        }
        programs.push(ProgramPlan {
            node: client_node,
            program: Box::new(ServingClient {
                dir: client_dir,
                tenants: client_tenants,
                msg_bytes: SERVING_MSG_BYTES,
                total: per_client,
                issued: 0,
                completed: 0,
                in_flight: None,
                latency: Histogram::new(),
            }),
        });
        programs.push(ProgramPlan {
            node: server_node,
            program: Box::new(ServingServer {
                dir: server_dir,
                tenants: server_tenants,
                msg_bytes: SERVING_MSG_BYTES,
                expected: per_client,
                replied: 0,
            }),
        });
    }
    ServingRig { mc, programs, requests: (pairs * per_client) as u64 }
}

/// Everything a serving run yields beyond the row: the merged
/// request-latency histogram and the machine-wide NIPT churn counters.
pub struct ServingOutcome {
    /// The `BENCH_throughput.json` row.
    pub result: ThroughputResult,
    /// Merged request latency across every client (simulated ns).
    pub latency: Histogram,
    /// NIPT slot runs recycled machine-wide.
    pub nipt_evictions: u64,
    /// Sends that found their slot recycled and reloaded machine-wide.
    pub nipt_refaults: u64,
}

/// Runs the serving workload and reports it as a throughput row carrying
/// request p50/p90/p99 and the NIPT churn counters. The digest — and
/// every simulated figure, the percentiles included — is identical at
/// every thread count.
///
/// # Panics
///
/// Panics on setup traps, on a failed run, or if any request goes
/// unanswered.
pub fn serving(
    nodes: u16,
    tenants_per_client: usize,
    requests_per_tenant: u32,
    threads: usize,
) -> ServingOutcome {
    serving_impl(nodes, tenants_per_client, requests_per_tenant, threads, false).0
}

/// [`serving`] with the flight recorder on for the whole run, returning
/// the `SHRTRC01` binary trace alongside — the serving analogue of
/// [`stream_pairs_traced_bin`](crate::host_perf::stream_pairs_traced_bin).
/// Trace bytes must be identical at every thread count.
///
/// # Panics
///
/// As for [`serving`].
pub fn serving_traced(
    nodes: u16,
    tenants_per_client: usize,
    requests_per_tenant: u32,
    threads: usize,
) -> (ServingOutcome, Vec<u8>) {
    let (outcome, trace) =
        serving_impl(nodes, tenants_per_client, requests_per_tenant, threads, true);
    (outcome, trace.expect("tracing was enabled"))
}

fn serving_impl(
    nodes: u16,
    tenants_per_client: usize,
    requests_per_tenant: u32,
    threads: usize,
    traced: bool,
) -> (ServingOutcome, Option<Vec<u8>>) {
    let ServingRig { mut mc, mut programs, requests } =
        serving_rig(nodes, tenants_per_client, requests_per_tenant);
    if traced {
        mc.set_tracing(true);
    }
    let t0 = Instant::now();
    let report = mc.run_programs(&mut programs, threads).expect("serving run");
    let wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(mc.dropped_packets(), 0, "serving must not drop packets");

    // Harvest the per-client latency histograms out of the returned
    // programs and the churn counters out of every NIC.
    let mut latency = Histogram::new();
    let mut completed = 0u64;
    for pp in &mut programs {
        if let Some(client) = pp.program.as_any_mut().downcast_mut::<ServingClient>() {
            latency.merge(client.latency());
            completed += client.completed() as u64;
        }
    }
    assert_eq!(completed, requests, "every request must be answered");
    let (mut evictions, mut refaults) = (0u64, 0u64);
    for i in 0..mc.node_count() {
        let nipt = mc.node(i).os().machine().device().nipt();
        evictions += nipt.evictions();
        refaults += nipt.refaults();
    }

    // Per-stage percentiles when traced: the request figure says how the
    // serving path feels end to end, the stage split says where the
    // simulated time went (initiation vs queueing vs wire).
    let stage_ns = traced.then(|| {
        let mut out = [[0u64; 3]; shrimp_sim::STAGE_COUNT];
        for (slot, stage) in out.iter_mut().zip(shrimp_sim::Stage::ALL) {
            let h = mc.recorder().stage_histogram(stage);
            let sq = |p: f64| h.quantile(p).unwrap_or(0);
            *slot = [sq(0.50), sq(0.90), sq(0.99)];
        }
        out
    });
    let q = |p: f64| latency.quantile(p).unwrap_or(0);
    let result = ThroughputResult {
        name: format!(
            "serving_{}b_{}node_{}x{}_t{}",
            SERVING_MSG_BYTES, nodes, tenants_per_client, requests_per_tenant, threads
        ),
        nodes,
        msg_bytes: SERVING_MSG_BYTES,
        messages: report.messages,
        threads,
        wall_s,
        msgs_per_sec: report.messages as f64 / wall_s,
        mb_per_sec: (report.messages * SERVING_MSG_BYTES) as f64 / wall_s / (1024.0 * 1024.0),
        digest: mc.state_digest(),
        commit: commit_hash(),
        host_cores: host_logical_cores(),
        allocs_per_msg: None,
        phases: None,
        stage_ns,
        request_ns: Some([q(0.50), q(0.90), q(0.99)]),
        nipt_churn: Some([evictions, refaults]),
    };
    let trace = traced.then(|| mc.export_trace_bin());
    (ServingOutcome { result, latency, nipt_evictions: evictions, nipt_refaults: refaults }, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_answers_every_request_and_churns_the_nipt() {
        let out = serving(4, 8, 2, 1);
        assert_eq!(out.latency.count(), 2 * 8 * 2);
        assert!(out.nipt_evictions > 0, "8 tenants over 2 slots must evict");
        assert!(out.nipt_refaults > 0, "round-robin over 2 slots must refault");
        let [p50, p90, p99] = out.result.request_ns.expect("serving row has request latencies");
        assert!(p50 > 0 && p90 >= p50 && p99 >= p90, "{p50} {p90} {p99}");
        assert_eq!(out.result.messages, 2 * 2 * 8 * 2, "a reply per request");
    }

    #[test]
    fn serving_digest_is_thread_invariant() {
        let a = serving(4, 4, 2, 1);
        let b = serving(4, 4, 2, 2);
        assert_eq!(a.result.digest, b.result.digest);
        assert_eq!(a.result.request_ns, b.result.request_ns, "latency is simulated time");
    }

    #[test]
    fn serving_row_renders_the_new_fields() {
        let out = serving(2, 4, 1, 1);
        let j = out.result.to_json();
        assert!(j.contains("\"request_p50_p90_p99_ns\":["), "{j}");
        assert!(j.contains("\"nipt_evictions_refaults\":["), "{j}");
        assert!(j.contains("\"name\":\"serving_256b_2node_4x1_t1\""), "{j}");
    }
}
