//! A counting wrapper around the system allocator.
//!
//! Used by the `host_throughput` harness (and the zero-allocation
//! regression test) to measure how many heap allocations the simulator's
//! steady-state data plane performs per message. The wrapper only counts;
//! all actual allocation is delegated to [`std::alloc::System`].
//!
//! Register it as the global allocator from a binary or test:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: shrimp_bench::alloc_count::CountingAlloc =
//!     shrimp_bench::alloc_count::CountingAlloc;
//! ```
//!
//! Counting is always compiled in here; the `count-allocs` feature only
//! controls whether `host_throughput` registers the wrapper (so the
//! default build measures undisturbed wall-clock).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// The counting allocator. Zero-sized; all state is global.
pub struct CountingAlloc;

#[allow(unsafe_code)]
// SAFETY: every method delegates verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the atomic counter updates have no effect on
// allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same layout handed unchanged to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: `ptr`/`layout` come from our `alloc`, which is `System`'s.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: arguments forwarded unchanged to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Heap allocations observed so far (monotone; see [`delta_since`]).
pub fn allocation_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Bytes requested from the allocator so far.
pub fn allocated_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// Allocations since a previous [`allocation_count`] reading.
pub fn delta_since(mark: u64) -> u64 {
    allocation_count().saturating_sub(mark)
}

/// `true` when the counting allocator is actually registered (counts
/// advance when a heap allocation happens).
pub fn is_active() -> bool {
    let before = allocation_count();
    let v = std::hint::black_box(vec![0u8; 64]);
    drop(v);
    allocation_count() > before
}
