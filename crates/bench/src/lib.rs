//! Experiment implementations for every table and figure of the paper.
//!
//! Each experiment is a library function returning structured data, with a
//! thin `src/bin/*` wrapper that prints the paper-style table. This lets
//! the crate's own tests assert the *shape* results (who wins, crossover
//! locations, checkpoint percentages) that EXPERIMENTS.md records.
//!
//! | id | paper artifact | binary |
//! |----|----------------|--------|
//! | [`fig8`] | Figure 8: deliberate-update bandwidth vs message size | `fig8` |
//! | [`hippi`] | §1 motivation: Paragon/HIPPI overhead table | `t1_hippi` |
//! | [`init_cost`] | §8/§2: initiation cost, UDMA vs kernel DMA | `t2_init_cost` |
//! | [`crossover`] | §9: UDMA vs memory-mapped-FIFO (PIO) crossover | `crossover_pio` |
//! | [`queueing`] | §7: hardware queueing vs serialized per-page UDMA | `queueing` |
//! | [`ctxswitch`] | §6 I1: context-switch Inval retry behaviour | `ctxswitch` |
//! | [`pinning`] | §6 I4: register-check vs pin/unpin | `pinning` |

// `deny`, not `forbid`: `alloc_count` needs one `unsafe impl GlobalAlloc`
// (explicitly allowed at the impl) to delegate to the system allocator.
#![deny(unsafe_code)]

pub mod alloc_count;
pub mod auto_update;
pub mod crossover;
pub mod ctxswitch;
pub mod fig8;
pub mod hippi;
pub mod host_perf;
pub mod init_cost;
pub mod latency;
pub mod pinning;
pub mod queueing;
pub mod scaling;
pub mod sensitivity;
pub mod serving;
pub mod table;
pub mod workloads;
