//! Extension experiment: one-way end-to-end latency and its breakdown.
//!
//! The companion question to Figure 8's bandwidth: how long from the
//! sender's first instruction until the last byte sits in remote memory,
//! and where does the time go? Components measured separately:
//! user-level initiation, sender DMA (start + bus), packetization, fabric
//! (hops + wire), and receive-side EISA DMA.

use shrimp::Multicomputer;
use shrimp_mem::{VirtAddr, PAGE_SIZE};
use shrimp_sim::{CostModel, SimDuration};

/// Latency measurement for one message size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyPoint {
    /// Message size in bytes.
    pub bytes: u64,
    /// Measured end-to-end one-way latency.
    pub end_to_end: SimDuration,
    /// Model components (for the breakdown columns).
    pub initiation: SimDuration,
    /// Sender-side DMA: engine start + bus burst.
    pub sender_dma: SimDuration,
    /// NIC packetization (header build).
    pub packetize: SimDuration,
    /// Fabric: routing hops + wire time.
    pub fabric: SimDuration,
    /// Receive-side EISA DMA (start + burst).
    pub receive_dma: SimDuration,
}

/// Measures one-way latency (sender's first instruction to delivery
/// completion at the receiver) for each message size.
pub fn sweep(sizes: &[u64]) -> Vec<LatencyPoint> {
    let cost = CostModel::default();
    sizes
        .iter()
        .map(|&bytes| {
            assert!(bytes % 4 == 0 && bytes <= PAGE_SIZE, "single-transfer sizes only");
            let mut mc = Multicomputer::new(2, Default::default());
            let s = mc.spawn_process(0);
            let r = mc.spawn_process(1);
            mc.map_user_buffer(0, s, 0x10_0000, 2).expect("map src");
            mc.map_user_buffer(1, r, 0x40_0000, 2).expect("map dst");
            let dev = mc.export(1, r, VirtAddr::new(0x40_0000), 2, 0, s).expect("export");
            mc.write_user(0, s, VirtAddr::new(0x10_0000), &vec![1u8; bytes as usize])
                .expect("fill");
            mc.send(0, s, VirtAddr::new(0x10_0000), dev, 0, bytes).expect("warm");

            let t0 = mc.node(0).os().machine().now();
            mc.send(0, s, VirtAddr::new(0x10_0000), dev, 0, bytes).expect("send");
            let end_to_end = mc.last_delivery(1) - t0;

            let wire = Packets::wire(bytes, &cost);
            LatencyPoint {
                bytes,
                end_to_end,
                initiation: cost.udma_per_message_sw + cost.udma_initiation(),
                sender_dma: cost.dma_start + cost.bus_transfer(bytes),
                packetize: cost.packet_header,
                fabric: wire,
                receive_dma: cost.dma_start + cost.bus_transfer(bytes),
            }
        })
        .collect()
}

struct Packets;
impl Packets {
    fn wire(bytes: u64, cost: &CostModel) -> SimDuration {
        // 2x2 mesh neighbours: 2 hops + wire bytes (header + payload).
        cost.net_hop * 2 + cost.net_transfer(bytes + 16)
    }
}

/// Default sizes: a word through a full page.
pub const DEFAULT_SIZES: [u64; 6] = [8, 64, 256, 1024, 2048, 4096];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_components_account_for_end_to_end() {
        for p in sweep(&[64, 1024, 4096]) {
            let model = p.initiation + p.sender_dma + p.packetize + p.fabric + p.receive_dma;
            let ratio = p.end_to_end.as_nanos() as f64 / model.as_nanos() as f64;
            assert!(
                (0.85..1.25).contains(&ratio),
                "{}B: measured {} vs model {} (ratio {ratio:.2})",
                p.bytes,
                p.end_to_end,
                model
            );
        }
    }

    #[test]
    fn small_message_latency_is_tens_of_microseconds() {
        let p = sweep(&[8])[0];
        let us = p.end_to_end.as_micros_f64();
        assert!(
            (15.0..40.0).contains(&us),
            "8B one-way latency {us:.1}us (expected tens of us on this platform)"
        );
    }

    #[test]
    fn latency_grows_linearly_with_size_at_page_scale() {
        let points = sweep(&[1024, 2048, 4096]);
        let d1 = points[1].end_to_end - points[0].end_to_end;
        let d2 = points[2].end_to_end - points[1].end_to_end;
        // 2KB increments: both deltas should be ~2KB of (sender + receiver)
        // pipeline time; allow generous slack for pipelining effects.
        let ratio = d2.as_nanos() as f64 / d1.as_nanos().max(1) as f64;
        assert!((0.5..3.0).contains(&ratio), "nonlinear growth: {d1} then {d2}");
    }
}
