//! Extension experiment: sensitivity of the paper's headline result to the
//! platform parameters.
//!
//! The paper's core claim is that two-reference initiation makes DMA
//! efficient at *fine grain*: the half-peak message size is proportional
//! to (per-transfer overhead × channel bandwidth). This experiment sweeps
//! the two parameters that dominate that product — I/O-bus bandwidth and
//! the uncached proxy-reference cost — and reports where the half-peak
//! point lands, probing how the conclusion would transfer to faster
//! platforms (the question the RDMA lineage answered in practice).

use shrimp::Multicomputer;
use shrimp_machine::MachineConfig;
use shrimp_mem::{VirtAddr, PAGE_SIZE};
use shrimp_sim::{CostModel, SimDuration};

/// Result of one parameter setting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SensitivityPoint {
    /// Human-readable parameter description index (into the sweep's labels).
    pub bus_mb_per_s: f64,
    /// Proxy reference cost used.
    pub proxy_ref: SimDuration,
    /// Peak bandwidth achieved (MB/s).
    pub peak_mb_per_s: f64,
    /// Smallest message size reaching 50% of that peak.
    pub half_peak_bytes: u64,
    /// Fraction of peak at 4 KB.
    pub at_4k: f64,
}

fn bandwidth(mc: &mut Multicomputer, bytes: u64) -> f64 {
    let s = mc.spawn_process(0);
    let r = mc.spawn_process(1);
    let pages = bytes.div_ceil(PAGE_SIZE).max(1) + 1;
    mc.map_user_buffer(0, s, 0x10_0000, pages).expect("map src");
    mc.map_user_buffer(1, r, 0x40_0000, pages).expect("map dst");
    let dev = mc.export(1, r, VirtAddr::new(0x40_0000), pages, 0, s).expect("export");
    mc.write_user(0, s, VirtAddr::new(0x10_0000), &vec![1u8; bytes as usize]).expect("fill");
    mc.send(0, s, VirtAddr::new(0x10_0000), dev, 0, bytes).expect("warm");
    let t0 = mc.node(0).os().machine().now();
    for _ in 0..4 {
        mc.send(0, s, VirtAddr::new(0x10_0000), dev, 0, bytes).expect("send");
    }
    let dt = mc.node(0).os().machine().now() - t0;
    (4 * bytes) as f64 / dt.as_micros_f64()
}

/// Measures one configuration across a coarse size sweep.
pub fn measure(cost: CostModel) -> SensitivityPoint {
    let bus = cost.bus_mb_per_s;
    let proxy_ref = cost.proxy_store;
    let sizes: Vec<u64> = (1..=32).map(|i| i * 256).collect(); // 256B..8KB
    let mut best = 0.0f64;
    let mut curve = Vec::new();
    for &bytes in &sizes {
        let mut mc = Multicomputer::with_machine_config(
            2,
            MachineConfig { cost: cost.clone(), ..MachineConfig::default() },
        );
        let bw = bandwidth(&mut mc, bytes);
        best = best.max(bw);
        curve.push((bytes, bw));
    }
    let half_peak_bytes =
        curve.iter().find(|&&(_, bw)| bw >= best / 2.0).map(|&(b, _)| b).unwrap_or(u64::MAX);
    let at_4k = curve
        .iter()
        .min_by_key(|&&(b, _)| b.abs_diff(4096))
        .map(|&(_, bw)| bw / best)
        .unwrap_or(0.0);
    SensitivityPoint { bus_mb_per_s: bus, proxy_ref, peak_mb_per_s: best, half_peak_bytes, at_4k }
}

/// Sweeps bus bandwidth at the calibrated proxy cost, then proxy cost at
/// the calibrated bus bandwidth.
pub fn sweep() -> (Vec<SensitivityPoint>, Vec<SensitivityPoint>) {
    let base = CostModel::default();
    let bus_points = [16.5, 33.0, 66.0, 132.0]
        .iter()
        .map(|&b| measure(base.clone().with_bus_mb_per_s(b)))
        .collect();
    let proxy_points = [0.55, 1.1, 2.2, 4.4]
        .iter()
        .map(|&us| {
            let mut c = base.clone();
            c.proxy_store = SimDuration::from_us(us);
            c.proxy_load = SimDuration::from_us(us);
            measure(c)
        })
        .collect();
    (bus_points, proxy_points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faster_bus_pushes_half_peak_out() {
        // Same overhead on a faster channel wastes relatively more time:
        // half-peak size grows with bandwidth.
        let base = CostModel::default();
        let slow = measure(base.clone().with_bus_mb_per_s(16.5));
        let fast = measure(base.with_bus_mb_per_s(66.0));
        assert!(
            fast.half_peak_bytes > slow.half_peak_bytes,
            "fast {} !> slow {}",
            fast.half_peak_bytes,
            slow.half_peak_bytes
        );
        assert!(fast.peak_mb_per_s > slow.peak_mb_per_s * 2.0);
    }

    #[test]
    fn cheaper_proxy_references_pull_half_peak_in() {
        let base = CostModel::default();
        let mut cheap = base.clone();
        cheap.proxy_store = SimDuration::from_us(0.25);
        cheap.proxy_load = SimDuration::from_us(0.25);
        let mut dear = base;
        dear.proxy_store = SimDuration::from_us(4.4);
        dear.proxy_load = SimDuration::from_us(4.4);
        let cheap = measure(cheap);
        let dear = measure(dear);
        assert!(
            cheap.half_peak_bytes <= dear.half_peak_bytes,
            "cheap {} !<= dear {}",
            cheap.half_peak_bytes,
            dear.half_peak_bytes
        );
        assert!(cheap.at_4k >= dear.at_4k);
    }

    #[test]
    fn calibrated_point_matches_fig8() {
        let p = measure(CostModel::default());
        assert!(p.half_peak_bytes <= 512, "half-peak at {}B", p.half_peak_bytes);
        assert!((0.88..=1.0).contains(&p.at_4k), "4KB at {:.2}", p.at_4k);
    }
}
