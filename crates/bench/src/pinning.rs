//! §6 I4 ablation: pinning versus the register check.
//!
//! "Although this scheme has the same effect as page pinning, it is much
//! faster. Pinning requires changing the page table on every DMA, while
//! our mechanism requires no kernel action in the common case."
//!
//! Two measurements:
//!
//! 1. **Per-transfer protection overhead** — a stream of one-page
//!    transfers with no memory pressure: the kernel path pays pin+unpin
//!    per page; UDMA pays nothing.
//! 2. **Under pressure** — the same stream while a second process thrashes
//!    a tight memory: the pager must skip hardware-held frames (I4) but
//!    everything stays correct.

use shrimp_devices::StreamSink;
use shrimp_machine::MachineConfig;
use shrimp_mem::{VirtAddr, PAGE_SIZE};
use shrimp_os::{DmaStrategy, Node, NodeConfig};
use shrimp_sim::{CostModel, SimDuration};

/// Measurement 1: per-transfer protection overhead.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProtectionCost {
    /// Transfers measured.
    pub transfers: u64,
    /// Mean time per transfer, kernel DMA path.
    pub kernel_per_transfer: SimDuration,
    /// Mean time per transfer, UDMA path.
    pub udma_per_transfer: SimDuration,
    /// Page-table pin/unpin operations the kernel path performed.
    pub kernel_pins: u64,
    /// Pin operations the UDMA path performed (zero in the common case).
    pub udma_pins: u64,
}

/// Measurement 2: behaviour under memory pressure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PressureRun {
    /// Total simulated time.
    pub elapsed: SimDuration,
    /// Evictions performed by the pager.
    pub evictions: u64,
    /// Frames the pager skipped because the UDMA hardware named them (I4).
    pub i4_skips: u64,
    /// Transfers completed (all of them).
    pub transfers: u64,
}

fn fresh_node(frames: Option<u64>) -> Node<StreamSink> {
    let config = NodeConfig {
        machine: MachineConfig { mem_bytes: 512 * PAGE_SIZE, ..MachineConfig::default() },
        user_frames: frames,
    };
    Node::new(config, StreamSink::new("sink"))
}

/// Measures per-transfer overhead for `transfers` one-page transfers.
pub fn protection_cost(transfers: u64) -> ProtectionCost {
    // Kernel path.
    let mut n = fresh_node(None);
    let pid = n.spawn();
    n.mmap(pid, 0x10_0000, 1, true).expect("map");
    n.write_user(pid, VirtAddr::new(0x10_0000), &vec![1u8; PAGE_SIZE as usize]).expect("fill");
    n.sys_dma_to_device(pid, VirtAddr::new(0x10_0000), 0, PAGE_SIZE, DmaStrategy::PinPages)
        .expect("warm");
    let t0 = n.machine().now();
    for _ in 0..transfers {
        n.sys_dma_to_device(pid, VirtAddr::new(0x10_0000), 0, PAGE_SIZE, DmaStrategy::PinPages)
            .expect("kernel transfer");
    }
    let kernel_total = n.machine().now() - t0;
    let kernel_pins = n.stats().get("pins");

    // UDMA path.
    let mut n = fresh_node(None);
    let pid = n.spawn();
    n.mmap(pid, 0x10_0000, 1, true).expect("map");
    n.grant_device_proxy(pid, 0, 1, true).expect("grant");
    n.write_user(pid, VirtAddr::new(0x10_0000), &vec![1u8; PAGE_SIZE as usize]).expect("fill");
    n.udma_send(pid, VirtAddr::new(0x10_0000), 0, 0, PAGE_SIZE).expect("warm");
    let t0 = n.machine().now();
    for _ in 0..transfers {
        n.udma_send(pid, VirtAddr::new(0x10_0000), 0, 0, PAGE_SIZE).expect("udma transfer");
    }
    let udma_total = n.machine().now() - t0;
    let udma_pins = n.stats().get("pins");

    ProtectionCost {
        transfers,
        kernel_per_transfer: kernel_total / transfers,
        udma_per_transfer: udma_total / transfers,
        kernel_pins,
        udma_pins,
    }
}

/// Runs `transfers` UDMA sends while a second process cycles through
/// `thrash_pages` pages of a `frames`-frame memory, forcing evictions
/// between sends. A slow bus keeps transfers in flight across evictions so
/// the I4 check actually fires.
pub fn pressure_run(transfers: u64, frames: u64, thrash_pages: u64) -> PressureRun {
    let cost = CostModel {
        bus_mb_per_s: 2.0, // one page ~2ms on the bus: outlives evictions
        disk_seek: SimDuration::from_us(20.0),
        disk_rotation: SimDuration::from_us(10.0),
        disk_mb_per_s: 500.0,
        ..CostModel::default()
    };
    let config = NodeConfig {
        machine: MachineConfig { mem_bytes: 512 * PAGE_SIZE, cost, ..MachineConfig::default() },
        user_frames: Some(frames),
    };
    let mut n = Node::new(config, StreamSink::new("sink"));
    let sender = n.spawn();
    let thrasher = n.spawn();
    n.mmap(sender, 0x10_0000, 1, true).expect("map sender");
    n.grant_device_proxy(sender, 0, 1, true).expect("grant");
    n.mmap(thrasher, 0x80_0000, thrash_pages, true).expect("map thrasher");
    n.write_user(sender, VirtAddr::new(0x10_0000), &vec![1u8; PAGE_SIZE as usize]).expect("fill");
    n.udma_send(sender, VirtAddr::new(0x10_0000), 0, 0, PAGE_SIZE).expect("warm");

    let t0 = n.machine().now();
    let mut touch = 0u64;
    let layout = n.machine().layout();
    let vproxy = layout.proxy_of_virt(VirtAddr::new(0x10_0000)).expect("in memory region");
    for _ in 0..transfers {
        // Initiate (two references) but do NOT wait for completion...
        let status = n
            .udma_initiate(sender, VirtAddr::new(shrimp_mem::DEV_PROXY_BASE), vproxy, PAGE_SIZE)
            .expect("initiate");
        assert!(status.started() || status.should_retry(), "{status}");
        // ...so the thrasher's evictions race the in-flight transfer.
        for _ in 0..4 {
            let va = VirtAddr::new(0x80_0000 + (touch % thrash_pages) * PAGE_SIZE);
            n.user_store(thrasher, va, 1).expect("thrash");
            touch += 1;
        }
        n.check_invariants().expect("invariants must hold under pressure");
        let drained = n.machine().udma_drained_at();
        n.machine_mut().advance_to(drained);
    }
    PressureRun {
        elapsed: n.machine().now() - t0,
        evictions: n.stats().get("evictions"),
        i4_skips: n.stats().get("i4_skips"),
        transfers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udma_has_no_pinning_and_lower_overhead() {
        let p = protection_cost(16);
        assert_eq!(p.udma_pins, 0, "UDMA must pin nothing in the common case");
        assert_eq!(p.kernel_pins, 17, "kernel path pins once per transfer (incl. warm)");
        assert!(
            p.udma_per_transfer < p.kernel_per_transfer,
            "udma {} !< kernel {}",
            p.udma_per_transfer,
            p.kernel_per_transfer
        );
    }

    #[test]
    fn pressure_exercises_i4_without_violations() {
        let r = pressure_run(6, 4, 10);
        assert!(r.evictions > 0, "pressure must evict");
        assert!(r.i4_skips > 0, "the pager must have skipped hardware-held frames");
        assert_eq!(r.transfers, 6);
    }
}
