//! §9 related-work comparison: memory-mapped FIFO (programmed I/O) versus
//! UDMA. "This approach results in good latency for short messages.
//! However, for longer messages the DMA-based controller is preferable
//! because it makes use of the bus burst mode, which is much faster than
//! processor-generated single word transactions."

use shrimp::Multicomputer;
use shrimp_mem::{VirtAddr, PAGE_SIZE};
use shrimp_os::Pid;
use shrimp_sim::SimDuration;

/// One comparison point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrossoverPoint {
    /// Message size in bytes.
    pub bytes: u64,
    /// Sender-side time for a UDMA send.
    pub udma: SimDuration,
    /// Sender-side time for a PIO send.
    pub pio: SimDuration,
}

/// The sweep result plus the located crossover.
#[derive(Clone, Debug)]
pub struct CrossoverResult {
    /// Points in ascending size.
    pub points: Vec<CrossoverPoint>,
    /// Smallest measured size where UDMA is at least as fast as PIO.
    pub crossover_bytes: Option<u64>,
}

struct Harness {
    mc: Multicomputer,
    sender: Pid,
    dev_page: u64,
}

fn harness(msg_bytes: u64) -> Harness {
    let mut mc = Multicomputer::new(2, Default::default());
    let sender = mc.spawn_process(0);
    let receiver = mc.spawn_process(1);
    let pages = msg_bytes.div_ceil(PAGE_SIZE).max(1) + 1;
    mc.map_user_buffer(0, sender, 0x10_0000, pages).expect("map sender");
    mc.map_user_buffer(1, receiver, 0x40_0000, pages).expect("map receiver");
    let dev_page =
        mc.export(1, receiver, VirtAddr::new(0x40_0000), pages, 0, sender).expect("export");
    mc.write_user(0, sender, VirtAddr::new(0x10_0000), &vec![7u8; msg_bytes as usize])
        .expect("fill");
    Harness { mc, sender, dev_page }
}

/// Measures both paths at each message size (sizes must be multiples of 4;
/// PIO messages above a page are sent page by page).
pub fn sweep(sizes: &[u64]) -> CrossoverResult {
    let mut points = Vec::new();
    for &bytes in sizes {
        assert!(bytes % 4 == 0, "NIC requires 4-byte alignment");
        let Harness { mut mc, sender, dev_page } = harness(bytes);

        // Warm both paths.
        mc.send(0, sender, VirtAddr::new(0x10_0000), dev_page, 0, bytes).expect("warm udma");
        send_pio_message(&mut mc, sender, dev_page, bytes);

        let t0 = mc.node(0).os().machine().now();
        mc.send(0, sender, VirtAddr::new(0x10_0000), dev_page, 0, bytes).expect("udma");
        let udma = mc.node(0).os().machine().now() - t0;

        let t0 = mc.node(0).os().machine().now();
        send_pio_message(&mut mc, sender, dev_page, bytes);
        let pio = mc.node(0).os().machine().now() - t0;

        points.push(CrossoverPoint { bytes, udma, pio });
    }
    let crossover_bytes = points.iter().find(|p| p.udma <= p.pio).map(|p| p.bytes);
    CrossoverResult { points, crossover_bytes }
}

/// Sends one message by PIO, one page chunk at a time.
fn send_pio_message(mc: &mut Multicomputer, sender: Pid, dev_page: u64, bytes: u64) {
    let data = vec![7u8; bytes as usize];
    let mut off = 0u64;
    while off < bytes {
        let chunk = (bytes - off).min(PAGE_SIZE);
        mc.send_pio(
            0,
            sender,
            dev_page + off / PAGE_SIZE,
            off % PAGE_SIZE,
            &data[off as usize..(off + chunk) as usize],
        )
        .expect("pio send");
        off += chunk;
    }
}

/// The default sweep sizes (word scale through 4 pages).
pub const DEFAULT_SIZES: [u64; 10] = [8, 16, 32, 64, 128, 256, 1024, 4096, 8192, 16384];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pio_wins_small_udma_wins_large() {
        let r = sweep(&[8, 16, 4096, 8192]);
        assert!(r.points[0].pio < r.points[0].udma, "8B: PIO should win (latency)");
        assert!(r.points[2].udma < r.points[2].pio, "4KB: UDMA should win (burst mode)");
        assert!(r.points[3].udma < r.points[3].pio, "8KB: UDMA should win");
    }

    #[test]
    fn crossover_is_sub_page() {
        let r = sweep(&DEFAULT_SIZES);
        let x = r.crossover_bytes.expect("a crossover exists");
        assert!((16..2048).contains(&x), "crossover at {x}B should be well below a page");
    }

    #[test]
    fn pio_time_scales_linearly_with_words() {
        let r = sweep(&[64, 128]);
        let t64 = r.points[0].pio.as_micros_f64();
        let t128 = r.points[1].pio.as_micros_f64();
        // Doubling the words roughly doubles the store count (fixed setup
        // stores amortize): expect a ratio in (1.4, 2.2).
        let ratio = t128 / t64;
        assert!((1.4..2.2).contains(&ratio), "ratio {ratio:.2}");
    }
}
