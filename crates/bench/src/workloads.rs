//! Extension experiment: realistic message-size mixes.
//!
//! The paper's motivation is that real communication is fine-grained —
//! "the overhead is the dominating factor which limits the utilization of
//! DMA devices for fine grained data transfers" (§1). This experiment
//! draws message sizes from several distributions and compares the three
//! send mechanisms end to end: UDMA, traditional kernel DMA, and
//! programmed I/O.

use shrimp::Multicomputer;
use shrimp_mem::{VirtAddr, PAGE_SIZE};
use shrimp_os::{DmaStrategy, Pid};
use shrimp_sim::{SimDuration, SplitMix64};

/// A message-size distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SizeDist {
    /// Every message is `0` bytes... no — every message is this many bytes.
    Fixed(u64),
    /// Uniform in `[lo, hi]` (rounded to 4-byte multiples).
    Uniform(u64, u64),
    /// Small with probability ~80%, large otherwise — the classic
    /// control-messages-plus-bulk-data mix.
    Bimodal {
        /// The frequent small size.
        small: u64,
        /// The occasional bulk size.
        large: u64,
    },
}

impl SizeDist {
    /// Draws one size.
    fn draw(self, rng: &mut SplitMix64) -> u64 {
        let raw = match self {
            SizeDist::Fixed(n) => n,
            SizeDist::Uniform(lo, hi) => lo + rng.next_below(hi - lo + 1),
            SizeDist::Bimodal { small, large } => {
                if rng.next_bool(0.8) {
                    small
                } else {
                    large
                }
            }
        };
        (raw.max(4) + 3) & !3 // NIC alignment
    }

    /// A short label for tables.
    pub fn label(self) -> String {
        match self {
            SizeDist::Fixed(n) => format!("fixed {n}B"),
            SizeDist::Uniform(lo, hi) => format!("uniform {lo}-{hi}B"),
            SizeDist::Bimodal { small, large } => format!("bimodal {small}B/{large}B"),
        }
    }
}

/// Which send mechanism to drive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mechanism {
    /// User-level DMA (the paper's contribution).
    Udma,
    /// Traditional kernel DMA with pinning.
    KernelDma,
    /// Programmed I/O through the memory-mapped FIFO window.
    Pio,
}

/// Result for one (distribution, mechanism) cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MixPoint {
    /// The distribution used.
    pub dist: SizeDist,
    /// The mechanism used.
    pub mechanism: Mechanism,
    /// Messages sent.
    pub messages: u32,
    /// Total payload bytes.
    pub bytes: u64,
    /// Total sender-side time.
    pub elapsed: SimDuration,
    /// Goodput in MB/s.
    pub mb_per_s: f64,
}

struct Ctx {
    mc: Multicomputer,
    pid: Pid,
    dev_page: u64,
}

fn fresh() -> Ctx {
    let mut mc = Multicomputer::new(2, Default::default());
    let pid = mc.spawn_process(0);
    let recv = mc.spawn_process(1);
    mc.map_user_buffer(0, pid, 0x10_0000, 2).expect("map src");
    mc.map_user_buffer(1, recv, 0x40_0000, 2).expect("map dst");
    let dev_page = mc.export(1, recv, VirtAddr::new(0x40_0000), 2, 0, pid).expect("export");
    mc.write_user(0, pid, VirtAddr::new(0x10_0000), &vec![0x5au8; PAGE_SIZE as usize])
        .expect("fill");
    Ctx { mc, pid, dev_page }
}

/// Runs one cell: `messages` draws from `dist` through `mechanism`.
/// The same `seed` across mechanisms produces identical size sequences.
pub fn run_cell(dist: SizeDist, mechanism: Mechanism, messages: u32, seed: u64) -> MixPoint {
    let Ctx { mut mc, pid, dev_page } = fresh();
    let mut rng = SplitMix64::new(seed);
    // Warm the chosen path.
    match mechanism {
        Mechanism::Udma => {
            mc.send(0, pid, VirtAddr::new(0x10_0000), dev_page, 0, 64).expect("warm");
        }
        Mechanism::KernelDma => {
            mc.node_mut(0)
                .os_mut()
                .sys_dma_to_device(pid, VirtAddr::new(0x10_0000), 0, 64, DmaStrategy::PinPages)
                .expect("warm");
            mc.propagate();
        }
        Mechanism::Pio => {
            mc.send_pio(0, pid, dev_page, 0, &[0u8; 64]).expect("warm");
        }
    }

    let payload = vec![0x5au8; PAGE_SIZE as usize];
    let t0 = mc.node(0).os().machine().now();
    let mut bytes = 0u64;
    for _ in 0..messages {
        let size = dist.draw(&mut rng).min(PAGE_SIZE);
        bytes += size;
        match mechanism {
            Mechanism::Udma => {
                mc.send(0, pid, VirtAddr::new(0x10_0000), dev_page, 0, size).expect("send");
            }
            Mechanism::KernelDma => {
                // The NIC is the device either way: the kernel path drives
                // the same board through the syscall interface.
                mc.node_mut(0)
                    .os_mut()
                    .sys_dma_to_device(
                        pid,
                        VirtAddr::new(0x10_0000),
                        0,
                        size,
                        DmaStrategy::PinPages,
                    )
                    .expect("send");
                mc.propagate();
            }
            Mechanism::Pio => {
                mc.send_pio(0, pid, dev_page, 0, &payload[..size as usize]).expect("send");
            }
        }
    }
    let elapsed = mc.node(0).os().machine().now() - t0;
    MixPoint {
        dist,
        mechanism,
        messages,
        bytes,
        elapsed,
        mb_per_s: bytes as f64 / elapsed.as_micros_f64(),
    }
}

/// The distributions of the standard mix table.
pub const DISTS: [SizeDist; 4] = [
    SizeDist::Fixed(128),
    SizeDist::Fixed(1024),
    SizeDist::Uniform(64, 2048),
    SizeDist::Bimodal { small: 64, large: 4096 },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_aligned_and_deterministic() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for dist in DISTS {
            for _ in 0..50 {
                let x = dist.draw(&mut a);
                assert_eq!(x, dist.draw(&mut b), "same seed, same draws");
                assert_eq!(x % 4, 0, "{dist:?} produced unaligned {x}");
                assert!(x >= 4);
            }
        }
    }

    #[test]
    fn udma_beats_kernel_dma_on_every_mix() {
        for dist in DISTS {
            let udma = run_cell(dist, Mechanism::Udma, 24, 42);
            let kernel = run_cell(dist, Mechanism::KernelDma, 24, 42);
            assert_eq!(udma.bytes, kernel.bytes, "same draws");
            assert!(
                udma.mb_per_s > kernel.mb_per_s,
                "{}: udma {:.2} !> kernel {:.2}",
                dist.label(),
                udma.mb_per_s,
                kernel.mb_per_s
            );
        }
    }

    #[test]
    fn pio_only_competitive_on_the_smallest_mix() {
        let small = SizeDist::Fixed(64);
        let udma = run_cell(small, Mechanism::Udma, 24, 7);
        let pio = run_cell(small, Mechanism::Pio, 24, 7);
        // At 64B PIO is close (within 3x either way)...
        let ratio = pio.mb_per_s / udma.mb_per_s;
        assert!((0.3..3.0).contains(&ratio), "64B ratio {ratio:.2}");
        // ...but loses clearly on the bulk-heavy mix.
        let mix = SizeDist::Bimodal { small: 64, large: 4096 };
        let udma = run_cell(mix, Mechanism::Udma, 24, 7);
        let pio = run_cell(mix, Mechanism::Pio, 24, 7);
        assert!(udma.mb_per_s > pio.mb_per_s * 1.5);
    }
}
