//! §1 motivation table: traditional kernel-mediated DMA on a 100 MB/s
//! Paragon/HIPPI channel \[13\] — "the overhead ... is more than 350
//! microseconds. With a data block size of 1 Kbyte, the transfer rate
//! achieved is only 2.7 MByte/sec, which is less than 2% of the raw
//! hardware bandwidth. Achieving a transfer rate of 80 MBytes/sec requires
//! the data block size to be larger than 64 KBytes."

use shrimp_devices::StreamSink;
use shrimp_machine::MachineConfig;
use shrimp_mem::{VirtAddr, PAGE_SIZE};
use shrimp_os::{DmaStrategy, Node, NodeConfig};
use shrimp_sim::CostModel;

/// One row of the motivation table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HippiPoint {
    /// Block size in bytes.
    pub bytes: u64,
    /// Achieved bandwidth, MB/s.
    pub mb_per_s: f64,
    /// Fraction of the 100 MB/s raw channel.
    pub pct_of_raw: f64,
    /// Per-transfer overhead (elapsed minus raw channel time), µs.
    pub overhead_us: f64,
}

/// Measures traditional-DMA bandwidth on the HIPPI-like platform for each
/// block size.
pub fn sweep(block_sizes: &[u64]) -> Vec<HippiPoint> {
    let cost = CostModel::paragon_hippi();
    let raw_mb_per_s = cost.bus_mb_per_s;
    let mut out = Vec::new();
    for &bytes in block_sizes {
        let config = NodeConfig {
            machine: MachineConfig {
                cost: cost.clone(),
                mem_bytes: (bytes / PAGE_SIZE + 64) * PAGE_SIZE,
                ..MachineConfig::default()
            },
            user_frames: None,
        };
        let mut node = Node::new(config, StreamSink::new("hippi"));
        let pid = node.spawn();
        let pages = bytes.div_ceil(PAGE_SIZE).max(1);
        node.mmap(pid, 0x10_0000, pages, true).expect("map buffer");
        node.write_user(pid, VirtAddr::new(0x10_0000), &vec![1u8; bytes as usize])
            .expect("fill buffer");
        // Warm (page in, fault once).
        node.sys_dma_to_device(pid, VirtAddr::new(0x10_0000), 0, bytes, DmaStrategy::PinPages)
            .expect("warm transfer");
        let r = node
            .sys_dma_to_device(pid, VirtAddr::new(0x10_0000), 0, bytes, DmaStrategy::PinPages)
            .expect("measured transfer");
        let mb_per_s = bytes as f64 / r.elapsed.as_micros_f64();
        let raw_us = bytes as f64 / raw_mb_per_s;
        out.push(HippiPoint {
            bytes,
            mb_per_s,
            pct_of_raw: mb_per_s / raw_mb_per_s,
            overhead_us: r.elapsed.as_micros_f64() - raw_us,
        });
    }
    out
}

/// The paper's block sizes plus surrounding context.
pub const DEFAULT_SIZES: [u64; 9] =
    [256, 512, 1024, 4096, 16384, 65536, 131_072, 262_144, 1_048_576];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_motivation_numbers_hold() {
        let points = sweep(&[1024, 65536, 262_144]);

        // ~2.7 MB/s at 1 KB (<4% of raw; paper says <2%, our kernel path
        // is slightly cheaper — shape, not absolute).
        let p1k = points[0];
        assert!(
            (2.0..4.0).contains(&p1k.mb_per_s),
            "1KB: {:.2} MB/s (expected ~2.7)",
            p1k.mb_per_s
        );
        assert!(p1k.overhead_us > 300.0, "overhead {:.0}us (paper: >350us)", p1k.overhead_us);

        // 80 MB/s requires blocks *larger* than 64 KB.
        assert!(points[1].mb_per_s < 80.0, "64KB: {:.1} MB/s must be <80", points[1].mb_per_s);
        assert!(points[2].mb_per_s > 80.0, "256KB: {:.1} MB/s must be >80", points[2].mb_per_s);
    }

    #[test]
    fn bandwidth_is_monotone_in_block_size() {
        let points = sweep(&[512, 4096, 65536]);
        assert!(points[0].mb_per_s < points[1].mb_per_s);
        assert!(points[1].mb_per_s < points[2].mb_per_s);
    }
}
