//! The data plane must stay allocation-free in steady state — with the
//! flight recorder off *and* on. Tracing reserves all ring storage when it
//! is enabled (before the measured window), so recording a span is a plain
//! array write; this test registers the counting allocator and holds the
//! harness to 0.00 heap allocations per message on the 4 KB stream.

use shrimp_bench::alloc_count::{self, CountingAlloc};
use shrimp_bench::host_perf;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn four_kb_stream_is_allocation_free_with_and_without_tracing() {
    assert!(alloc_count::is_active(), "counting allocator not registered");

    let plain = host_perf::stream_pairs(8, 4096, 2_000, 0);
    assert_eq!(
        plain.allocs_per_msg,
        Some(0.0),
        "untraced steady state allocated: {:?}/msg",
        plain.allocs_per_msg
    );

    let (traced, trace) = host_perf::stream_pairs_traced(8, 4096, 2_000, 0);
    assert_eq!(
        traced.allocs_per_msg,
        Some(0.0),
        "traced steady state allocated: {:?}/msg",
        traced.allocs_per_msg
    );
    assert!(trace.contains("\"ph\":\"X\""), "traced run exported no spans");
}

#[test]
fn metered_stream_is_allocation_free_with_metrics_updating() {
    assert!(alloc_count::is_active(), "counting allocator not registered");

    // The metrics plane's hot-path updates are plain indexed stores on
    // pre-registered counters — the metered steady state must stay at
    // exactly 0.00 allocations per message (snapshot rendering happens
    // after the measured window). The snapshot must also prove the
    // counters were live during the run, not registered-but-dead.
    let (metered, metrics) = host_perf::stream_pairs_metered(8, 4096, 2_000, 0);
    assert_eq!(
        metered.allocs_per_msg,
        Some(0.0),
        "metered steady state allocated: {:?}/msg",
        metered.allocs_per_msg
    );
    let counter = |sub: &str, name: &str| {
        metrics
            .lines()
            .find(|l| l.starts_with(&format!("{sub}/{name}")))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or_else(|| panic!("snapshot missing {sub}/{name}:\n{metrics}"))
    };
    // 4 pairs × (2000 steady + 1 warm-up) messages.
    assert_eq!(counter("delivery", "delivered"), 4 * 2_001);
    assert_eq!(counter("fabric", "packets"), 4 * 2_001);
    assert!(counter("tlb", "hits[0]") > 0, "TLB counters updated during the stream");
}

#[test]
fn parallel_stream_amortizes_to_zero_allocs_per_message() {
    assert!(alloc_count::is_active(), "counting allocator not registered");

    // The epoch loop itself is allocation-free; what remains is one-time
    // run() setup (shard assembly, thread spawn, first-epoch scratch),
    // which a steady-state stream must amortize below the bench table's
    // 0.00 rendering — at every shard count the bench sweeps. A per-epoch
    // allocation anywhere in the engine (the calendar wheel, the exchange
    // grid, the per-destination index) would scale with the message count
    // and blow far past this bound.
    for threads in [1usize, 2, 4] {
        let par = host_perf::stream_pairs(8, 4096, 25_000, threads);
        let allocs = par.allocs_per_msg.expect("counting allocator active");
        assert!(
            allocs < 0.002,
            "t={threads} stream allocated {allocs:.4}/msg (must render as 0.00)"
        );
    }
}

#[test]
fn big_mesh_parallel_stream_amortizes_to_zero_allocs_per_message() {
    assert!(alloc_count::is_active(), "counting allocator not registered");

    // A 256-node mesh multiplies the one-time per-run scratch (per-node
    // packet pools, per-destination index lanes, wheel slabs, exchange
    // lanes) by the node count — ~600 setup allocations for this run —
    // but the epoch loop itself must stay allocation-free, so a few
    // thousand sends per flow amortize setup below the rendering
    // threshold. A per-epoch or per-message allocation anywhere in the
    // big-mesh path would scale with the message count and fail this
    // bound at any stream length.
    let par = host_perf::stream_pairs(256, 4096, 3_000, 2);
    let allocs = par.allocs_per_msg.expect("counting allocator active");
    assert!(allocs < 0.002, "256-node t=2 stream allocated {allocs:.4}/msg");
}
