//! Micro-benchmarks of the simulator's hot primitives.
//!
//! These measure *host* performance of the building blocks (state machine,
//! proxy math, MMU, TLB, event queue) — engineering benchmarks that keep
//! the simulator fast, as opposed to the `src/bin/*` experiment harnesses
//! that reproduce the paper's *simulated* results.
//!
//! Self-timed (no external harness dependency): each benchmark runs a
//! short warm-up, then iterates until ~100 ms of wall clock has elapsed,
//! and the mean ns/iter is printed.

use std::hint::black_box;
use std::time::Instant;

use shrimp_dma::{DmaTiming, LoopbackPort};
use shrimp_mem::{Layout, Pfn, PhysAddr, PhysMemory, VirtAddr, Vpn, PAGE_SIZE};
use shrimp_mmu::{AccessKind, Mmu, Mode, PageTable, Pte, PteFlags};
use shrimp_sim::{EventQueue, SimTime, SplitMix64};
use udma_core::{plan::plan_transfer, state, UdmaController, UdmaStatus};

/// Runs `f` for ~100 ms after a short warm-up and prints mean ns/iter.
fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    const WARMUP: u32 = 1_000;
    const TARGET_NS: u128 = 100_000_000;
    for _ in 0..WARMUP {
        black_box(f());
    }
    let mut iters: u64 = 0;
    let mut batch: u64 = 1_000;
    let start = Instant::now();
    loop {
        for _ in 0..batch {
            black_box(f());
        }
        iters += batch;
        let elapsed = start.elapsed().as_nanos();
        if elapsed >= TARGET_NS {
            let per_iter = elapsed as f64 / iters as f64;
            println!("{name:<36} {per_iter:>12.1} ns/iter  ({iters} iters)");
            return;
        }
        batch = batch.saturating_mul(2);
    }
}

fn bench_state_machine() {
    bench("udma_state_transition", || {
        let (s, _) = state::transition(
            black_box(state::UdmaState::DestLoaded),
            black_box(state::UdmaEvent::Load),
        );
        s
    });
}

fn bench_proxy_math() {
    let layout = Layout::new(64 * 1024 * 1024, 1024 * PAGE_SIZE);
    bench("proxy_roundtrip", || {
        let p = layout.proxy_of_phys(black_box(PhysAddr::new(0x12345))).unwrap();
        layout.phys_of_proxy(p).unwrap()
    });
    let dest = layout.dev_proxy_addr(3, 0);
    let src = layout.proxy_of_phys(PhysAddr::new(0x4000)).unwrap();
    bench("plan_transfer", || {
        plan_transfer(&layout, black_box(dest), black_box(src), 4096).unwrap()
    });
}

fn bench_status_word() {
    let status = UdmaStatus {
        initiation: true,
        transferring: true,
        matches: true,
        remaining_bytes: 2048,
        ..UdmaStatus::default()
    };
    bench("status_pack_unpack", || UdmaStatus::unpack(black_box(status.pack())));
}

fn bench_mmu() {
    let mut pt = PageTable::new();
    for i in 0..128u64 {
        pt.map(
            Vpn::new(i),
            Pte::new(Pfn::new(i + 1), PteFlags::VALID | PteFlags::USER | PteFlags::WRITABLE),
        );
    }
    let mut mmu = Mmu::new(64);
    // Warm the TLB for the hit benchmark.
    let _ = mmu.translate(&mut pt, VirtAddr::new(0x1000), AccessKind::Read, Mode::User);
    bench("mmu_translate_tlb_hit", || {
        mmu.translate(&mut pt, black_box(VirtAddr::new(0x1008)), AccessKind::Read, Mode::User)
            .unwrap()
    });
    let mut i = 0u64;
    bench("mmu_translate_tlb_miss", || {
        mmu.flush_all();
        i = (i + 1) % 128;
        mmu.translate(
            &mut pt,
            black_box(VirtAddr::new(i * PAGE_SIZE)),
            AccessKind::Read,
            Mode::User,
        )
        .unwrap()
    });
}

fn bench_controller_initiation() {
    let layout = Layout::new(64 * PAGE_SIZE, 64 * PAGE_SIZE);
    let mut mem = PhysMemory::new(64 * PAGE_SIZE);
    let mut port = LoopbackPort::new(2 * PAGE_SIZE as usize);
    let mut udma = UdmaController::new(layout, DmaTiming::default());
    let dest = layout.dev_proxy_addr(0, 0);
    let src = layout.proxy_of_phys(PhysAddr::new(0x1000)).unwrap();
    let mut now = SimTime::ZERO;
    bench("udma_controller_full_initiation", || {
        udma.handle_store(dest, 64, now, &mut mem, &mut port);
        let status = udma.handle_load(src, now, &mut mem, &mut port);
        now += udma.engine().duration_for(64);
        udma.poll(now, &mut mem, &mut port);
        status
    });
}

fn bench_event_queue() {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = SplitMix64::new(1);
    bench("event_queue_schedule_pop", || {
        let t = SimTime::from_nanos(rng.next_below(1_000_000));
        q.schedule(t, 1);
        q.pop_due(SimTime::from_nanos(u64::MAX / 2))
    });
}

fn bench_phys_memory() {
    let mut mem = PhysMemory::new(1024 * PAGE_SIZE);
    let page = vec![0xa5u8; PAGE_SIZE as usize];
    bench("phys_memory_page_write", || {
        mem.write(black_box(PhysAddr::new(8 * PAGE_SIZE)), &page).unwrap()
    });
}

fn main() {
    bench_state_machine();
    bench_proxy_math();
    bench_status_word();
    bench_mmu();
    bench_controller_initiation();
    bench_event_queue();
    bench_phys_memory();
}
