//! Criterion micro-benchmarks of the simulator's hot primitives.
//!
//! These measure *host* performance of the building blocks (state machine,
//! proxy math, MMU, TLB, event queue) — engineering benchmarks that keep
//! the simulator fast, as opposed to the `src/bin/*` experiment harnesses
//! that reproduce the paper's *simulated* results.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use shrimp_dma::{DmaTiming, LoopbackPort};
use shrimp_mem::{Layout, Pfn, PhysAddr, PhysMemory, VirtAddr, Vpn, PAGE_SIZE};
use shrimp_mmu::{AccessKind, Mmu, Mode, PageTable, Pte, PteFlags};
use shrimp_sim::{EventQueue, SimTime, SplitMix64};
use udma_core::{plan::plan_transfer, state, UdmaController, UdmaStatus};

fn bench_state_machine(c: &mut Criterion) {
    c.bench_function("udma_state_transition", |b| {
        b.iter(|| {
            let (s, _) = state::transition(
                black_box(state::UdmaState::DestLoaded),
                black_box(state::UdmaEvent::Load),
            );
            s
        })
    });
}

fn bench_proxy_math(c: &mut Criterion) {
    let layout = Layout::new(64 * 1024 * 1024, 1024 * PAGE_SIZE);
    c.bench_function("proxy_roundtrip", |b| {
        b.iter(|| {
            let p = layout.proxy_of_phys(black_box(PhysAddr::new(0x12345))).unwrap();
            layout.phys_of_proxy(p).unwrap()
        })
    });
    let dest = layout.dev_proxy_addr(3, 0);
    let src = layout.proxy_of_phys(PhysAddr::new(0x4000)).unwrap();
    c.bench_function("plan_transfer", |b| {
        b.iter(|| plan_transfer(&layout, black_box(dest), black_box(src), 4096).unwrap())
    });
}

fn bench_status_word(c: &mut Criterion) {
    let status = UdmaStatus {
        initiation: true,
        transferring: true,
        matches: true,
        remaining_bytes: 2048,
        ..UdmaStatus::default()
    };
    c.bench_function("status_pack_unpack", |b| {
        b.iter(|| UdmaStatus::unpack(black_box(status.pack())))
    });
}

fn bench_mmu(c: &mut Criterion) {
    let mut pt = PageTable::new();
    for i in 0..128u64 {
        pt.map(
            Vpn::new(i),
            Pte::new(Pfn::new(i + 1), PteFlags::VALID | PteFlags::USER | PteFlags::WRITABLE),
        );
    }
    let mut mmu = Mmu::new(64);
    // Warm the TLB for the hit benchmark.
    let _ = mmu.translate(&mut pt, VirtAddr::new(0x1000), AccessKind::Read, Mode::User);
    c.bench_function("mmu_translate_tlb_hit", |b| {
        b.iter(|| {
            mmu.translate(&mut pt, black_box(VirtAddr::new(0x1008)), AccessKind::Read, Mode::User)
                .unwrap()
        })
    });
    c.bench_function("mmu_translate_tlb_miss", |b| {
        let mut i = 0u64;
        b.iter(|| {
            mmu.flush_all();
            i = (i + 1) % 128;
            mmu.translate(
                &mut pt,
                black_box(VirtAddr::new(i * PAGE_SIZE)),
                AccessKind::Read,
                Mode::User,
            )
            .unwrap()
        })
    });
}

fn bench_controller_initiation(c: &mut Criterion) {
    let layout = Layout::new(64 * PAGE_SIZE, 64 * PAGE_SIZE);
    let mut mem = PhysMemory::new(64 * PAGE_SIZE);
    let mut port = LoopbackPort::new(2 * PAGE_SIZE as usize);
    let mut udma = UdmaController::new(layout, DmaTiming::default());
    let dest = layout.dev_proxy_addr(0, 0);
    let src = layout.proxy_of_phys(PhysAddr::new(0x1000)).unwrap();
    c.bench_function("udma_controller_full_initiation", |b| {
        let mut now = SimTime::ZERO;
        b.iter(|| {
            udma.handle_store(dest, 64, now, &mut mem, &mut port);
            let status = udma.handle_load(src, now, &mut mem, &mut port);
            now += udma.engine().duration_for(64);
            udma.poll(now, &mut mem, &mut port);
            status
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut rng = SplitMix64::new(1);
        b.iter(|| {
            let t = SimTime::from_nanos(rng.next_below(1_000_000));
            q.schedule(t, 1);
            q.pop_due(SimTime::from_nanos(u64::MAX / 2))
        })
    });
}

fn bench_phys_memory(c: &mut Criterion) {
    let mut mem = PhysMemory::new(1024 * PAGE_SIZE);
    let page = vec![0xa5u8; PAGE_SIZE as usize];
    c.bench_function("phys_memory_page_write", |b| {
        b.iter(|| mem.write(black_box(PhysAddr::new(8 * PAGE_SIZE)), &page).unwrap())
    });
}

criterion_group!(
    micro,
    bench_state_machine,
    bench_proxy_math,
    bench_status_word,
    bench_mmu,
    bench_controller_initiation,
    bench_event_queue,
    bench_phys_memory
);
criterion_main!(micro);
