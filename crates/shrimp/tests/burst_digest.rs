//! Run batching must be invisible to every observer.
//!
//! The batched hot path (burst packetization, run-commit delivery,
//! delta-time advancement) is a pure host-side optimization: the state
//! digest and the exported trace bytes must be bit-identical whether
//! steady-state message trains replay as runs or execute
//! message-at-a-time — at every thread count, for burst sizes on both
//! sides of the parallel engine's epoch chunk, and for randomized
//! interleavings of burst and single-message sends.

use shrimp::{Multicomputer, MulticomputerConfig, NodePlan, PacketClass, SendOp};
use shrimp_mem::VirtAddr;
use shrimp_os::Pid;
use shrimp_sim::SplitMix64;

/// Burst sizes around every interesting boundary: 1 and 2 never batch
/// (calibration alone consumes them), 7 replays inside one epoch chunk,
/// 23 straddles the parallel engine's CHUNK = 16 window, 64 spans
/// several chunks.
const SIZES: [u64; 5] = [1, 2, 7, 64, 23];
const NBYTES: u64 = 1024;

struct Flow {
    node: usize,
    pid: Pid,
    dev_page: u64,
}

/// An `n`-node machine with disjoint sender→receiver pairs (`2p → 2p+1`),
/// tracing on (so trace bytes are part of every comparison).
fn build(n: u16) -> (Multicomputer, Vec<Flow>) {
    let mut mc = Multicomputer::new(n, MulticomputerConfig::default());
    let mut flows = Vec::new();
    for p in 0..(usize::from(n) / 2) {
        let (s, r) = (2 * p, 2 * p + 1);
        let spid = mc.spawn_process(s);
        let rpid = mc.spawn_process(r);
        mc.map_user_buffer(s, spid, 0x10_0000, 1).unwrap();
        mc.map_user_buffer(r, rpid, 0x40_0000, 1).unwrap();
        let dev_page = mc.export(r, rpid, VirtAddr::new(0x40_0000), 1, s, spid).unwrap();
        let fill: Vec<u8> = (0..NBYTES).map(|i| (i as u8) ^ (s as u8)).collect();
        mc.write_user(s, spid, VirtAddr::new(0x10_0000), &fill).unwrap();
        flows.push(Flow { node: s, pid: spid, dev_page });
    }
    mc.set_tracing(true);
    (mc, flows)
}

/// Destination offset for train `i`: alternating keeps adjacent trains
/// distinct ops, so each schedule entry is its own maximal run.
fn off(i: usize) -> u64 {
    (i as u64 % 2) * NBYTES
}

/// Serial driver: every flow sends each schedule entry as one
/// [`Multicomputer::send_burst`] train.
fn serial_fingerprint(burst: bool, schedule: &[u64]) -> (u64, String) {
    let (mut mc, flows) = build(4);
    mc.set_burst(burst);
    for f in &flows {
        for (i, &size) in schedule.iter().enumerate() {
            mc.send_burst(
                f.node,
                f.pid,
                VirtAddr::new(0x10_0000),
                f.dev_page,
                off(i),
                NBYTES,
                size,
            )
            .unwrap();
        }
    }
    mc.run_until_quiet();
    (mc.state_digest(), mc.export_trace())
}

/// Parallel engine: the same schedule as per-node plans — each entry
/// becomes a train of identical consecutive ops the engine may batch.
fn parallel_fingerprint(burst: bool, threads: usize, schedule: &[u64]) -> (u64, String) {
    let (mut mc, flows) = build(4);
    mc.set_burst(burst);
    let plans: Vec<NodePlan> = flows
        .iter()
        .map(|f| {
            let mut ops = Vec::new();
            for (i, &size) in schedule.iter().enumerate() {
                let op = SendOp {
                    pid: f.pid,
                    src_va: VirtAddr::new(0x10_0000),
                    dev_page: f.dev_page,
                    dev_off: off(i),
                    nbytes: NBYTES,
                    class: PacketClass::User,
                };
                ops.extend(std::iter::repeat_n(op, size as usize));
            }
            NodePlan { node: f.node, ops }
        })
        .collect();
    mc.run(&plans, threads).unwrap();
    (mc.state_digest(), mc.export_trace())
}

#[test]
fn serial_burst_replay_is_invisible() {
    let batched = serial_fingerprint(true, &SIZES);
    let literal = serial_fingerprint(false, &SIZES);
    assert_eq!(batched.0, literal.0, "state digest diverged");
    assert_eq!(batched.1, literal.1, "exported trace bytes diverged");
}

#[test]
fn burst_sweep_is_invisible_at_every_thread_count() {
    let reference = parallel_fingerprint(false, 1, &SIZES);
    for threads in [1usize, 2, 4] {
        let batched = parallel_fingerprint(true, threads, &SIZES);
        assert_eq!(batched.0, reference.0, "digest diverged at {threads} threads");
        assert_eq!(batched.1, reference.1, "trace bytes diverged at {threads} threads");
    }
    // The serial driver runs the identical workload to the identical
    // fingerprint — batching cannot tell the entry points apart either.
    let serial = serial_fingerprint(true, &SIZES);
    assert_eq!(serial, reference, "serial driver diverged from the parallel engine");
}

#[test]
fn random_interleavings_of_burst_and_single_sends_are_invisible() {
    // Deterministic in-tree RNG (never `thread_rng`): every failure
    // reproduces from the printed seed.
    for seed in 0..3u64 {
        let mut rng = SplitMix64::new(0x0B_5EED ^ seed);
        let trains = 4 + rng.next_below(5) as usize;
        let schedule: Vec<u64> = (0..trains).map(|_| 1 + rng.next_below(40)).collect();
        let reference = parallel_fingerprint(false, 1, &schedule);
        for threads in [1usize, 2, 4] {
            let batched = parallel_fingerprint(true, threads, &schedule);
            assert_eq!(
                batched.0, reference.0,
                "digest diverged: seed {seed}, {threads} threads, schedule {schedule:?}"
            );
            assert_eq!(
                batched.1, reference.1,
                "trace diverged: seed {seed}, {threads} threads, schedule {schedule:?}"
            );
        }
        let serial = serial_fingerprint(true, &schedule);
        assert_eq!(serial, reference, "serial diverged: seed {seed}, schedule {schedule:?}");
    }
}
