//! The delivery core: the **single** implementation of SHRIMP's receive
//! path.
//!
//! The paper's fast path is one hardware story — proxy reference →
//! packetize → wire → receive-side EISA DMA → status word — and this
//! module is where the receive half of that story lives, exactly once.
//! Both engine instantiations drain the same code:
//!
//! - the serial driver ([`Multicomputer::propagate`]) runs one
//!   [`DeliveryCore`] over one machine-wide
//!   [`FabricShard`](shrimp_net::FabricShard) with an unbounded horizon,
//! - the parallel engine ([`Multicomputer::run`]) runs one core per shard
//!   over that shard's fabric slice, bounded by the epoch horizon.
//!
//! A [`Lane`] is a node plus the receive-side state ([`RxState`]) that
//! must live wherever deliveries to that node are applied; [`LaneMap`]
//! abstracts how an engine finds the lane for a global node index
//! (identity for the serial driver, round-robin for a shard).
//!
//! [`Multicomputer::propagate`]: crate::Multicomputer::propagate
//! [`Multicomputer::run`]: crate::Multicomputer::run

use shrimp_net::{Commit, FabricShard, Packet, PacketRun};
use shrimp_sim::{CostModel, FlightRecorder, SimDuration, SimTime, SpanRecord};

use crate::program::DeliveryEvent;
use crate::ShrimpNode;

/// The model's steady-state per-message clock stride for a warm
/// single-chunk send of `nbytes`: per-message library software, the user
/// check, the initiation STORE, the initiating and final status LOADs
/// (the mid-transfer busy LOAD is absorbed by the wait for DMA
/// completion), DMA start, and the bus burst. A measured message pair
/// whose stride equals this is in the replayable steady state — both
/// engine instantiations calibrate bursts against it.
pub(crate) fn steady_stride(cost: &CostModel, nbytes: u64) -> SimDuration {
    cost.udma_per_message_sw
        + cost.udma_user_check
        + cost.proxy_store
        + cost.proxy_load * 2
        + cost.dma_start
        + cost.bus_transfer(nbytes)
}

/// Receive-side per-node state: it must be owned by whichever engine
/// currently applies deliveries to the node, so it travels with the node
/// inside a [`Lane`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct RxState {
    /// When the node's EISA bus frees up (receive-side DMA serializes on
    /// it).
    pub eisa_busy: SimTime,
    /// When the last delivery to the node completed.
    pub last_delivery: SimTime,
}

impl Default for RxState {
    fn default() -> Self {
        RxState { eisa_busy: SimTime::ZERO, last_delivery: SimTime::ZERO }
    }
}

/// One node plus its receive-side state: the unit of ownership both
/// engine instantiations shard (the serial driver owns every lane; a
/// parallel shard owns every `threads`-th).
#[derive(Debug)]
pub(crate) struct Lane {
    pub node: ShrimpNode,
    pub rx: RxState,
    /// Deliveries surfaced to this node's traffic program since its last
    /// step, in commit order. Only populated while `collect` is set (the
    /// node runs a reactive program); cleared at every program step.
    pub inbox: Vec<DeliveryEvent>,
    /// Whether [`DeliveryCore::deliver`] should surface deliveries into
    /// `inbox`. Off outside reactive `run_programs` runs, so the legacy
    /// paths pay one predictable branch and nothing else.
    pub collect: bool,
}

impl Lane {
    pub fn new(node: ShrimpNode) -> Self {
        Lane { node, rx: RxState::default(), inbox: Vec::new(), collect: false }
    }
}

/// How an engine finds the [`Lane`] for a global node index: identity for
/// the serial driver (which owns all lanes), `global / threads` for a
/// round-robin shard (which owns lanes `id, id + threads, …`).
pub(crate) trait LaneMap {
    fn lane_mut(&mut self, node: usize) -> &mut Lane;
}

impl LaneMap for [Lane] {
    fn lane_mut(&mut self, node: usize) -> &mut Lane {
        &mut self[node]
    }
}

/// The receive-side delivery engine: EISA DMA apply, clock and
/// `last_delivery` advance, passive-receiver wakeup, and `SpanRecord`
/// stamping. There is exactly one of these per execution context (the
/// whole machine when serial, one per shard when parallel) and exactly
/// one implementation of its logic in the codebase.
#[derive(Debug)]
pub(crate) struct DeliveryCore {
    /// Passive-receiver clock model: applying a delivery advances an idle
    /// receiver's clock to the delivery completion.
    pub passive: bool,
    /// Packets dropped for naming physical addresses outside the
    /// receiver's memory.
    pub dropped: u64,
    /// Packets successfully deposited into receiver memory.
    pub delivered: u64,
    /// Run prefixes committed as one dispatch (each covers ≥ 1 member;
    /// `delivered / runs_committed` is the mean batch the drain achieved).
    pub runs_committed: u64,
    /// Runs that could not commit whole: an interleaving same-destination
    /// key or the epoch horizon forced the tail back into the queue.
    pub run_splits: u64,
    /// The transfer-level flight recorder this core stamps spans into.
    pub recorder: FlightRecorder,
}

impl DeliveryCore {
    pub fn new(passive: bool, recorder: FlightRecorder) -> Self {
        DeliveryCore {
            passive,
            dropped: 0,
            delivered: 0,
            runs_committed: 0,
            run_splits: 0,
            recorder,
        }
    }

    /// Commits every staged entry with `link_ready` at or before
    /// `horizon` (`None` = drain everything), in the fabric's
    /// deterministic per-destination `(link_ready, id)` order (see
    /// [`FabricShard::commit_next`]): **the** delivery drain loop. A single packet delivers one at a time; a run's committed
    /// prefix delivers under one dispatch — one horizon check and one
    /// lane lookup cover the whole prefix. Allocation-free.
    // lint:hot_path
    pub fn commit_due<L: LaneMap + ?Sized>(
        &mut self,
        fabric: &mut FabricShard,
        lanes: &mut L,
        horizon: Option<SimTime>,
    ) {
        while let Some(commit) = fabric.commit_next(horizon) {
            match commit {
                Commit::One { link_ready, arrival, packet } => {
                    let dst = packet.dst.raw() as usize;
                    self.deliver(lanes.lane_mut(dst), link_ready, arrival, &packet);
                }
                Commit::Run { link_ready: _, run, take } => {
                    self.deliver_run(fabric, lanes, run, take);
                }
            }
        }
    }

    /// Applies the committed prefix of a run: the lane is looked up once,
    /// each member is admitted on the inbound link and delivered through
    /// the same [`DeliveryCore::deliver`] as the single-packet path (the
    /// template walks forward by one stride per member, so every span and
    /// timestamp is bit-identical to the unbatched drain), and any
    /// remainder re-stages into the fabric without cloning the payload.
    // lint:hot_path
    fn deliver_run<L: LaneMap + ?Sized>(
        &mut self,
        fabric: &mut FabricShard,
        lanes: &mut L,
        mut run: PacketRun,
        take: u32,
    ) {
        let lane = lanes.lane_mut(run.template.dst.raw() as usize);
        self.runs_committed += 1;
        if take < run.count {
            self.run_splits += 1;
        }
        let mut left = take;
        loop {
            let link_ready = run.template.meta.link_ready;
            let arrival = fabric.admit(&run.template, link_ready);
            self.deliver(lane, link_ready, arrival, &run.template);
            left -= 1;
            if left == 0 {
                break;
            }
            run.advance(1);
        }
        // The template now sits at the last delivered member; one more
        // step puts the first undelivered member at the head (or drops
        // the run, recycling its payload, when none remain).
        fabric.restage_run_tail(run, 1);
    }

    /// Applies one packet to its destination lane: one receive-side EISA
    /// DMA transaction (arbitration/setup plus the payload burst), the
    /// deposit into physical memory, delivery bookkeeping, span stamping,
    /// and the passive-receiver clock advance.
    // lint:hot_path
    fn deliver(&mut self, lane: &mut Lane, link_ready: SimTime, arrival: SimTime, packet: &Packet) {
        let start = arrival.max(lane.rx.eisa_busy);
        let done = {
            let cost = lane.node.os().machine().cost();
            start + cost.dma_start + cost.bus_transfer(packet.payload.len() as u64)
        };
        lane.rx.eisa_busy = done;
        let mem = lane.node.os_mut().machine_mut().mem_mut();
        // dst_paddr was produced by the sender's NIPT lookup (invariant
        // I2: outgoing translation is the protection check); the write
        // re-validates bounds and a failure counts a drop, never a stray
        // store.
        // lint:allow(F1) -- sender-side NIPT translation (I2, see above).
        if mem.write(packet.dst_paddr, &packet.payload).is_err() {
            self.dropped += 1;
            return;
        }
        self.delivered += 1;
        lane.rx.last_delivery = lane.rx.last_delivery.max(done);
        if lane.collect {
            // lint:allow(A1) -- the inbox keeps its capacity across epochs
            // (program steps drain it in place) and reactive runs reserve
            // it up front, so steady-state pushes never reallocate.
            lane.inbox.push(DeliveryEvent {
                src: packet.src,
                dst_paddr: packet.dst_paddr,
                bytes: packet.payload.len() as u32,
                done,
                class: packet.class,
            });
        }
        if self.recorder.is_enabled() {
            let m = packet.meta;
            self.recorder.record(SpanRecord {
                id: m.id,
                src: packet.src.raw(),
                dst: packet.dst.raw(),
                bytes: packet.payload.len() as u32,
                initiated_at: m.initiated_at,
                queued_at: m.queued_at,
                link_ready,
                wire_done: arrival,
                delivered_at: done,
                status_at: m.status_observed.max(done),
            });
        }
        // Passive receiver: an idle node's clock catches up to the
        // delivery it was waiting for.
        if self.passive {
            lane.node.os_mut().machine_mut().advance_to(done);
        }
    }

    /// Whether span recording is on.
    pub fn tracing(&self) -> bool {
        self.recorder.is_enabled()
    }
}
