//! The assembled SHRIMP multicomputer: nodes, fabric, and the receive-side
//! EISA DMA logic that completes "deliberate update".

use std::error::Error;
use std::fmt;

use shrimp_machine::MachineConfig;
use shrimp_mem::{PhysAddr, VirtAddr, PAGE_SIZE};
use shrimp_net::{Interconnect, LinkParams, NodeId, PacketRun};
use shrimp_os::{NodeConfig, Pid, Trap, UdmaXferResult};
use shrimp_sim::{
    FlightRecorder, MetricId, MetricSet, SampleRing, SimDuration, SimTime, SpanRecord, Stage,
    StatSet, XferId, STAGE_COUNT,
};

use crate::engine::{DeliveryCore, Lane};
use crate::{Nic, Nipt, ShrimpNode};

/// Configuration shared by every node of the multicomputer.
#[derive(Clone, Debug)]
pub struct MulticomputerConfig {
    /// Per-node kernel/hardware configuration.
    pub node: NodeConfig,
    /// Backplane link parameters.
    pub link: LinkParams,
    /// NIPT entries per NIC (the real board: 32K).
    pub nipt_entries: usize,
    /// Passive-receiver clock model: when `true` (default), applying a
    /// delivery advances an idle receiver's clock to the delivery
    /// completion, giving causal local timestamps for request/reply
    /// protocols. Set `false` for throughput experiments where every node
    /// actively streams — receivers then keep their own timelines and
    /// flows overlap fully (measure with [`Multicomputer::last_delivery`]).
    pub passive_receivers: bool,
}

impl Default for MulticomputerConfig {
    fn default() -> Self {
        MulticomputerConfig {
            node: NodeConfig::default(),
            link: LinkParams::default(),
            nipt_entries: Nipt::SHRIMP_ENTRIES,
            passive_receivers: true,
        }
    }
}

/// Errors from multicomputer operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShrimpError {
    /// A kernel trap on some node.
    Trap(Trap),
    /// A node index outside the machine.
    NoSuchNode(usize),
}

impl fmt::Display for ShrimpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShrimpError::Trap(t) => write!(f, "{t}"),
            ShrimpError::NoSuchNode(i) => write!(f, "no such node: {i}"),
        }
    }
}

impl Error for ShrimpError {}

impl From<Trap> for ShrimpError {
    fn from(t: Trap) -> Self {
        ShrimpError::Trap(t)
    }
}

/// Magic prefix of the compact binary trace format
/// ([`Multicomputer::export_trace_bin`]).
pub const TRACE_BIN_MAGIC: &[u8; 8] = b"SHRTRC01";

/// Span totals plus per-stage histogram figures (in [`Stage::ALL`]
/// order: count, mean ns, min ns, max ns) — the summary block shared by
/// the JSON and binary trace exports.
#[derive(Clone, Copy, Debug)]
struct TraceSummary {
    spans: u64,
    dropped: u64,
    stages: [(u64, f64, u64, u64); STAGE_COUNT],
}

/// Renders spans + summary as the Chrome/Perfetto trace-event JSON of
/// [`Multicomputer::export_trace`]. `spans` must already be in merge-key
/// order; the output is a pure function of the arguments, so the JSON
/// and binary export paths cannot drift apart.
fn render_trace_json(nodes: usize, spans: &[SpanRecord], summary: &TraceSummary) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(512 + spans.len() * 5 * 160);
    out.push_str("{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [");
    let mut first = true;
    for i in 0..nodes {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{i},\"tid\":0,\
             \"args\":{{\"name\":\"node{i}\"}}}}"
        );
    }
    for span in spans {
        for stage in Stage::ALL {
            let (start, end) = span.stage_bounds(stage);
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\":\"{}\",\"cat\":\"udma\",\"ph\":\"X\",\"ts\":{:.3},\
                 \"dur\":{:.3},\"pid\":{},\"tid\":{},\
                 \"args\":{{\"xfer\":\"{}\",\"bytes\":{}}}}}",
                stage.name(),
                start.as_micros_f64(),
                end.saturating_duration_since(start).as_micros_f64(),
                span.src,
                span.dst,
                span.id,
                span.bytes,
            );
        }
    }
    out.push_str("\n  ],\n");
    let _ = write!(
        out,
        "  \"stats\": {{\"spans\":{},\"dropped\":{},\"stages\":{{",
        summary.spans, summary.dropped,
    );
    for (i, stage) in Stage::ALL.into_iter().enumerate() {
        let (count, mean, min, max) = summary.stages[i];
        let _ = write!(
            out,
            "{}\n    \"{}\":{{\"count\":{count},\"mean_ns\":{mean:.1},\"min_ns\":{min},\
             \"max_ns\":{max}}}",
            if i == 0 { "" } else { "," },
            stage.name(),
        );
    }
    out.push_str("\n  }}\n}\n");
    out
}

/// Decodes a [`Multicomputer::export_trace_bin`] buffer and renders the
/// **byte-identical** Perfetto JSON [`Multicomputer::export_trace`] would
/// have produced for the same spans (mean bits round-trip exactly).
/// Returns `None` for a buffer that is truncated, carries the wrong
/// magic, or disagrees with its own span count.
pub fn trace_bin_to_json(bytes: &[u8]) -> Option<String> {
    struct Reader<'a> {
        b: &'a [u8],
    }
    impl<'a> Reader<'a> {
        fn take<const N: usize>(&mut self) -> Option<[u8; N]> {
            let (head, rest) = self.b.split_at_checked(N)?;
            self.b = rest;
            head.try_into().ok()
        }
        fn u16(&mut self) -> Option<u16> {
            self.take().map(u16::from_le_bytes)
        }
        fn u32(&mut self) -> Option<u32> {
            self.take().map(u32::from_le_bytes)
        }
        fn u64(&mut self) -> Option<u64> {
            self.take().map(u64::from_le_bytes)
        }
        fn time(&mut self) -> Option<SimTime> {
            self.u64().map(SimTime::from_nanos)
        }
    }

    let mut r = Reader { b: bytes };
    if &r.take::<8>()? != TRACE_BIN_MAGIC {
        return None;
    }
    let nodes = r.u16()?;
    let _reserved = r.u16()?;
    let count = r.u32()? as usize;
    let total = r.u64()?;
    let dropped = r.u64()?;
    let mut stages = [(0u64, 0.0f64, 0u64, 0u64); STAGE_COUNT];
    for s in &mut stages {
        let (count, min, max) = (r.u64()?, r.u64()?, r.u64()?);
        *s = (count, f64::from_bits(r.u64()?), min, max);
    }
    let mut spans = Vec::with_capacity(count);
    for _ in 0..count {
        let raw = r.u64()?;
        spans.push(SpanRecord {
            id: XferId::new((raw >> 48) as u16, raw & ((1 << 48) - 1)),
            src: r.u16()?,
            dst: r.u16()?,
            bytes: r.u32()?,
            initiated_at: r.time()?,
            queued_at: r.time()?,
            link_ready: r.time()?,
            wire_done: r.time()?,
            delivered_at: r.time()?,
            status_at: r.time()?,
        });
    }
    if !r.b.is_empty() {
        return None;
    }
    let summary = TraceSummary { spans: total, dropped, stages };
    Some(render_trace_json(usize::from(nodes), &spans, &summary))
}

/// The SHRIMP multicomputer.
///
/// Owns every node plus the interconnect, and models the receive path: a
/// delivered packet occupies the receiver's EISA bus for its payload time,
/// then its data appears in the receiver's physical memory at the packet's
/// destination physical address — no receiving CPU involvement, exactly the
/// deliberate-update semantics of §8.
///
/// The receiver is modelled as passive: applying a delivery advances the
/// receiving node's clock to the delivery completion if that node was idle
/// earlier than it (a node busy past that instant is unaffected).
///
/// Delivery itself lives in one place — the crate-internal `DeliveryCore`
/// (`engine.rs`) — which this serial driver runs over the whole machine
/// and [`Multicomputer::run`] runs once per shard. The serial driver *is*
/// the one-shard instantiation of the parallel engine.
#[derive(Debug)]
pub struct Multicomputer {
    /// Every node with its receive-side state (`engine::Lane`).
    pub(crate) lanes: Vec<Lane>,
    pub(crate) fabric: Interconnect,
    /// The single receive-side delivery implementation, serial instance.
    pub(crate) core: DeliveryCore,
    /// Persistent scratch for the inject loop: NICs drain into it so the
    /// steady state reuses one allocation instead of taking each queue.
    outbox: Vec<crate::OutgoingPacket>,
    /// Persistent scratch for burst descriptors (the run analogue of
    /// `outbox`; a handful per propagate at most).
    run_outbox: Vec<crate::OutgoingRun>,
    /// Whether [`Multicomputer::send_burst`] may fold steady-state message
    /// trains into replayed runs (`true` by default). Disable to force the
    /// literal packet-at-a-time path — the digest-equality tests compare
    /// both modes.
    burst: bool,
    /// Forced windows-per-barrier count for parallel runs (`None` =
    /// adaptive from plan depth; see [`Multicomputer::set_epoch_windows`]).
    pub(crate) epoch_windows: Option<usize>,
    /// Host phase clock for epoch-phase breakdowns (`None` = timing off;
    /// see [`Multicomputer::set_phase_clock`]).
    pub(crate) phase_clock: Option<fn() -> u64>,
    /// Merged epoch-phase breakdown of the most recent parallel run.
    pub(crate) phases: crate::parallel::PhaseBreakdown,
    /// Ring capacity for per-epoch staged-depth sampling (`None` = off;
    /// see [`Multicomputer::set_epoch_sampling`]).
    pub(crate) epoch_sample_capacity: Option<usize>,
    /// Per-shard staged-depth timeseries from the most recent parallel
    /// run, in shard order (empty when sampling is off).
    pub(crate) epoch_samples: Vec<SampleRing>,
    /// Epoch count of the most recent parallel run.
    pub(crate) last_epochs: u64,
}

impl Multicomputer {
    /// Builds an `n`-node machine.
    pub fn new(n: u16, config: MulticomputerConfig) -> Self {
        let header = config.node.machine.cost.packet_header;
        let lanes = (0..n)
            .map(|i| {
                let id = NodeId::new(i);
                Lane::new(ShrimpNode::new(
                    id,
                    config.node.clone(),
                    Nic::new(id, config.nipt_entries, header),
                ))
            })
            .collect();
        Multicomputer {
            lanes,
            fabric: Interconnect::new(n, config.link),
            core: DeliveryCore::new(
                config.passive_receivers,
                FlightRecorder::new(Self::TRACE_SPANS),
            ),
            outbox: Vec::new(),
            run_outbox: Vec::with_capacity(8),
            burst: true,
            epoch_windows: None,
            phase_clock: None,
            phases: crate::parallel::PhaseBreakdown::default(),
            epoch_sample_capacity: None,
            epoch_samples: Vec::new(),
            last_epochs: 0,
        }
    }

    /// Capacity of the flight recorder's span ring: the newest this many
    /// transfer spans are kept for export; summary histograms see every
    /// span regardless.
    pub const TRACE_SPANS: usize = 65536;

    /// Enables or disables transfer tracing machine-wide: the flight
    /// recorder plus every node's typed machine event ring. Enabling
    /// reserves all ring storage up front, so the data plane stays
    /// allocation-free afterwards. Tracing is pure observation — it never
    /// advances a clock, so `state_digest` is unchanged by it.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.core.recorder.set_enabled(enabled);
        for lane in &mut self.lanes {
            lane.node.os_mut().machine_mut().set_tracing(enabled);
        }
    }

    /// Whether transfer tracing is on.
    pub fn tracing(&self) -> bool {
        self.core.tracing()
    }

    /// The flight recorder (span inspection; see
    /// [`Multicomputer::export_trace`] for the Perfetto form).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.core.recorder
    }

    /// A convenience config for benchmarks: default everything but the
    /// given machine config.
    pub fn with_machine_config(n: u16, machine: MachineConfig) -> Self {
        Multicomputer::new(
            n,
            MulticomputerConfig {
                node: NodeConfig { machine, user_frames: None },
                ..MulticomputerConfig::default()
            },
        )
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.lanes.len()
    }

    /// Immutable node access.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range index.
    pub fn node(&self, i: usize) -> &ShrimpNode {
        &self.lanes[i].node
    }

    /// Mutable node access.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range index.
    pub fn node_mut(&mut self, i: usize) -> &mut ShrimpNode {
        &mut self.lanes[i].node
    }

    /// The interconnect (statistics inspection).
    pub fn fabric(&self) -> &Interconnect {
        &self.fabric
    }

    /// When the last delivery to node `i` completed.
    pub fn last_delivery(&self, i: usize) -> SimTime {
        self.lanes[i].rx.last_delivery
    }

    /// Packets dropped for naming physical addresses outside the
    /// receiver's memory (a corrupted NIPT entry would do this).
    pub fn dropped_packets(&self) -> u64 {
        self.core.dropped
    }

    /// FNV-1a digest of the machine's externally visible state: every
    /// node's clock, its last delivery completion, and its full physical
    /// memory contents. Two runs of the same workload must digest
    /// identically regardless of host thread count — the determinism
    /// suite asserts it and `BENCH_throughput.json` records it.
    pub fn state_digest(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn eat(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
            h
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for lane in &self.lanes {
            let node = &lane.node;
            h = eat(h, &node.os().machine().now().as_nanos().to_le_bytes());
            h = eat(h, &lane.rx.last_delivery.as_nanos().to_le_bytes());
            let mem = node.os().machine().mem();
            let bytes = mem
                .read(shrimp_mem::PhysAddr::new(0), mem.size())
                .expect("whole-memory read is in range");
            h = eat(h, bytes);
        }
        h
    }

    /// One combined statistics view of the whole machine: the fabric's
    /// counters plus every node's machine, DMA engine, NIC and kernel
    /// sets, unioned key-by-key with [`StatSet::merge`]. Component counter
    /// names are disjoint, so the union is lossless; serial and parallel
    /// runs of the same workload produce identical sets.
    pub fn stats(&self) -> StatSet {
        let mut all = StatSet::new("multicomputer");
        all.merge(&self.fabric.stats());
        for lane in &self.lanes {
            let node = &lane.node;
            let machine = node.os().machine();
            all.merge(&machine.stats());
            all.merge(&machine.udma().engine().stats());
            all.merge(&machine.device().stats());
            all.merge(node.os().stats());
        }
        all
    }

    /// Deterministic machine-wide metrics snapshot.
    ///
    /// Every metric registered here is a pure function of the simulated
    /// timeline — per-node NIPT occupancy/evictions/refaults, per-node
    /// TLB hit/miss/shortcut counts, per-link wire bytes, fabric traffic
    /// totals and drops, and the delivery core's counters — registered in
    /// a fixed order (node by node, then link by link, then scalars) and
    /// rendered sorted by [`MetricId`]. The same workload therefore
    /// produces **byte-identical** [`MetricSet::render_text`] /
    /// [`MetricSet::render_json`] output at any thread count; the metrics
    /// suite pins this on a 256-node mesh.
    ///
    /// Host- and schedule-variant observability (wheel spills, buffer-pool
    /// high water, phase timings) deliberately lives in the separate
    /// [`Multicomputer::engine_metrics`] set, outside this guarantee.
    pub fn metrics_snapshot(&self) -> MetricSet {
        let n = self.lanes.len();
        let mut set = MetricSet::with_capacity(9 * n + 8);
        for (i, lane) in self.lanes.iter().enumerate() {
            let i = i as u32;
            let os = lane.node.os();
            let machine = os.machine();
            let nipt = machine.device().nipt();
            set.gauge(MetricId::indexed("nipt", "occupancy", i), nipt.occupancy_gauge());
            set.counter(MetricId::indexed("nipt", "evictions", i), nipt.evictions());
            set.counter(MetricId::indexed("nipt", "refaults", i), nipt.refaults());
            // The pager's frame churn sits beside the NIPT's slot churn:
            // under multi-tenant pressure both tables page on demand.
            set.counter(MetricId::indexed("pager", "evictions", i), os.stats().get("evictions"));
            set.counter(MetricId::indexed("pager", "page_outs", i), os.stats().get("page_outs"));
            let tlb = machine.mmu().tlb();
            set.counter(MetricId::indexed("tlb", "hits", i), tlb.hits());
            set.counter(MetricId::indexed("tlb", "misses", i), tlb.misses());
            set.counter(MetricId::indexed("tlb", "last_hits", i), tlb.last_hits());
        }
        for (i, bytes) in self.fabric.wire_bytes_per_link().enumerate() {
            set.counter(MetricId::indexed("link", "wire_bytes", i as u32), bytes);
        }
        let net = self.fabric.stats();
        set.counter(MetricId::scalar("fabric", "packets"), net.get("packets"));
        set.counter(MetricId::scalar("fabric", "payload_bytes"), net.get("payload_bytes"));
        set.counter(MetricId::scalar("fabric", "drops"), self.fabric.fabric_drops());
        set.counter(MetricId::scalar("delivery", "delivered"), self.core.delivered);
        set.counter(MetricId::scalar("delivery", "drops"), self.core.dropped);
        set.counter(MetricId::scalar("delivery", "runs_committed"), self.core.runs_committed);
        set.counter(MetricId::scalar("delivery", "run_splits"), self.core.run_splits);
        set
    }

    /// The change in the deterministic snapshot since `base` (counters
    /// subtract; gauges and histograms report current state) — interval
    /// reporting for long workloads.
    pub fn snapshot_delta(&self, base: &MetricSet) -> MetricSet {
        self.metrics_snapshot().delta(base)
    }

    /// Host- and schedule-variant engine observability, separate from the
    /// pinned [`Multicomputer::metrics_snapshot`]: staged-wheel pressure,
    /// per-destination index spills, per-node buffer-pool demand, the
    /// last run's epoch count, and (when a phase clock is installed) the
    /// host-time epoch-phase histograms. Values here may legitimately
    /// differ across thread counts and hosts.
    pub fn engine_metrics(&self) -> MetricSet {
        let mut set = MetricSet::with_capacity(2 * self.lanes.len() + 12);
        for (i, lane) in self.lanes.iter().enumerate() {
            let i = i as u32;
            let pool = lane.node.os().machine().device().buf_pool();
            set.gauge(MetricId::indexed("buf_pool", "in_use", i), pool.in_use_gauge());
            set.counter(MetricId::indexed("buf_pool", "exhaustion", i), pool.exhaustion_stalls());
        }
        let (spills, reseeds, depth_high) = self.fabric.staged_wheel_metrics();
        set.counter(MetricId::scalar("wheel", "spills"), spills);
        set.counter(MetricId::scalar("wheel", "reseeds"), reseeds);
        set.counter(MetricId::scalar("wheel", "depth_high"), depth_high);
        set.counter(MetricId::scalar("dst_index", "lane_spills"), self.fabric.dst_lane_spills());
        set.counter(MetricId::scalar("engine", "epochs"), self.last_epochs);
        let p = &self.phases;
        set.hist(MetricId::scalar("phase", "execute_ns"), p.execute.clone());
        set.hist(MetricId::scalar("phase", "barrier_ns"), p.barrier.clone());
        set.hist(MetricId::scalar("phase", "merge_ns"), p.merge.clone());
        set.hist(MetricId::scalar("phase", "commit_ns"), p.commit.clone());
        set
    }

    /// Exports the recorded transfer spans as Chrome/Perfetto trace-event
    /// JSON: the object form with one `"ph":"X"` complete event per span
    /// stage (timestamps and durations in microseconds), per-node
    /// `process_name` metadata, and a `"stats"` summary with per-stage
    /// latency figures (nanoseconds) from the recorder's histograms.
    /// Load the output at <https://ui.perfetto.dev> or `chrome://tracing`.
    ///
    /// The output is a deterministic function of the recorded spans: the
    /// same workload exports byte-identical JSON at any thread count —
    /// **and** from either entry point. Spans are emitted sorted by their
    /// merge key `(link_ready, id)`, the engine's packet commit order, so
    /// the serial driver (which records per-`propagate`, source-major) and
    /// the parallel engine (whose shard rings merge pre-sorted) produce
    /// the same bytes. Export is off the hot path; the sort may allocate.
    pub fn export_trace(&self) -> String {
        let (spans, summary) = self.trace_parts();
        render_trace_json(self.lanes.len(), &spans, &summary)
    }

    /// Exports the recorded transfer spans in the compact binary trace
    /// format (`SHRTRC01`): a fixed little-endian header carrying the
    /// node count, span count and per-stage latency summary, followed by
    /// one 64-byte record per span in merge-key order. About 13× smaller
    /// than the Perfetto JSON for the same spans, and convertible to the
    /// *byte-identical* JSON with [`trace_bin_to_json`].
    ///
    /// Layout (all integers little-endian):
    ///
    /// | offset | bytes | field |
    /// |--------|-------|-------|
    /// | 0      | 8     | magic `"SHRTRC01"` |
    /// | 8      | 2     | node count |
    /// | 10     | 2     | reserved (0) |
    /// | 12     | 4     | span count `N` |
    /// | 16     | 8     | total spans recorded (≥ `N`; ring may drop) |
    /// | 24     | 8     | spans dropped |
    /// | 32     | 5×32  | per stage: `u64` count, min ns, max ns, `f64` mean bits |
    /// | 192    | N×64  | spans: `u64` id, `u16` src, `u16` dst, `u32` bytes, 6×`u64` stage-boundary ns |
    pub fn export_trace_bin(&self) -> Vec<u8> {
        let (spans, summary) = self.trace_parts();
        let mut out = Vec::with_capacity(192 + spans.len() * 64);
        out.extend_from_slice(TRACE_BIN_MAGIC);
        out.extend_from_slice(&(self.lanes.len() as u16).to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&(spans.len() as u32).to_le_bytes());
        out.extend_from_slice(&summary.spans.to_le_bytes());
        out.extend_from_slice(&summary.dropped.to_le_bytes());
        for (count, mean, min, max) in summary.stages {
            out.extend_from_slice(&count.to_le_bytes());
            out.extend_from_slice(&min.to_le_bytes());
            out.extend_from_slice(&max.to_le_bytes());
            out.extend_from_slice(&mean.to_bits().to_le_bytes());
        }
        for s in &spans {
            out.extend_from_slice(&s.id.raw().to_le_bytes());
            out.extend_from_slice(&s.src.to_le_bytes());
            out.extend_from_slice(&s.dst.to_le_bytes());
            out.extend_from_slice(&s.bytes.to_le_bytes());
            for t in [
                s.initiated_at,
                s.queued_at,
                s.link_ready,
                s.wire_done,
                s.delivered_at,
                s.status_at,
            ] {
                out.extend_from_slice(&t.as_nanos().to_le_bytes());
            }
        }
        out
    }

    /// The recorded spans in merge-key order plus the stage summary —
    /// the one source both trace export formats render from.
    fn trace_parts(&self) -> (Vec<SpanRecord>, TraceSummary) {
        let recorder = &self.core.recorder;
        let mut spans: Vec<SpanRecord> = recorder.iter().copied().collect();
        spans.sort_unstable_by_key(|s| s.merge_key());
        let mut stages = [(0u64, 0.0f64, 0u64, 0u64); STAGE_COUNT];
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            let h = recorder.stage_histogram(stage);
            stages[i] =
                (h.count(), h.mean().unwrap_or(0.0), h.min().unwrap_or(0), h.max().unwrap_or(0));
        }
        let summary =
            TraceSummary { spans: recorder.total_recorded(), dropped: recorder.dropped(), stages };
        (spans, summary)
    }

    /// Spawns a process on node `i`.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range node.
    pub fn spawn_process(&mut self, i: usize) -> Pid {
        self.lanes[i].node.os_mut().spawn()
    }

    /// Maps `pages` writable pages at `va_base` for `pid` on node `i`.
    ///
    /// # Errors
    ///
    /// Node bounds or kernel traps.
    pub fn map_user_buffer(
        &mut self,
        i: usize,
        pid: Pid,
        va_base: u64,
        pages: u64,
    ) -> Result<(), ShrimpError> {
        self.check_node(i)?;
        self.lanes[i].node.os_mut().mmap(pid, va_base, pages, true)?;
        Ok(())
    }

    /// Bulk user-memory write on node `i`.
    ///
    /// # Errors
    ///
    /// Node bounds or kernel traps.
    pub fn write_user(
        &mut self,
        i: usize,
        pid: Pid,
        va: VirtAddr,
        data: &[u8],
    ) -> Result<(), ShrimpError> {
        self.check_node(i)?;
        self.lanes[i].node.os_mut().write_user(pid, va, data)?;
        Ok(())
    }

    /// Bulk user-memory read on node `i`.
    ///
    /// # Errors
    ///
    /// Node bounds or kernel traps.
    pub fn read_user(
        &mut self,
        i: usize,
        pid: Pid,
        va: VirtAddr,
        len: u64,
    ) -> Result<Vec<u8>, ShrimpError> {
        self.check_node(i)?;
        Ok(self.lanes[i].node.os_mut().read_user(pid, va, len)?)
    }

    /// The physical address backing `va` in `pid`'s address space on node
    /// `i`. Traffic programs use this to learn where exported receive
    /// buffers live in physical memory — the address deliveries into those
    /// buffers will name ([`DeliveryEvent::dst_paddr`]). Only meaningful
    /// for *wired* (exported) pages, whose frames cannot move.
    ///
    /// [`DeliveryEvent::dst_paddr`]: crate::DeliveryEvent::dst_paddr
    ///
    /// # Errors
    ///
    /// Node bounds, unknown process, or a page that is not resident.
    pub fn user_paddr(&self, i: usize, pid: Pid, va: VirtAddr) -> Result<PhysAddr, ShrimpError> {
        self.check_node(i)?;
        let proc = self.lanes[i].node.os().process(pid)?;
        let pfn = proc
            .vpages
            .get(&va.page())
            .and_then(shrimp_os::VPage::pfn)
            .ok_or(Trap::SegFault { pid, va })?;
        Ok(pfn.addr(va.page_offset()))
    }

    /// Establishes a deliberate-update mapping: wires `pages` pages of the
    /// receiver's buffer, installs NIPT entries on the sender, and grants
    /// the sender the corresponding device proxy pages. Returns the first
    /// device proxy page the sender should address.
    ///
    /// # Errors
    ///
    /// Node bounds or kernel traps on either side.
    pub fn export(
        &mut self,
        recv_node: usize,
        recv_pid: Pid,
        recv_va: VirtAddr,
        pages: u64,
        send_node: usize,
        send_pid: Pid,
    ) -> Result<u64, ShrimpError> {
        self.check_node(recv_node)?;
        self.check_node(send_node)?;
        let frames = self.lanes[recv_node].node.export_pages(recv_pid, recv_va, pages)?;
        let dst = self.lanes[recv_node].node.id();
        let dev_page = self.lanes[send_node].node.import_mapping(send_pid, dst, &frames, 0)?;
        Ok(dev_page)
    }

    /// Establishes an **automatic update** binding (\[5\], retained per §9):
    /// `pages` pages of the sender's buffer are bound page-for-page to the
    /// receiver's buffer; every subsequent ordinary store to the bound
    /// pages is snooped off the memory bus by the NIC and propagated
    /// automatically — no per-transfer initiation at all.
    ///
    /// Both sides are wired (the fixed source→destination page mapping the
    /// strategy relies on). Use [`Multicomputer::unbind_auto_update`] to
    /// tear the binding down before the sender pages may move again.
    ///
    /// # Errors
    ///
    /// Node bounds or kernel traps on either side.
    #[allow(clippy::too_many_arguments)]
    pub fn bind_auto_update(
        &mut self,
        send_node: usize,
        send_pid: Pid,
        send_va: VirtAddr,
        pages: u64,
        recv_node: usize,
        recv_pid: Pid,
        recv_va: VirtAddr,
    ) -> Result<(), ShrimpError> {
        self.check_node(send_node)?;
        self.check_node(recv_node)?;
        let dst_frames = self.lanes[recv_node].node.export_pages(recv_pid, recv_va, pages)?;
        let src_frames =
            self.lanes[send_node].node.os_mut().wire_pages(send_pid, send_va, pages)?;
        let dst_id = self.lanes[recv_node].node.id();
        let nic = self.lanes[send_node].node.os_mut().machine_mut().device_mut();
        for (src, dst) in src_frames.into_iter().zip(dst_frames) {
            nic.bind_auto_update(src, crate::NiptEntry { node: dst_id, pfn: dst });
        }
        Ok(())
    }

    /// Removes automatic-update bindings and unwires the sender pages.
    ///
    /// # Errors
    ///
    /// Node bounds or kernel traps.
    pub fn unbind_auto_update(
        &mut self,
        send_node: usize,
        send_pid: Pid,
        send_va: VirtAddr,
        pages: u64,
    ) -> Result<(), ShrimpError> {
        self.check_node(send_node)?;
        for i in 0..pages {
            let va = send_va + i * PAGE_SIZE;
            let pfn = self.lanes[send_node]
                .node
                .os()
                .process(send_pid)?
                .vpages
                .get(&va.page())
                .and_then(|v| v.pfn());
            if let Some(pfn) = pfn {
                self.lanes[send_node]
                    .node
                    .os_mut()
                    .machine_mut()
                    .device_mut()
                    .unbind_auto_update(pfn);
            }
        }
        self.lanes[send_node].node.os_mut().unwire_pages(send_pid, send_va, pages);
        Ok(())
    }

    /// An ordinary user store that, when the page is bound for automatic
    /// update, also propagates to the remote node. (Any store does; this
    /// helper just pairs the store with packet propagation.)
    ///
    /// # Errors
    ///
    /// Node bounds or kernel traps.
    pub fn store_user(
        &mut self,
        i: usize,
        pid: Pid,
        va: VirtAddr,
        value: i64,
    ) -> Result<(), ShrimpError> {
        self.check_node(i)?;
        self.lanes[i].node.os_mut().user_store(pid, va, value)?;
        self.propagate();
        Ok(())
    }

    /// Enables or disables run batching for [`Multicomputer::send_burst`].
    /// Disabled, every burst member goes through the literal per-message
    /// path; the timeline (and `state_digest`, and exported traces) must
    /// be identical either way.
    pub fn set_burst(&mut self, enabled: bool) {
        self.burst = enabled;
    }

    /// Whether run batching is enabled.
    pub fn burst(&self) -> bool {
        self.burst
    }

    /// Forces the windows-per-barrier count for [`Multicomputer::run`]
    /// (clamped to `[1, MAX_EPOCH_WINDOWS]`), or restores the default
    /// adaptive selection with `None`. The count only sets how much work
    /// each shard executes between barrier crossings; the simulated
    /// timeline, digests and traces are identical at every value — the
    /// K-sweep determinism tests pin exactly that.
    pub fn set_epoch_windows(&mut self, windows: Option<usize>) {
        self.epoch_windows = windows;
    }

    /// The forced windows-per-barrier count, if any.
    pub fn epoch_windows(&self) -> Option<usize> {
        self.epoch_windows
    }

    /// Installs (or removes) a host phase clock: a monotonic nanosecond
    /// counter sampled by every shard around each epoch phase of
    /// [`Multicomputer::run`]. The simulator itself never reads host
    /// time — the clock is injected by the benchmark layer, keeping the
    /// core deterministic — and the samples land in
    /// [`Multicomputer::phase_breakdown`].
    pub fn set_phase_clock(&mut self, clock: Option<fn() -> u64>) {
        self.phase_clock = clock;
    }

    /// Host-time epoch-phase breakdown of the most recent
    /// [`Multicomputer::run`]. Empty unless a phase clock was installed.
    pub fn phase_breakdown(&self) -> &crate::parallel::PhaseBreakdown {
        &self.phases
    }

    /// Enables per-epoch gauge sampling for [`Multicomputer::run`]: each
    /// shard records its staged-queue depth once per epoch into a fixed
    /// ring of `capacity` samples (the newest epochs win when a run
    /// outlasts the ring). `None` turns sampling off. Pure observation —
    /// the simulated timeline is unchanged.
    pub fn set_epoch_sampling(&mut self, capacity: Option<usize>) {
        self.epoch_sample_capacity = capacity;
    }

    /// Per-shard staged-depth timeseries of the most recent
    /// [`Multicomputer::run`], in shard order. Empty unless
    /// [`Multicomputer::set_epoch_sampling`] enabled sampling.
    pub fn epoch_samples(&self) -> &[SampleRing] {
        &self.epoch_samples
    }

    /// The model's steady-state per-message clock stride for a warm
    /// single-chunk send of `nbytes` on node `i` (see
    /// `engine::steady_stride`).
    fn steady_stride(&self, i: usize, nbytes: u64) -> SimDuration {
        crate::engine::steady_stride(self.lanes[i].node.os().machine().cost(), nbytes)
    }

    /// Sends the same message `count` times back to back — the §7 message
    /// train — batching the steady-state tail into one replayed *run*.
    ///
    /// The first two messages always run the literal per-message machinery
    /// and calibrate the train: if both complete in one transfer with no
    /// retries and their clock stride matches the model's steady-state
    /// stride, the remaining `count - 2` messages are *replayed* — the
    /// machine books their counters and events wholesale, the NIC builds
    /// one §7-style gather descriptor (`OutgoingRun`) minting consecutive
    /// transfer IDs, and the fabric stages the whole run as one entry.
    /// Any ineligible train (cold TLB, multi-chunk, retries, burst
    /// disabled) falls back to the literal loop. Either way the timeline
    /// is identical — `state_digest` and exported traces cannot tell the
    /// paths apart.
    ///
    /// Returns the last calibrated message's result (steady-state members
    /// are replicas of it).
    ///
    /// # Errors
    ///
    /// Node bounds or kernel traps, as [`Multicomputer::send`].
    #[allow(clippy::too_many_arguments)]
    pub fn send_burst(
        &mut self,
        i: usize,
        pid: Pid,
        src_va: VirtAddr,
        dev_page: u64,
        dev_off: u64,
        nbytes: u64,
        count: u64,
    ) -> Result<UdmaXferResult, ShrimpError> {
        self.check_node(i)?;
        if count == 0 {
            return Ok(UdmaXferResult::default());
        }
        if !self.burst || count < 3 {
            let mut last = UdmaXferResult::default();
            for _ in 0..count {
                last = self.send(i, pid, src_va, dev_page, dev_off, nbytes)?;
            }
            return Ok(last);
        }
        let r0 = self.send(i, pid, src_va, dev_page, dev_off, nbytes)?;
        let e0 = self.lanes[i].node.os().machine().now();
        let r1 = self.send(i, pid, src_va, dev_page, dev_off, nbytes)?;
        let e1 = self.lanes[i].node.os().machine().now();
        let mut remaining = count - 2;
        let stride = e1.saturating_duration_since(e0);
        let eligible = r0.transfers == 1
            && r0.retries == 0
            && r1 == r0
            && stride == self.steady_stride(i, nbytes)
            && stride.as_nanos() <= u64::from(u32::MAX);
        if eligible
            && self.lanes[i].node.os_mut().machine_mut().udma_replay_messages(remaining, stride)
        {
            self.propagate();
            return Ok(r1);
        }
        let mut last = r1;
        while remaining > 0 {
            last = self.send(i, pid, src_va, dev_page, dev_off, nbytes)?;
            remaining -= 1;
        }
        Ok(last)
    }

    /// A user-level deliberate-update send: `nbytes` from `src_va` on node
    /// `i` through device proxy page `dev_page` + `dev_off`, then packet
    /// propagation.
    ///
    /// # Errors
    ///
    /// Node bounds or kernel traps.
    pub fn send(
        &mut self,
        i: usize,
        pid: Pid,
        src_va: VirtAddr,
        dev_page: u64,
        dev_off: u64,
        nbytes: u64,
    ) -> Result<UdmaXferResult, ShrimpError> {
        self.check_node(i)?;
        let result =
            self.lanes[i].node.os_mut().udma_send(pid, src_va, dev_page, dev_off, nbytes)?;
        self.propagate();
        Ok(result)
    }

    /// Sends `data` by programmed I/O through the NIC's memory-mapped FIFO
    /// window (the §9 baseline). The MMIO page must be reachable; the
    /// kernel maps it for the process on first use.
    ///
    /// # Errors
    ///
    /// Node bounds, kernel traps, or a PIO status error surfaced as
    /// [`Trap::DeviceError`].
    pub fn send_pio(
        &mut self,
        i: usize,
        pid: Pid,
        dev_page: u64,
        dev_off: u64,
        data: &[u8],
    ) -> Result<(), ShrimpError> {
        self.check_node(i)?;
        assert!(data.len() as u64 + dev_off <= PAGE_SIZE, "PIO send must fit one page");
        self.ensure_mmio_mapped(i, pid)?;
        let base = shrimp_mem::MMIO_BASE;
        let os = self.lanes[i].node.os_mut();
        os.user_store(pid, VirtAddr::new(base + crate::NIC_MMIO::DEST_PAGE), dev_page as i64)?;
        os.user_store(pid, VirtAddr::new(base + crate::NIC_MMIO::DEST_OFFSET), dev_off as i64)?;
        for chunk in data.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            os.user_store(
                pid,
                VirtAddr::new(base + crate::NIC_MMIO::DATA),
                i64::from_le_bytes(word),
            )?;
        }
        os.user_store(pid, VirtAddr::new(base + crate::NIC_MMIO::COMMIT), data.len() as i64)?;
        let status = os.user_load(pid, VirtAddr::new(base + crate::NIC_MMIO::STATUS))?;
        if status != 0 {
            return Err(ShrimpError::Trap(Trap::DeviceError { code: status as u16 }));
        }
        self.propagate();
        Ok(())
    }

    /// Maps the NIC's MMIO window into `pid` (idempotent).
    fn ensure_mmio_mapped(&mut self, i: usize, pid: Pid) -> Result<(), ShrimpError> {
        use shrimp_mmu::{Pte, PteFlags};
        let os = self.lanes[i].node.os_mut();
        let vpn = VirtAddr::new(shrimp_mem::MMIO_BASE).page();
        let needs_map = os.process(pid)?.pt.get(vpn).is_none();
        if needs_map {
            let flags = PteFlags::VALID | PteFlags::USER | PteFlags::WRITABLE | PteFlags::UNCACHED;
            // Identity map of the MMIO window's first page.
            let pte = Pte::new(shrimp_mem::Pfn::new(vpn.raw()), flags);
            // Route through the kernel: a tiny syscall-ish cost.
            let cost = os.machine().cost().syscall;
            os.machine_mut().advance(cost);
            os.kernel_map_page(pid, vpn, pte)?;
        }
        Ok(())
    }

    /// Injects every NIC's built packets into the fabric and applies all
    /// deliveries: receive-side EISA DMA into physical memory.
    pub fn propagate(&mut self) {
        let tracing = self.core.tracing();
        // Inject, draining every NIC into the persistent scratch queues.
        let mut outbox = std::mem::take(&mut self.outbox);
        let mut run_outbox = std::mem::take(&mut self.run_outbox);
        for lane in &mut self.lanes {
            lane.node.drain_nic(tracing, &mut outbox);
            lane.node.drain_nic_runs(&mut run_outbox);
        }
        for out in outbox.drain(..) {
            self.fabric.send(out.packet, out.ready_at);
        }
        for run in run_outbox.drain(..) {
            let ready_at = run.ready_at;
            let run =
                PacketRun { template: run.packet, count: run.count, stride_ns: run.stride_ns };
            self.fabric.shard_mut().send_run(run, ready_at);
        }
        self.outbox = outbox;
        self.run_outbox = run_outbox;
        // Deliver everything currently in flight (new sends only happen
        // from CPU activity, which happens between propagate calls). The
        // drain itself is the shared `DeliveryCore`, run with an unbounded
        // horizon: the serial driver is the one-shard instantiation.
        self.core.commit_due(self.fabric.shard_mut(), self.lanes.as_mut_slice(), None);
    }

    /// Advances every node's clock to the global maximum (a barrier) and
    /// flushes in-flight traffic. Returns the synchronized instant. Use
    /// before timing multi-node phases so flows start together.
    pub fn barrier_sync(&mut self) -> SimTime {
        self.run_until_quiet();
        let horizon = self
            .lanes
            .iter()
            .map(|l| l.node.os().machine().now())
            .max()
            .expect("at least one node");
        for lane in &mut self.lanes {
            lane.node.os_mut().machine_mut().advance_to(horizon);
        }
        horizon
    }

    /// Runs until no packets are in flight and no NIC holds built packets.
    pub fn run_until_quiet(&mut self) {
        loop {
            self.propagate();
            let pending = self.fabric.in_flight_count()
                + self
                    .lanes
                    .iter()
                    .map(|l| l.node.os().machine().device().outgoing_len())
                    .sum::<usize>();
            if pending == 0 {
                return;
            }
        }
    }

    pub(crate) fn check_node(&self, i: usize) -> Result<(), ShrimpError> {
        if i < self.lanes.len() {
            Ok(())
        } else {
            Err(ShrimpError::NoSuchNode(i))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_sim::SimDuration as SD;

    fn two_nodes() -> (Multicomputer, Pid, Pid, u64) {
        let mut mc = Multicomputer::new(2, MulticomputerConfig::default());
        let s = mc.spawn_process(0);
        let r = mc.spawn_process(1);
        mc.map_user_buffer(0, s, 0x10000, 4).unwrap();
        mc.map_user_buffer(1, r, 0x40000, 4).unwrap();
        let dev_page = mc.export(1, r, VirtAddr::new(0x40000), 4, 0, s).unwrap();
        (mc, s, r, dev_page)
    }

    #[test]
    fn deliberate_update_end_to_end() {
        let (mut mc, s, r, dev_page) = two_nodes();
        mc.write_user(0, s, VirtAddr::new(0x10000), b"hello remote node!!!").unwrap();
        let result = mc.send(0, s, VirtAddr::new(0x10000), dev_page, 0, 20).unwrap();
        assert!(result.transfers >= 1);
        let got = mc.read_user(1, r, VirtAddr::new(0x40000), 20).unwrap();
        assert_eq!(got, b"hello remote node!!!");
        assert!(mc.last_delivery(1) > SimTime::ZERO);
        assert_eq!(mc.dropped_packets(), 0);
    }

    #[test]
    fn unaligned_length_is_rejected_by_the_nic() {
        let (mut mc, s, _r, dev_page) = two_nodes();
        mc.write_user(0, s, VirtAddr::new(0x10000), b"abc").unwrap();
        // 3 bytes violates the §8 4-byte alignment rule.
        let err = mc.send(0, s, VirtAddr::new(0x10000), dev_page, 0, 3).unwrap_err();
        assert!(matches!(err, ShrimpError::Trap(Trap::DeviceError { .. })));
    }

    #[test]
    fn multi_page_message_lands_contiguously() {
        let (mut mc, s, r, dev_page) = two_nodes();
        let data: Vec<u8> = (0..2 * PAGE_SIZE).map(|i| (i % 249) as u8).collect();
        mc.write_user(0, s, VirtAddr::new(0x10000), &data).unwrap();
        mc.send(0, s, VirtAddr::new(0x10000), dev_page, 0, data.len() as u64).unwrap();
        let got = mc.read_user(1, r, VirtAddr::new(0x40000), data.len() as u64).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn offset_send_lands_at_offset() {
        let (mut mc, s, r, dev_page) = two_nodes();
        mc.write_user(0, s, VirtAddr::new(0x10000), &[7u8; 8]).unwrap();
        mc.send(0, s, VirtAddr::new(0x10000), dev_page, 0x100, 8).unwrap();
        let got = mc.read_user(1, r, VirtAddr::new(0x40000 + 0x100), 8).unwrap();
        assert_eq!(got, [7u8; 8]);
        // Surrounding bytes untouched.
        assert_eq!(mc.read_user(1, r, VirtAddr::new(0x40000), 8).unwrap(), [0u8; 8]);
    }

    #[test]
    fn pio_send_arrives() {
        let (mut mc, s, r, dev_page) = two_nodes();
        mc.send_pio(0, s, dev_page, 0x40, b"pio bytes!!!").unwrap();
        let got = mc.read_user(1, r, VirtAddr::new(0x40040), 12).unwrap();
        assert_eq!(got, b"pio bytes!!!");
    }

    #[test]
    fn pio_latency_beats_udma_for_tiny_messages() {
        let (mut mc, s, _r, dev_page) = two_nodes();
        mc.write_user(0, s, VirtAddr::new(0x10000), &[1u8; 16]).unwrap();
        // Warm both paths.
        mc.send(0, s, VirtAddr::new(0x10000), dev_page, 0, 16).unwrap();
        mc.send_pio(0, s, dev_page, 0x20, &[1u8; 16]).unwrap();

        let t0 = mc.node(0).os().machine().now();
        mc.send_pio(0, s, dev_page, 0x20, &[1u8; 16]).unwrap();
        let pio = mc.node(0).os().machine().now() - t0;

        let t0 = mc.node(0).os().machine().now();
        mc.send(0, s, VirtAddr::new(0x10000), dev_page, 0, 16).unwrap();
        let udma = mc.node(0).os().machine().now() - t0;

        assert!(pio < udma, "16B: pio {pio} should beat udma {udma} (§9)");
    }

    #[test]
    fn bidirectional_traffic() {
        let mut mc = Multicomputer::new(2, MulticomputerConfig::default());
        let a = mc.spawn_process(0);
        let b = mc.spawn_process(1);
        mc.map_user_buffer(0, a, 0x10000, 2).unwrap();
        mc.map_user_buffer(1, b, 0x10000, 2).unwrap();
        let to_b = mc.export(1, b, VirtAddr::new(0x11000), 1, 0, a).unwrap();
        let to_a = mc.export(0, a, VirtAddr::new(0x11000), 1, 1, b).unwrap();

        mc.write_user(0, a, VirtAddr::new(0x10000), b"ping").unwrap();
        mc.send(0, a, VirtAddr::new(0x10000), to_b, 0, 4).unwrap();
        assert_eq!(mc.read_user(1, b, VirtAddr::new(0x11000), 4).unwrap(), b"ping");

        mc.write_user(1, b, VirtAddr::new(0x10000), b"pong").unwrap();
        mc.send(1, b, VirtAddr::new(0x10000), to_a, 0, 4).unwrap();
        assert_eq!(mc.read_user(0, a, VirtAddr::new(0x11000), 4).unwrap(), b"pong");
    }

    #[test]
    fn four_node_all_to_one() {
        let mut mc = Multicomputer::new(4, MulticomputerConfig::default());
        let recv = mc.spawn_process(3);
        mc.map_user_buffer(3, recv, 0x40000, 3).unwrap();
        let mut pids = Vec::new();
        for i in 0..3usize {
            let pid = mc.spawn_process(i);
            mc.map_user_buffer(i, pid, 0x10000, 1).unwrap();
            let dev = mc
                .export(3, recv, VirtAddr::new(0x40000 + i as u64 * PAGE_SIZE), 1, i, pid)
                .unwrap();
            pids.push((pid, dev));
        }
        for (i, &(pid, dev)) in pids.iter().enumerate() {
            let msg = vec![0x30 + i as u8; 64];
            mc.write_user(i, pid, VirtAddr::new(0x10000), &msg).unwrap();
            mc.send(i, pid, VirtAddr::new(0x10000), dev, 0, 64).unwrap();
        }
        mc.run_until_quiet();
        for i in 0..3u64 {
            let got = mc.read_user(3, recv, VirtAddr::new(0x40000 + i * PAGE_SIZE), 64).unwrap();
            assert_eq!(got, vec![0x30 + i as u8; 64], "sender {i}");
        }
    }

    #[test]
    fn automatic_update_propagates_ordinary_stores() {
        let mut mc = Multicomputer::new(2, MulticomputerConfig::default());
        let a = mc.spawn_process(0);
        let b = mc.spawn_process(1);
        mc.map_user_buffer(0, a, 0x10000, 2).unwrap();
        mc.map_user_buffer(1, b, 0x30000, 2).unwrap();
        mc.bind_auto_update(0, a, VirtAddr::new(0x10000), 2, 1, b, VirtAddr::new(0x30000)).unwrap();

        // An ordinary store — no STORE/LOAD initiation sequence at all.
        mc.store_user(0, a, VirtAddr::new(0x10008), 0x1122_3344).unwrap();
        let got = mc.read_user(1, b, VirtAddr::new(0x30008), 8).unwrap();
        assert_eq!(u64::from_le_bytes(got.try_into().unwrap()), 0x1122_3344);

        // Bulk writes propagate too (snooped as bursts), page-for-page.
        mc.write_user(0, a, VirtAddr::new(0x10000 + PAGE_SIZE), b"second page data").unwrap();
        mc.propagate();
        let got = mc.read_user(1, b, VirtAddr::new(0x30000 + PAGE_SIZE), 16).unwrap();
        assert_eq!(got, b"second page data");
        assert!(mc.node(0).os().machine().device().stats().get("auto_updates") >= 2);
    }

    #[test]
    fn unbind_stops_propagation() {
        let mut mc = Multicomputer::new(2, MulticomputerConfig::default());
        let a = mc.spawn_process(0);
        let b = mc.spawn_process(1);
        mc.map_user_buffer(0, a, 0x10000, 1).unwrap();
        mc.map_user_buffer(1, b, 0x30000, 1).unwrap();
        mc.bind_auto_update(0, a, VirtAddr::new(0x10000), 1, 1, b, VirtAddr::new(0x30000)).unwrap();
        mc.store_user(0, a, VirtAddr::new(0x10000), 7).unwrap();
        mc.unbind_auto_update(0, a, VirtAddr::new(0x10000), 1).unwrap();
        mc.store_user(0, a, VirtAddr::new(0x10000), 99).unwrap();
        let got = mc.read_user(1, b, VirtAddr::new(0x30000), 8).unwrap();
        assert_eq!(u64::from_le_bytes(got.try_into().unwrap()), 7, "99 must not propagate");
        assert_eq!(mc.node(0).os().machine().device().auto_binding_count(), 0);
    }

    #[test]
    fn auto_update_and_deliberate_update_coexist() {
        let (mut mc, s, r, dev_page) = two_nodes();
        // Bind a separate page pair for automatic update.
        mc.map_user_buffer(0, s, 0x80000, 1).unwrap();
        mc.map_user_buffer(1, r, 0x90000, 1).unwrap();
        mc.bind_auto_update(0, s, VirtAddr::new(0x80000), 1, 1, r, VirtAddr::new(0x90000)).unwrap();

        mc.store_user(0, s, VirtAddr::new(0x80000), 42).unwrap();
        mc.write_user(0, s, VirtAddr::new(0x10000), b"explicit").unwrap();
        mc.send(0, s, VirtAddr::new(0x10000), dev_page, 0, 8).unwrap();

        assert_eq!(mc.read_user(1, r, VirtAddr::new(0x40000), 8).unwrap(), b"explicit");
        let got = mc.read_user(1, r, VirtAddr::new(0x90000), 8).unwrap();
        assert_eq!(u64::from_le_bytes(got.try_into().unwrap()), 42);
    }

    #[test]
    fn binary_trace_roundtrips_to_the_json_export() {
        let (mut mc, s, _r, dev_page) = two_nodes();
        mc.set_tracing(true);
        mc.write_user(0, s, VirtAddr::new(0x10000), &[0xab; 256]).unwrap();
        for _ in 0..4 {
            mc.send(0, s, VirtAddr::new(0x10000), dev_page, 0, 256).unwrap();
        }
        let json = mc.export_trace();
        let bin = mc.export_trace_bin();
        assert_eq!(&bin[..8], TRACE_BIN_MAGIC);
        assert_eq!(bin.len(), 192 + 4 * 64, "4 spans at 64 bytes after the 192-byte header");
        let converted = trace_bin_to_json(&bin).expect("well-formed buffer");
        assert_eq!(converted, json, "converter must reproduce the JSON export byte-for-byte");
        // Malformed buffers are rejected, not misparsed.
        assert!(trace_bin_to_json(&bin[..bin.len() - 1]).is_none(), "truncated");
        assert!(trace_bin_to_json(b"NOTATRACE").is_none(), "bad magic");
    }

    #[test]
    fn barrier_sync_aligns_all_clocks() {
        let mut mc = Multicomputer::new(3, MulticomputerConfig::default());
        // Skew the clocks: work on node 0 only.
        let pid = mc.spawn_process(0);
        mc.map_user_buffer(0, pid, 0x10000, 4).unwrap();
        mc.write_user(0, pid, VirtAddr::new(0x10000), &[1u8; 4096]).unwrap();
        let skewed: Vec<_> = (0..3).map(|i| mc.node(i).os().machine().now()).collect();
        assert!(skewed[0] > skewed[1], "node 0 must be ahead");
        let t = mc.barrier_sync();
        for i in 0..3 {
            assert_eq!(mc.node(i).os().machine().now(), t, "node {i} not synced");
        }
        assert!(t >= skewed[0]);
    }

    #[test]
    fn no_such_node_errors() {
        let mut mc = Multicomputer::new(1, MulticomputerConfig::default());
        let pid = mc.spawn_process(0);
        assert_eq!(mc.map_user_buffer(5, pid, 0x10000, 1).unwrap_err(), ShrimpError::NoSuchNode(5));
    }

    #[test]
    fn send_time_scales_with_size() {
        let (mut mc, s, _r, dev_page) = two_nodes();
        let big = vec![0u8; PAGE_SIZE as usize];
        mc.write_user(0, s, VirtAddr::new(0x10000), &big).unwrap();
        // Warm.
        mc.send(0, s, VirtAddr::new(0x10000), dev_page, 0, 64).unwrap();
        let t0 = mc.node(0).os().machine().now();
        mc.send(0, s, VirtAddr::new(0x10000), dev_page, 0, 64).unwrap();
        let small = mc.node(0).os().machine().now() - t0;
        let t0 = mc.node(0).os().machine().now();
        mc.send(0, s, VirtAddr::new(0x10000), dev_page, 0, PAGE_SIZE).unwrap();
        let large = mc.node(0).os().machine().now() - t0;
        assert!(large > small + SD::from_us(50.0), "page send must be bus-bound");
    }
}
