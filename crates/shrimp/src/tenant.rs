//! NIPT demand paging for multi-tenant nodes.
//!
//! The board's NIPT holds 32K destination pages (§8) — plenty for one
//! process, but a node running thousands of tenant flows can want more
//! live mappings than the table holds. The kernel then treats NIPT slots
//! like page frames: mappings are imported on demand, a tenant's slot can
//! be *recycled* for another tenant when the table is full (a NIPT
//! **eviction**), and a tenant that finds its slot recycled re-enters the
//! kernel to reload it (a NIPT **refault**) before it can send.
//!
//! [`NiptDirectory`] is that kernel-side bookkeeping for one node: which
//! tenant mapping occupies which slot run, plus a clock cursor for victim
//! selection. The data-path check is [`Nipt::lookup_expect`] — one table
//! probe per send in the steady state; only a recycled slot pays the
//! revoke + reimport syscall path.
//!
//! Protection is never weakened by recycling: the victim's device proxy
//! grant is revoked (its demand-created PTEs are unmapped and the I1
//! Inval store fires) *before* the slot is rewritten, so the victim's
//! next touch of the window faults `DeviceNotGranted` instead of writing
//! through another tenant's mapping.

use shrimp_mem::Pfn;
use shrimp_net::NodeId;
use shrimp_os::{Pid, Trap};

use crate::{NiptEntry, ShrimpNode};

/// One tenant's deliberate-update mapping: the destination it names and
/// the NIPT slot run currently backing it (if any).
#[derive(Clone, Debug)]
pub struct TenantMapping {
    /// The local process that owns the mapping.
    pub pid: Pid,
    /// Destination node.
    pub dst: NodeId,
    /// Destination physical frames (one NIPT slot each).
    pub frames: Vec<Pfn>,
    /// First NIPT index that last backed the mapping — the *tenant's*
    /// view, deliberately kept after a recycle: the tenant's next send
    /// probes the stale run, mismatches, and refaults into the kernel,
    /// exactly like a process touching an unmapped page.
    pub dev_page: Option<u64>,
    /// Kernel-side truth: whether the mapping currently owns its slot
    /// run (`dev_page` alone may be stale).
    pub resident: bool,
}

/// Per-node directory of tenant mappings competing for NIPT slots.
#[derive(Clone, Debug, Default)]
pub struct NiptDirectory {
    slots: Vec<TenantMapping>,
    /// Clock hand for victim selection, in directory order.
    hand: usize,
}

impl NiptDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        NiptDirectory::default()
    }

    /// Registers a tenant mapping (not yet imported); returns its handle.
    pub fn register(&mut self, pid: Pid, dst: NodeId, frames: Vec<Pfn>) -> usize {
        self.slots.push(TenantMapping { pid, dst, frames, dev_page: None, resident: false });
        self.slots.len() - 1
    }

    /// The mapping behind `handle`.
    pub fn mapping(&self, handle: usize) -> &TenantMapping {
        &self.slots[handle]
    }

    /// Number of registered mappings.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Ensures tenant `handle`'s mapping is live in `node`'s NIPT and
    /// returns its device proxy page. The steady state is a single
    /// [`Nipt::lookup_expect`] probe; a recycled or never-imported
    /// mapping falls into the kernel reload path, evicting another
    /// tenant's slot run when the table is full.
    ///
    /// # Errors
    ///
    /// [`Trap::DeviceNotGranted`] when the table cannot hold the mapping
    /// even after eviction, plus any grant trap.
    // lint:hot_path
    pub fn ensure(&mut self, handle: usize, node: &mut ShrimpNode) -> Result<u64, Trap> {
        let m = &self.slots[handle];
        if let Some(dev_page) = m.dev_page {
            let expect = NiptEntry { node: m.dst, pfn: m.frames[0] };
            let nipt = node.os_mut().machine_mut().device_mut().nipt_mut();
            if nipt.lookup_expect(dev_page, expect) {
                return Ok(dev_page);
            }
        }
        // lint:allow(A1) -- reload is the NIPT miss path: steady-state
        // ensure() returns above at lookup_expect, and a miss already pays
        // an import/evict round trip that dwarfs any allocation.
        self.reload(handle, node)
    }

    /// The cold path: (re)imports `handle`'s mapping, evicting a victim
    /// when the NIPT is full.
    fn reload(&mut self, handle: usize, node: &mut ShrimpNode) -> Result<u64, Trap> {
        self.slots[handle].resident = false;
        let (pid, dst) = (self.slots[handle].pid, self.slots[handle].dst);
        let frames = self.slots[handle].frames.clone();
        match node.import_mapping(pid, dst, &frames, 0) {
            Ok(start) => {
                self.slots[handle].dev_page = Some(start);
                self.slots[handle].resident = true;
                Ok(start)
            }
            Err(Trap::DeviceNotGranted { .. }) => {
                // Table full: clock over the directory for a resident
                // victim whose run is big enough, revoke it, and install
                // over its slots. The victim keeps its stale `dev_page`
                // view — its next send probes it and refaults.
                let n = self.slots.len();
                for step in 0..n {
                    let v = (self.hand + step) % n;
                    if v == handle {
                        continue;
                    }
                    let victim = &self.slots[v];
                    if !victim.resident {
                        continue;
                    }
                    let Some(start) = victim.dev_page else { continue };
                    if victim.frames.len() < frames.len() {
                        continue;
                    }
                    let (vpid, vpages) = (victim.pid, victim.frames.len() as u64);
                    node.os_mut().revoke_device_proxy(vpid, start, vpages)?;
                    self.slots[v].resident = false;
                    self.hand = (v + 1) % n;
                    let got = node.import_mapping_over(pid, dst, &frames, start)?;
                    self.slots[handle].dev_page = Some(got);
                    self.slots[handle].resident = true;
                    return Ok(got);
                }
                Err(Trap::DeviceNotGranted {
                    pid,
                    va: shrimp_mem::VirtAddr::new(shrimp_mem::DEV_PROXY_BASE),
                })
            }
            Err(trap) => Err(trap),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Multicomputer, MulticomputerConfig};
    use shrimp_mem::VirtAddr;

    /// A 2-node machine whose sender NIPT holds only `entries` slots, one
    /// sender *process per tenant* on node 0, and `tenants` one-page
    /// receive windows exported from node 1 — more mappings than the
    /// table can hold at once.
    fn churn_rig(entries: usize, tenants: usize) -> (Multicomputer, Vec<Pid>, NiptDirectory) {
        let config =
            MulticomputerConfig { nipt_entries: entries, ..MulticomputerConfig::default() };
        let mut mc = Multicomputer::new(2, config);
        let rpid = mc.spawn_process(1);
        mc.map_user_buffer(1, rpid, 0x40_0000, tenants as u64).unwrap();
        let mut dir = NiptDirectory::new();
        let mut pids = Vec::new();
        for t in 0..tenants {
            let spid = mc.spawn_process(0);
            mc.map_user_buffer(0, spid, 0x10_0000, 1).unwrap();
            let va = VirtAddr::new(0x40_0000 + (t as u64) * shrimp_mem::PAGE_SIZE);
            let frames = mc.node_mut(1).export_pages(rpid, va, 1).unwrap();
            let dst = mc.node(1).id();
            dir.register(spid, dst, frames);
            pids.push(spid);
        }
        (mc, pids, dir)
    }

    #[test]
    fn churn_evicts_and_refaults() {
        let (mut mc, _pids, mut dir) = churn_rig(2, 3);
        // Two tenants fit; the third evicts.
        for t in 0..3 {
            dir.ensure(t, mc.node_mut(0)).unwrap();
        }
        let nipt = mc.node(0).os().machine().device().nipt();
        assert!(nipt.evictions() > 0, "third tenant must evict a slot");
        assert!(dir.mapping(2).dev_page.is_some());
        // The evicted tenant still holds its stale view: its next ensure
        // probes the recycled run, refaults, and reloads (evicting
        // someone else).
        let victim = (0..2).find(|&t| !dir.mapping(t).resident).unwrap();
        assert!(dir.mapping(victim).dev_page.is_some(), "stale view survives the recycle");
        let before = mc.node(0).os().machine().device().nipt().refaults();
        dir.ensure(victim, mc.node_mut(0)).unwrap();
        let nipt = mc.node(0).os().machine().device().nipt();
        assert!(nipt.refaults() > before, "the stale probe must count a refault");
        assert!(dir.mapping(victim).resident);
    }

    #[test]
    fn steady_state_is_one_probe() {
        let (mut mc, _pids, mut dir) = churn_rig(4, 2);
        let a = dir.ensure(0, mc.node_mut(0)).unwrap();
        let evictions = mc.node(0).os().machine().device().nipt().evictions();
        for _ in 0..100 {
            assert_eq!(dir.ensure(0, mc.node_mut(0)).unwrap(), a);
        }
        let nipt = mc.node(0).os().machine().device().nipt();
        assert_eq!(nipt.evictions(), evictions, "steady state never rewrites slots");
        assert_eq!(nipt.refaults(), 0, "steady state never refaults");
    }

    #[test]
    fn revoked_sender_faults_device_not_granted() {
        let (mut mc, pids, mut dir) = churn_rig(1, 2);
        let dev0 = dir.ensure(0, mc.node_mut(0)).unwrap();
        // Map + touch the proxy page so tenant 0 has a live PTE.
        mc.write_user(0, pids[0], VirtAddr::new(0x10_0000), &[7u8; 64]).unwrap();
        mc.send(0, pids[0], VirtAddr::new(0x10_0000), dev0, 0, 64).unwrap();
        // Tenant 1 steals the only slot.
        let dev1 = dir.ensure(1, mc.node_mut(0)).unwrap();
        assert_eq!(dev0, dev1, "one-slot table must recycle the same run");
        assert!(!dir.mapping(0).resident);
        // Tenant 0's old window now faults instead of writing through the
        // recycled mapping (protection under churn — invariant I1 family).
        let err = mc.send(0, pids[0], VirtAddr::new(0x10_0000), dev0, 0, 64).unwrap_err();
        assert!(
            matches!(err, crate::ShrimpError::Trap(Trap::DeviceNotGranted { .. })),
            "got {err:?}"
        );
        mc.run_until_quiet();
    }
}
