//! Conservative parallel execution of deliberate-update workloads.
//!
//! [`Multicomputer::run`] runs a *plan* — per-node lists of UDMA sends —
//! with every node sharded across worker threads, advancing in bounded
//! **epochs** synchronized by the fabric's lookahead (one router hop): a
//! node paused at simulated instant `t` cannot make any packet reach a
//! destination's inbound link at or before `t`, so all traffic at or
//! before the minimum paused clock is safe to commit.
//!
//! There is no separate parallel delivery implementation: each shard owns
//! a [`FabricShard`] (the staged-packet source) and a `DeliveryCore` (the
//! receive-side EISA DMA apply), the same two pieces the serial
//! [`Multicomputer::propagate`] drives for the whole machine. The serial
//! driver is literally the `threads = 1` instantiation of this engine
//! minus the epoch machinery: one shard, unbounded horizon, no barriers.
//!
//! Each epoch has two barrier-separated phases:
//!
//! 1. **Execute** — every shard runs each of its unfinished nodes for up
//!    to `K ·` [`CHUNK`] sends, where `K` is the crossing's
//!    windows-per-barrier count: `K` lookahead windows' worth of work
//!    paid for with *one* barrier crossing (see [`WindowSchedule`]).
//!    Outgoing packets are injected into the shard's [`FabricShard`]
//!    (routing latency only) and posted to the receiving shard's mailbox
//!    keyed `(link_ready, transfer id)`. The shard then publishes a
//!    bound: the minimum clock of its unfinished nodes.
//! 2. **Commit** — after the barrier, every shard reads the global
//!    horizon (minimum published bound), drains its mailboxes into its
//!    fabric's staged queue, and lets its `DeliveryCore` commit every
//!    packet at or before the horizon in `(link_ready, transfer id)`
//!    order: inbound-link serialization, receive-side EISA DMA, the
//!    write into physical memory. A second barrier keeps next-epoch
//!    bound publications from racing this epoch's horizon reads.
//!
//! **Determinism.** The horizon is the minimum over *all* unfinished
//! node clocks — independent of how nodes are assigned to shards — and
//! per-epoch node progress is a fixed span (`K · CHUNK` sends, with `K`
//! itself a pure function of the plan shape), so the sequence of
//! horizons is a pure function of the plan. Each destination's packets
//! are committed in `(link_ready, id)` order with per-destination
//! receive state, so the simulated timeline and receiver memory are
//! **bit-identical at any thread count**, including `threads = 1`.
//! Equivalence with the *serial* [`Multicomputer::send`] driver holds
//! because both now stage and commit through the same code with the same
//! `(link_ready, id)` key (see `DESIGN.md` §6b).

use shrimp_mem::VirtAddr;
use shrimp_net::{FabricShard, PacketClass, PacketRun, Staged};
use shrimp_os::{Pid, UdmaXferResult};
use shrimp_sim::{
    ExchangeGrid, FlightRecorder, Histogram, SampleRing, SimTime, SpinBarrier, TimeFrontier,
};

use crate::engine::{DeliveryCore, Lane, LaneMap};
use crate::program::{NullProgram, ProgramPlan, StreamProgram, TrafficProgram};
use crate::{Multicomputer, ShrimpError};

/// Sends a node executes per epoch. Fixed (never derived from the thread
/// count or the host) so epoch boundaries are identical at any
/// parallelism — though the *timeline* would not change anyway: the
/// chunk size only sets how much traffic defers to the next commit.
/// Small enough that the deferred payload window stays cache-resident
/// (large chunks collapse host throughput: every payload is written,
/// aged out of cache, then re-read at commit), large enough to amortize
/// the two barriers. 16 measured best on the `host_throughput` sweep.
const CHUNK: usize = 16;

/// Upper bound on windows executed per barrier crossing. Deep plans run
/// `MAX_EPOCH_WINDOWS · CHUNK` sends between barriers, cutting
/// barrier/frontier traffic (and run-calibration overhead — longer
/// windows mean longer replayed trains) by up to this factor. On a
/// big mesh the execute phase sweeps every owned node's machine state
/// once per crossing, so the span bound directly sets how often that
/// sweep re-fills the cache: 64 windows (1024 sends per node between
/// barriers) measured best on the 64–1024-node `host_throughput` rows.
/// Payload footprint no longer argues for a small span — steady-state
/// trains stage as [`PacketRun`]s, one payload per train regardless of
/// the window count.
pub const MAX_EPOCH_WINDOWS: usize = 64;

/// Deterministic windows-per-crossing schedule.
///
/// Every shard carries a clone and calls [`WindowSchedule::next`]
/// exactly once per barrier crossing, so all shards agree on the span
/// without communicating. The schedule is a pure function of the
/// *initial plan shape* (per-node op counts) and the optional forced
/// override — never of execution outcomes or the thread count — so the
/// epoch boundaries, and with them the whole timeline, are identical at
/// any parallelism. The prediction deliberately ignores traps: a trapped
/// node finishes its plan early, which only makes a predicted window
/// partially idle, never incorrect.
#[derive(Clone, Debug)]
struct WindowSchedule {
    /// Predicted sends remaining per node.
    pred: Vec<usize>,
    /// Forced window count ([`Multicomputer::set_epoch_windows`]);
    /// `None` selects adaptively from the deepest remaining plan.
    forced: Option<usize>,
}

impl WindowSchedule {
    /// `pred` is the per-node predicted send count: a plan's op count,
    /// or a program's initial emission plus its
    /// [`TrafficProgram::planned_hint`].
    fn new(pred: Vec<usize>, forced: Option<usize>) -> Self {
        WindowSchedule { pred, forced }
    }

    /// Window count for the next barrier crossing; advances the plan
    /// prediction.
    fn next(&mut self) -> usize {
        let k = match self.forced {
            Some(k) => k.clamp(1, MAX_EPOCH_WINDOWS),
            None => {
                let deepest = self.pred.iter().copied().max().unwrap_or(0);
                deepest.div_ceil(CHUNK).clamp(1, MAX_EPOCH_WINDOWS)
            }
        };
        for rem in &mut self.pred {
            *rem = rem.saturating_sub(k * CHUNK);
        }
        k
    }
}

/// Host wall-clock nanoseconds per epoch phase, recorded when a phase
/// clock is installed ([`Multicomputer::set_phase_clock`]) and merged
/// across shards after a run. Pure observation of *host* time — the
/// simulated timeline cannot see it. One `execute` sample is recorded
/// per shard per barrier crossing; `barrier` gets two samples per
/// crossing (both waits).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Plan execution: sends, NIC drains, staging posts, bound publish.
    pub execute: Histogram,
    /// Barrier waits (the straggler penalty of the crossing).
    pub barrier: Histogram,
    /// Mailbox drain plus staged-queue merge.
    pub merge: Histogram,
    /// Horizon-bounded delivery commit.
    pub commit: Histogram,
}

impl PhaseBreakdown {
    /// Folds another shard's samples into this breakdown.
    pub fn merge_from(&mut self, other: &PhaseBreakdown) {
        self.execute.merge(&other.execute);
        self.barrier.merge(&other.barrier);
        self.merge.merge(&other.merge);
        self.commit.merge(&other.commit);
    }
}

/// Records the nanoseconds since `*mark` into `hist` and re-marks.
/// Cost-free when no phase clock is installed.
#[inline]
fn lap(clock: Option<fn() -> u64>, mark: &mut u64, hist: &mut Histogram) {
    if let Some(c) = clock {
        let now = c();
        hist.record(now.saturating_sub(*mark));
        *mark = now;
    }
}

/// One user-level DMA send in a [`NodePlan`]: the arguments of
/// [`Multicomputer::send`] minus the node index. `PartialEq` lets the
/// engine spot message trains — maximal runs of identical consecutive
/// ops — which are the burst-replay candidates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendOp {
    /// Sending process.
    pub pid: Pid,
    /// Source buffer virtual address.
    pub src_va: VirtAddr,
    /// Destination device proxy page.
    pub dev_page: u64,
    /// Offset on the proxy page.
    pub dev_off: u64,
    /// Transfer length in bytes.
    pub nbytes: u64,
    /// The §7 priority class the resulting packets travel under
    /// ([`PacketClass::User`] for ordinary data; the engine stamps it
    /// onto every packet the send produces).
    pub class: PacketClass,
}

/// A node's share of a parallel workload.
#[derive(Clone, Debug)]
pub struct NodePlan {
    /// Which node runs the ops.
    pub node: usize,
    /// Sends, executed in order.
    pub ops: Vec<SendOp>,
}

/// What a parallel run did (observability; identical at any thread count).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParallelReport {
    /// Epochs until every plan drained.
    pub epochs: u64,
    /// Sends executed.
    pub messages: u64,
    /// Packets exchanged through the fabric.
    pub packets: u64,
}

/// A cross-shard staged entry: `(link_ready, merge tag, entry)`.
/// `link_ready` is the instant the (first) packet reaches its
/// destination's inbound link, before serialization; the tag is the
/// packet's own transfer id (`source node ‖ per-source sequence`, minted
/// by the sending NIC — a run's first member for [`Staged::Run`]).
type Flit = (SimTime, u64, Staged);

/// A node owned by a shard: its [`Lane`] (node + receive-side state),
/// this run's emitted-so-far send list, and the traffic program that
/// grows it (absent for nodes that only receive).
struct ShardNode {
    /// Global node index.
    index: usize,
    lane: Lane,
    /// Sends emitted so far: the whole plan up front for a stream, a
    /// growing log for a reactive program (`next` walks it; emitted ops
    /// are never revisited, so the log doubles as the run's op history).
    ops: Vec<SendOp>,
    next: usize,
    /// The node's traffic program, if any (stepped at epoch boundaries
    /// at which deliveries arrived).
    program: Option<Box<dyn TrafficProgram>>,
    /// A kernel trap finished this node's traffic for the run: its
    /// program is no longer stepped, its remaining ops are dropped.
    failed: bool,
}

impl ShardNode {
    /// No ops left to execute *right now* — the node cannot advance its
    /// own clock, so it is excluded from the published bound. A reactive
    /// program may still revive it (deliveries wake it at the next epoch
    /// boundary).
    fn exhausted(&self) -> bool {
        self.next >= self.ops.len()
    }
}

/// How a round-robin shard finds the [`Lane`] for a global node index:
/// shard `id` owns nodes `id, id + threads, …` at local slots
/// `global / threads`.
struct RoundRobin<'a> {
    nodes: &'a mut [ShardNode],
    threads: usize,
    id: usize,
}

impl LaneMap for RoundRobin<'_> {
    fn lane_mut(&mut self, node: usize) -> &mut Lane {
        debug_assert_eq!(node % self.threads, self.id, "packet routed to the wrong shard");
        &mut self.nodes[node / self.threads].lane
    }
}

/// One worker's slice of the machine: its nodes, its slice of the fabric
/// (with the deterministic staged queue for traffic addressed to it), and
/// its instance of the shared delivery core.
struct Shard {
    id: usize,
    threads: usize,
    nodes: Vec<ShardNode>,
    fabric: FabricShard,
    /// The receive-side delivery implementation — the same code the
    /// serial driver runs, bounded here by the epoch horizon.
    core: DeliveryCore,
    /// Scratch: NIC drain target, reused across ops.
    outbox: Vec<crate::OutgoingPacket>,
    /// Scratch: NIC burst-descriptor drain target.
    run_outbox: Vec<crate::OutgoingRun>,
    /// Whether steady-state message trains may replay as runs (copied
    /// from [`Multicomputer::burst`] at split time).
    burst: bool,
    /// Staged outgoing flits, one batch per destination shard, posted
    /// once per epoch so mailbox locks are taken O(shards) times.
    staging: Vec<Vec<Flit>>,
    /// Scratch: mailbox drain target.
    incoming: Vec<Flit>,
    /// This shard's clone of the global windows-per-crossing schedule.
    schedule: WindowSchedule,
    /// Whether any program in the run (on *any* shard) is reactive: the
    /// shard then publishes the reactive bound — node clocks *plus*
    /// staged/posted traffic — so replies injected next epoch can never
    /// land behind the horizon. All-static runs publish the legacy
    /// clock-only bound and reproduce the legacy epochs exactly.
    reactive: bool,
    /// Minimum `link_ready` among flits this shard posted this epoch
    /// (reset after every bound publication; reactive runs only).
    posted_min: Option<SimTime>,
    /// Host phase clock (`None` = phase timing off).
    clock: Option<fn() -> u64>,
    /// Host-time samples per epoch phase (empty when `clock` is `None`).
    phases: PhaseBreakdown,
    /// Per-epoch staged-queue depth timeseries (`None` = sampling off;
    /// see [`Multicomputer::set_epoch_sampling`]).
    sampler: Option<SampleRing>,
    epochs: u64,
    messages: u64,
    packets: u64,
    /// Trapped nodes: `(global index, error)`. A trap finishes that
    /// node's plan; the run keeps going and reports the error at the end.
    errors: Vec<(usize, ShrimpError)>,
}

impl Shard {
    fn run(&mut self, barrier: &SpinBarrier, frontier: &TimeFrontier, grid: &ExchangeGrid<Flit>) {
        let clock = self.clock;
        let mut mark = clock.map_or(0, |c| c());
        loop {
            self.epochs += 1;
            // Execute phase: K lookahead windows' worth of sends per
            // node, all paid for with the one barrier crossing below.
            let span = self.schedule.next() * CHUNK;
            if self.reactive {
                self.pump_programs();
            }
            for ni in 0..self.nodes.len() {
                self.execute_chunk(ni, span);
            }
            for dst in 0..self.threads {
                grid.post_batch(self.id, dst, &mut self.staging[dst]);
            }
            let bound = self.publish_bound();
            frontier.publish(self.id, bound);
            self.posted_min = None;
            lap(clock, &mut mark, &mut self.phases.execute);
            barrier.wait();
            lap(clock, &mut mark, &mut self.phases.barrier);

            // Commit phase. The horizon is only meaningful between the
            // two barriers: every shard has published, none has moved on.
            let horizon = frontier.horizon();
            grid.drain_to(self.id, &mut self.incoming);
            for (at, tag, pkt) in self.incoming.drain(..) {
                self.fabric.stage(at, tag, pkt);
            }
            lap(clock, &mut mark, &mut self.phases.merge);
            if let Some(ring) = &mut self.sampler {
                // Post-merge, pre-commit: the epoch's peak staged depth.
                ring.record(self.epochs as u32, self.fabric.staged_len() as u64);
            }
            self.core.commit_due(
                &mut self.fabric,
                &mut RoundRobin { nodes: &mut self.nodes, threads: self.threads, id: self.id },
                horizon,
            );
            lap(clock, &mut mark, &mut self.phases.commit);
            barrier.wait();
            lap(clock, &mut mark, &mut self.phases.barrier);

            // A `None` horizon means every shard was exhausted when it
            // published, so this commit drained everything in flight.
            if horizon.is_none() {
                debug_assert!(
                    self.fabric.staged_len() == 0,
                    "final commit must drain the staged queue"
                );
                return;
            }
        }
    }

    /// Steps every reactive-era program whose node received deliveries
    /// last epoch (the inbox its lane collected in commit order), letting
    /// it append reply sends for this epoch's execute sweep. Programs
    /// are delivery-driven after their initial step — a node with an
    /// empty inbox stays dormant, exactly as the bound it was excluded
    /// from assumed. A trap in a step finishes the node's traffic like a
    /// mid-plan kernel trap.
    // lint:hot_path
    fn pump_programs(&mut self) {
        for ni in 0..self.nodes.len() {
            let sn = &mut self.nodes[ni];
            if sn.lane.inbox.is_empty() {
                continue;
            }
            let Some(program) = sn.program.as_mut() else {
                sn.lane.inbox.clear();
                continue;
            };
            if sn.failed || program.finished() {
                sn.lane.inbox.clear();
                continue;
            }
            let Lane { node, inbox, .. } = &mut sn.lane;
            let result = program.step(node, inbox, &mut sn.ops);
            inbox.clear();
            if let Err(trap) = result {
                // lint:allow(A1) -- a trap is terminal for the node's
                // traffic: the cold error path, never the steady state.
                self.errors.push((sn.index, trap.into()));
                sn.failed = true;
                sn.next = sn.ops.len();
            }
        }
    }

    /// The bound this shard publishes for the crossing. Legacy (all
    /// programs static): the minimum clock of its unexhausted nodes —
    /// the exact pre-program bound, same epochs, same timeline. Reactive:
    /// additionally capped by the earliest staged entry and the earliest
    /// flit posted this epoch (each plus one hop of lookahead), because
    /// a delivery at instant `t` can wake a dormant program whose reply
    /// cannot reach any inbound link before `t + hop` — so committing
    /// through `min + hop` is always safe, wherever in the mesh the
    /// waiting node and the pending traffic live.
    // lint:hot_path
    fn publish_bound(&self) -> Option<SimTime> {
        let mut bound = self
            .nodes
            .iter()
            .filter(|n| !n.exhausted())
            .map(|n| n.lane.node.os().machine().now())
            .min();
        if self.reactive {
            let lookahead = self.fabric.lookahead();
            for t in [self.fabric.next_staged(), self.posted_min].into_iter().flatten() {
                let capped = t + lookahead;
                bound = Some(bound.map_or(capped, |b| b.min(capped)));
            }
        }
        bound
    }

    /// Runs up to `span` sends of node `ni` (the crossing's
    /// `K ·` [`CHUNK`] window), staging its packets. Maximal runs of
    /// identical consecutive ops (length ≥ 3) are burst candidates: two
    /// literal sends calibrate, the rest replays as one [`Staged::Run`].
    /// Runs never cross the window, so epoch boundaries — and hence the
    /// timeline — are the same whether or not batching engages.
    fn execute_chunk(&mut self, ni: usize, span: usize) {
        let end = (self.nodes[ni].next + span).min(self.nodes[ni].ops.len());
        while self.nodes[ni].next < end {
            let sn = &self.nodes[ni];
            let op = sn.ops[sn.next];
            let mut runlen = 1;
            while sn.next + runlen < end && sn.ops[sn.next + runlen] == op {
                runlen += 1;
            }
            if self.burst && runlen >= 3 {
                // Replayed or not, the calibration sends made progress;
                // re-detect from the new position either way.
                self.try_execute_run(ni, op, runlen);
                if self.nodes[ni].exhausted() {
                    return;
                }
            } else if self.execute_one(ni, op).is_none() {
                return;
            }
        }
    }

    /// Runs one literal send of `op` on node `ni`, staging its packets.
    /// Returns `None` after a kernel trap (which finishes the node's
    /// plan).
    // lint:hot_path
    fn execute_one(&mut self, ni: usize, op: SendOp) -> Option<UdmaXferResult> {
        let tracing = self.core.tracing();
        let sn = &mut self.nodes[ni];
        sn.next += 1;
        let result = match sn.lane.node.os_mut().udma_send(
            op.pid,
            op.src_va,
            op.dev_page,
            op.dev_off,
            op.nbytes,
        ) {
            Ok(result) => result,
            Err(trap) => {
                // lint:allow(A1) -- a trap is terminal for the node's
                // plan: the cold error path, never the steady state.
                self.errors.push((sn.index, trap.into()));
                sn.next = sn.ops.len();
                return None;
            }
        };
        self.messages += 1;
        sn.lane.node.drain_nic(tracing, &mut self.outbox);
        for out in self.outbox.drain(..) {
            let mut pkt = out.packet;
            pkt.class = op.class;
            let link_ready = self.fabric.inject(&mut pkt, out.ready_at);
            let tag = pkt.merge_tag();
            if self.reactive {
                self.posted_min = Some(self.posted_min.map_or(link_ready, |m| m.min(link_ready)));
            }
            self.packets += 1;
            let dst_shard = pkt.dst.raw() as usize % self.threads;
            // lint:allow(A1) -- staging batches keep their capacity across
            // epochs (post_batch drains them in place), so steady-state
            // pushes never reallocate.
            self.staging[dst_shard].push((link_ready, tag, Staged::One(pkt)));
        }
        Some(result)
    }

    /// Calibrates a train of `runlen` identical ops on node `ni` with two
    /// literal sends; if they hit the model's steady-state stride, the
    /// remaining `runlen - 2` replay wholesale and stage as one run.
    /// Always consumes at least the two calibration ops.
    // lint:hot_path
    fn try_execute_run(&mut self, ni: usize, op: SendOp, runlen: usize) {
        let Some(r0) = self.execute_one(ni, op) else { return };
        let e0 = self.nodes[ni].lane.node.os().machine().now();
        let Some(r1) = self.execute_one(ni, op) else { return };
        let e1 = self.nodes[ni].lane.node.os().machine().now();
        let stride = e1.saturating_duration_since(e0);
        let model =
            crate::engine::steady_stride(self.nodes[ni].lane.node.os().machine().cost(), op.nbytes);
        let eligible = r0.transfers == 1
            && r0.retries == 0
            && r1 == r0
            && stride == model
            && stride.as_nanos() <= u64::from(u32::MAX);
        if !eligible {
            return;
        }
        let count = (runlen - 2) as u64;
        let sn = &mut self.nodes[ni];
        if !sn.lane.node.os_mut().machine_mut().udma_replay_messages(count, stride) {
            return;
        }
        sn.next += runlen - 2;
        self.messages += count;
        sn.lane.node.drain_nic_runs(&mut self.run_outbox);
        for out in self.run_outbox.drain(..) {
            let ready_at = out.ready_at;
            let mut run =
                PacketRun { template: out.packet, count: out.count, stride_ns: out.stride_ns };
            run.template.class = op.class;
            let link_ready = self.fabric.inject_run(&mut run, ready_at);
            let tag = run.template.merge_tag();
            if self.reactive {
                self.posted_min = Some(self.posted_min.map_or(link_ready, |m| m.min(link_ready)));
            }
            self.packets += u64::from(run.count);
            // lint:checks(F1) -- `% self.threads` clamps the shard index
            // into range regardless of the packet's destination field.
            let dst_shard = run.template.dst.raw() as usize % self.threads;
            // lint:allow(A1) -- staging batches keep their capacity across
            // epochs (post_batch drains them in place), so steady-state
            // pushes never reallocate.
            self.staging[dst_shard].push((link_ready, tag, Staged::Run(run)));
        }
    }
}

impl Multicomputer {
    /// Runs `plans` to completion across `threads` worker threads using
    /// conservative epoch synchronization. With `threads = 1` the single
    /// shard runs inline (no thread is spawned) and the run is the serial
    /// driver under another name: same fabric, same delivery core, same
    /// timeline. The simulated timeline, receiver memory, per-node clocks
    /// and fabric statistics are identical at any thread count (the count
    /// is clamped to `[1, node_count]`).
    ///
    /// Quiesces in-flight traffic first; plans for the same node
    /// concatenate in argument order. Empty `plans` are exactly the
    /// serial no-op: one epoch, no messages, state untouched.
    ///
    /// # Errors
    ///
    /// A bad node index fails up front. A kernel trap mid-plan finishes
    /// that node's plan early; the rest of the machine runs to
    /// completion, state is reassembled, and the trap of the
    /// lowest-indexed trapped node is returned.
    pub fn run(
        &mut self,
        plans: &[NodePlan],
        threads: usize,
    ) -> Result<ParallelReport, ShrimpError> {
        let n = self.lanes.len();
        let mut ops: Vec<Vec<SendOp>> = vec![Vec::new(); n];
        for plan in plans {
            self.check_node(plan.node)?;
            ops[plan.node].extend_from_slice(&plan.ops);
        }
        // The legacy path is literally the trivial program: each node's
        // concatenated plan becomes a stream that emits everything on
        // its initial step and reacts to nothing.
        let mut programs: Vec<ProgramPlan> = ops
            .into_iter()
            .enumerate()
            .filter(|(_, ops)| !ops.is_empty())
            .map(|(node, ops)| ProgramPlan { node, program: Box::new(StreamProgram::new(ops)) })
            .collect();
        self.run_programs(&mut programs, threads)
    }

    /// Runs reactive traffic programs to completion across `threads`
    /// worker threads — the program-driven generalization of
    /// [`Multicomputer::run`] (which is now a wrapper emitting each plan
    /// as a trivial [`StreamProgram`]).
    ///
    /// Each program is stepped once up front (empty inbox) to emit its
    /// opening sends, then re-stepped at every epoch boundary at which
    /// its node received deliveries, with those deliveries surfaced in
    /// commit order. Reply injection is therefore a pure function of the
    /// simulated timeline, and the timeline, `state_digest` and trace
    /// bytes are bit-identical at any thread count. On return every
    /// program is handed back in its final state (for latency histograms
    /// and the like); at most one program per node.
    ///
    /// # Panics
    ///
    /// Panics if two programs name the same node.
    ///
    /// # Errors
    ///
    /// A bad node index fails up front. A kernel trap in a program step
    /// or mid-plan finishes that node's traffic; the rest of the machine
    /// runs to completion, state is reassembled, and the trap of the
    /// lowest-indexed trapped node is returned.
    pub fn run_programs(
        &mut self,
        programs: &mut [ProgramPlan],
        threads: usize,
    ) -> Result<ParallelReport, ShrimpError> {
        let n = self.lanes.len();
        for pp in programs.iter() {
            self.check_node(pp.node)?;
        }
        self.run_until_quiet();
        let reactive = programs.iter().any(|pp| pp.program.reactive());

        // Take ownership of the programs (a placeholder keeps each
        // `ProgramPlan` intact) and run every initial step against an
        // empty inbox while the machine is still assembled: opening
        // emissions seed the schedule exactly as plan depths would.
        let mut ops: Vec<Vec<SendOp>> = vec![Vec::new(); n];
        let mut progs: Vec<Option<Box<dyn TrafficProgram>>> = (0..n).map(|_| None).collect();
        let mut plan_slot: Vec<Option<usize>> = vec![None; n];
        let mut init_errors: Vec<(usize, ShrimpError)> = Vec::new();
        let mut pred: Vec<usize> = vec![0; n];
        for (slot, pp) in programs.iter_mut().enumerate() {
            let node = pp.node;
            assert!(plan_slot[node].is_none(), "node {node} has more than one traffic program");
            plan_slot[node] = Some(slot);
            let program =
                progs[node].insert(std::mem::replace(&mut pp.program, Box::new(NullProgram)));
            let hint = program.planned_hint();
            let lane = &mut self.lanes[node];
            match program.step(&mut lane.node, &[], &mut ops[node]) {
                Ok(()) => pred[node] = ops[node].len() + hint,
                Err(trap) => {
                    init_errors.push((node, trap.into()));
                    ops[node].clear();
                }
            }
            if reactive {
                lane.collect = true;
                lane.inbox.reserve(2 * CHUNK);
            }
        }
        let threads = threads.clamp(1, n);
        // The windows-per-crossing schedule is fixed by the initial
        // emissions before the machine disassembles; every shard gets a
        // clone.
        let schedule = WindowSchedule::new(pred, self.epoch_windows);

        // Disassemble: lanes (nodes + receive-side state) move to their
        // shards (round-robin: shard `s` owns nodes `s, s+threads, …`),
        // the fabric splits into per-shard link state, and each shard
        // gets its own instance of the delivery core. Scratch queues are
        // sized for a full epoch up front so the epoch loop never grows
        // them.
        let per_shard = n.div_ceil(threads);
        let mut shards: Vec<Shard> = self
            .fabric
            .split(threads)
            .into_iter()
            .enumerate()
            .map(|(id, fabric)| Shard {
                id,
                threads,
                nodes: Vec::new(),
                fabric,
                core: DeliveryCore::new(self.core.passive, {
                    // Full global capacity per shard: each shard's retained
                    // tail is then a superset of its contribution to the
                    // merged newest-capacity window, so the merge result is
                    // independent of the sharding.
                    let mut r = FlightRecorder::new(self.core.recorder.capacity());
                    r.set_enabled(self.core.recorder.is_enabled());
                    r
                }),
                outbox: Vec::with_capacity(8),
                run_outbox: Vec::with_capacity(4),
                burst: self.burst(),
                staging: (0..threads).map(|_| Vec::with_capacity(CHUNK * per_shard)).collect(),
                incoming: Vec::with_capacity(CHUNK * n),
                schedule: schedule.clone(),
                clock: self.phase_clock,
                phases: PhaseBreakdown::default(),
                sampler: self.epoch_sample_capacity.map(SampleRing::with_capacity),
                epochs: 0,
                messages: 0,
                packets: 0,
                errors: Vec::new(),
                reactive,
                posted_min: None,
            })
            .collect();
        for (index, lane) in std::mem::take(&mut self.lanes).into_iter().enumerate() {
            let failed = init_errors.iter().any(|&(node, _)| node == index);
            shards[index % threads].nodes.push(ShardNode {
                index,
                lane,
                ops: std::mem::take(&mut ops[index]),
                next: 0,
                program: progs[index].take(),
                failed,
            });
        }

        let barrier = SpinBarrier::new(threads);
        let frontier = TimeFrontier::new(threads);
        // Lanes pre-reserve one window's worth of literal sends per
        // owned node; batch posts then reuse capacity in steady state
        // (runs cross as single entries, so burst mode needs far less).
        let grid: ExchangeGrid<Flit> = ExchangeGrid::with_lane_capacity(threads, CHUNK * per_shard);
        if threads == 1 {
            // The degenerate serial case: run the one shard inline — the
            // barriers and frontier are trivially uncontended and no
            // thread is spawned.
            shards[0].run(&barrier, &frontier, &grid);
        } else {
            let (barrier, frontier, grid) = (&barrier, &frontier, &grid);
            let (first, rest) = shards.split_at_mut(1);
            std::thread::scope(|s| {
                let handles: Vec<_> = rest
                    .iter_mut()
                    .map(|shard| s.spawn(move || shard.run(barrier, frontier, grid)))
                    .collect();
                first[0].run(barrier, frontier, grid);
                for h in handles {
                    h.join().expect("shard thread panicked");
                }
            });
        }
        debug_assert!(grid.is_empty(), "all exchanged packets must be committed");

        // Reassemble.
        let mut report = ParallelReport::default();
        let mut slots: Vec<Option<Lane>> = (0..n).map(|_| None).collect();
        let mut fabric_shards = Vec::with_capacity(threads);
        let mut recorders = Vec::with_capacity(threads);
        let mut first_error: Option<(usize, ShrimpError)> = None;
        self.phases = PhaseBreakdown::default();
        self.epoch_samples.clear();
        for shard in shards {
            self.phases.merge_from(&shard.phases);
            if let Some(ring) = shard.sampler {
                // Shards are consumed in shard order, so the timeseries
                // land in a stable per-shard sequence.
                self.epoch_samples.push(ring);
            }
            recorders.push(shard.core.recorder);
            report.epochs = report.epochs.max(shard.epochs);
            report.messages += shard.messages;
            report.packets += shard.packets;
            self.core.dropped += shard.core.dropped;
            self.core.delivered += shard.core.delivered;
            self.core.runs_committed += shard.core.runs_committed;
            self.core.run_splits += shard.core.run_splits;
            for (index, error) in shard.errors {
                if first_error.is_none_or(|(lowest, _)| index < lowest) {
                    first_error = Some((index, error));
                }
            }
            for sn in shard.nodes {
                if let Some(program) = sn.program {
                    let slot = plan_slot[sn.index].expect("program nodes have a plan slot");
                    programs[slot].program = program;
                }
                slots[sn.index] = Some(sn.lane);
            }
            fabric_shards.push(shard.fabric);
        }
        self.lanes = slots.into_iter().map(|s| s.expect("every node comes back")).collect();
        for lane in &mut self.lanes {
            lane.collect = false;
            lane.inbox.clear();
        }
        for (index, error) in init_errors {
            if first_error.is_none_or(|(lowest, _)| index < lowest) {
                first_error = Some((index, error));
            }
        }
        let owner: Vec<usize> = (0..n).map(|i| i % threads).collect();
        self.fabric.merge(fabric_shards, &owner);
        // Deterministic trace merge: spans re-sort into the same
        // `(link_ready, id)` order the commit loops applied them in, so
        // the merged recorder is bit-identical at any thread count.
        self.core.recorder.absorb(recorders);
        self.last_epochs = report.epochs;
        match first_error {
            Some((_, error)) => Err(error),
            None => Ok(report),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MulticomputerConfig;
    use shrimp_os::Trap;

    /// An `n`-node machine with disjoint sender→receiver pairs
    /// (`2p → 2p+1`) and a plan of `msgs` sends of `bytes` bytes per pair.
    fn paired_stream(n: u16, msgs: usize, bytes: u64) -> (Multicomputer, Vec<NodePlan>) {
        let mut mc = Multicomputer::new(n, MulticomputerConfig::default());
        let mut plans = Vec::new();
        for p in 0..(n as usize / 2) {
            let (s, r) = (2 * p, 2 * p + 1);
            let spid = mc.spawn_process(s);
            let rpid = mc.spawn_process(r);
            mc.map_user_buffer(s, spid, 0x10_0000, 2).unwrap();
            mc.map_user_buffer(r, rpid, 0x40_0000, 2).unwrap();
            let dev = mc.export(r, rpid, VirtAddr::new(0x40_0000), 2, s, spid).unwrap();
            let fill: Vec<u8> = (0..bytes).map(|i| (i as u8) ^ (s as u8)).collect();
            mc.write_user(s, spid, VirtAddr::new(0x10_0000), &fill).unwrap();
            plans.push(NodePlan {
                node: s,
                ops: vec![
                    SendOp {
                        pid: spid,
                        src_va: VirtAddr::new(0x10_0000),
                        dev_page: dev,
                        dev_off: 0,
                        nbytes: bytes,
                        class: PacketClass::User,
                    };
                    msgs
                ],
            });
        }
        (mc, plans)
    }

    /// Timeline fingerprint: every node clock, delivery time and EISA
    /// state, plus fabric counters.
    fn fingerprint(mc: &Multicomputer) -> Vec<u64> {
        let mut v = Vec::new();
        for i in 0..mc.node_count() {
            v.push(mc.node(i).os().machine().now().as_nanos());
            v.push(mc.last_delivery(i).as_nanos());
        }
        v.push(mc.fabric().stats().get("packets"));
        v.push(mc.fabric().stats().get("payload_bytes"));
        v.push(mc.dropped_packets());
        v
    }

    #[test]
    fn thread_counts_cannot_change_the_timeline() {
        let mut prints = Vec::new();
        for threads in [1usize, 2, 3, 4] {
            let (mut mc, plans) = paired_stream(8, 40, 1024);
            let report = mc.run(&plans, threads).unwrap();
            assert_eq!(report.messages, 4 * 40);
            prints.push((fingerprint(&mc), report));
        }
        for (p, r) in &prints[1..] {
            assert_eq!(p, &prints[0].0, "timeline must be thread-count independent");
            assert_eq!(r, &prints[0].1, "report must be thread-count independent");
        }
    }

    #[test]
    fn parallel_matches_serial_driver_on_streams() {
        let msgs = 30;
        let (mut serial, plans) = paired_stream(4, msgs, 512);
        let (mut par, _) = paired_stream(4, msgs, 512);
        for plan in &plans {
            for op in &plan.ops {
                serial
                    .send(plan.node, op.pid, op.src_va, op.dev_page, op.dev_off, op.nbytes)
                    .unwrap();
            }
        }
        serial.run_until_quiet();
        par.run(&plans, 2).unwrap();
        assert_eq!(fingerprint(&par), fingerprint(&serial));
        // Receiver memory matches too.
        for r in [1usize, 3] {
            let pid = Pid::new(1);
            let a = serial.read_user(r, pid, VirtAddr::new(0x40_0000), 512).unwrap();
            let b = par.read_user(r, pid, VirtAddr::new(0x40_0000), 512).unwrap();
            assert_eq!(a, b, "receiver {r} memory diverged");
        }
    }

    #[test]
    fn delivered_data_is_correct() {
        let (mut mc, plans) = paired_stream(2, 5, 2048);
        mc.run(&plans, 2).unwrap();
        let pid = Pid::new(1);
        let got = mc.read_user(1, pid, VirtAddr::new(0x40_0000), 2048).unwrap();
        let want: Vec<u8> = (0..2048u64).map(|i| i as u8).collect();
        assert_eq!(got, want);
        assert_eq!(mc.dropped_packets(), 0);
    }

    #[test]
    fn bad_node_index_is_rejected() {
        let (mut mc, _) = paired_stream(2, 1, 64);
        let err = mc.run(&[NodePlan { node: 9, ops: Vec::new() }], 1).unwrap_err();
        assert_eq!(err, ShrimpError::NoSuchNode(9));
    }

    #[test]
    fn trap_mid_plan_surfaces_after_the_run() {
        let (mut mc, mut plans) = paired_stream(2, 3, 64);
        // Unmapped source address: the kernel traps on the second op.
        plans[0].ops[1].src_va = VirtAddr::new(0xdead_0000);
        let err = mc.run(&plans, 2).unwrap_err();
        assert!(matches!(err, ShrimpError::Trap(Trap::SegFault { .. })), "got {err:?}");
        // Ops before the trap still landed.
        let pid = Pid::new(1);
        let got = mc.read_user(1, pid, VirtAddr::new(0x40_0000), 64).unwrap();
        assert_eq!(got, (0..64).map(|i| i as u8).collect::<Vec<u8>>());
    }

    #[test]
    fn empty_plans_are_the_serial_noop() {
        // The empty workload must behave identically through both entry
        // points: same report at every thread count, same digest as the
        // serial driver's quiesce on an identically built machine.
        let (mut serial, _) = paired_stream(4, 1, 64);
        serial.run_until_quiet();
        let want = serial.state_digest();
        for threads in [1usize, 2, 4] {
            let (mut mc, _) = paired_stream(4, 1, 64);
            let report = mc.run(&[], threads).unwrap();
            assert_eq!(report, ParallelReport { epochs: 1, messages: 0, packets: 0 });
            assert_eq!(mc.state_digest(), want, "empty run diverged at {threads} threads");
        }
    }

    #[test]
    fn programs_reproduce_the_plan_timeline() {
        // A `StreamProgram` per node must be byte-for-byte the plan path
        // (it IS the plan path now, but pin it from the public API too).
        let (mut a, plans) = paired_stream(4, 10, 256);
        let (mut b, _) = paired_stream(4, 10, 256);
        let ra = a.run(&plans, 2).unwrap();
        let mut programs: Vec<ProgramPlan> = plans
            .iter()
            .map(|p| ProgramPlan {
                node: p.node,
                program: Box::new(StreamProgram::new(p.ops.clone())),
            })
            .collect();
        let rb = b.run_programs(&mut programs, 2).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a.state_digest(), b.state_digest());
        for pp in &programs {
            assert!(pp.program.finished(), "stream on node {} not drained", pp.node);
        }
    }

    #[test]
    fn rpc_ping_pong_is_thread_count_invariant() {
        use crate::program::{RpcClientProgram, RpcServerProgram};

        let build = || {
            let mut mc = Multicomputer::new(4, MulticomputerConfig::default());
            let mut programs = Vec::new();
            for p in 0..2usize {
                let (c, s) = (2 * p, 2 * p + 1);
                let cpid = mc.spawn_process(c);
                let spid = mc.spawn_process(s);
                mc.map_user_buffer(c, cpid, 0x10_0000, 2).unwrap();
                mc.map_user_buffer(s, spid, 0x40_0000, 2).unwrap();
                // Client's request buffer maps into the server; the
                // server's reply buffer maps back into the client.
                let req_dev = mc.export(s, spid, VirtAddr::new(0x40_0000), 1, c, cpid).unwrap();
                let rep_dev = mc.export(c, cpid, VirtAddr::new(0x10_1000), 1, s, spid).unwrap();
                let fill: Vec<u8> = (0..256).map(|i| i as u8 ^ c as u8).collect();
                mc.write_user(c, cpid, VirtAddr::new(0x10_0000), &fill).unwrap();
                mc.write_user(s, spid, VirtAddr::new(0x40_1000), &fill).unwrap();
                let req_paddr = mc.user_paddr(s, spid, VirtAddr::new(0x40_0000)).unwrap();
                let rep_paddr = mc.user_paddr(c, cpid, VirtAddr::new(0x10_1000)).unwrap();
                let request = SendOp {
                    pid: cpid,
                    src_va: VirtAddr::new(0x10_0000),
                    dev_page: req_dev,
                    dev_off: 0,
                    nbytes: 256,
                    class: PacketClass::User,
                };
                let reply = SendOp {
                    pid: spid,
                    src_va: VirtAddr::new(0x40_1000),
                    dev_page: rep_dev,
                    dev_off: 0,
                    nbytes: 256,
                    class: PacketClass::User,
                };
                programs.push(ProgramPlan {
                    node: c,
                    program: Box::new(RpcClientProgram::closed_loop(request, 6, rep_paddr, 256)),
                });
                programs.push(ProgramPlan {
                    node: s,
                    program: Box::new(RpcServerProgram::new(
                        req_paddr,
                        256,
                        vec![(req_paddr, reply)],
                        6,
                    )),
                });
            }
            (mc, programs)
        };

        let mut prints = Vec::new();
        for threads in [1usize, 2, 4] {
            let (mut mc, mut programs) = build();
            let report = mc.run_programs(&mut programs, threads).unwrap();
            for pp in &programs {
                assert!(pp.program.finished(), "node {} program stalled", pp.node);
            }
            prints.push((fingerprint(&mc), mc.state_digest(), report));
        }
        for p in &prints[1..] {
            assert_eq!(p, &prints[0], "RPC timeline must be thread-count independent");
        }
    }
}
