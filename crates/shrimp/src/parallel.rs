//! Conservative parallel execution of deliberate-update workloads.
//!
//! [`Multicomputer::run_parallel`] runs a *plan* — per-node lists of UDMA
//! sends — with every node sharded across worker threads, advancing in
//! bounded **epochs** synchronized by the fabric's lookahead (one router
//! hop): a node paused at simulated instant `t` cannot make any packet
//! reach a destination's inbound link at or before `t`, so all traffic
//! at or before the minimum paused clock is safe to commit.
//!
//! Each epoch has two barrier-separated phases:
//!
//! 1. **Execute** — every shard runs each of its unfinished nodes for up
//!    to [`CHUNK`] sends. Outgoing packets are injected into the shard's
//!    [`FabricShard`] (routing latency only) and posted to the receiving
//!    shard's mailbox keyed `(link_ready, source ‖ sequence)`. The shard
//!    then publishes a bound: the minimum clock of its unfinished nodes.
//! 2. **Commit** — after the barrier, every shard reads the global
//!    horizon (minimum published bound), drains its mailboxes into a
//!    [`MergeQueue`], and applies every packet at or before the horizon
//!    in `(link_ready, source ‖ sequence)` order: inbound-link
//!    serialization, receive-side EISA DMA, the write into physical
//!    memory. A second barrier keeps next-epoch bound publications from
//!    racing this epoch's horizon reads.
//!
//! **Determinism.** The horizon is the minimum over *all* unfinished
//! node clocks — independent of how nodes are assigned to shards — and
//! per-epoch node progress is a fixed chunk, so the sequence of horizons
//! is a pure function of the plan. Each destination's packets are
//! committed in `(link_ready, tag)` order with per-destination receive
//! state, so the simulated timeline and receiver memory are
//! **bit-identical at any thread count**, including `threads = 1`.
//! Equivalence with the *serial* [`Multicomputer::send`] driver
//! additionally requires that per-destination injection order matches
//! `(link_ready, tag)` order — true for feed-forward streams with one
//! sender per destination (see `DESIGN.md` §6b).

use shrimp_mem::VirtAddr;
use shrimp_net::{FabricShard, Packet};
use shrimp_os::Pid;
use shrimp_sim::{
    merge_tag, ExchangeGrid, FlightRecorder, MergeQueue, SimTime, SpanRecord, SpinBarrier,
    TimeFrontier,
};

use crate::{Multicomputer, ShrimpError, ShrimpNode};

/// Sends a node executes per epoch. Fixed (never derived from the thread
/// count or the host) so epoch boundaries are identical at any
/// parallelism — though the *timeline* would not change anyway: the
/// chunk size only sets how much traffic defers to the next commit.
/// Small enough that the deferred payload window stays cache-resident
/// (large chunks collapse host throughput: every payload is written,
/// aged out of cache, then re-read at commit), large enough to amortize
/// the two barriers. 16 measured best on the `host_throughput` sweep.
const CHUNK: usize = 16;

/// One user-level DMA send in a [`NodePlan`]: the arguments of
/// [`Multicomputer::send`] minus the node index.
#[derive(Clone, Copy, Debug)]
pub struct SendOp {
    /// Sending process.
    pub pid: Pid,
    /// Source buffer virtual address.
    pub src_va: VirtAddr,
    /// Destination device proxy page.
    pub dev_page: u64,
    /// Offset on the proxy page.
    pub dev_off: u64,
    /// Transfer length in bytes.
    pub nbytes: u64,
}

/// A node's share of a parallel workload.
#[derive(Clone, Debug)]
pub struct NodePlan {
    /// Which node runs the ops.
    pub node: usize,
    /// Sends, executed in order.
    pub ops: Vec<SendOp>,
}

/// What a parallel run did (observability; identical at any thread count).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParallelReport {
    /// Epochs until every plan drained.
    pub epochs: u64,
    /// Sends executed.
    pub messages: u64,
    /// Packets exchanged through the fabric.
    pub packets: u64,
}

/// A cross-shard packet: `(link_ready, merge tag, packet)`. `link_ready`
/// is the instant the packet reaches its destination's inbound link,
/// before serialization; the tag is `source node ‖ per-source sequence`.
type Flit = (SimTime, u64, Packet);

/// A node owned by a shard, with the receive-side state that must live
/// wherever deliveries to it are applied.
struct ShardNode {
    /// Global node index.
    index: usize,
    node: ShrimpNode,
    ops: Vec<SendOp>,
    next: usize,
    /// Per-source packet sequence (second half of the merge tag).
    seq: u64,
    eisa_busy: SimTime,
    last_delivery: SimTime,
}

impl ShardNode {
    fn exhausted(&self) -> bool {
        self.next >= self.ops.len()
    }
}

/// One worker's slice of the machine: its nodes, its copy of the fabric,
/// and the deterministic merge queue for traffic addressed to it.
struct Shard {
    id: usize,
    threads: usize,
    passive: bool,
    nodes: Vec<ShardNode>,
    fabric: FabricShard,
    queue: MergeQueue<Packet>,
    /// Scratch: NIC drain target, reused across ops.
    outbox: Vec<crate::OutgoingPacket>,
    /// Staged outgoing flits, one batch per destination shard, posted
    /// once per epoch so mailbox locks are taken O(shards) times.
    staging: Vec<Vec<Flit>>,
    /// Scratch: mailbox drain target.
    incoming: Vec<Flit>,
    dropped: u64,
    epochs: u64,
    messages: u64,
    packets: u64,
    /// Trapped nodes: `(global index, error)`. A trap finishes that
    /// node's plan; the run keeps going and reports the error at the end.
    errors: Vec<(usize, ShrimpError)>,
    /// Per-shard flight recorder; merged deterministically into the
    /// multicomputer's recorder at reassembly.
    recorder: FlightRecorder,
}

impl Shard {
    fn run(&mut self, barrier: &SpinBarrier, frontier: &TimeFrontier, grid: &ExchangeGrid<Flit>) {
        loop {
            self.epochs += 1;
            // Execute phase.
            for ni in 0..self.nodes.len() {
                self.execute_chunk(ni);
            }
            for dst in 0..self.threads {
                grid.post_batch(self.id, dst, &mut self.staging[dst]);
            }
            let bound = self
                .nodes
                .iter()
                .filter(|n| !n.exhausted())
                .map(|n| n.node.os().machine().now())
                .min();
            frontier.publish(self.id, bound);
            barrier.wait();

            // Commit phase. The horizon is only meaningful between the
            // two barriers: every shard has published, none has moved on.
            let horizon = frontier.horizon();
            grid.drain_to(self.id, &mut self.incoming);
            for (at, tag, pkt) in self.incoming.drain(..) {
                self.queue.push(at, tag, pkt);
            }
            while let Some((link_ready, pkt)) = self.queue.pop_within(horizon) {
                self.commit(link_ready, pkt);
            }
            barrier.wait();

            // A `None` horizon means every shard was exhausted when it
            // published, so this commit drained everything in flight.
            if horizon.is_none() {
                debug_assert!(self.queue.is_empty(), "final commit must drain the queue");
                return;
            }
        }
    }

    /// Runs up to [`CHUNK`] sends of node `ni`, staging its packets.
    fn execute_chunk(&mut self, ni: usize) {
        let sn = &mut self.nodes[ni];
        let end = (sn.next + CHUNK).min(sn.ops.len());
        while sn.next < end {
            let op = sn.ops[sn.next];
            sn.next += 1;
            if let Err(trap) =
                sn.node.os_mut().udma_send(op.pid, op.src_va, op.dev_page, op.dev_off, op.nbytes)
            {
                self.errors.push((sn.index, trap.into()));
                sn.next = sn.ops.len();
                break;
            }
            self.messages += 1;
            sn.node.os_mut().machine_mut().device_mut().drain_outgoing_into(&mut self.outbox);
            if self.recorder.is_enabled() {
                // Same stamp the serial driver applies in `propagate`: the
                // sender's clock is past the completion-status LOAD for
                // everything it just queued.
                let observed = sn.node.os().machine().now();
                for out in &mut self.outbox {
                    out.packet.meta.status_observed = observed;
                }
            }
            for out in self.outbox.drain(..) {
                let mut pkt = out.packet;
                let link_ready = self.fabric.inject(&mut pkt, out.ready_at);
                let tag = merge_tag(sn.index as u16, sn.seq);
                sn.seq += 1;
                self.packets += 1;
                let dst_shard = pkt.dst.raw() as usize % self.threads;
                self.staging[dst_shard].push((link_ready, tag, pkt));
            }
        }
    }

    /// Applies one packet: link serialization, receive-side EISA DMA,
    /// memory deposit — the same arithmetic as the serial
    /// [`Multicomputer::propagate`] receive loop.
    fn commit(&mut self, link_ready: SimTime, pkt: Packet) {
        let arrival = self.fabric.admit(&pkt, link_ready);
        let dst = pkt.dst.raw() as usize;
        debug_assert_eq!(dst % self.threads, self.id, "packet routed to the wrong shard");
        let local = &mut self.nodes[dst / self.threads];
        let start = arrival.max(local.eisa_busy);
        let done = {
            let cost = local.node.os().machine().cost();
            start + cost.dma_start + cost.bus_transfer(pkt.payload.len() as u64)
        };
        local.eisa_busy = done;
        let mem = local.node.os_mut().machine_mut().mem_mut();
        if mem.write(pkt.dst_paddr, &pkt.payload).is_err() {
            self.dropped += 1;
            return;
        }
        local.last_delivery = local.last_delivery.max(done);
        if self.recorder.is_enabled() {
            let m = pkt.meta;
            self.recorder.record(SpanRecord {
                id: m.id,
                src: pkt.src.raw(),
                dst: pkt.dst.raw(),
                bytes: pkt.payload.len() as u32,
                initiated_at: m.initiated_at,
                queued_at: m.queued_at,
                link_ready,
                wire_done: arrival,
                delivered_at: done,
                status_at: m.status_observed.max(done),
            });
        }
        if self.passive {
            local.node.os_mut().machine_mut().advance_to(done);
        }
    }
}

impl Multicomputer {
    /// Runs `plans` to completion across `threads` worker threads using
    /// conservative epoch synchronization. The simulated timeline,
    /// receiver memory, per-node clocks and fabric statistics are
    /// identical at any thread count (the count is clamped to
    /// `[1, node_count]`).
    ///
    /// Quiesces in-flight traffic first; plans for the same node
    /// concatenate in argument order.
    ///
    /// # Errors
    ///
    /// A bad node index fails up front. A kernel trap mid-plan finishes
    /// that node's plan early; the rest of the machine runs to
    /// completion, state is reassembled, and the trap of the
    /// lowest-indexed trapped node is returned.
    pub fn run_parallel(
        &mut self,
        plans: &[NodePlan],
        threads: usize,
    ) -> Result<ParallelReport, ShrimpError> {
        let n = self.nodes.len();
        let mut ops: Vec<Vec<SendOp>> = vec![Vec::new(); n];
        for plan in plans {
            self.check_node(plan.node)?;
            ops[plan.node].extend_from_slice(&plan.ops);
        }
        self.run_until_quiet();
        let threads = threads.clamp(1, n);

        // Disassemble: nodes and their receive-side state move to their
        // shards (round-robin: shard `s` owns nodes `s, s+threads, …`),
        // the fabric splits into per-shard link state.
        let mut shards: Vec<Shard> = self
            .fabric
            .split(threads)
            .into_iter()
            .enumerate()
            .map(|(id, fabric)| Shard {
                id,
                threads,
                passive: self.passive_receivers,
                nodes: Vec::new(),
                fabric,
                queue: MergeQueue::new(),
                outbox: Vec::new(),
                staging: (0..threads).map(|_| Vec::new()).collect(),
                incoming: Vec::new(),
                dropped: 0,
                epochs: 0,
                messages: 0,
                packets: 0,
                errors: Vec::new(),
                recorder: {
                    // Full global capacity per shard: each shard's retained
                    // tail is then a superset of its contribution to the
                    // merged newest-capacity window, so the merge result is
                    // independent of the sharding.
                    let mut r = FlightRecorder::new(self.recorder.capacity());
                    r.set_enabled(self.recorder.is_enabled());
                    r
                },
            })
            .collect();
        for (index, node) in std::mem::take(&mut self.nodes).into_iter().enumerate() {
            shards[index % threads].nodes.push(ShardNode {
                index,
                node,
                ops: std::mem::take(&mut ops[index]),
                next: 0,
                seq: 0,
                eisa_busy: self.eisa_busy[index],
                last_delivery: self.last_delivery[index],
            });
        }

        let barrier = SpinBarrier::new(threads);
        let frontier = TimeFrontier::new(threads);
        let grid: ExchangeGrid<Flit> = ExchangeGrid::new(threads);
        {
            let (barrier, frontier, grid) = (&barrier, &frontier, &grid);
            let (first, rest) = shards.split_at_mut(1);
            std::thread::scope(|s| {
                let handles: Vec<_> = rest
                    .iter_mut()
                    .map(|shard| s.spawn(move || shard.run(barrier, frontier, grid)))
                    .collect();
                first[0].run(barrier, frontier, grid);
                for h in handles {
                    h.join().expect("shard thread panicked");
                }
            });
        }
        debug_assert!(grid.is_empty(), "all exchanged packets must be committed");

        // Reassemble.
        let mut report = ParallelReport::default();
        let mut slots: Vec<Option<ShrimpNode>> = (0..n).map(|_| None).collect();
        let mut fabric_shards = Vec::with_capacity(threads);
        let mut recorders = Vec::with_capacity(threads);
        let mut first_error: Option<(usize, ShrimpError)> = None;
        for shard in shards {
            recorders.push(shard.recorder);
            report.epochs = report.epochs.max(shard.epochs);
            report.messages += shard.messages;
            report.packets += shard.packets;
            self.dropped += shard.dropped;
            for (index, error) in shard.errors {
                if first_error.is_none_or(|(lowest, _)| index < lowest) {
                    first_error = Some((index, error));
                }
            }
            for sn in shard.nodes {
                self.eisa_busy[sn.index] = sn.eisa_busy;
                self.last_delivery[sn.index] = sn.last_delivery;
                slots[sn.index] = Some(sn.node);
            }
            fabric_shards.push(shard.fabric);
        }
        self.nodes = slots.into_iter().map(|s| s.expect("every node comes back")).collect();
        let owner: Vec<usize> = (0..n).map(|i| i % threads).collect();
        self.fabric.merge(fabric_shards, &owner);
        // Deterministic trace merge: spans re-sort into the same
        // `(link_ready, src‖seq)` order the commit loops applied them in,
        // so the merged recorder is bit-identical at any thread count.
        self.recorder.absorb(recorders);
        match first_error {
            Some((_, error)) => Err(error),
            None => Ok(report),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MulticomputerConfig;
    use shrimp_os::Trap;

    /// An `n`-node machine with disjoint sender→receiver pairs
    /// (`2p → 2p+1`) and a plan of `msgs` sends of `bytes` bytes per pair.
    fn paired_stream(n: u16, msgs: usize, bytes: u64) -> (Multicomputer, Vec<NodePlan>) {
        let mut mc = Multicomputer::new(n, MulticomputerConfig::default());
        let mut plans = Vec::new();
        for p in 0..(n as usize / 2) {
            let (s, r) = (2 * p, 2 * p + 1);
            let spid = mc.spawn_process(s);
            let rpid = mc.spawn_process(r);
            mc.map_user_buffer(s, spid, 0x10_0000, 2).unwrap();
            mc.map_user_buffer(r, rpid, 0x40_0000, 2).unwrap();
            let dev = mc.export(r, rpid, VirtAddr::new(0x40_0000), 2, s, spid).unwrap();
            let fill: Vec<u8> = (0..bytes).map(|i| (i as u8) ^ (s as u8)).collect();
            mc.write_user(s, spid, VirtAddr::new(0x10_0000), &fill).unwrap();
            plans.push(NodePlan {
                node: s,
                ops: vec![
                    SendOp {
                        pid: spid,
                        src_va: VirtAddr::new(0x10_0000),
                        dev_page: dev,
                        dev_off: 0,
                        nbytes: bytes,
                    };
                    msgs
                ],
            });
        }
        (mc, plans)
    }

    /// Timeline fingerprint: every node clock, delivery time and EISA
    /// state, plus fabric counters.
    fn fingerprint(mc: &Multicomputer) -> Vec<u64> {
        let mut v = Vec::new();
        for i in 0..mc.node_count() {
            v.push(mc.node(i).os().machine().now().as_nanos());
            v.push(mc.last_delivery(i).as_nanos());
        }
        v.push(mc.fabric().stats().get("packets"));
        v.push(mc.fabric().stats().get("payload_bytes"));
        v.push(mc.dropped_packets());
        v
    }

    #[test]
    fn thread_counts_cannot_change_the_timeline() {
        let mut prints = Vec::new();
        for threads in [1usize, 2, 3, 4] {
            let (mut mc, plans) = paired_stream(8, 40, 1024);
            let report = mc.run_parallel(&plans, threads).unwrap();
            assert_eq!(report.messages, 4 * 40);
            prints.push((fingerprint(&mc), report));
        }
        for (p, r) in &prints[1..] {
            assert_eq!(p, &prints[0].0, "timeline must be thread-count independent");
            assert_eq!(r, &prints[0].1, "report must be thread-count independent");
        }
    }

    #[test]
    fn parallel_matches_serial_driver_on_streams() {
        let msgs = 30;
        let (mut serial, plans) = paired_stream(4, msgs, 512);
        let (mut par, _) = paired_stream(4, msgs, 512);
        for plan in &plans {
            for op in &plan.ops {
                serial
                    .send(plan.node, op.pid, op.src_va, op.dev_page, op.dev_off, op.nbytes)
                    .unwrap();
            }
        }
        serial.run_until_quiet();
        par.run_parallel(&plans, 2).unwrap();
        assert_eq!(fingerprint(&par), fingerprint(&serial));
        // Receiver memory matches too.
        for r in [1usize, 3] {
            let pid = Pid::new(1);
            let a = serial.read_user(r, pid, VirtAddr::new(0x40_0000), 512).unwrap();
            let b = par.read_user(r, pid, VirtAddr::new(0x40_0000), 512).unwrap();
            assert_eq!(a, b, "receiver {r} memory diverged");
        }
    }

    #[test]
    fn delivered_data_is_correct() {
        let (mut mc, plans) = paired_stream(2, 5, 2048);
        mc.run_parallel(&plans, 2).unwrap();
        let pid = Pid::new(1);
        let got = mc.read_user(1, pid, VirtAddr::new(0x40_0000), 2048).unwrap();
        let want: Vec<u8> = (0..2048u64).map(|i| i as u8).collect();
        assert_eq!(got, want);
        assert_eq!(mc.dropped_packets(), 0);
    }

    #[test]
    fn bad_node_index_is_rejected() {
        let (mut mc, _) = paired_stream(2, 1, 64);
        let err = mc.run_parallel(&[NodePlan { node: 9, ops: Vec::new() }], 1).unwrap_err();
        assert_eq!(err, ShrimpError::NoSuchNode(9));
    }

    #[test]
    fn trap_mid_plan_surfaces_after_the_run() {
        let (mut mc, mut plans) = paired_stream(2, 3, 64);
        // Unmapped source address: the kernel traps on the second op.
        plans[0].ops[1].src_va = VirtAddr::new(0xdead_0000);
        let err = mc.run_parallel(&plans, 2).unwrap_err();
        assert!(matches!(err, ShrimpError::Trap(Trap::SegFault { .. })), "got {err:?}");
        // Ops before the trap still landed.
        let pid = Pid::new(1);
        let got = mc.read_user(1, pid, VirtAddr::new(0x40_0000), 64).unwrap();
        assert_eq!(got, (0..64).map(|i| i as u8).collect::<Vec<u8>>());
    }

    #[test]
    fn empty_plans_finish_immediately() {
        let (mut mc, _) = paired_stream(2, 1, 64);
        let report = mc.run_parallel(&[], 2).unwrap();
        assert_eq!(report.messages, 0);
        assert_eq!(report.packets, 0);
    }
}
