//! The SHRIMP network interface board (paper §8, Figure 6).
//!
//! The NIC is a UDMA device: the "EISA DMA Logic" block streams outgoing
//! message data from memory into the outgoing FIFO; the packetizer looks up
//! the destination in the NIPT ("the rightmost 15 bits of the page number
//! are used to index directly into the Network Interface Page Table"),
//! builds a header, and launches the packet.
//!
//! The board here also exposes a memory-mapped FIFO window (the §9
//! related-work design: "the host processor communicates with the network
//! interface by reading or writing special memory locations") so the
//! programmed-I/O baseline can be measured on identical hardware.

use std::collections::BTreeMap;

use shrimp_devices::Device;
use shrimp_dma::{DevicePort, RunTiming};
use shrimp_mem::{Pfn, PhysAddr, PAGE_MASK, PAGE_SHIFT, PAGE_SIZE};
use shrimp_net::{NodeId, Packet};
use shrimp_sim::{BufPool, Counter, SimDuration, SimTime, StatSet, XferId, XferMeta};

use crate::{Nipt, NiptEntry};

/// A packet the NIC has built, ready for fabric injection at `ready_at`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutgoingPacket {
    /// The packet.
    pub packet: Packet,
    /// When the packetizer finished the header and the packet may enter
    /// the network.
    pub ready_at: SimTime,
}

/// A *run* the NIC has built from a replayed message train: one template
/// packet (member 0, holding the shared payload) plus a member count and
/// a constant stride — the §7 gather-descriptor idea applied to the
/// steady-state send path. Member `k` is the template with every
/// timestamp shifted by `stride × k` and the transfer sequence number
/// advanced by `k`.
#[derive(Debug)]
pub struct OutgoingRun {
    /// Member 0 of the run.
    pub packet: Packet,
    /// Number of members (≥ 1).
    pub count: u32,
    /// Inter-member stride, nanoseconds.
    pub stride_ns: u32,
    /// When member 0 may enter the network (member `k` follows at
    /// `ready_at + stride × k`).
    pub ready_at: SimTime,
}

/// MMIO register map of the board's programmed-I/O window.
pub mod NIC_MMIO {
    #![allow(non_snake_case)]
    /// Write: destination NIPT index for subsequent PIO sends.
    pub const DEST_PAGE: u64 = 0x00;
    /// Write: byte offset within the destination page.
    pub const DEST_OFFSET: u64 = 0x08;
    /// Write: push 8 bytes of message data into the outgoing FIFO.
    pub const DATA: u64 = 0x10;
    /// Write: commit `value` bytes of the pushed data as one packet.
    pub const COMMIT: u64 = 0x18;
    /// Read: PIO status (0 = ok, 1 = last commit failed).
    pub const STATUS: u64 = 0x20;
}

/// Errors the PIO window can latch into its status register.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PioError {
    /// No valid NIPT entry for the selected destination page.
    BadDestination,
    /// Commit length exceeded the pushed data or a page boundary.
    BadLength,
}

/// The SHRIMP network interface.
#[derive(Debug)]
pub struct Nic {
    node: NodeId,
    nipt: Nipt,
    header_cost: SimDuration,
    outgoing: Vec<OutgoingPacket>,
    /// Burst descriptors awaiting injection; a handful at most (one per
    /// replayed train between drains), so a small fixed reserve keeps the
    /// steady state allocation-free.
    outgoing_runs: Vec<OutgoingRun>,
    // Programmed-I/O window state.
    pio_dest_page: u64,
    pio_dest_offset: u64,
    pio_fifo: Vec<u8>,
    pio_status: u64,
    /// Automatic-update bindings: local source frame -> remote page.
    /// "Our current design retains the automatic update transfer strategy
    /// described in [5] which still relies upon fixed mappings between
    /// source and destination pages" (§9).
    auto_bindings: BTreeMap<Pfn, NiptEntry>,
    /// Packet-buffer pool: payload storage cycles sender → fabric →
    /// receiver → back here, so steady-state sends never allocate.
    pool: BufPool,
    /// Next flight-recorder transfer sequence number (each outgoing
    /// packet gets a fresh correlation ID).
    next_xfer: u64,
    /// Per-packet counts: plain fields on the packetize/auto-update path.
    packets_built: Counter,
    bytes_sent: Counter,
    auto_updates: Counter,
    auto_update_bytes: Counter,
    rare: StatSet,
}

impl Nic {
    /// A NIC for `node` with `nipt_entries` NIPT slots.
    pub fn new(node: NodeId, nipt_entries: usize, header_cost: SimDuration) -> Self {
        Nic {
            node,
            nipt: Nipt::new(nipt_entries),
            header_cost,
            outgoing: Vec::new(),
            outgoing_runs: Vec::with_capacity(4),
            pio_dest_page: 0,
            pio_dest_offset: 0,
            pio_fifo: Vec::new(),
            pio_status: 0,
            auto_bindings: BTreeMap::new(),
            pool: BufPool::new(),
            next_xfer: 0,
            packets_built: Counter::new(),
            bytes_sent: Counter::new(),
            auto_updates: Counter::new(),
            auto_update_bytes: Counter::new(),
            rare: StatSet::new("nic"),
        }
    }

    /// Binds local frame `src` for automatic update: every snooped store
    /// to the frame is forwarded to `dst` (fixed source-to-destination
    /// page mapping, \[5\]).
    pub fn bind_auto_update(&mut self, src: Pfn, dst: NiptEntry) {
        self.auto_bindings.insert(src, dst);
    }

    /// Removes an automatic-update binding; returns whether one existed.
    pub fn unbind_auto_update(&mut self, src: Pfn) -> bool {
        self.auto_bindings.remove(&src).is_some()
    }

    /// Number of active automatic-update bindings.
    pub fn auto_binding_count(&self) -> usize {
        self.auto_bindings.len()
    }

    /// Mints the correlation block for the next outgoing packet: a fresh
    /// per-NIC transfer ID (monotone per source, so it doubles as the
    /// delivery engine's merge tag — see `engine.rs`), the initiating
    /// instant, and the packetize-complete (queued) instant.
    fn stamp(&mut self, initiated_at: SimTime, queued_at: SimTime) -> XferMeta {
        let id = XferId::new(self.node.raw(), self.next_xfer);
        self.next_xfer += 1;
        XferMeta { id, initiated_at, queued_at, ..XferMeta::default() }
    }

    /// Forwards a snooped write to the bound remote page, if any.
    fn auto_forward(&mut self, pa: PhysAddr, data: &[u8], now: SimTime) {
        let Some(&NiptEntry { node, pfn }) = self.auto_bindings.get(&pa.page()) else {
            return;
        };
        // A store straddling the page end only forwards the bytes on the
        // bound page (the binding is per-page).
        let len = (data.len() as u64).min(pa.bytes_to_page_end()) as usize;
        let dst_paddr = PhysAddr::new(pfn.base().raw() + pa.page_offset());
        let mut packet =
            Packet::new(self.node, node, dst_paddr, self.pool.filled_from(&data[..len]));
        let ready_at = now + self.header_cost;
        packet.meta = self.stamp(now, ready_at);
        self.outgoing.push(OutgoingPacket { packet, ready_at });
        self.auto_updates.incr();
        self.auto_update_bytes.add(len as u64);
    }

    /// This NIC's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The NIPT (kernel-managed).
    pub fn nipt(&self) -> &Nipt {
        &self.nipt
    }

    /// Mutable NIPT access (the kernel's export/import path).
    pub fn nipt_mut(&mut self) -> &mut Nipt {
        &mut self.nipt
    }

    /// Drains packets ready for fabric injection.
    pub fn take_outgoing(&mut self) -> Vec<OutgoingPacket> {
        std::mem::take(&mut self.outgoing)
    }

    /// Appends all ready packets to `out`, keeping this NIC's queue
    /// capacity for reuse — the allocation-free form of
    /// [`Nic::take_outgoing`] the multicomputer's inject loop uses with a
    /// persistent scratch vector.
    pub fn drain_outgoing_into(&mut self, out: &mut Vec<OutgoingPacket>) {
        out.append(&mut self.outgoing);
    }

    /// Appends all ready burst descriptors to `out`, keeping the NIC's
    /// queue capacity for reuse (the run analogue of
    /// [`Nic::drain_outgoing_into`]).
    pub fn drain_runs_into(&mut self, out: &mut Vec<OutgoingRun>) {
        out.append(&mut self.outgoing_runs);
    }

    /// The NIC's payload-buffer pool (test observability).
    pub fn buf_pool(&self) -> &BufPool {
        &self.pool
    }

    /// Queued send work not yet injected (single packets plus burst
    /// descriptors; a run counts once regardless of its member count).
    pub fn outgoing_len(&self) -> usize {
        self.outgoing.len() + self.outgoing_runs.len()
    }

    /// NIC statistics.
    pub fn stats(&self) -> StatSet {
        let mut s = self.rare.clone();
        s.add("packets_built", self.packets_built.get());
        s.add("bytes_sent", self.bytes_sent.get());
        s.add("auto_updates", self.auto_updates.get());
        s.add("auto_update_bytes", self.auto_update_bytes.get());
        s
    }

    /// Packetize `data` for the destination named by device-relative
    /// address `dev_addr` (NIPT index ‖ page offset). `initiated_at` is
    /// when the originating request started (the DMA transfer's
    /// initiation STORE for UDMA, `now` for PIO), carried into the
    /// packet's flight-recorder span.
    // lint:hot_path
    fn packetize(
        &mut self,
        dev_addr: u64,
        data: &[u8],
        initiated_at: SimTime,
        now: SimTime,
    ) -> Result<(), PioError> {
        let index = dev_addr >> PAGE_SHIFT;
        let offset = dev_addr & PAGE_MASK;
        let Some(NiptEntry { node, pfn }) = self.nipt.lookup(index) else {
            return Err(PioError::BadDestination);
        };
        // "The destination page number is concatenated with the offset to
        // form the destination physical address."
        let dst_paddr = PhysAddr::new(pfn.base().raw() + offset);
        // The data plane's single sender-side copy: borrowed memory bytes
        // land in a recycled pool buffer that travels to the receiver.
        let mut packet = Packet::new(self.node, node, dst_paddr, self.pool.filled_from(data));
        let ready_at = now + self.header_cost;
        packet.meta = self.stamp(initiated_at, ready_at);
        // lint:allow(A1) -- `outgoing` keeps its capacity across drains
        // (see drain_outgoing_into); steady-state pushes never reallocate,
        // pinned by the zero_alloc bench at 0.00 allocs/msg.
        self.outgoing.push(OutgoingPacket { packet, ready_at });
        self.packets_built.incr();
        self.bytes_sent.add(data.len() as u64);
        Ok(())
    }

    /// Packetize a whole replayed message train as **one** burst
    /// descriptor: one NIPT lookup, one pool buffer, `count` consecutive
    /// transfer IDs. Member `k`'s packet is the template shifted by
    /// `stride × k`; `timing.status_base` is member 0's sender-side status
    /// observation instant (pre-stamped here, since the replay bypasses
    /// the per-message drain that normally stamps it). The caller
    /// guarantees `timing.stride` fits in `u32` nanoseconds.
    // lint:hot_path
    fn packetize_burst(&mut self, dev_addr: u64, data: &[u8], count: u32, timing: RunTiming) {
        let stride_ns = timing.stride.as_nanos() as u32;
        let index = dev_addr >> PAGE_SHIFT;
        let offset = dev_addr & PAGE_MASK;
        // INVARIANT: a burst replays a transfer that already packetized
        // once with this dev_addr; no kernel ran since, so the NIPT
        // entry cannot have vanished mid-replay.
        let NiptEntry { node, pfn } = self.nipt.lookup(index).expect("replayed NIPT entry exists");
        let dst_paddr = PhysAddr::new(pfn.base().raw() + offset);
        let mut packet = Packet::new(self.node, node, dst_paddr, self.pool.filled_from(data));
        let ready_at = timing.completes_at + self.header_cost;
        let mut meta = self.stamp(timing.started_at, ready_at);
        meta.status_observed = timing.status_base;
        packet.meta = meta;
        // `stamp` consumed one sequence number; the remaining members own
        // the next `count - 1` so the run's merge tags stay consecutive.
        self.next_xfer += u64::from(count) - 1;
        // lint:allow(A1) -- `outgoing_runs` keeps its capacity across
        // drains (see drain_runs_into); steady-state pushes never
        // reallocate, pinned by the zero_alloc bench at 0.00 allocs/msg.
        self.outgoing_runs.push(OutgoingRun { packet, count, stride_ns, ready_at });
        self.packets_built.add(u64::from(count));
        self.bytes_sent.add(u64::from(count) * data.len() as u64);
    }
}

impl DevicePort for Nic {
    fn dma_write(&mut self, dev_addr: u64, data: &[u8], now: SimTime) {
        // INVARIANT: `validate` ran at initiation with the same dev_addr
        // and length; a failure here is a hardware bug.
        self.packetize(dev_addr, data, now, now)
            .expect("DMA to NIC passed validate but failed packetize");
    }

    fn dma_write_traced(&mut self, dev_addr: u64, data: &[u8], started_at: SimTime, now: SimTime) {
        // The DMA engine hands us the transfer's initiation instant so the
        // flight-recorder span starts at the user's STORE, not at retire.
        // INVARIANT: `validate` ran at initiation with the same dev_addr
        // and length; a failure here is a hardware bug.
        self.packetize(dev_addr, data, started_at, now)
            .expect("DMA to NIC passed validate but failed packetize");
    }

    fn dma_write_run(&mut self, dev_addr: u64, data: &[u8], count: u64, timing: RunTiming) {
        if count == 0 {
            return;
        }
        let ns = timing.stride.as_nanos();
        if count > u64::from(u32::MAX) || ns > u64::from(u32::MAX) {
            // Degenerate strides fall back to the packet-at-a-time path
            // (the default trait behavior); runs only carry u32 deltas.
            for k in 0..count {
                self.dma_write_traced(
                    dev_addr,
                    data,
                    timing.started_at + timing.stride * k,
                    timing.completes_at + timing.stride * k,
                );
            }
            return;
        }
        self.packetize_burst(dev_addr, data, count as u32, timing);
    }

    fn dma_read(&mut self, _dev_addr: u64, buf: &mut [u8], _now: SimTime) {
        // SHRIMP uses UDMA for memory-to-device only ("SHRIMP uses UDMA
        // only for memory-to-device transfers", §8); incoming data goes
        // straight to memory via the receive-side EISA DMA logic.
        self.rare.bump("unsupported_reads");
        buf.fill(0);
    }

    fn validate(&self, dev_addr: u64, nbytes: u64) -> bool {
        // §8: outgoing data must be "aligned on 4-byte boundaries"; the
        // destination must be a valid NIPT entry; a single transfer must
        // not cross the destination page.
        let index = dev_addr >> PAGE_SHIFT;
        let offset = dev_addr & PAGE_MASK;
        dev_addr & 0x3 == 0
            && nbytes & 0x3 == 0
            && self.nipt.get(index).is_some()
            && offset + nbytes <= PAGE_SIZE
    }
}

impl Device for Nic {
    fn name(&self) -> &str {
        "shrimp-nic"
    }

    fn proxy_space_bytes(&self) -> u64 {
        self.nipt.capacity() as u64 * PAGE_SIZE
    }

    fn mmio_store(&mut self, offset: u64, value: u64, now: SimTime) {
        match offset {
            NIC_MMIO::DEST_PAGE => self.pio_dest_page = value,
            NIC_MMIO::DEST_OFFSET => self.pio_dest_offset = value,
            NIC_MMIO::DATA => self.pio_fifo.extend_from_slice(&value.to_le_bytes()),
            NIC_MMIO::COMMIT => {
                let len = value as usize;
                let ok =
                    len <= self.pio_fifo.len() && self.pio_dest_offset + len as u64 <= PAGE_SIZE;
                if !ok {
                    self.pio_status = 1;
                    self.pio_fifo.clear();
                    return;
                }
                let data: Vec<u8> = self.pio_fifo.drain(..len).collect();
                self.pio_fifo.clear();
                let dev_addr = (self.pio_dest_page << PAGE_SHIFT) | self.pio_dest_offset;
                self.pio_status = match self.packetize(dev_addr, &data, now, now) {
                    Ok(()) => 0,
                    Err(_) => 1,
                };
                self.rare.bump("pio_commits");
            }
            _ => {}
        }
    }

    fn snoop_store(&mut self, pa: PhysAddr, value: u64, now: SimTime) {
        self.auto_forward(pa, &value.to_le_bytes(), now);
    }

    fn snoop_write(&mut self, pa: PhysAddr, data: &[u8], now: SimTime) {
        self.auto_forward(pa, data, now);
    }

    fn mmio_load(&mut self, offset: u64, _now: SimTime) -> u64 {
        match offset {
            NIC_MMIO::STATUS => self.pio_status,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_mem::Pfn;

    fn nic() -> Nic {
        let mut nic = Nic::new(NodeId::new(0), 16, SimDuration::from_us(1.2));
        nic.nipt_mut().set(2, NiptEntry { node: NodeId::new(1), pfn: Pfn::new(40) });
        nic
    }

    #[test]
    fn dma_write_builds_packet_with_translated_address() {
        let mut n = nic();
        n.dma_write(2 * PAGE_SIZE + 0x100, b"data", SimTime::from_nanos(500));
        let out = n.take_outgoing();
        assert_eq!(out.len(), 1);
        let pkt = &out[0].packet;
        assert_eq!(pkt.dst, NodeId::new(1));
        assert_eq!(pkt.dst_paddr, PhysAddr::new(40 * PAGE_SIZE + 0x100));
        assert_eq!(pkt.payload, b"data");
        assert_eq!(out[0].ready_at, SimTime::from_nanos(500) + SimDuration::from_us(1.2));
        assert!(n.take_outgoing().is_empty(), "drained");
    }

    #[test]
    fn validate_requires_alignment_and_nipt_entry() {
        let n = nic();
        assert!(n.validate(2 * PAGE_SIZE, 64));
        assert!(!n.validate(2 * PAGE_SIZE + 1, 64), "unaligned address");
        assert!(!n.validate(2 * PAGE_SIZE, 63), "unaligned length");
        assert!(!n.validate(3 * PAGE_SIZE, 64), "invalid NIPT entry");
        assert!(!n.validate(2 * PAGE_SIZE + 0x800, PAGE_SIZE), "page crossing");
    }

    #[test]
    fn pio_send_path() {
        let mut n = nic();
        let now = SimTime::ZERO;
        n.mmio_store(NIC_MMIO::DEST_PAGE, 2, now);
        n.mmio_store(NIC_MMIO::DEST_OFFSET, 0x20, now);
        n.mmio_store(NIC_MMIO::DATA, u64::from_le_bytes(*b"pio send"), now);
        n.mmio_store(NIC_MMIO::COMMIT, 8, now);
        assert_eq!(n.mmio_load(NIC_MMIO::STATUS, now), 0);
        let out = n.take_outgoing();
        assert_eq!(out[0].packet.payload, b"pio send");
        assert_eq!(out[0].packet.dst_paddr, PhysAddr::new(40 * PAGE_SIZE + 0x20));
    }

    #[test]
    fn pio_bad_destination_sets_status() {
        let mut n = nic();
        let now = SimTime::ZERO;
        n.mmio_store(NIC_MMIO::DEST_PAGE, 9, now); // no NIPT entry
        n.mmio_store(NIC_MMIO::DATA, 0, now);
        n.mmio_store(NIC_MMIO::COMMIT, 8, now);
        assert_eq!(n.mmio_load(NIC_MMIO::STATUS, now), 1);
        assert!(n.take_outgoing().is_empty());
    }

    #[test]
    fn pio_overlength_commit_sets_status() {
        let mut n = nic();
        let now = SimTime::ZERO;
        n.mmio_store(NIC_MMIO::DEST_PAGE, 2, now);
        n.mmio_store(NIC_MMIO::DATA, 0, now);
        n.mmio_store(NIC_MMIO::COMMIT, 16, now); // only 8 pushed
        assert_eq!(n.mmio_load(NIC_MMIO::STATUS, now), 1);
    }

    #[test]
    fn dma_read_is_unsupported() {
        let mut n = nic();
        assert_eq!(n.dma_read_vec(0, 4, SimTime::ZERO), vec![0; 4]);
        assert_eq!(n.stats().get("unsupported_reads"), 1);
    }

    #[test]
    fn packet_buffers_recycle_through_the_pool() {
        let mut n = nic();
        n.dma_write(2 * PAGE_SIZE, &[1, 2, 3, 4], SimTime::ZERO);
        let out = n.take_outgoing();
        assert_eq!(n.buf_pool().free_buffers(), 0, "buffer still in flight");
        drop(out);
        assert_eq!(n.buf_pool().free_buffers(), 1, "dropped payload returns home");
        n.dma_write(2 * PAGE_SIZE, &[5, 6, 7, 8], SimTime::ZERO);
        assert_eq!(n.buf_pool().free_buffers(), 0, "recycled, not reallocated");
        assert_eq!(n.take_outgoing()[0].packet.payload, [5u8, 6, 7, 8]);
    }

    #[test]
    fn dma_write_run_builds_one_descriptor_with_consecutive_ids() {
        let mut n = nic();
        let stride = SimDuration::from_us(17.0);
        let t0 = SimTime::from_nanos(1_000);
        let status = SimTime::from_nanos(9_000);
        let timing =
            RunTiming { started_at: t0, completes_at: t0 + stride, stride, status_base: status };
        n.dma_write_run(2 * PAGE_SIZE + 0x40, b"abcd", 5, timing);
        let mut runs = Vec::new();
        n.drain_runs_into(&mut runs);
        assert_eq!(runs.len(), 1, "one descriptor for the whole train");
        let run = &runs[0];
        assert_eq!(run.count, 5);
        assert_eq!(run.stride_ns, stride.as_nanos() as u32);
        assert_eq!(run.packet.payload, b"abcd");
        assert_eq!(run.packet.meta.id, XferId::new(0, 0));
        assert_eq!(run.packet.meta.status_observed, status);
        assert_eq!(run.ready_at, t0 + stride + SimDuration::from_us(1.2));
        assert_eq!(n.stats().get("packets_built"), 5);
        assert_eq!(n.stats().get("bytes_sent"), 20);
        // The next single packet's ID follows the whole run.
        n.dma_write(2 * PAGE_SIZE, b"next", SimTime::ZERO);
        assert_eq!(n.take_outgoing()[0].packet.meta.id, XferId::new(0, 5));
    }

    #[test]
    fn drain_outgoing_into_reuses_caller_scratch() {
        let mut n = nic();
        let mut scratch = Vec::new();
        n.dma_write(2 * PAGE_SIZE, &[1, 2, 3, 4], SimTime::ZERO);
        n.drain_outgoing_into(&mut scratch);
        assert_eq!(scratch.len(), 1);
        assert_eq!(n.outgoing_len(), 0);
        scratch.clear();
        n.dma_write(2 * PAGE_SIZE, &[9, 9, 9, 9], SimTime::ZERO);
        n.drain_outgoing_into(&mut scratch);
        assert_eq!(scratch[0].packet.payload, [9u8, 9, 9, 9]);
    }
}
