//! Reactive traffic programs: per-process workload generators.
//!
//! A [`NodePlan`](crate::NodePlan) is a pre-baked send list — it can say
//! *what* a node sends but never *why*. A [`TrafficProgram`] is the
//! reactive generalization: a deterministic step function that, given the
//! messages delivered to its node and the node's local clock, emits the
//! next [`SendOp`]s. That is enough to express open- and closed-loop RPC
//! clients, servers that reply to requests, multi-tenant muxes that
//! context-switch between processes — and the old static streams, which
//! become the trivial [`StreamProgram`] (all of its sends on the first
//! step, nothing after), keeping every golden digest valid.
//!
//! # Determinism rules
//!
//! Programs run inside both engine instantiations of
//! [`Multicomputer::run_programs`](crate::Multicomputer::run_programs),
//! so their behavior must be a pure function of the simulated timeline:
//!
//! 1. **The initial step.** Every program is stepped once with an empty
//!    inbox before the machine disassembles into shards. Open-loop
//!    traffic (streams, fire-and-forget bursts) is emitted here, and
//!    the emission count seeds the deterministic windows-per-crossing
//!    schedule exactly as a [`NodePlan`] of the same depth would.
//! 2. **Delivery-driven after that.** A program is stepped again only at
//!    an epoch boundary at which its node received deliveries — the
//!    inbox passed to [`TrafficProgram::step`] is never empty after the
//!    initial step. Emissions are therefore *reply injections*, ordered
//!    by the engine's deterministic commit order, so the timeline (and
//!    `state_digest`, and trace bytes) is bit-identical at any thread
//!    count.
//! 3. **Node-local state only.** `step` gets mutable access to its own
//!    node (so a tenant mux can context-switch processes or re-import a
//!    NIPT mapping mid-run) but can never see another node, host time,
//!    or the thread count.
//!
//! [`SendOp`]: crate::SendOp

use std::any::Any;

use shrimp_mem::PhysAddr;
use shrimp_net::{NodeId, PacketClass};
use shrimp_os::Trap;
use shrimp_sim::{Histogram, SimTime};

use crate::{SendOp, ShrimpNode};

/// One delivery surfaced to the destination node's program: the
/// receive-side facts a reactive workload can key on. Collected by the
/// delivery core only for nodes that run a reactive program, and handed
/// to [`TrafficProgram::step`] in commit order at the next epoch
/// boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeliveryEvent {
    /// The sending node.
    pub src: NodeId,
    /// Where the payload landed in this node's physical memory.
    pub dst_paddr: PhysAddr,
    /// Payload length.
    pub bytes: u32,
    /// When the receive-side EISA DMA completed.
    pub done: SimTime,
    /// The §7 priority class the packet travelled under.
    pub class: PacketClass,
}

/// A reactive traffic source for one node: see the module docs for the
/// determinism rules every implementation must follow.
pub trait TrafficProgram: Send {
    /// Whether the program may emit sends *after* the initial step (in
    /// reaction to deliveries). Return `false` for purely static traffic
    /// — the engine then skips the reactive horizon machinery entirely
    /// and runs the exact legacy epoch schedule.
    fn reactive(&self) -> bool {
        true
    }

    /// A hint for the windows-per-crossing schedule: roughly how many
    /// sends the program expects to emit after the initial step. Zero
    /// (the default) is always safe — it only makes later windows
    /// smaller, never incorrect.
    fn planned_hint(&self) -> usize {
        0
    }

    /// Emits the next sends into `out`, given everything delivered to
    /// this node since the last step. Called once with an empty `inbox`
    /// before the run starts, then only at epoch boundaries at which
    /// deliveries arrived. A trap finishes the node's traffic for the
    /// run and surfaces from `run_programs` like a mid-plan kernel trap.
    ///
    /// # Errors
    ///
    /// Any kernel [`Trap`] raised by node operations performed inside
    /// the step (tenant context switches, demand NIPT re-imports, …).
    fn step(
        &mut self,
        node: &mut ShrimpNode,
        inbox: &[DeliveryEvent],
        out: &mut Vec<SendOp>,
    ) -> Result<(), Trap>;

    /// Whether the program has emitted everything it ever will. A run
    /// terminates when every program is finished and the fabric is
    /// drained; an unfinished program whose replies never arrive simply
    /// stops making progress (the run still terminates — nothing is
    /// left that could move the clock).
    fn finished(&self) -> bool;

    /// Downcast support, so callers can recover workload-specific state
    /// (latency histograms, counters) from the boxed program after a
    /// run: `program.as_any_mut().downcast_mut::<MyProgram>()`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A program paired with the node it runs on — the reactive analogue of
/// [`NodePlan`](crate::NodePlan). At most one program per node.
pub struct ProgramPlan {
    /// Which node runs the program.
    pub node: usize,
    /// The traffic program. The engine borrows it for the run and hands
    /// it back (stepped to its final state) when the run returns.
    pub program: Box<dyn TrafficProgram>,
}

/// The trivial program: a static send list, emitted whole on the initial
/// step. [`Multicomputer::run`](crate::Multicomputer::run) wraps every
/// [`NodePlan`](crate::NodePlan) in one of these — the legacy path is
/// literally this special case.
#[derive(Clone, Debug)]
pub struct StreamProgram {
    ops: Vec<SendOp>,
    emitted: bool,
}

impl StreamProgram {
    /// A program that emits `ops` in order on the initial step.
    pub fn new(ops: Vec<SendOp>) -> Self {
        StreamProgram { ops, emitted: false }
    }
}

impl TrafficProgram for StreamProgram {
    fn reactive(&self) -> bool {
        false
    }

    fn step(
        &mut self,
        _node: &mut ShrimpNode,
        _inbox: &[DeliveryEvent],
        out: &mut Vec<SendOp>,
    ) -> Result<(), Trap> {
        if !self.emitted {
            if out.is_empty() {
                // The initial step lands in a fresh buffer: hand over the
                // storage instead of copying (the legacy `run` path then
                // allocates nothing per node beyond the box itself).
                std::mem::swap(out, &mut self.ops);
            } else {
                out.extend_from_slice(&self.ops);
                self.ops.clear();
            }
            self.emitted = true;
        }
        Ok(())
    }

    fn finished(&self) -> bool {
        self.emitted
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The placeholder the engine swaps into a [`ProgramPlan`] while it owns
/// the real program (and the restore target if a caller inspects a plan
/// mid-run). Emits nothing, is always finished.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct NullProgram;

impl TrafficProgram for NullProgram {
    fn reactive(&self) -> bool {
        false
    }

    fn step(
        &mut self,
        _node: &mut ShrimpNode,
        _inbox: &[DeliveryEvent],
        _out: &mut Vec<SendOp>,
    ) -> Result<(), Trap> {
        Ok(())
    }

    fn finished(&self) -> bool {
        true
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A request/response client: issues `requests` identical requests and
/// matches each reply by its landing address. Closed-loop by default
/// (one outstanding request; the reply triggers the next), or open-loop
/// (`pipeline = true`: every request issued on the initial step,
/// replies matched first-in-first-out). Request latency — issue instant
/// to reply EISA-DMA completion — lands in a [`Histogram`].
#[derive(Debug)]
pub struct RpcClientProgram {
    /// The request send, reissued verbatim for every request.
    request: SendOp,
    /// Total requests to issue.
    requests: usize,
    /// Physical base of the region replies land in.
    reply_paddr: PhysAddr,
    /// Length of the reply region.
    reply_bytes: u64,
    /// Open loop when true: all requests up front.
    pipeline: bool,
    issued: usize,
    completed: usize,
    /// Issue instants of not-yet-answered requests, oldest first
    /// (closed-loop keeps at most one).
    in_flight: std::collections::VecDeque<SimTime>,
    latency: Histogram,
}

impl RpcClientProgram {
    /// A closed-loop client: one outstanding request at a time.
    pub fn closed_loop(
        request: SendOp,
        requests: usize,
        reply_paddr: PhysAddr,
        reply_bytes: u64,
    ) -> Self {
        RpcClientProgram {
            request,
            requests,
            reply_paddr,
            reply_bytes,
            pipeline: false,
            issued: 0,
            completed: 0,
            in_flight: std::collections::VecDeque::with_capacity(1),
            latency: Histogram::new(),
        }
    }

    /// An open-loop client: every request issued on the initial step.
    pub fn open_loop(
        request: SendOp,
        requests: usize,
        reply_paddr: PhysAddr,
        reply_bytes: u64,
    ) -> Self {
        RpcClientProgram {
            pipeline: true,
            in_flight: std::collections::VecDeque::with_capacity(requests),
            ..Self::closed_loop(request, requests, reply_paddr, reply_bytes)
        }
    }

    /// Replies received so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// The request-latency histogram (issue instant → reply delivery).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    fn is_reply(&self, ev: &DeliveryEvent) -> bool {
        let base = self.reply_paddr.raw();
        let p = ev.dst_paddr.raw();
        p >= base && p < base + self.reply_bytes
    }
}

impl TrafficProgram for RpcClientProgram {
    fn planned_hint(&self) -> usize {
        if self.pipeline {
            0
        } else {
            self.requests.saturating_sub(1)
        }
    }

    fn step(
        &mut self,
        node: &mut ShrimpNode,
        inbox: &[DeliveryEvent],
        out: &mut Vec<SendOp>,
    ) -> Result<(), Trap> {
        for ev in inbox {
            if self.is_reply(ev) {
                if let Some(issued_at) = self.in_flight.pop_front() {
                    self.latency.record(ev.done.saturating_duration_since(issued_at).as_nanos());
                    self.completed += 1;
                }
            }
        }
        let now = node.os().machine().now();
        let batch = if self.pipeline {
            self.requests - self.issued
        } else {
            usize::from(self.in_flight.is_empty() && self.issued < self.requests)
        };
        for _ in 0..batch {
            out.push(self.request);
            self.in_flight.push_back(now);
            self.issued += 1;
        }
        Ok(())
    }

    fn finished(&self) -> bool {
        self.completed >= self.requests
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A request/response server: watches a request region and answers each
/// delivery that lands in it with the reply send routed by the request's
/// exact landing address. Replies typically travel [`PacketClass::System`]
/// (the §7 priority a server issues on the tenant's behalf).
#[derive(Debug)]
pub struct RpcServerProgram {
    /// Physical base of the region requests land in.
    request_paddr: PhysAddr,
    /// Length of the request region.
    request_bytes: u64,
    /// `(landing address, reply send)` routes, scanned linearly (a
    /// handful of tenants per node — no hash map on the data path).
    routes: Vec<(PhysAddr, SendOp)>,
    /// Requests this program will serve before it is finished.
    expected: usize,
    replied: usize,
}

impl RpcServerProgram {
    /// A server answering `expected` requests landing in
    /// `[request_paddr, request_paddr + request_bytes)` via `routes`.
    pub fn new(
        request_paddr: PhysAddr,
        request_bytes: u64,
        routes: Vec<(PhysAddr, SendOp)>,
        expected: usize,
    ) -> Self {
        RpcServerProgram { request_paddr, request_bytes, routes, expected, replied: 0 }
    }

    /// Requests answered so far.
    pub fn replied(&self) -> usize {
        self.replied
    }
}

impl TrafficProgram for RpcServerProgram {
    fn planned_hint(&self) -> usize {
        self.expected
    }

    fn step(
        &mut self,
        _node: &mut ShrimpNode,
        inbox: &[DeliveryEvent],
        out: &mut Vec<SendOp>,
    ) -> Result<(), Trap> {
        let base = self.request_paddr.raw();
        for ev in inbox {
            let p = ev.dst_paddr.raw();
            if p < base || p >= base + self.request_bytes {
                continue;
            }
            if let Some((_, reply)) = self.routes.iter().find(|(at, _)| at.raw() == p) {
                out.push(*reply);
                self.replied += 1;
            }
        }
        Ok(())
    }

    fn finished(&self) -> bool {
        self.replied >= self.expected
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
