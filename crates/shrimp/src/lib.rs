//! The SHRIMP multicomputer: the paper's §8 instantiation of UDMA.
//!
//! Each node is a simulated Pentium Xpress PC ([`shrimp_machine`]) running
//! the simulated kernel ([`shrimp_os`]), connected to a Paragon-style
//! routing backplane ([`shrimp_net`]) through the custom network interface
//! modelled here:
//!
//! - [`Nipt`] — the Network Interface Page Table: 32K entries, each naming
//!   a remote node and a remote physical page,
//! - [`Nic`] — the network interface board: the UDMA device whose device
//!   proxy pages index the NIPT ("a proxy destination address can be
//!   thought of as a proxy page number and an offset on that page"),
//!   packetizing outgoing DMA data, plus a memory-mapped FIFO window for
//!   the §9 programmed-I/O comparison,
//! - [`ShrimpNode`] — one node (kernel + machine + NIC) with the
//!   export/import helpers that fill NIPT entries,
//! - [`Multicomputer`] — the whole machine: nodes + fabric + the
//!   receive-side EISA DMA logic that deposits packet data directly into
//!   remote physical memory ("deliberate update").
//!
//! # Example — two-node deliberate update
//!
//! ```
//! use shrimp::Multicomputer;
//! use shrimp_mem::VirtAddr;
//!
//! let mut mc = Multicomputer::new(2, Default::default());
//! let sender = mc.spawn_process(0);
//! let receiver = mc.spawn_process(1);
//!
//! // Receiver exports 1 page; sender gets device proxy pages for it.
//! mc.map_user_buffer(1, receiver, 0x40000, 1)?;
//! let dev_page = mc.export(1, receiver, VirtAddr::new(0x40000), 1, 0, sender)?;
//!
//! // Sender writes a message and pushes it with user-level DMA.
//! mc.map_user_buffer(0, sender, 0x10000, 1)?;
//! mc.write_user(0, sender, VirtAddr::new(0x10000), b"deliberate update!!!")?;
//! mc.send(0, sender, VirtAddr::new(0x10000), dev_page, 0, 20)?;
//!
//! let got = mc.read_user(1, receiver, VirtAddr::new(0x40000), 20)?;
//! assert_eq!(got, b"deliberate update!!!");
//! # Ok::<(), shrimp::ShrimpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod engine;
mod multicomputer;
mod nic;
mod nipt;
mod node;
mod parallel;
mod program;
mod tenant;

pub use api::{Channel, ChannelMessage};
pub use multicomputer::{
    trace_bin_to_json, Multicomputer, MulticomputerConfig, ShrimpError, TRACE_BIN_MAGIC,
};
pub use nic::{Nic, OutgoingPacket, OutgoingRun, PioError, NIC_MMIO};
pub use nipt::{Nipt, NiptEntry};
pub use node::ShrimpNode;
pub use parallel::{NodePlan, ParallelReport, PhaseBreakdown, SendOp, MAX_EPOCH_WINDOWS};
pub use program::{
    DeliveryEvent, ProgramPlan, RpcClientProgram, RpcServerProgram, StreamProgram, TrafficProgram,
};
pub use shrimp_net::PacketClass;
pub use tenant::{NiptDirectory, TenantMapping};
