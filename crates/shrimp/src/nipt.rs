//! The Network Interface Page Table (paper §8).
//!
//! "All potential message destinations are stored in the Network Interface
//! Page Table (NIPT), each entry of which specifies a remote node and a
//! physical memory page on that node. ... Since the NIPT is indexed with 15
//! bits, it can hold 32K different destination pages."

use shrimp_mem::Pfn;
use shrimp_net::NodeId;
use shrimp_sim::{Counter, Gauge};

/// One NIPT entry: a remote destination page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NiptEntry {
    /// Destination node.
    pub node: NodeId,
    /// Destination physical page on that node.
    pub pfn: Pfn,
}

/// The NIPT: a direct-indexed table of destination pages.
///
/// # Example
///
/// ```
/// use shrimp::{Nipt, NiptEntry};
/// use shrimp_mem::Pfn;
/// use shrimp_net::NodeId;
///
/// let mut nipt = Nipt::new(Nipt::SHRIMP_ENTRIES);
/// nipt.set(5, NiptEntry { node: NodeId::new(3), pfn: Pfn::new(77) });
/// assert_eq!(nipt.get(5).unwrap().pfn, Pfn::new(77));
/// ```
#[derive(Clone, Debug)]
pub struct Nipt {
    entries: Vec<Option<NiptEntry>>,
    /// Valid-entry count with a high-water mark (metrics plane: how close
    /// the workload gets to the 32K board capacity).
    occupancy: Gauge,
    /// `set` calls that overwrote a still-valid entry — the kernel
    /// recycled a live destination slot.
    evictions: Counter,
    /// Data-path [`Nipt::lookup`]s that missed — a send named an index
    /// with no installed destination.
    refaults: Counter,
}

impl Nipt {
    /// The real board's capacity: 15 index bits → 32K entries.
    pub const SHRIMP_ENTRIES: usize = 32 * 1024;

    /// A NIPT with `capacity` entries, all invalid.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "NIPT needs at least one entry");
        Nipt {
            entries: vec![None; capacity],
            occupancy: Gauge::new(),
            evictions: Counter::new(),
            refaults: Counter::new(),
        }
    }

    /// Number of entries (valid or not).
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Installs an entry (kernel-only operation on the real board).
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds capacity.
    pub fn set(&mut self, index: u64, entry: NiptEntry) {
        let slot = self
            .entries
            .get_mut(index as usize)
            .unwrap_or_else(|| panic!("NIPT index {index} out of range"));
        if slot.is_some() {
            self.evictions.incr();
        } else {
            self.occupancy.incr();
        }
        *slot = Some(entry);
    }

    /// Invalidates an entry.
    pub fn clear(&mut self, index: u64) {
        if let Some(slot) = self.entries.get_mut(index as usize) {
            if slot.is_some() {
                self.occupancy.decr();
            }
            *slot = None;
        }
    }

    /// Looks up an entry; `None` for invalid or out-of-range indices.
    /// Pure — allocation scans and eligibility probes use this.
    pub fn get(&self, index: u64) -> Option<NiptEntry> {
        self.entries.get(index as usize).copied().flatten()
    }

    /// Data-path lookup: like [`Nipt::get`], but a miss counts as a
    /// refault (a send named an index with no installed destination).
    // lint:hot_path
    #[inline]
    pub fn lookup(&mut self, index: u64) -> Option<NiptEntry> {
        let hit = self.entries.get(index as usize).copied().flatten();
        if hit.is_none() {
            self.refaults.incr();
        }
        hit
    }

    /// Ownership probe for NIPT demand paging: `true` when `index` still
    /// holds exactly `expect`. A mismatch — the slot was recycled for
    /// another tenant, or never installed — counts as a refault, since the
    /// probing tenant must re-enter the kernel to reload its mapping
    /// before it can send. (So `refaults` counts missed *or mis-owned*
    /// data-path checks.)
    // lint:hot_path
    #[inline]
    pub fn lookup_expect(&mut self, index: u64, expect: NiptEntry) -> bool {
        let hit = self.entries.get(index as usize).copied().flatten() == Some(expect);
        if !hit {
            self.refaults.incr();
        }
        hit
    }

    /// First invalid index at or after `from`, for allocation.
    pub fn first_free(&self, from: u64) -> Option<u64> {
        (from as usize..self.entries.len()).find(|&i| self.entries[i].is_none()).map(|i| i as u64)
    }

    /// Number of valid entries.
    pub fn valid_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Current valid-entry count as tracked by the occupancy gauge.
    pub fn occupancy(&self) -> u64 {
        self.occupancy.get()
    }

    /// The occupancy gauge itself (level + high water), for registering
    /// in a metrics snapshot.
    pub fn occupancy_gauge(&self) -> Gauge {
        self.occupancy
    }

    /// Highest valid-entry count ever reached.
    pub fn occupancy_high_water(&self) -> u64 {
        self.occupancy.high_water()
    }

    /// `set` calls that overwrote a still-valid entry.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Data-path lookups that missed.
    pub fn refaults(&self) -> u64 {
        self.refaults.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut n = Nipt::new(8);
        assert_eq!(n.get(3), None);
        n.set(3, NiptEntry { node: NodeId::new(1), pfn: Pfn::new(9) });
        assert_eq!(n.get(3).unwrap().node, NodeId::new(1));
        n.clear(3);
        assert_eq!(n.get(3), None);
    }

    #[test]
    fn out_of_range_get_is_none() {
        let n = Nipt::new(4);
        assert_eq!(n.get(100), None);
    }

    #[test]
    fn first_free_scans() {
        let mut n = Nipt::new(4);
        n.set(0, NiptEntry { node: NodeId::new(0), pfn: Pfn::new(0) });
        n.set(1, NiptEntry { node: NodeId::new(0), pfn: Pfn::new(1) });
        assert_eq!(n.first_free(0), Some(2));
        assert_eq!(n.first_free(3), Some(3));
        n.set(2, NiptEntry { node: NodeId::new(0), pfn: Pfn::new(2) });
        n.set(3, NiptEntry { node: NodeId::new(0), pfn: Pfn::new(3) });
        assert_eq!(n.first_free(0), None);
        assert_eq!(n.valid_count(), 4);
    }

    #[test]
    fn metrics_track_occupancy_evictions_refaults() {
        let mut n = Nipt::new(4);
        n.set(0, NiptEntry { node: NodeId::new(0), pfn: Pfn::new(0) });
        n.set(1, NiptEntry { node: NodeId::new(0), pfn: Pfn::new(1) });
        assert_eq!(n.occupancy(), 2);
        assert_eq!(n.occupancy_high_water(), 2);
        // Overwriting a live slot is an eviction, not new occupancy.
        n.set(1, NiptEntry { node: NodeId::new(2), pfn: Pfn::new(9) });
        assert_eq!(n.occupancy(), 2);
        assert_eq!(n.evictions(), 1);
        n.clear(0);
        assert_eq!(n.occupancy(), 1);
        assert_eq!(n.occupancy_high_water(), 2, "high water survives clears");
        // Clearing an already-empty slot changes nothing.
        n.clear(0);
        assert_eq!(n.occupancy(), 1);
        // Data-path lookups count misses; pure `get` never does.
        assert!(n.lookup(1).is_some());
        assert!(n.lookup(0).is_none());
        assert!(n.lookup(100).is_none());
        assert!(n.get(0).is_none());
        assert_eq!(n.refaults(), 2);
    }

    #[test]
    fn lookup_expect_counts_mismatches_as_refaults() {
        let mut n = Nipt::new(4);
        let mine = NiptEntry { node: NodeId::new(1), pfn: Pfn::new(7) };
        let theirs = NiptEntry { node: NodeId::new(2), pfn: Pfn::new(8) };
        n.set(0, mine);
        assert!(n.lookup_expect(0, mine));
        assert_eq!(n.refaults(), 0);
        // The slot was recycled out from under us: a refault.
        n.set(0, theirs);
        assert!(!n.lookup_expect(0, mine));
        // Never installed, or out of range: also refaults.
        assert!(!n.lookup_expect(1, mine));
        assert!(!n.lookup_expect(100, mine));
        assert_eq!(n.refaults(), 3);
    }

    #[test]
    fn shrimp_capacity_is_32k() {
        assert_eq!(Nipt::SHRIMP_ENTRIES, 32768);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut n = Nipt::new(2);
        n.set(2, NiptEntry { node: NodeId::new(0), pfn: Pfn::new(0) });
    }
}
