//! The Network Interface Page Table (paper §8).
//!
//! "All potential message destinations are stored in the Network Interface
//! Page Table (NIPT), each entry of which specifies a remote node and a
//! physical memory page on that node. ... Since the NIPT is indexed with 15
//! bits, it can hold 32K different destination pages."

use shrimp_mem::Pfn;
use shrimp_net::NodeId;

/// One NIPT entry: a remote destination page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NiptEntry {
    /// Destination node.
    pub node: NodeId,
    /// Destination physical page on that node.
    pub pfn: Pfn,
}

/// The NIPT: a direct-indexed table of destination pages.
///
/// # Example
///
/// ```
/// use shrimp::{Nipt, NiptEntry};
/// use shrimp_mem::Pfn;
/// use shrimp_net::NodeId;
///
/// let mut nipt = Nipt::new(Nipt::SHRIMP_ENTRIES);
/// nipt.set(5, NiptEntry { node: NodeId::new(3), pfn: Pfn::new(77) });
/// assert_eq!(nipt.get(5).unwrap().pfn, Pfn::new(77));
/// ```
#[derive(Clone, Debug)]
pub struct Nipt {
    entries: Vec<Option<NiptEntry>>,
}

impl Nipt {
    /// The real board's capacity: 15 index bits → 32K entries.
    pub const SHRIMP_ENTRIES: usize = 32 * 1024;

    /// A NIPT with `capacity` entries, all invalid.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "NIPT needs at least one entry");
        Nipt { entries: vec![None; capacity] }
    }

    /// Number of entries (valid or not).
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Installs an entry (kernel-only operation on the real board).
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds capacity.
    pub fn set(&mut self, index: u64, entry: NiptEntry) {
        let slot = self
            .entries
            .get_mut(index as usize)
            .unwrap_or_else(|| panic!("NIPT index {index} out of range"));
        *slot = Some(entry);
    }

    /// Invalidates an entry.
    pub fn clear(&mut self, index: u64) {
        if let Some(slot) = self.entries.get_mut(index as usize) {
            *slot = None;
        }
    }

    /// Looks up an entry; `None` for invalid or out-of-range indices.
    pub fn get(&self, index: u64) -> Option<NiptEntry> {
        self.entries.get(index as usize).copied().flatten()
    }

    /// First invalid index at or after `from`, for allocation.
    pub fn first_free(&self, from: u64) -> Option<u64> {
        (from as usize..self.entries.len()).find(|&i| self.entries[i].is_none()).map(|i| i as u64)
    }

    /// Number of valid entries.
    pub fn valid_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut n = Nipt::new(8);
        assert_eq!(n.get(3), None);
        n.set(3, NiptEntry { node: NodeId::new(1), pfn: Pfn::new(9) });
        assert_eq!(n.get(3).unwrap().node, NodeId::new(1));
        n.clear(3);
        assert_eq!(n.get(3), None);
    }

    #[test]
    fn out_of_range_get_is_none() {
        let n = Nipt::new(4);
        assert_eq!(n.get(100), None);
    }

    #[test]
    fn first_free_scans() {
        let mut n = Nipt::new(4);
        n.set(0, NiptEntry { node: NodeId::new(0), pfn: Pfn::new(0) });
        n.set(1, NiptEntry { node: NodeId::new(0), pfn: Pfn::new(1) });
        assert_eq!(n.first_free(0), Some(2));
        assert_eq!(n.first_free(3), Some(3));
        n.set(2, NiptEntry { node: NodeId::new(0), pfn: Pfn::new(2) });
        n.set(3, NiptEntry { node: NodeId::new(0), pfn: Pfn::new(3) });
        assert_eq!(n.first_free(0), None);
        assert_eq!(n.valid_count(), 4);
    }

    #[test]
    fn shrimp_capacity_is_32k() {
        assert_eq!(Nipt::SHRIMP_ENTRIES, 32768);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut n = Nipt::new(2);
        n.set(2, NiptEntry { node: NodeId::new(0), pfn: Pfn::new(0) });
    }
}
