//! A small user-level message-passing layer on top of deliberate update —
//! the kind of library §8 envisions ("efficient, protected, user-level
//! message passing based on the UDMA mechanism").
//!
//! Protocol: a [`Channel`] owns a run of exported receiver pages. Each
//! message is written payload-first, then an 8-byte header word
//! `(seq << 32) | len` is sent *last*; because the fabric preserves
//! point-to-point ordering, a receiver that observes the header knows the
//! payload preceded it. The receiver polls the header word — no interrupts,
//! no kernel.

use shrimp_mem::{VirtAddr, PAGE_SIZE};
use shrimp_os::{Pid, UdmaXferResult};

use crate::{Multicomputer, ShrimpError};

/// One received message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChannelMessage {
    /// Sender-assigned sequence number (1-based).
    pub seq: u32,
    /// Message payload.
    pub data: Vec<u8>,
}

/// A one-way, single-producer message channel between two processes on two
/// nodes.
#[derive(Clone, Copy, Debug)]
pub struct Channel {
    send_node: usize,
    send_pid: Pid,
    recv_node: usize,
    recv_pid: Pid,
    /// Receiver-side buffer base.
    recv_va: VirtAddr,
    /// Sender-side staging buffer base.
    stage_va: VirtAddr,
    /// Sender's first device proxy page for the receive buffer.
    dev_page: u64,
    /// Payload capacity in bytes (one header word is reserved).
    capacity: u64,
    next_seq: u32,
    last_received: u32,
}

impl Channel {
    /// Header size: one 8-byte word, stored at the end of the buffer.
    const HEADER_BYTES: u64 = 8;

    /// Establishes a channel of `pages` pages: maps a receive buffer at
    /// `recv_va` and a staging buffer at `stage_va`, exports the receive
    /// pages, and programs the sender's NIPT.
    ///
    /// # Errors
    ///
    /// Any [`ShrimpError`] from mapping or export.
    #[allow(clippy::too_many_arguments)]
    pub fn establish(
        mc: &mut Multicomputer,
        send_node: usize,
        send_pid: Pid,
        recv_node: usize,
        recv_pid: Pid,
        recv_va: VirtAddr,
        stage_va: VirtAddr,
        pages: u64,
    ) -> Result<Channel, ShrimpError> {
        mc.map_user_buffer(recv_node, recv_pid, recv_va.raw(), pages)?;
        mc.map_user_buffer(send_node, send_pid, stage_va.raw(), pages)?;
        let dev_page = mc.export(recv_node, recv_pid, recv_va, pages, send_node, send_pid)?;
        Ok(Channel {
            send_node,
            send_pid,
            recv_node,
            recv_pid,
            recv_va,
            stage_va,
            dev_page,
            capacity: pages * PAGE_SIZE - Self::HEADER_BYTES,
            next_seq: 1,
            last_received: 0,
        })
    }

    /// Payload capacity per message.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Sends one message: payload first, header word last.
    ///
    /// # Errors
    ///
    /// [`ShrimpError`] on traps; messages larger than
    /// [`Channel::capacity`] panic (caller bug).
    pub fn send(
        &mut self,
        mc: &mut Multicomputer,
        data: &[u8],
    ) -> Result<UdmaXferResult, ShrimpError> {
        assert!(data.len() as u64 <= self.capacity, "message exceeds channel capacity");
        let seq = self.next_seq;
        self.next_seq += 1;

        // Stage payload + header in the sender's buffer. The NIC requires
        // 4-byte-aligned lengths (§8), so pad the payload transfer.
        let padded = (data.len() as u64 + 3) & !3;
        let mut staged = vec![0u8; padded as usize];
        staged[..data.len()].copy_from_slice(data);
        mc.write_user(self.send_node, self.send_pid, self.stage_va, &staged)?;
        let header = (u64::from(seq) << 32) | data.len() as u64;
        let header_va = self.stage_va + self.capacity;
        mc.write_user(self.send_node, self.send_pid, header_va, &header.to_le_bytes())?;

        // Payload first...
        let mut result =
            mc.send(self.send_node, self.send_pid, self.stage_va, self.dev_page, 0, padded)?;
        // ...header last (point-to-point ordering makes it the commit).
        let hdr = mc.send(
            self.send_node,
            self.send_pid,
            header_va,
            self.dev_page + self.capacity / PAGE_SIZE,
            self.capacity % PAGE_SIZE,
            Self::HEADER_BYTES,
        )?;
        result.elapsed += hdr.elapsed;
        result.transfers += hdr.transfers;
        result.retries += hdr.retries;
        Ok(result)
    }

    /// Polls for the next message; `None` if nothing new has arrived.
    ///
    /// # Errors
    ///
    /// [`ShrimpError`] on receiver-side traps.
    pub fn try_recv(
        &mut self,
        mc: &mut Multicomputer,
    ) -> Result<Option<ChannelMessage>, ShrimpError> {
        mc.propagate();
        let header_va = self.recv_va + self.capacity;
        let raw = mc.read_user(self.recv_node, self.recv_pid, header_va, 8)?;
        let word = u64::from_le_bytes(raw.try_into().expect("read 8 bytes"));
        let seq = (word >> 32) as u32;
        let len = word & 0xffff_ffff;
        if seq <= self.last_received || seq == 0 {
            return Ok(None);
        }
        self.last_received = seq;
        let data = mc.read_user(self.recv_node, self.recv_pid, self.recv_va, len)?;
        Ok(Some(ChannelMessage { seq, data }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MulticomputerConfig;

    fn setup() -> (Multicomputer, Channel) {
        let mut mc = Multicomputer::new(2, MulticomputerConfig::default());
        let s = mc.spawn_process(0);
        let r = mc.spawn_process(1);
        let ch = Channel::establish(
            &mut mc,
            0,
            s,
            1,
            r,
            VirtAddr::new(0x40000),
            VirtAddr::new(0x10000),
            2,
        )
        .unwrap();
        (mc, ch)
    }

    #[test]
    fn send_then_recv() {
        let (mut mc, mut ch) = setup();
        assert!(ch.try_recv(&mut mc).unwrap().is_none(), "empty channel");
        ch.send(&mut mc, b"first message").unwrap();
        let msg = ch.try_recv(&mut mc).unwrap().expect("message arrived");
        assert_eq!(msg.seq, 1);
        assert_eq!(msg.data, b"first message");
        assert!(ch.try_recv(&mut mc).unwrap().is_none(), "no duplicate delivery");
    }

    #[test]
    fn sequence_numbers_advance() {
        let (mut mc, mut ch) = setup();
        ch.send(&mut mc, b"a").unwrap();
        let m1 = ch.try_recv(&mut mc).unwrap().unwrap();
        ch.send(&mut mc, b"bb").unwrap();
        let m2 = ch.try_recv(&mut mc).unwrap().unwrap();
        assert_eq!((m1.seq, m2.seq), (1, 2));
        assert_eq!(m2.data, b"bb");
    }

    #[test]
    fn odd_lengths_round_trip() {
        // The NIC wants 4-byte-aligned transfers; the channel pads.
        let (mut mc, mut ch) = setup();
        for len in [1usize, 3, 5, 7, 63] {
            let payload: Vec<u8> = (0..len).map(|i| i as u8 ^ 0x5a).collect();
            ch.send(&mut mc, &payload).unwrap();
            let msg = ch.try_recv(&mut mc).unwrap().unwrap();
            assert_eq!(msg.data, payload, "len {len}");
        }
    }

    #[test]
    fn capacity_reserves_header() {
        let (_, ch) = setup();
        assert_eq!(ch.capacity(), 2 * PAGE_SIZE - 8);
    }

    #[test]
    #[should_panic(expected = "exceeds channel capacity")]
    fn oversized_message_panics() {
        let (mut mc, mut ch) = setup();
        let big = vec![0u8; (2 * PAGE_SIZE) as usize];
        let _ = ch.send(&mut mc, &big);
    }
}
