//! One SHRIMP node: kernel + machine + network interface.

use shrimp_mem::{Pfn, VirtAddr};
use shrimp_net::NodeId;
use shrimp_os::{Node, NodeConfig, Pid, Trap};

use crate::Nic;

/// A SHRIMP node — an [`shrimp_os::Node`] whose UDMA device is the
/// [`Nic`] — plus the export bookkeeping the NIPT mapping path needs.
#[derive(Debug)]
pub struct ShrimpNode {
    id: NodeId,
    os: Node<Nic>,
}

impl ShrimpNode {
    /// Boots a node with the given kernel/hardware configuration and NIC.
    pub fn new(id: NodeId, config: NodeConfig, nic: Nic) -> Self {
        ShrimpNode { id, os: Node::new(config, nic) }
    }

    /// This node's fabric id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The operating system (and through it the machine and NIC).
    pub fn os(&self) -> &Node<Nic> {
        &self.os
    }

    /// Mutable OS access.
    pub fn os_mut(&mut self) -> &mut Node<Nic> {
        &mut self.os
    }

    /// Drains this node's NIC into `outbox` (keeping the NIC queue's
    /// capacity) and, when `tracing`, stamps each drained packet with the
    /// instant the sender's completion status became observable — the
    /// node's clock, already past the status LOAD for everything queued.
    ///
    /// This is the single send-side drain both engine instantiations use;
    /// the receive side is `DeliveryCore` (see `engine.rs`).
    pub(crate) fn drain_nic(&mut self, tracing: bool, outbox: &mut Vec<crate::OutgoingPacket>) {
        let drained_from = outbox.len();
        self.os.machine_mut().device_mut().drain_outgoing_into(outbox);
        if tracing {
            let observed = self.os.machine().now();
            for out in &mut outbox[drained_from..] {
                out.packet.meta.status_observed = observed;
            }
        }
    }

    /// Drains this node's NIC burst descriptors into `run_outbox`. Runs
    /// are pre-stamped at packetize time (the replay knows each member's
    /// status instant), so no per-packet stamping happens here.
    pub(crate) fn drain_nic_runs(&mut self, run_outbox: &mut Vec<crate::OutgoingRun>) {
        self.os.machine_mut().device_mut().drain_runs_into(run_outbox);
    }

    /// Export: wires down `pages` pages of `pid`'s buffer at `va` so
    /// incoming deliberate updates can land in them, returning the physical
    /// frames a remote NIPT entry should name.
    ///
    /// # Errors
    ///
    /// Any paging [`Trap`].
    pub fn export_pages(&mut self, pid: Pid, va: VirtAddr, pages: u64) -> Result<Vec<Pfn>, Trap> {
        self.os.wire_pages(pid, va, pages)
    }

    /// Import: installs NIPT entries (starting at the first free slot at
    /// or after `from_index`) pointing at `(dst_node, frames)`, and grants
    /// the device proxy pages to `pid`. Returns the first NIPT index used.
    ///
    /// # Errors
    ///
    /// [`Trap::DeviceNotGranted`] when the NIPT is full, plus any grant
    /// trap.
    pub fn import_mapping(
        &mut self,
        pid: Pid,
        dst_node: NodeId,
        frames: &[Pfn],
        from_index: u64,
    ) -> Result<u64, Trap> {
        // Find a contiguous free run of NIPT slots.
        let start = {
            let nipt = self.os.machine().device().nipt();
            let needed = frames.len() as u64;
            let mut base = from_index;
            loop {
                let Some(start) = nipt.first_free(base) else {
                    return Err(Trap::DeviceNotGranted {
                        pid,
                        va: VirtAddr::new(shrimp_mem::DEV_PROXY_BASE),
                    });
                };
                if start + needed > nipt.capacity() as u64 {
                    return Err(Trap::DeviceNotGranted {
                        pid,
                        va: VirtAddr::new(shrimp_mem::DEV_PROXY_BASE),
                    });
                }
                match (0..needed).find(|&i| nipt.get(start + i).is_some()) {
                    Some(i) => base = start + i + 1,
                    None => break start,
                }
            }
        };
        let nic = self.os.machine_mut().device_mut();
        for (i, &pfn) in frames.iter().enumerate() {
            nic.nipt_mut().set(start + i as u64, crate::NiptEntry { node: dst_node, pfn });
        }
        self.os.grant_device_proxy(pid, start, frames.len() as u64, true)?;
        Ok(start)
    }

    /// Import over live slots: installs NIPT entries for `(dst_node,
    /// frames)` at exactly `[start, start + frames.len())`, overwriting
    /// whatever is there (each overwrite of a valid entry counts as a NIPT
    /// eviction), and grants the device proxy pages to `pid`. The caller
    /// must have revoked the previous owner's grant first
    /// (`revoke_device_proxy` in the kernel) — this is the reload half of
    /// NIPT demand paging under tenant churn.
    ///
    /// # Errors
    ///
    /// Any grant trap.
    ///
    /// # Panics
    ///
    /// Panics when the run falls outside the table.
    pub fn import_mapping_over(
        &mut self,
        pid: Pid,
        dst_node: NodeId,
        frames: &[Pfn],
        start: u64,
    ) -> Result<u64, Trap> {
        let nic = self.os.machine_mut().device_mut();
        // lint:checks(F1) -- the assert bounds the whole run against the
        // NIPT capacity before any slot is written.
        assert!(
            start + frames.len() as u64 <= nic.nipt().capacity() as u64,
            "import_mapping_over run out of NIPT bounds"
        );
        for (i, &pfn) in frames.iter().enumerate() {
            nic.nipt_mut().set(start + i as u64, crate::NiptEntry { node: dst_node, pfn });
        }
        self.os.grant_device_proxy(pid, start, frames.len() as u64, true)?;
        Ok(start)
    }
}
