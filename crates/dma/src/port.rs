//! The device side of a DMA transfer.

use shrimp_sim::SimTime;

/// Timing for a replayed run of identical transfers: member `k` was
/// initiated at `started_at + stride·k`, completed at
/// `completes_at + stride·k`, and its sender observed completion status at
/// `status_base + stride·k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunTiming {
    /// Initiation instant of the first member.
    pub started_at: SimTime,
    /// Completion instant of the first member.
    pub completes_at: SimTime,
    /// Inter-member spacing.
    pub stride: shrimp_sim::SimDuration,
    /// Sender-side status-observed instant of the first member. Devices
    /// without span stamping ignore it.
    pub status_base: SimTime,
}

/// A device endpoint the DMA engine can stream to or from.
///
/// `dev_addr` is the device's own address space: a block number for a disk,
/// a pixel offset for a frame buffer, a device-proxy-derived destination for
/// the SHRIMP network interface. The UDMA mechanism deliberately leaves its
/// interpretation device-specific (§4: "the precise interpretation of
/// addresses in device proxy space is device specific").
pub trait DevicePort {
    /// Accepts `data` for device address `dev_addr` (a memory→device
    /// transfer arriving at the device).
    fn dma_write(&mut self, dev_addr: u64, data: &[u8], now: SimTime);

    /// [`DevicePort::dma_write`] plus the simulated time the transfer was
    /// *initiated* (`started_at <= now`). Devices that correlate outgoing
    /// work with its originating request — the SHRIMP NIC stamps transfer
    /// spans for the flight recorder — override this; the default simply
    /// forwards to `dma_write`.
    fn dma_write_traced(&mut self, dev_addr: u64, data: &[u8], started_at: SimTime, now: SimTime) {
        let _ = started_at;
        self.dma_write(dev_addr, data, now);
    }

    /// A replayed *run* of `count` identical writes of `data` to
    /// `dev_addr`, spaced per [`RunTiming`]. The default simply loops the
    /// traced single-write path; batching devices (the SHRIMP NIC)
    /// override this to build one run descriptor instead of `count`
    /// packets.
    fn dma_write_run(&mut self, dev_addr: u64, data: &[u8], count: u64, timing: RunTiming) {
        for k in 0..count {
            self.dma_write_traced(
                dev_addr,
                data,
                timing.started_at + timing.stride * k,
                timing.completes_at + timing.stride * k,
            );
        }
    }

    /// Fills `buf` with bytes from device address `dev_addr` (a
    /// device→memory transfer leaving the device). The engine passes the
    /// destination memory slice directly, so retirement moves data with a
    /// single copy and no intermediate allocation.
    fn dma_read(&mut self, dev_addr: u64, buf: &mut [u8], now: SimTime);

    /// Convenience wrapper returning the read as a fresh `Vec` (tests and
    /// cold paths; the hot path uses [`DevicePort::dma_read`] directly).
    fn dma_read_vec(&mut self, dev_addr: u64, len: u64, now: SimTime) -> Vec<u8> {
        let mut buf = vec![0; len as usize];
        self.dma_read(dev_addr, &mut buf, now);
        buf
    }

    /// Device-specific validation of a transfer request, called at
    /// initiation time. Returning `false` sets the DEVICE-SPECIFIC ERROR
    /// bits in the UDMA status word (§5). The default accepts everything.
    fn validate(&self, _dev_addr: u64, _nbytes: u64) -> bool {
        true
    }

    /// Additional device-side service time for a transfer (e.g. disk seek
    /// plus rotational delay). Added to the engine's bus time. The default
    /// is zero (bus-limited devices such as network FIFOs).
    fn service_time(&self, _dev_addr: u64, _nbytes: u64) -> shrimp_sim::SimDuration {
        shrimp_sim::SimDuration::ZERO
    }
}

/// A trivial in-memory port that stores writes and replays them on reads;
/// useful for tests and as a scratch device.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LoopbackPort {
    data: Vec<u8>,
}

impl LoopbackPort {
    /// A loopback port backed by `size` zeroed bytes.
    pub fn new(size: usize) -> Self {
        LoopbackPort { data: vec![0; size] }
    }

    /// Direct access to the backing bytes (test inspection).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }
}

impl DevicePort for LoopbackPort {
    fn dma_write(&mut self, dev_addr: u64, data: &[u8], _now: SimTime) {
        let start = dev_addr as usize;
        let end = start + data.len();
        assert!(end <= self.data.len(), "loopback write out of range");
        self.data[start..end].copy_from_slice(data);
    }

    fn dma_read(&mut self, dev_addr: u64, buf: &mut [u8], _now: SimTime) {
        let start = dev_addr as usize;
        let end = start + buf.len();
        assert!(end <= self.data.len(), "loopback read out of range");
        buf.copy_from_slice(&self.data[start..end]);
    }

    fn validate(&self, dev_addr: u64, nbytes: u64) -> bool {
        dev_addr + nbytes <= self.data.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_roundtrip() {
        let mut p = LoopbackPort::new(16);
        p.dma_write(4, &[1, 2, 3], SimTime::ZERO);
        assert_eq!(p.dma_read_vec(4, 3, SimTime::ZERO), vec![1, 2, 3]);
        assert_eq!(p.bytes()[3], 0);
    }

    #[test]
    fn loopback_validate_bounds() {
        let p = LoopbackPort::new(8);
        assert!(p.validate(0, 8));
        assert!(!p.validate(1, 8));
    }
}
