//! The DMA engine state: registers, timing and retirement.

use std::error::Error;
use std::fmt;

use shrimp_mem::{MemError, Pfn, PhysAddr, PhysMemory, PAGE_SHIFT};
use shrimp_sim::{Counter, SimDuration, SimTime, StatSet};

use crate::{DevicePort, Direction};

/// Timing parameters of the engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DmaTiming {
    /// Bus arbitration plus control-register write before data moves.
    pub start_overhead: SimDuration,
    /// Burst bandwidth on the I/O bus, MB/s.
    pub bus_mb_per_s: f64,
}

impl Default for DmaTiming {
    fn default() -> Self {
        DmaTiming { start_overhead: SimDuration::from_us(4.2), bus_mb_per_s: 33.0 }
    }
}

/// One in-flight (or retired) DMA transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transfer {
    /// Direction relative to main memory.
    pub direction: Direction,
    /// The memory-side base address.
    pub mem_addr: PhysAddr,
    /// The device-side address (device-specific interpretation).
    pub dev_addr: u64,
    /// Bytes to move.
    pub nbytes: u64,
    /// When the engine accepted the transfer.
    pub started_at: SimTime,
    /// When the last byte lands.
    pub completes_at: SimTime,
}

impl Transfer {
    /// The physical frames the memory side of this transfer touches.
    pub fn mem_frames(&self) -> impl Iterator<Item = Pfn> {
        let first = self.mem_addr.page().raw();
        let last = if self.nbytes == 0 {
            first
        } else {
            (self.mem_addr.raw() + self.nbytes - 1) >> PAGE_SHIFT
        };
        (first..=last).map(Pfn::new)
    }
}

/// Errors from engine operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DmaError {
    /// A transfer is already in progress.
    Busy,
    /// A zero-length transfer was requested.
    ZeroLength,
}

impl fmt::Display for DmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmaError::Busy => write!(f, "DMA engine is busy"),
            DmaError::ZeroLength => write!(f, "zero-length DMA transfer"),
        }
    }
}

impl Error for DmaError {}

/// The traditional DMA engine of Figure 1.
///
/// # Example
///
/// ```
/// use shrimp_dma::{Direction, DmaEngine, DmaTiming, LoopbackPort};
/// use shrimp_mem::{PhysAddr, PhysMemory};
/// use shrimp_sim::SimTime;
///
/// let mut mem = PhysMemory::new(4096);
/// mem.write(PhysAddr::new(0), b"data")?;
/// let mut port = LoopbackPort::new(64);
/// let mut engine = DmaEngine::new(DmaTiming::default());
///
/// let done = engine.start(Direction::MemToDev, PhysAddr::new(0), 8, 4, SimTime::ZERO)?;
/// engine.retire(done, &mut mem, &mut port)?;
/// assert_eq!(port.bytes()[8..12], b"data"[..]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DmaEngine {
    timing: DmaTiming,
    active: Option<Transfer>,
    /// The most recently retired transfer — the template a replayed run of
    /// identical transfers is stamped from (see `replay_retired`).
    last_retired: Option<Transfer>,
    /// Per-transfer counts: plain fields, one increment per start/retire.
    starts: Counter,
    bytes: Counter,
    retired: Counter,
    aborts: Counter,
}

impl DmaEngine {
    /// An idle engine with the given timing.
    pub fn new(timing: DmaTiming) -> Self {
        DmaEngine {
            timing,
            active: None,
            last_retired: None,
            starts: Counter::new(),
            bytes: Counter::new(),
            retired: Counter::new(),
            aborts: Counter::new(),
        }
    }

    /// The engine's timing parameters.
    pub fn timing(&self) -> DmaTiming {
        self.timing
    }

    /// Time the engine is occupied by an `nbytes` transfer.
    pub fn duration_for(&self, nbytes: u64) -> SimDuration {
        self.timing.start_overhead
            + SimDuration::from_bytes_at_rate(nbytes, self.timing.bus_mb_per_s)
    }

    /// Loads the registers and starts a transfer, returning its completion
    /// time. Data does not move until [`DmaEngine::retire`].
    ///
    /// # Errors
    ///
    /// - [`DmaError::Busy`] if a transfer is still in flight (the caller
    ///   must retire it first),
    /// - [`DmaError::ZeroLength`] for `nbytes == 0`.
    pub fn start(
        &mut self,
        direction: Direction,
        mem_addr: PhysAddr,
        dev_addr: u64,
        nbytes: u64,
        now: SimTime,
    ) -> Result<SimTime, DmaError> {
        self.start_with_service(direction, mem_addr, dev_addr, nbytes, now, SimDuration::ZERO)
    }

    /// Like [`DmaEngine::start`] but adds `service` device-side time (e.g.
    /// a disk seek) to the transfer's duration.
    ///
    /// # Errors
    ///
    /// Same as [`DmaEngine::start`].
    pub fn start_with_service(
        &mut self,
        direction: Direction,
        mem_addr: PhysAddr,
        dev_addr: u64,
        nbytes: u64,
        now: SimTime,
        service: SimDuration,
    ) -> Result<SimTime, DmaError> {
        if self.active.is_some() {
            return Err(DmaError::Busy);
        }
        if nbytes == 0 {
            return Err(DmaError::ZeroLength);
        }
        let completes_at = now + self.duration_for(nbytes) + service;
        self.active =
            Some(Transfer { direction, mem_addr, dev_addr, nbytes, started_at: now, completes_at });
        self.starts.incr();
        self.bytes.add(nbytes);
        Ok(completes_at)
    }

    /// The in-flight transfer, if any (regardless of whether its completion
    /// time has passed — it stays here until retired).
    pub fn active(&self) -> Option<&Transfer> {
        self.active.as_ref()
    }

    /// True while a transfer occupies the engine at instant `now`.
    pub fn is_busy(&self, now: SimTime) -> bool {
        self.active.is_some_and(|t| t.completes_at > now)
    }

    /// COUNT register as visible at `now`: bytes not yet transferred,
    /// linearly interpolated over the transfer window. This feeds the
    /// REMAINING-BYTES field of the UDMA status word.
    pub fn remaining_bytes(&self, now: SimTime) -> u64 {
        match self.active {
            None => 0,
            Some(t) => {
                if now >= t.completes_at {
                    0
                } else if now <= t.started_at {
                    t.nbytes
                } else {
                    let total = t.completes_at.duration_since(t.started_at).as_nanos();
                    let left = t.completes_at.duration_since(now).as_nanos();
                    // Round up: a byte in flight still counts.
                    ((t.nbytes as u128 * left as u128).div_ceil(total as u128)) as u64
                }
            }
        }
    }

    /// The memory-side page frames named by the engine's registers — what
    /// the kernel reads to maintain invariant I4 (§6: "the kernel reads the
    /// two registers to perform the check").
    pub fn frames_in_registers(&self) -> Vec<Pfn> {
        self.active.map(|t| t.mem_frames().collect()).unwrap_or_default()
    }

    /// Non-allocating form of the invariant-I4 register check: does the
    /// memory side of the in-flight transfer touch `pfn`? Answers from the
    /// latched `(base, count)` interval, so kernel sweeps over every frame
    /// stay O(1) per frame instead of materializing a frame list.
    pub fn frame_in_use(&self, pfn: Pfn) -> bool {
        self.active.is_some_and(|t| {
            let first = t.mem_addr.page().raw();
            let last =
                if t.nbytes == 0 { first } else { (t.mem_addr.raw() + t.nbytes - 1) >> PAGE_SHIFT };
            (first..=last).contains(&pfn.raw())
        })
    }

    /// If the active transfer has completed by `now`, performs the data
    /// movement between `mem` and `port`, frees the engine, and returns the
    /// finished transfer.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the memory side falls outside installed
    /// memory (the transfer is dropped and the engine freed — the hardware
    /// analog of a bus error).
    pub fn retire(
        &mut self,
        now: SimTime,
        mem: &mut PhysMemory,
        port: &mut dyn DevicePort,
    ) -> Result<Option<Transfer>, MemError> {
        let Some(t) = self.active else { return Ok(None) };
        if t.completes_at > now {
            return Ok(None);
        }
        self.active = None;
        match t.direction {
            Direction::MemToDev => {
                // Hand the device a borrow of memory itself: the bus moves
                // the bytes once, with no staging buffer.
                let data = mem.read(t.mem_addr, t.nbytes)?;
                port.dma_write_traced(t.dev_addr, data, t.started_at, t.completes_at);
            }
            Direction::DevToMem => {
                // The device fills the destination frames in place.
                let buf = mem.slice_mut(t.mem_addr, t.nbytes)?;
                port.dma_read(t.dev_addr, buf, t.completes_at);
            }
        }
        self.retired.incr();
        self.last_retired = Some(t);
        Ok(Some(t))
    }

    /// The most recently retired transfer, if any.
    pub fn last_retired(&self) -> Option<&Transfer> {
        self.last_retired.as_ref()
    }

    /// Accounts for `count` replayed repetitions of the last retired
    /// transfer without re-running start/retire. The replayed transfers
    /// are strides of the template: the caller moves the data (once — the
    /// payload is identical) and advances time; the engine only books the
    /// counters it would have booked had each transfer run individually.
    pub fn replay_retired(&mut self, count: u64, nbytes: u64) {
        self.starts.add(count);
        self.bytes.add(count * nbytes);
        self.retired.add(count);
    }

    /// Drops any in-flight transfer without moving data (used by fault
    /// recovery paths).
    pub fn abort(&mut self) -> Option<Transfer> {
        self.aborts.incr();
        self.active.take()
    }

    /// Engine statistics: starts, bytes, retirements, aborts.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new("dma");
        s.add("starts", self.starts.get());
        s.add("bytes", self.bytes.get());
        s.add("retired", self.retired.get());
        s.add("aborts", self.aborts.get());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoopbackPort;
    use shrimp_mem::PAGE_SIZE;

    fn engine() -> DmaEngine {
        DmaEngine::new(DmaTiming { start_overhead: SimDuration::from_us(4.0), bus_mb_per_s: 33.0 })
    }

    #[test]
    fn duration_includes_start_overhead() {
        let e = engine();
        let d = e.duration_for(33); // 1us of data
        assert_eq!(d, SimDuration::from_us(5.0));
    }

    #[test]
    fn busy_until_completion() {
        let mut e = engine();
        let done = e.start(Direction::MemToDev, PhysAddr::new(0), 0, 330, SimTime::ZERO).unwrap();
        assert!(e.is_busy(SimTime::ZERO));
        assert!(e.is_busy(done - SimDuration::from_nanos(1)));
        assert!(!e.is_busy(done));
        assert_eq!(
            e.start(Direction::MemToDev, PhysAddr::new(0), 0, 1, SimTime::ZERO),
            Err(DmaError::Busy)
        );
    }

    #[test]
    fn zero_length_rejected() {
        let mut e = engine();
        assert_eq!(
            e.start(Direction::MemToDev, PhysAddr::new(0), 0, 0, SimTime::ZERO),
            Err(DmaError::ZeroLength)
        );
    }

    #[test]
    fn remaining_bytes_interpolates() {
        let mut e = engine();
        let start = SimTime::from_nanos(0);
        let done = e.start(Direction::MemToDev, PhysAddr::new(0), 0, 1000, start).unwrap();
        assert_eq!(e.remaining_bytes(start), 1000);
        assert_eq!(e.remaining_bytes(done), 0);
        let mid = SimTime::from_nanos(done.as_nanos() / 2);
        let mid_remaining = e.remaining_bytes(mid);
        assert!(mid_remaining > 0 && mid_remaining < 1000, "mid = {mid_remaining}");
    }

    #[test]
    fn retire_moves_data_mem_to_dev() {
        let mut e = engine();
        let mut mem = PhysMemory::new(PAGE_SIZE);
        mem.write(PhysAddr::new(16), &[9, 8, 7]).unwrap();
        let mut port = LoopbackPort::new(32);
        let done = e.start(Direction::MemToDev, PhysAddr::new(16), 4, 3, SimTime::ZERO).unwrap();
        // Too early: nothing happens.
        assert!(e.retire(SimTime::ZERO, &mut mem, &mut port).unwrap().is_none());
        let t = e.retire(done, &mut mem, &mut port).unwrap().unwrap();
        assert_eq!(t.nbytes, 3);
        assert_eq!(&port.bytes()[4..7], &[9, 8, 7]);
        assert!(!e.is_busy(done));
    }

    #[test]
    fn retire_moves_data_dev_to_mem() {
        let mut e = engine();
        let mut mem = PhysMemory::new(PAGE_SIZE);
        let mut port = LoopbackPort::new(32);
        port.dma_write(0, &[1, 2, 3, 4], SimTime::ZERO);
        let done = e.start(Direction::DevToMem, PhysAddr::new(64), 0, 4, SimTime::ZERO).unwrap();
        e.retire(done, &mut mem, &mut port).unwrap().unwrap();
        assert_eq!(mem.read_vec(PhysAddr::new(64), 4).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn frames_in_registers_span_pages() {
        let mut e = engine();
        e.start(Direction::MemToDev, PhysAddr::new(PAGE_SIZE - 4), 0, 8, SimTime::ZERO).unwrap();
        assert_eq!(e.frames_in_registers(), vec![Pfn::new(0), Pfn::new(1)]);
        e.abort();
        assert!(e.frames_in_registers().is_empty());
    }

    #[test]
    fn frame_in_use_matches_register_list() {
        let mut e = engine();
        assert!(!e.frame_in_use(Pfn::new(0)), "idle engine names no frames");
        e.start(Direction::MemToDev, PhysAddr::new(PAGE_SIZE - 4), 0, 8, SimTime::ZERO).unwrap();
        for pfn in [Pfn::new(0), Pfn::new(1), Pfn::new(2)] {
            assert_eq!(e.frame_in_use(pfn), e.frames_in_registers().contains(&pfn));
        }
        e.abort();
        assert!(!e.frame_in_use(Pfn::new(0)));
    }

    #[test]
    fn abort_frees_engine() {
        let mut e = engine();
        e.start(Direction::MemToDev, PhysAddr::new(0), 0, 100, SimTime::ZERO).unwrap();
        let t = e.abort().unwrap();
        assert_eq!(t.nbytes, 100);
        assert!(!e.is_busy(SimTime::ZERO));
        assert!(e.start(Direction::MemToDev, PhysAddr::new(0), 0, 1, SimTime::ZERO).is_ok());
    }

    #[test]
    fn retire_out_of_range_frees_engine() {
        let mut e = engine();
        let mut mem = PhysMemory::new(PAGE_SIZE);
        let mut port = LoopbackPort::new(8);
        let done = e
            .start(Direction::MemToDev, PhysAddr::new(PAGE_SIZE - 1), 0, 8, SimTime::ZERO)
            .unwrap();
        assert!(e.retire(done, &mut mem, &mut port).is_err());
        assert!(e.active().is_none());
    }

    #[test]
    fn stats_accumulate() {
        let mut e = engine();
        let mut mem = PhysMemory::new(PAGE_SIZE);
        let mut port = LoopbackPort::new(8);
        let done = e.start(Direction::MemToDev, PhysAddr::new(0), 0, 4, SimTime::ZERO).unwrap();
        e.retire(done, &mut mem, &mut port).unwrap();
        assert_eq!(e.stats().get("starts"), 1);
        assert_eq!(e.stats().get("bytes"), 4);
        assert_eq!(e.stats().get("retired"), 1);
    }
}
