//! The traditional DMA engine the UDMA hardware extends (paper §2, Fig. 1).
//!
//! A classic controller: SOURCE/DESTINATION/COUNT registers, a control
//! trigger, and a state machine that streams data between main memory and a
//! single device port over the I/O bus. The engine is shared by:
//!
//! - the kernel-initiated **traditional DMA** baseline (`shrimp-os`
//!   syscalls), which is the comparison case throughout the paper, and
//! - the **UDMA controller** (`udma-core`), which loads the same registers
//!   from translated proxy addresses instead of from a kernel descriptor.
//!
//! Timing: a transfer occupies the engine for `start_overhead +
//! bytes/bus_bandwidth`. Data physically moves when the transfer is
//! [retired](DmaEngine::retire); progress is observable beforehand through
//! [`DmaEngine::remaining_bytes`], which is what the UDMA status word's
//! REMAINING-BYTES field reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod port;

pub use engine::{DmaEngine, DmaError, DmaTiming, Transfer};
pub use port::{DevicePort, LoopbackPort, RunTiming};

/// Transfer direction relative to main memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Memory is the source; the device is the destination.
    MemToDev,
    /// The device is the source; memory is the destination.
    DevToMem,
}
