//! The simulated operating system kernel for SHRIMP UDMA nodes.
//!
//! The paper's §6 lists everything the OS must do for UDMA — and it is
//! deliberately little. This crate implements all of it, plus the
//! traditional kernel-mediated DMA path used as the paper's baseline:
//!
//! - **Processes & scheduling** ([`process`], [`Node::context_switch`]):
//!   per-process page tables, round-robin switching, and the single
//!   context-switch STORE that maintains **invariant I1** (atomicity of the
//!   two-instruction initiation sequence).
//! - **Demand paging** ([`Node::handle_fault`]): zero-fill and swap-backed
//!   pages, plus on-demand creation of *memory proxy* mappings with the
//!   three §6 cases, maintaining **invariant I2** (a proxy mapping is valid
//!   only while the corresponding real mapping is).
//! - **Dirty-bit protocol** : writable proxy pages imply dirty real pages
//!   (**invariant I3**), maintained lazily through write-protection faults
//!   on proxy pages and re-protection when the pager cleans.
//! - **Page replacement** ([`pager`]): a second-chance clock that consults
//!   the UDMA hardware's registers/reference counts before evicting
//!   (**invariant I4**) — the cheap replacement for per-transfer pinning.
//! - **Traditional DMA syscalls** ([`syscall`]): the hundreds-of-
//!   instructions baseline — trap, translate, pin (or bounce-buffer copy),
//!   descriptor build, transfer, interrupt, unpin.
//! - **The user-level UDMA library** ([`userapi`]): the retry protocol the
//!   paper requires of applications ("the user process can deduce what
//!   happened and re-try its operation"), page-boundary splitting, and
//!   completion polling via the MATCH flag.
//!
//! # Example
//!
//! ```
//! use shrimp_devices::StreamSink;
//! use shrimp_machine::MachineConfig;
//! use shrimp_os::{Node, NodeConfig};
//!
//! let mut node = Node::new(NodeConfig::default(), StreamSink::new("sink"));
//! let pid = node.spawn();
//! node.mmap(pid, 0x10000, 4, true)?;
//! node.grant_device_proxy(pid, 0, 4, true)?;
//! node.write_user(pid, 0x10000.into(), b"message data")?;
//! let result = node.udma_send(pid, 0x10000.into(), 0, 0, 12)?;
//! assert_eq!(result.transfers, 1);
//! # Ok::<(), shrimp_os::Trap>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod error;
mod node;
pub mod pager;
pub mod process;
pub mod syscall;
pub mod userapi;

pub use driver::{Driver, Progress, Workload};
pub use error::Trap;
pub use node::{Node, NodeConfig};
pub use process::{PagerAccount, Pid, Process, VPage};
pub use syscall::{DmaStrategy, SyscallDmaResult};
pub use userapi::UdmaXferResult;
