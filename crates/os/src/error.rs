//! Kernel traps delivered to (or about) user processes.

use std::error::Error;
use std::fmt;

use shrimp_mem::VirtAddr;

use crate::Pid;

/// A fatal condition the kernel raises against a process — the simulation
/// analog of "a core dump" (§6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trap {
    /// Access to an address outside any mapped segment.
    SegFault {
        /// The offending process.
        pid: Pid,
        /// The faulting address.
        va: VirtAddr,
    },
    /// Write to a read-only segment (directly or via its proxy page).
    ReadOnly {
        /// The offending process.
        pid: Pid,
        /// The faulting address.
        va: VirtAddr,
    },
    /// Access to device proxy space the process was never granted.
    DeviceNotGranted {
        /// The offending process.
        pid: Pid,
        /// The faulting address.
        va: VirtAddr,
    },
    /// Operation referenced a nonexistent process.
    NoSuchProcess(Pid),
    /// The machine is out of memory and swap could not absorb the working
    /// set (every frame is pinned or in use by the UDMA hardware).
    OutOfMemory,
    /// The UDMA device reported a hard (non-retryable) error.
    DeviceError {
        /// Device-specific error bits from the status word.
        code: u16,
    },
    /// A transfer touched proxy space the basic device cannot serve
    /// (WRONG-SPACE: memory-to-memory or device-to-device).
    WrongSpace,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::SegFault { pid, va } => write!(f, "{pid}: segmentation fault at {va}"),
            Trap::ReadOnly { pid, va } => write!(f, "{pid}: write to read-only page at {va}"),
            Trap::DeviceNotGranted { pid, va } => {
                write!(f, "{pid}: device proxy access without grant at {va}")
            }
            Trap::NoSuchProcess(pid) => write!(f, "no such process: {pid}"),
            Trap::OutOfMemory => write!(f, "out of memory: all frames pinned or in use"),
            Trap::DeviceError { code } => write!(f, "device error {code:#x}"),
            Trap::WrongSpace => write!(f, "unsupported same-space transfer (WRONG-SPACE)"),
        }
    }
}

impl Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let t = Trap::SegFault { pid: Pid::new(3), va: VirtAddr::new(0x1000) };
        assert_eq!(t.to_string(), "pid3: segmentation fault at 0x1000");
        assert!(Trap::OutOfMemory.to_string().contains("out of memory"));
        assert!(Trap::DeviceError { code: 1 }.to_string().contains("0x1"));
    }
}
