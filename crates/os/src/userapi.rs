//! The user-level UDMA library: what an application links against.
//!
//! The paper requires applications to drive the hardware directly — two
//! references to initiate, explicit failure checking and retry ("the user
//! process can deduce what happened and re-try its operation", §6), and
//! completion polling by repeating the initiating LOAD (§5). This module
//! packages that protocol:
//!
//! - [`Node::udma_initiate`] — one raw two-instruction sequence, no retry,
//! - [`Node::udma_send`] / [`Node::udma_recv`] — whole-message transfers
//!   with page-boundary splitting ("a basic UDMA transfer cannot cross a
//!   page boundary", §4), retry on Inval/busy, and final completion wait.

use shrimp_devices::Device;
use shrimp_mem::{VirtAddr, DEV_PROXY_BASE, PAGE_SIZE};
use shrimp_sim::{MachineEventKind, SimDuration};
use udma_core::UdmaStatus;

use crate::process::Pid;
use crate::{Node, Trap};

/// Outcome of a user-level UDMA transfer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UdmaXferResult {
    /// Simulated time from library entry to completion of the last
    /// transfer.
    pub elapsed: SimDuration,
    /// Two-instruction sequences that had to be retried.
    pub retries: u64,
    /// Hardware transfers issued (≥ 1 per page boundary crossed).
    pub transfers: u64,
    /// Bytes moved.
    pub bytes: u64,
}

/// Retry bound: generous enough for any amount of queue back-pressure in
/// the experiments, small enough to catch livelock bugs.
const MAX_RETRIES_PER_CHUNK: u64 = 100_000;

impl<D: Device> Node<D> {
    /// One raw two-instruction initiation attempt: `STORE nbytes TO
    /// dest_va; LOAD status FROM src_va`. No retry, no waiting — the
    /// returned status is exactly what the hardware said.
    ///
    /// # Errors
    ///
    /// Any paging [`Trap`] from either reference.
    pub fn udma_initiate(
        &mut self,
        pid: Pid,
        dest_va: VirtAddr,
        src_va: VirtAddr,
        nbytes: u64,
    ) -> Result<UdmaStatus, Trap> {
        let word = self.user_store_load_pair(pid, dest_va, nbytes as i64, src_va)?;
        Ok(UdmaStatus::unpack(word))
    }

    /// Sends `nbytes` from the process's memory at `src_va` to the device
    /// at proxy page `dev_page` + `dev_off` — the full user-level protocol.
    ///
    /// # Errors
    ///
    /// - paging [`Trap`]s from the references,
    /// - [`Trap::WrongSpace`] / [`Trap::DeviceError`] for hard status
    ///   errors.
    pub fn udma_send(
        &mut self,
        pid: Pid,
        src_va: VirtAddr,
        dev_page: u64,
        dev_off: u64,
        nbytes: u64,
    ) -> Result<UdmaXferResult, Trap> {
        self.udma_transfer(pid, src_va, dev_page, dev_off, nbytes, true)
    }

    /// Receives `nbytes` from the device at proxy page `dev_page` +
    /// `dev_off` into the process's memory at `dst_va`.
    ///
    /// # Errors
    ///
    /// As for [`Node::udma_send`]; additionally the I3 protocol may raise
    /// [`Trap::ReadOnly`] when the destination segment is read-only.
    pub fn udma_recv(
        &mut self,
        pid: Pid,
        dst_va: VirtAddr,
        dev_page: u64,
        dev_off: u64,
        nbytes: u64,
    ) -> Result<UdmaXferResult, Trap> {
        self.udma_transfer(pid, dst_va, dev_page, dev_off, nbytes, false)
    }

    fn udma_transfer(
        &mut self,
        pid: Pid,
        mem_va: VirtAddr,
        dev_page: u64,
        dev_off: u64,
        nbytes: u64,
        to_device: bool,
    ) -> Result<UdmaXferResult, Trap> {
        self.ensure_current(pid)?;
        let t0 = self.machine.now();
        let per_message = self.machine.cost().udma_per_message_sw;
        self.machine.advance(per_message);

        let layout = self.machine.layout();
        let mut result = UdmaXferResult { bytes: nbytes, ..UdmaXferResult::default() };
        let mut moved = 0u64;
        let mut last_src_va = None;

        while moved < nbytes {
            // Split at both the memory page boundary and the device proxy
            // page boundary (§4: no transfer crosses a page boundary in
            // either space). The user-level check §8 charges for.
            let mem_cur = mem_va + moved;
            let dev_cur_off = dev_off + moved;
            let dev_cur_page = dev_page + (dev_cur_off >> shrimp_mem::PAGE_SHIFT);
            let dev_in_page = dev_cur_off & shrimp_mem::PAGE_MASK;
            let chunk =
                (nbytes - moved).min(mem_cur.bytes_to_page_end()).min(PAGE_SIZE - dev_in_page);
            let check = self.machine.cost().udma_user_check;
            self.machine.advance(check);

            let vdev = VirtAddr::new(DEV_PROXY_BASE + dev_cur_page * PAGE_SIZE + dev_in_page);
            let vproxy =
                layout.proxy_of_virt(mem_cur).map_err(|_| Trap::SegFault { pid, va: mem_cur })?;
            // STORE names the destination; LOAD names the source.
            let (dest_va, src_va) = if to_device { (vdev, vproxy) } else { (vproxy, vdev) };

            let mut retries = 0;
            loop {
                let status = self.udma_initiate(pid, dest_va, src_va, chunk)?;
                if status.started() {
                    break;
                }
                if status.wrong_space {
                    return Err(Trap::WrongSpace);
                }
                if status.device_error != 0 {
                    return Err(Trap::DeviceError { code: status.device_error });
                }
                // Busy or invalidated: wait for the hardware to drain, then
                // re-issue the full two-instruction sequence.
                retries += 1;
                result.retries += 1;
                if retries > MAX_RETRIES_PER_CHUNK {
                    panic!("udma_transfer livelock: {retries} retries (kernel/hardware bug)");
                }
                let drained = self.machine.udma_drained_at();
                self.machine.advance_to(drained);
            }
            result.transfers += 1;
            last_src_va = Some(src_va);
            moved += chunk;
        }

        // Wait for the final transfer: repeat its LOAD until MATCH clears
        // ("to check for completion... repeat the LOAD instruction that it
        // used to start the transfer", §5).
        if let Some(src_va) = last_src_va {
            loop {
                let status = UdmaStatus::unpack(self.user_load(pid, src_va)?);
                if !status.matches {
                    break;
                }
                let drained = self.machine.udma_drained_at();
                self.machine.advance_to(drained);
            }
        }

        result.elapsed = self.machine.now() - t0;
        self.machine.record_event(MachineEventKind::MsgDone {
            bytes: nbytes,
            transfers: result.transfers,
            retries: result.retries,
        });
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeConfig;
    use shrimp_devices::{StreamSink, StreamSource};
    use shrimp_machine::MachineConfig;

    fn sink_node() -> Node<StreamSink> {
        let config = NodeConfig {
            machine: MachineConfig { mem_bytes: 128 * PAGE_SIZE, ..MachineConfig::default() },
            user_frames: None,
        };
        Node::new(config, StreamSink::new("sink"))
    }

    #[test]
    fn single_page_send() {
        let mut n = sink_node();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 1, true).unwrap();
        n.grant_device_proxy(pid, 0, 1, true).unwrap();
        n.write_user(pid, VirtAddr::new(0x10000), b"one chunk").unwrap();
        let r = n.udma_send(pid, VirtAddr::new(0x10000), 0, 0, 9).unwrap();
        assert_eq!(r.transfers, 1);
        assert_eq!(r.retries, 0);
        assert_eq!(n.machine().device().writes()[0].1, b"one chunk");
    }

    #[test]
    fn send_splits_at_page_boundaries() {
        let mut n = sink_node();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 3, true).unwrap();
        n.grant_device_proxy(pid, 0, 4, true).unwrap();
        let data: Vec<u8> = (0..PAGE_SIZE as usize * 2).map(|i| (i % 251) as u8).collect();
        // Source starts mid-page: 2 pages of data from offset 0x80 spans 3
        // source pages; aligned destination spans 2 device pages -> at
        // least 3 transfers ("two transfers per page are needed" when
        // offsets differ).
        n.write_user(pid, VirtAddr::new(0x10080), &data).unwrap();
        let r = n.udma_send(pid, VirtAddr::new(0x10080), 0, 0, data.len() as u64).unwrap();
        assert!(r.transfers >= 3, "got {} transfers", r.transfers);
        let received: Vec<u8> =
            n.machine().device().writes().iter().flat_map(|(_, d, _)| d.clone()).collect();
        assert_eq!(received, data);
    }

    #[test]
    fn aligned_multi_page_send_is_two_refs_per_page() {
        let mut n = sink_node();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 4, true).unwrap();
        n.grant_device_proxy(pid, 0, 4, true).unwrap();
        let data = vec![0x5au8; 4 * PAGE_SIZE as usize];
        n.write_user(pid, VirtAddr::new(0x10000), &data).unwrap();
        let r = n.udma_send(pid, VirtAddr::new(0x10000), 0, 0, data.len() as u64).unwrap();
        assert_eq!(r.transfers, 4, "same page offsets: one transfer per page");
    }

    #[test]
    fn busy_hardware_forces_retries_on_basic_device() {
        let mut n = sink_node();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 2, true).unwrap();
        n.grant_device_proxy(pid, 0, 2, true).unwrap();
        n.write_user(pid, VirtAddr::new(0x10000), &vec![1u8; 2 * PAGE_SIZE as usize]).unwrap();
        // Two pages through the basic (no-queue) device: the second
        // initiation lands while the first transfer is in flight.
        let r = n.udma_send(pid, VirtAddr::new(0x10000), 0, 0, 2 * PAGE_SIZE).unwrap();
        assert_eq!(r.transfers, 2);
        assert!(r.retries >= 1, "second page should hit the busy device");
    }

    #[test]
    fn recv_from_device_fills_memory() {
        let config = NodeConfig {
            machine: MachineConfig { mem_bytes: 128 * PAGE_SIZE, ..MachineConfig::default() },
            user_frames: None,
        };
        let mut n = Node::new(config, StreamSource::new("src", 0x3c));
        let pid = n.spawn();
        n.mmap(pid, 0x20000, 1, true).unwrap();
        n.grant_device_proxy(pid, 2, 1, true).unwrap();
        let r = n.udma_recv(pid, VirtAddr::new(0x20000), 2, 0x10, 64).unwrap();
        assert_eq!(r.transfers, 1);
        let got = n.read_user(pid, VirtAddr::new(0x20000), 64).unwrap();
        let src = StreamSource::new("check", 0x3c);
        let dev_base = 2 * PAGE_SIZE + 0x10;
        for (i, &b) in got.iter().enumerate() {
            assert_eq!(b, src.expected_byte(dev_base + i as u64), "byte {i}");
        }
        // I3 held throughout: the destination page ended up dirty.
        n.check_invariants().unwrap();
        let proc = n.process(pid).unwrap();
        assert!(proc.pt.get(VirtAddr::new(0x20000).page()).unwrap().is_dirty());
    }

    #[test]
    fn recv_into_readonly_segment_traps() {
        let mut n = sink_node();
        let pid = n.spawn();
        n.mmap(pid, 0x20000, 1, false).unwrap();
        n.grant_device_proxy(pid, 0, 1, true).unwrap();
        let err = n.udma_recv(pid, VirtAddr::new(0x20000), 0, 0, 16).unwrap_err();
        assert!(matches!(err, Trap::ReadOnly { .. }));
    }

    #[test]
    fn device_rejection_surfaces_as_device_error() {
        let mut n = sink_node();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 1, true).unwrap();
        n.grant_device_proxy(pid, 0, 1, true).unwrap();
        n.write_user(pid, VirtAddr::new(0x10000), &[1; 8]).unwrap();
        n.machine_mut().device_mut().reject_all(true);
        let err = n.udma_send(pid, VirtAddr::new(0x10000), 0, 0, 8).unwrap_err();
        assert!(matches!(err, Trap::DeviceError { .. }));
    }

    #[test]
    fn elapsed_time_matches_cost_model_for_one_page() {
        let mut n = sink_node();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 1, true).unwrap();
        n.grant_device_proxy(pid, 0, 1, true).unwrap();
        n.write_user(pid, VirtAddr::new(0x10000), &vec![7u8; PAGE_SIZE as usize]).unwrap();
        // Warm everything: mappings, proxy pages, dirty bits.
        let _ = n.udma_send(pid, VirtAddr::new(0x10000), 0, 0, PAGE_SIZE).unwrap();
        // Steady-state second send.
        let r = n.udma_send(pid, VirtAddr::new(0x10000), 0, 0, PAGE_SIZE).unwrap();
        let c = n.machine().cost().clone();
        let floor = c.udma_per_message_sw
            + c.udma_user_check
            + c.proxy_store
            + c.proxy_load
            + c.dma_start
            + c.bus_transfer(PAGE_SIZE);
        assert!(
            r.elapsed >= floor && r.elapsed.as_nanos() < floor.as_nanos() * 12 / 10,
            "elapsed {} vs floor {}",
            r.elapsed,
            floor
        );
    }
}
