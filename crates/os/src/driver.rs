//! Multiprogramming driver: round-robin execution of [`Workload`]s.
//!
//! The simulation cannot preempt Rust code, so multiprogramming is modelled
//! at operation granularity: each workload exposes small steps, and the
//! [`Driver`] rotates between workloads every `quantum_steps` steps. When
//! the next workload belongs to a different process, its first operation
//! triggers a real context switch — including the I1 Inval store — so
//! interleavings that split a two-instruction initiation sequence occur
//! naturally (and deterministically).

use shrimp_devices::Device;

use crate::{Node, Trap};

/// What a workload step reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Progress {
    /// More steps to run.
    Ready,
    /// Finished; do not schedule again.
    Done,
}

/// One schedulable activity (usually: one process's program).
pub trait Workload<D: Device> {
    /// Runs one step against the node.
    ///
    /// # Errors
    ///
    /// Any [`Trap`] the step's operations raise; the driver aborts on the
    /// first trap.
    fn step(&mut self, node: &mut Node<D>) -> Result<Progress, Trap>;
}

impl<D: Device, F> Workload<D> for F
where
    F: FnMut(&mut Node<D>) -> Result<Progress, Trap>,
{
    fn step(&mut self, node: &mut Node<D>) -> Result<Progress, Trap> {
        self(node)
    }
}

/// Round-robin scheduler over a set of workloads.
pub struct Driver<'a, D: Device> {
    workloads: Vec<Box<dyn Workload<D> + 'a>>,
    quantum_steps: usize,
}

impl<'a, D: Device> Driver<'a, D> {
    /// A driver that rotates after `quantum_steps` steps of each workload
    /// (1 = interleave every operation, the harshest schedule for I1).
    ///
    /// # Panics
    ///
    /// Panics if `quantum_steps` is zero.
    pub fn new(quantum_steps: usize) -> Self {
        assert!(quantum_steps > 0, "quantum must be positive");
        Driver { workloads: Vec::new(), quantum_steps }
    }

    /// Adds a workload.
    pub fn add(&mut self, w: impl Workload<D> + 'a) -> &mut Self {
        self.workloads.push(Box::new(w));
        self
    }

    /// Runs all workloads to completion; returns total steps executed.
    ///
    /// # Errors
    ///
    /// The first [`Trap`] any workload raises.
    ///
    /// # Panics
    ///
    /// Panics if the workloads livelock (exceed an internal step budget).
    /// Note that a quantum of 1 over workloads that each need two
    /// consecutive references *will* livelock a UDMA initiation pair: the
    /// other workload's context switch fires the I1 Inval between every
    /// STORE and LOAD. Use [`Driver::run_bounded`] to observe that
    /// behaviour without panicking.
    pub fn run(&mut self, node: &mut Node<D>) -> Result<u64, Trap> {
        match self.run_bounded(node, 100_000_000)? {
            Some(steps) => Ok(steps),
            None => panic!("driver livelock: step budget exhausted"),
        }
    }

    /// Runs until every workload is done or `max_steps` total steps have
    /// executed. Returns `Some(steps)` on completion, `None` when the
    /// budget ran out first.
    ///
    /// # Errors
    ///
    /// The first [`Trap`] any workload raises.
    pub fn run_bounded(&mut self, node: &mut Node<D>, max_steps: u64) -> Result<Option<u64>, Trap> {
        let mut live: Vec<bool> = vec![true; self.workloads.len()];
        let mut steps = 0u64;
        while live.iter().any(|&l| l) {
            for (i, workload) in self.workloads.iter_mut().enumerate() {
                if !live[i] {
                    continue;
                }
                for _ in 0..self.quantum_steps {
                    if steps >= max_steps {
                        return Ok(None);
                    }
                    steps += 1;
                    match workload.step(node)? {
                        Progress::Ready => {}
                        Progress::Done => {
                            live[i] = false;
                            break;
                        }
                    }
                }
            }
        }
        Ok(Some(steps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeConfig, Pid};
    use shrimp_devices::StreamSink;
    use shrimp_mem::VirtAddr;

    fn node() -> Node<StreamSink> {
        Node::new(NodeConfig::default(), StreamSink::new("sink"))
    }

    /// A workload that stores an incrementing counter `n` times.
    struct CounterLoop {
        pid: Pid,
        remaining: u32,
    }

    impl Workload<StreamSink> for CounterLoop {
        fn step(&mut self, node: &mut Node<StreamSink>) -> Result<Progress, Trap> {
            node.user_store(self.pid, VirtAddr::new(0x10000), i64::from(self.remaining))?;
            self.remaining -= 1;
            Ok(if self.remaining == 0 { Progress::Done } else { Progress::Ready })
        }
    }

    #[test]
    fn runs_workloads_to_completion() {
        let mut n = node();
        let a = n.spawn();
        let b = n.spawn();
        n.mmap(a, 0x10000, 1, true).unwrap();
        n.mmap(b, 0x10000, 1, true).unwrap();
        let mut driver = Driver::new(1);
        driver.add(CounterLoop { pid: a, remaining: 5 });
        driver.add(CounterLoop { pid: b, remaining: 3 });
        let steps = driver.run(&mut n).unwrap();
        assert_eq!(steps, 8);
        // Interleaving at quantum 1 forces switches between every step of
        // different pids.
        assert!(n.stats().get("context_switches") >= 6);
    }

    #[test]
    fn closure_workloads_work() {
        let mut n = node();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 1, true).unwrap();
        let mut count = 0;
        let mut driver = Driver::new(2);
        driver.add(move |node: &mut Node<StreamSink>| {
            node.user_store(pid, VirtAddr::new(0x10000), 1)?;
            count += 1;
            Ok(if count == 4 { Progress::Done } else { Progress::Ready })
        });
        assert_eq!(driver.run(&mut n).unwrap(), 4);
    }

    #[test]
    fn larger_quantum_reduces_switches() {
        let run_with_quantum = |q: usize| {
            let mut n = node();
            let a = n.spawn();
            let b = n.spawn();
            n.mmap(a, 0x10000, 1, true).unwrap();
            n.mmap(b, 0x10000, 1, true).unwrap();
            let mut driver = Driver::new(q);
            driver.add(CounterLoop { pid: a, remaining: 8 });
            driver.add(CounterLoop { pid: b, remaining: 8 });
            driver.run(&mut n).unwrap();
            n.stats().get("context_switches")
        };
        assert!(run_with_quantum(1) > run_with_quantum(8));
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn zero_quantum_rejected() {
        let _: Driver<'_, StreamSink> = Driver::new(0);
    }
}
