//! Processes and their virtual-memory metadata.

use std::collections::BTreeMap;
use std::fmt;

use shrimp_mem::{Pfn, SwapSlot, Vpn};
use shrimp_mmu::PageTable;

/// Process identifier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(u32);

impl Pid {
    /// Wraps a raw pid.
    pub const fn new(raw: u32) -> Self {
        Pid(raw)
    }

    /// The raw pid.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Kernel-side state of one virtual memory page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VPage {
    /// Declared by `mmap` but never touched: zero-fill on demand.
    Untouched {
        /// Whether the segment permits writes.
        writable: bool,
    },
    /// Resident in the given frame.
    Resident {
        /// The backing frame.
        pfn: Pfn,
        /// Whether the segment permits writes.
        writable: bool,
    },
    /// Evicted to backing store.
    Swapped {
        /// Where the contents live.
        slot: SwapSlot,
        /// Whether the segment permits writes.
        writable: bool,
    },
}

impl VPage {
    /// Whether the segment permits writes (independent of residency).
    pub fn writable(&self) -> bool {
        match *self {
            VPage::Untouched { writable }
            | VPage::Resident { writable, .. }
            | VPage::Swapped { writable, .. } => writable,
        }
    }

    /// The resident frame, if any.
    pub fn pfn(&self) -> Option<Pfn> {
        match *self {
            VPage::Resident { pfn, .. } => Some(pfn),
            _ => None,
        }
    }
}

/// Per-process pager accounting: who demanded frames, and who paid for
/// the pressure. Under multi-tenant churn the requester and the victim
/// of an eviction are usually *different* processes — these counters
/// make that visible per process, where the kernel-wide `StatSet` only
/// shows node totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PagerAccount {
    /// Frames demand-allocated on this process's behalf (zero-fill
    /// faults and swap-ins).
    pub demand_allocs: u64,
    /// This process's resident pages reclaimed by the second-chance
    /// clock (charged to the victim, not the requester).
    pub evictions: u64,
    /// Dirty pages of this process written to backing store on eviction.
    pub page_outs: u64,
}

/// A grant of device proxy pages to a process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceGrant {
    /// First device proxy page granted.
    pub first_page: u64,
    /// Number of pages granted.
    pub pages: u64,
    /// Whether the grant permits naming the device as a *destination*
    /// (read-only grants can only source transfers).
    pub writable: bool,
}

/// One simulated process.
#[derive(Debug, Default)]
pub struct Process {
    /// The process id.
    pub pid: Pid,
    /// Hardware page table the MMU walks for this process.
    pub pt: PageTable,
    /// Kernel bookkeeping for every declared virtual page.
    pub vpages: BTreeMap<Vpn, VPage>,
    /// Device proxy grants.
    pub grants: Vec<DeviceGrant>,
    /// Pager accounting (demand allocations, evictions, page-outs).
    pub pager: PagerAccount,
}

impl Process {
    /// A fresh process with an empty address space.
    pub fn new(pid: Pid) -> Self {
        Process { pid, ..Process::default() }
    }

    /// The grant covering device proxy page `dev_page`, if any.
    pub fn grant_for(&self, dev_page: u64) -> Option<&DeviceGrant> {
        self.grants.iter().find(|g| (g.first_page..g.first_page + g.pages).contains(&dev_page))
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.vpages.values().filter(|v| matches!(v, VPage::Resident { .. })).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_display() {
        assert_eq!(Pid::new(7).to_string(), "pid7");
    }

    #[test]
    fn vpage_accessors() {
        let p = VPage::Resident { pfn: Pfn::new(3), writable: true };
        assert!(p.writable());
        assert_eq!(p.pfn(), Some(Pfn::new(3)));
        assert_eq!(VPage::Untouched { writable: false }.pfn(), None);
    }

    #[test]
    fn grant_lookup() {
        let mut p = Process::new(Pid::new(1));
        p.grants.push(DeviceGrant { first_page: 4, pages: 2, writable: true });
        assert!(p.grant_for(4).is_some());
        assert!(p.grant_for(5).is_some());
        assert!(p.grant_for(6).is_none());
        assert!(p.grant_for(3).is_none());
    }

    #[test]
    fn resident_count() {
        let mut p = Process::new(Pid::new(1));
        p.vpages.insert(Vpn::new(1), VPage::Untouched { writable: true });
        p.vpages.insert(Vpn::new(2), VPage::Resident { pfn: Pfn::new(0), writable: true });
        assert_eq!(p.resident_pages(), 1);
    }
}
