//! The traditional, kernel-mediated DMA path — the paper's baseline (§2).
//!
//! Every transfer pays the full §2 sequence: a system call; per-page
//! virtual-to-physical translation, permission verification and pinning (or
//! copies through a pre-pinned bounce buffer); descriptor construction; the
//! transfer itself; and completion-interrupt handling with unpinning. The
//! `t2_init_cost` and `t1_hippi` benches measure exactly this path against
//! the two-reference UDMA sequence.

use shrimp_devices::Device;
use shrimp_dma::Direction;
use shrimp_mem::{Pfn, VirtAddr};
use shrimp_mmu::{AccessKind, Mode};
use shrimp_sim::SimDuration;

use crate::process::Pid;
use crate::{Node, Trap};

/// How the kernel makes user pages safe for DMA.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DmaStrategy {
    /// Pin the user's own pages for the duration of the transfer.
    #[default]
    PinPages,
    /// Copy through a reserved, permanently pinned kernel buffer ("this
    /// method may require copying data between memory in user address
    /// space and the reserved, pinned DMA memory buffers", §2).
    BounceBuffer,
}

/// Outcome of a kernel DMA syscall.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyscallDmaResult {
    /// Wall-clock (simulated) time from trap to return.
    pub elapsed: SimDuration,
    /// Pages the transfer spanned.
    pub pages: u64,
    /// Bytes moved.
    pub bytes: u64,
}

impl<D: Device> Node<D> {
    /// `write(device)` via traditional DMA: memory → device.
    ///
    /// # Errors
    ///
    /// [`Trap::SegFault`]/[`Trap::ReadOnly`] on bad buffers, or any paging
    /// trap.
    pub fn sys_dma_to_device(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        dev_addr: u64,
        nbytes: u64,
        strategy: DmaStrategy,
    ) -> Result<SyscallDmaResult, Trap> {
        self.sys_dma(pid, va, dev_addr, nbytes, strategy, Direction::MemToDev)
    }

    /// `read(device)` via traditional DMA: device → memory.
    ///
    /// # Errors
    ///
    /// [`Trap::SegFault`]/[`Trap::ReadOnly`] on bad buffers, or any paging
    /// trap.
    pub fn sys_dma_from_device(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        dev_addr: u64,
        nbytes: u64,
        strategy: DmaStrategy,
    ) -> Result<SyscallDmaResult, Trap> {
        self.sys_dma(pid, va, dev_addr, nbytes, strategy, Direction::DevToMem)
    }

    fn sys_dma(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        dev_addr: u64,
        nbytes: u64,
        strategy: DmaStrategy,
        direction: Direction,
    ) -> Result<SyscallDmaResult, Trap> {
        self.ensure_current(pid)?;
        let t0 = self.machine.now();
        // Step 1: the system call itself.
        let c = self.machine.cost().clone();
        self.machine.advance(c.syscall);
        self.stats.bump("dma_syscalls");

        if nbytes == 0 {
            return Ok(SyscallDmaResult { elapsed: self.machine.now() - t0, pages: 0, bytes: 0 });
        }

        // Step 2: translate, verify permission, pin.
        let first_vpn = va.page().raw();
        let last_vpn = (va.raw() + nbytes - 1) >> shrimp_mem::PAGE_SHIFT;
        let pages = last_vpn - first_vpn + 1;

        let mut pinned: Vec<Pfn> = Vec::new();
        for vpn_raw in first_vpn..=last_vpn {
            let vpn = shrimp_mem::Vpn::new(vpn_raw);
            // Permission check against the segment.
            let writable = self
                .procs
                .get(&pid)
                .ok_or(Trap::NoSuchProcess(pid))?
                .vpages
                .get(&vpn)
                .ok_or(Trap::SegFault { pid, va: vpn.base() })?
                .writable();
            if direction == Direction::DevToMem && !writable {
                // Roll back pins before trapping.
                for pfn in pinned {
                    self.unpin_frame(pfn);
                }
                return Err(Trap::ReadOnly { pid, va: vpn.base() });
            }
            let pfn = self.ensure_resident(pid, vpn)?;
            if strategy == DmaStrategy::PinPages {
                self.pin_frame(pfn);
                pinned.push(pfn);
            }
            self.machine.advance(c.pin_page);
            // Incoming DMA dirties the page; traditional kernels know this
            // and mark it (§6: "in traditional DMA, the kernel knows about
            // all DMA transfers, so it can mark the appropriate pages").
            if direction == Direction::DevToMem {
                let proc = self.procs.get_mut(&pid).expect("validated above");
                proc.pt.set_flags(vpn, shrimp_mmu::PteFlags::DIRTY);
            }
        }

        // Step 3: build the descriptor and run the transfer, page chunk by
        // page chunk (physical pages are discontiguous).
        self.machine.advance(c.build_descriptor);
        let mut moved = 0u64;
        while moved < nbytes {
            let cur = va + moved;
            let chunk = cur.bytes_to_page_end().min(nbytes - moved);
            let access = match direction {
                Direction::MemToDev => AccessKind::Read,
                Direction::DevToMem => AccessKind::Write,
            };
            let proc = self.procs.get_mut(&pid).expect("validated above");
            let (pa, _) = self
                .machine
                .translate(&mut proc.pt, cur, access, Mode::Kernel)
                .map_err(|_| Trap::SegFault { pid, va: cur })?;
            match strategy {
                DmaStrategy::PinPages => {
                    self.machine.kernel_dma(direction, pa, dev_addr + moved, chunk);
                }
                DmaStrategy::BounceBuffer => {
                    // Frame 0 is the kernel's permanently pinned buffer.
                    let bounce = shrimp_mem::PhysAddr::new(0);
                    let copy = c.kernel_copy(chunk);
                    match direction {
                        Direction::MemToDev => {
                            self.machine.advance(copy);
                            self.machine
                                .mem_mut()
                                .copy_within(pa, bounce, chunk)
                                .expect("bounce copy in range");
                            self.machine.kernel_dma(direction, bounce, dev_addr + moved, chunk);
                        }
                        Direction::DevToMem => {
                            self.machine.kernel_dma(direction, bounce, dev_addr + moved, chunk);
                            self.machine.advance(copy);
                            self.machine
                                .mem_mut()
                                .copy_within(bounce, pa, chunk)
                                .expect("bounce copy in range");
                        }
                    }
                }
            }
            moved += chunk;
        }

        // Step 4: completion interrupt, unpin, reschedule.
        self.machine.advance(c.syscall / 2); // interrupt entry/exit
        for pfn in pinned {
            self.unpin_frame(pfn);
            self.machine.advance(c.unpin_page);
        }
        self.stats.add("dma_syscall_bytes", nbytes);

        Ok(SyscallDmaResult { elapsed: self.machine.now() - t0, pages, bytes: nbytes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeConfig;
    use shrimp_devices::StreamSink;
    use shrimp_machine::MachineConfig;
    use shrimp_mem::PAGE_SIZE;

    fn node() -> Node<StreamSink> {
        let config = NodeConfig {
            machine: MachineConfig { mem_bytes: 128 * PAGE_SIZE, ..MachineConfig::default() },
            user_frames: None,
        };
        Node::new(config, StreamSink::new("sink"))
    }

    #[test]
    fn pinned_dma_delivers_data() {
        let mut n = node();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 2, true).unwrap();
        n.write_user(pid, VirtAddr::new(0x10000), b"kernel dma payload").unwrap();
        let r =
            n.sys_dma_to_device(pid, VirtAddr::new(0x10000), 0, 18, DmaStrategy::PinPages).unwrap();
        assert_eq!(r.bytes, 18);
        assert_eq!(r.pages, 1);
        assert_eq!(n.machine().device().writes()[0].1, b"kernel dma payload");
        // Pins are released after completion.
        assert_eq!(n.stats().get("pins"), n.stats().get("unpins"));
    }

    #[test]
    fn bounce_buffer_dma_delivers_data() {
        let mut n = node();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 1, true).unwrap();
        n.write_user(pid, VirtAddr::new(0x10000), b"bounced").unwrap();
        let r = n
            .sys_dma_to_device(pid, VirtAddr::new(0x10000), 8, 7, DmaStrategy::BounceBuffer)
            .unwrap();
        assert_eq!(r.bytes, 7);
        assert_eq!(n.machine().device().writes()[0].0, 8);
        assert_eq!(n.machine().device().writes()[0].1, b"bounced");
        assert_eq!(n.stats().get("pins"), 0, "bounce strategy pins nothing");
    }

    #[test]
    fn syscall_dma_costs_dwarf_udma_initiation() {
        let mut n = node();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 1, true).unwrap();
        n.write_user(pid, VirtAddr::new(0x10000), &[1; 64]).unwrap();
        let r =
            n.sys_dma_to_device(pid, VirtAddr::new(0x10000), 0, 64, DmaStrategy::PinPages).unwrap();
        let udma_init = n.machine().cost().udma_initiation();
        assert!(
            r.elapsed > udma_init * 5,
            "syscall path {} must dwarf the 2-reference sequence {}",
            r.elapsed,
            udma_init
        );
    }

    #[test]
    fn multi_page_transfer_spans_pages() {
        let mut n = node();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 3, true).unwrap();
        let data: Vec<u8> = (0..2 * PAGE_SIZE + 100).map(|i| i as u8).collect();
        n.write_user(pid, VirtAddr::new(0x10000), &data).unwrap();
        let r = n
            .sys_dma_to_device(
                pid,
                VirtAddr::new(0x10000),
                0,
                data.len() as u64,
                DmaStrategy::PinPages,
            )
            .unwrap();
        assert_eq!(r.pages, 3);
        let received: Vec<u8> =
            n.machine().device().writes().iter().flat_map(|(_, d, _)| d.clone()).collect();
        assert_eq!(received, data);
    }

    #[test]
    fn dma_from_device_marks_pages_dirty() {
        let mut n = node();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 1, true).unwrap();
        let _ = n.user_load(pid, VirtAddr::new(0x10000)).unwrap(); // clean page
        n.sys_dma_from_device(pid, VirtAddr::new(0x10000), 0, 32, DmaStrategy::PinPages).unwrap();
        let proc = n.process(pid).unwrap();
        assert!(proc.pt.get(VirtAddr::new(0x10000).page()).unwrap().is_dirty());
        n.check_invariants().unwrap();
    }

    #[test]
    fn dma_into_readonly_buffer_traps() {
        let mut n = node();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 1, false).unwrap();
        let err = n
            .sys_dma_from_device(pid, VirtAddr::new(0x10000), 0, 16, DmaStrategy::PinPages)
            .unwrap_err();
        assert!(matches!(err, Trap::ReadOnly { .. }));
        assert_eq!(n.stats().get("pins"), n.stats().get("unpins"), "pins rolled back");
    }

    #[test]
    fn unmapped_buffer_traps() {
        let mut n = node();
        let pid = n.spawn();
        let err = n
            .sys_dma_to_device(pid, VirtAddr::new(0x10000), 0, 16, DmaStrategy::PinPages)
            .unwrap_err();
        assert!(matches!(err, Trap::SegFault { .. }));
    }

    #[test]
    fn zero_byte_transfer_is_trivial() {
        let mut n = node();
        let pid = n.spawn();
        let r =
            n.sys_dma_to_device(pid, VirtAddr::new(0x10000), 0, 0, DmaStrategy::PinPages).unwrap();
        assert_eq!(r.pages, 0);
    }
}
