//! [`Node`]: one machine plus its kernel — process management, demand
//! paging, proxy-mapping faults and the UDMA invariants.

use std::collections::{BTreeMap, VecDeque};

use shrimp_devices::Device;
use shrimp_machine::{Machine, MachineConfig};
use shrimp_mem::{BackingStore, FrameAllocator, Pfn, Region, SwapSlot, VirtAddr, Vpn, PAGE_SIZE};
use shrimp_mmu::{Fault, Mode, Pte, PteFlags};
use shrimp_sim::MachineEventKind;
use shrimp_sim::StatSet;

use crate::process::{DeviceGrant, Pid, Process, VPage};
use crate::Trap;

/// Node-level configuration.
#[derive(Clone, Debug, Default)]
pub struct NodeConfig {
    /// Hardware configuration.
    pub machine: MachineConfig,
    /// Cap on page frames available to user paging (`None` = all frames
    /// minus the kernel-reserved frame 0). Lowering this forces memory
    /// pressure for the invariant and pinning experiments.
    pub user_frames: Option<u64>,
}

/// A complete simulated node: the machine hardware plus the kernel state
/// that manages it.
#[derive(Debug)]
pub struct Node<D> {
    pub(crate) machine: Machine<D>,
    pub(crate) frames: FrameAllocator,
    pub(crate) swap: BackingStore,
    pub(crate) procs: BTreeMap<Pid, Process>,
    next_pid: u32,
    pub(crate) current: Option<Pid>,
    /// Which (process, virtual page) owns each allocated frame.
    pub(crate) frame_owner: BTreeMap<Pfn, (Pid, Vpn)>,
    /// Second-chance clock queue over resident frames.
    pub(crate) resident_fifo: VecDeque<Pfn>,
    /// Pin counts for the traditional DMA baseline.
    pub(crate) pinned: BTreeMap<Pfn, u32>,
    /// Backing-store slot assigned to each (process, page), if any.
    pub(crate) swap_slots: BTreeMap<(Pid, Vpn), SwapSlot>,
    pub(crate) stats: StatSet,
}

impl<D: Device> Node<D> {
    /// Boots a node: builds the machine and an empty process table.
    pub fn new(config: NodeConfig, device: D) -> Self {
        let machine = Machine::new(config.machine.clone(), device);
        let total = machine.mem().frame_count();
        let usable = config.user_frames.map_or(total, |n| (n + 1).min(total));
        Node {
            machine,
            // Frame 0 is reserved for the kernel (and anchors the I1 Inval
            // store's proxy address).
            frames: FrameAllocator::with_reserved(usable, 1),
            swap: BackingStore::new(),
            procs: BTreeMap::new(),
            next_pid: 1,
            current: None,
            frame_owner: BTreeMap::new(),
            resident_fifo: VecDeque::new(),
            pinned: BTreeMap::new(),
            swap_slots: BTreeMap::new(),
            stats: StatSet::new("kernel"),
        }
    }

    /// The machine hardware.
    pub fn machine(&self) -> &Machine<D> {
        &self.machine
    }

    /// Mutable machine access (device setup, manual time advancement).
    pub fn machine_mut(&mut self) -> &mut Machine<D> {
        &mut self.machine
    }

    /// Kernel statistics (context switches, faults by kind, evictions...).
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    /// The backing store (test inspection of I3's cleaning traffic).
    pub fn swap(&self) -> &BackingStore {
        &self.swap
    }

    /// The process table entry for `pid`.
    ///
    /// # Errors
    ///
    /// [`Trap::NoSuchProcess`] if `pid` is unknown.
    pub fn process(&self, pid: Pid) -> Result<&Process, Trap> {
        self.procs.get(&pid).ok_or(Trap::NoSuchProcess(pid))
    }

    /// The currently scheduled process, if any.
    pub fn current(&self) -> Option<Pid> {
        self.current
    }

    /// Creates a process with an empty address space.
    pub fn spawn(&mut self) -> Pid {
        let pid = Pid::new(self.next_pid);
        self.next_pid += 1;
        self.procs.insert(pid, Process::new(pid));
        self.stats.bump("spawns");
        pid
    }

    /// Declares `pages` pages of zero-fill memory at `va_base` for `pid`.
    ///
    /// # Errors
    ///
    /// - [`Trap::NoSuchProcess`] for an unknown pid,
    /// - [`Trap::SegFault`] if the range leaves the ordinary-memory region
    ///   of the virtual address space.
    ///
    /// # Panics
    ///
    /// Panics if `va_base` is not page-aligned.
    pub fn mmap(&mut self, pid: Pid, va_base: u64, pages: u64, writable: bool) -> Result<(), Trap> {
        assert_eq!(va_base % PAGE_SIZE, 0, "mmap base must be page-aligned");
        let layout = self.machine.layout();
        let end = va_base + pages * PAGE_SIZE;
        if layout.region_of_virt(VirtAddr::new(va_base)) != Region::Memory
            || (end > 0 && layout.region_of_virt(VirtAddr::new(end - 1)) != Region::Memory)
        {
            return Err(Trap::SegFault { pid, va: VirtAddr::new(va_base) });
        }
        let proc = self.procs.get_mut(&pid).ok_or(Trap::NoSuchProcess(pid))?;
        for i in 0..pages {
            proc.vpages
                .entry(VirtAddr::new(va_base + i * PAGE_SIZE).page())
                .or_insert(VPage::Untouched { writable });
        }
        Ok(())
    }

    /// The `grant device proxy` system call (§4: "an operating system call
    /// is responsible for creating the mapping... decides whether to grant
    /// permission... and whether the permission is read-only").
    ///
    /// The grant is recorded and the PTEs are created on demand through the
    /// normal page-fault path.
    ///
    /// # Errors
    ///
    /// - [`Trap::NoSuchProcess`] for an unknown pid,
    /// - [`Trap::DeviceNotGranted`] if the range exceeds the device's proxy
    ///   space.
    pub fn grant_device_proxy(
        &mut self,
        pid: Pid,
        first_page: u64,
        pages: u64,
        writable: bool,
    ) -> Result<(), Trap> {
        let syscall = self.machine.cost().syscall;
        self.machine.advance(syscall);
        let layout = self.machine.layout();
        let device_pages = self
            .machine
            .device()
            .proxy_space_bytes()
            .min(layout.dev_proxy_bytes())
            .div_ceil(PAGE_SIZE);
        if first_page + pages > device_pages {
            return Err(Trap::DeviceNotGranted {
                pid,
                va: VirtAddr::new(shrimp_mem::DEV_PROXY_BASE + first_page * PAGE_SIZE),
            });
        }
        let proc = self.procs.get_mut(&pid).ok_or(Trap::NoSuchProcess(pid))?;
        proc.grants.push(DeviceGrant { first_page, pages, writable });
        self.stats.bump("device_grants");
        Ok(())
    }

    /// Revokes device proxy pages `[first_page, first_page + pages)` from
    /// `pid`: the teardown half of NIPT demand paging. Grants covering the
    /// range are dropped, any demand-created proxy PTEs in the range are
    /// unmapped (and their TLB entries shot down), and the I1 Inval store
    /// fires so a transfer half-initiated through the dying mapping can
    /// never complete against a recycled NIPT entry. `pid`'s next touch of
    /// the range faults [`Trap::DeviceNotGranted`].
    ///
    /// # Errors
    ///
    /// [`Trap::NoSuchProcess`] for an unknown pid.
    pub fn revoke_device_proxy(
        &mut self,
        pid: Pid,
        first_page: u64,
        pages: u64,
    ) -> Result<(), Trap> {
        let syscall = self.machine.cost().syscall;
        self.machine.advance(syscall);
        let proc = self.procs.get_mut(&pid).ok_or(Trap::NoSuchProcess(pid))?;
        let end = first_page + pages;
        proc.grants.retain(|g| g.first_page >= end || g.first_page + g.pages <= first_page);
        let mut unmapped = 0u64;
        for page in first_page..end {
            let vpn = VirtAddr::new(shrimp_mem::DEV_PROXY_BASE + page * PAGE_SIZE).page();
            if proc.pt.unmap(vpn).is_some() {
                unmapped += 1;
            }
        }
        for page in first_page..end {
            let vpn = VirtAddr::new(shrimp_mem::DEV_PROXY_BASE + page * PAGE_SIZE).page();
            self.machine.mmu_mut().flush_page(vpn);
        }
        if unmapped > 0 {
            let pte_cost = self.machine.cost().pte_update;
            self.machine.advance(pte_cost * unmapped);
        }
        // Invariant I1 territory: a transfer the process half-initiated
        // through the revoked window must not survive the revocation.
        self.machine.kernel_inval_udma();
        self.stats.bump("device_revokes");
        Ok(())
    }

    /// Schedules `pid`, performing a context switch if it is not already
    /// running: full TLB flush plus the I1 Inval store ("the operating
    /// system must invalidate any partially initiated UDMA transfer on
    /// every context switch... with a single STORE instruction").
    ///
    /// # Errors
    ///
    /// [`Trap::NoSuchProcess`] for an unknown pid.
    pub fn ensure_current(&mut self, pid: Pid) -> Result<(), Trap> {
        if self.current == Some(pid) {
            // A scheduled pid always has a process-table entry (exit()
            // deschedules before removing), so skip the existence lookup.
            debug_assert!(self.procs.contains_key(&pid));
            return Ok(());
        }
        if !self.procs.contains_key(&pid) {
            return Err(Trap::NoSuchProcess(pid));
        }
        self.context_switch(Some(pid));
        Ok(())
    }

    /// Unconditionally switches to `to` (or to the idle loop for `None`).
    pub fn context_switch(&mut self, to: Option<Pid>) {
        let cost = self.machine.cost().context_switch;
        self.machine.advance(cost);
        self.machine.mmu_mut().flush_all();
        // Invariant I1: one STORE of a negative value to proxy space.
        self.machine.kernel_inval_udma();
        let as_raw = |p: Option<Pid>| p.map_or(-1, |p| i64::from(p.raw()));
        let from = self.current;
        self.machine
            .record_event(MachineEventKind::ContextSwitch { from: as_raw(from), to: as_raw(to) });
        self.current = to;
        self.stats.bump("context_switches");
    }

    /// One user-mode load, with kernel fault handling and restart.
    ///
    /// # Errors
    ///
    /// Any [`Trap`] the fault handler raises.
    pub fn user_load(&mut self, pid: Pid, va: VirtAddr) -> Result<u64, Trap> {
        // `pid` already scheduled is the steady state; the process-table
        // lookup below doubles as the existence check.
        if self.current != Some(pid) {
            self.ensure_current(pid)?;
        }
        for _ in 0..MAX_FAULT_RESTARTS {
            let proc = self.procs.get_mut(&pid).ok_or(Trap::NoSuchProcess(pid))?;
            match self.machine.load(&mut proc.pt, va, Mode::User) {
                Ok(v) => return Ok(v),
                Err(fault) => self.handle_fault(pid, fault)?,
            }
        }
        panic!("fault handler livelock at {va} (kernel bug)");
    }

    /// One user-mode store, with kernel fault handling and restart.
    ///
    /// # Errors
    ///
    /// Any [`Trap`] the fault handler raises.
    pub fn user_store(&mut self, pid: Pid, va: VirtAddr, value: i64) -> Result<(), Trap> {
        if self.current != Some(pid) {
            self.ensure_current(pid)?;
        }
        for _ in 0..MAX_FAULT_RESTARTS {
            let proc = self.procs.get_mut(&pid).ok_or(Trap::NoSuchProcess(pid))?;
            match self.machine.store(&mut proc.pt, va, value, Mode::User) {
                Ok(()) => return Ok(()),
                Err(fault) => self.handle_fault(pid, fault)?,
            }
        }
        panic!("fault handler livelock at {va} (kernel bug)");
    }

    /// The UDMA initiation pair — `STORE value TO dest_va; LOAD FROM
    /// src_va` — with a single process-table lookup covering both
    /// references in the no-fault steady state (the data-plane hot path
    /// performs this sequence once per packet). Any fault falls back to
    /// the general per-reference paths, so trap behavior and simulated
    /// timing are identical to calling [`Node::user_store`] then
    /// [`Node::user_load`].
    ///
    /// # Errors
    ///
    /// Any [`Trap`] the fault handler raises.
    pub(crate) fn user_store_load_pair(
        &mut self,
        pid: Pid,
        dest_va: VirtAddr,
        value: i64,
        src_va: VirtAddr,
    ) -> Result<u64, Trap> {
        if self.current != Some(pid) {
            self.ensure_current(pid)?;
        }
        let proc = self.procs.get_mut(&pid).ok_or(Trap::NoSuchProcess(pid))?;
        if let Err(fault) = self.machine.store(&mut proc.pt, dest_va, value, Mode::User) {
            self.handle_fault(pid, fault)?;
            self.user_store(pid, dest_va, value)?;
            return self.user_load(pid, src_va);
        }
        match self.machine.load(&mut proc.pt, src_va, Mode::User) {
            Ok(v) => Ok(v),
            Err(fault) => {
                self.handle_fault(pid, fault)?;
                self.user_load(pid, src_va)
            }
        }
    }

    /// Copies `data` into `pid`'s memory at `va` (bulk user write with
    /// fault handling).
    ///
    /// A fault resumes the copy at the faulting page rather than
    /// restarting — like a real faulting instruction — so a sequential
    /// sweep larger than physical memory still makes forward progress.
    ///
    /// # Errors
    ///
    /// Any [`Trap`] the fault handler raises.
    pub fn write_user(&mut self, pid: Pid, va: VirtAddr, data: &[u8]) -> Result<(), Trap> {
        self.ensure_current(pid)?;
        let mut off = 0u64;
        while off < data.len() as u64 {
            let cur = va + off;
            let chunk = cur.bytes_to_page_end().min(data.len() as u64 - off);
            let slice = &data[off as usize..(off + chunk) as usize];
            for attempt in 0..=MAX_FAULT_RESTARTS {
                assert!(attempt < MAX_FAULT_RESTARTS, "fault handler livelock at {cur}");
                let proc = self.procs.get_mut(&pid).expect("checked by ensure_current");
                match self.machine.write_bytes(&mut proc.pt, cur, slice, Mode::User) {
                    Ok(()) => break,
                    Err(fault) => self.handle_fault(pid, fault)?,
                }
            }
            off += chunk;
        }
        Ok(())
    }

    /// Reads `len` bytes of `pid`'s memory at `va`, resuming at the
    /// faulting page after each fault (see [`Node::write_user`]).
    ///
    /// # Errors
    ///
    /// Any [`Trap`] the fault handler raises.
    pub fn read_user(&mut self, pid: Pid, va: VirtAddr, len: u64) -> Result<Vec<u8>, Trap> {
        self.ensure_current(pid)?;
        let mut out = Vec::with_capacity(len as usize);
        let mut off = 0u64;
        while off < len {
            let cur = va + off;
            let chunk = cur.bytes_to_page_end().min(len - off);
            for attempt in 0..=MAX_FAULT_RESTARTS {
                assert!(attempt < MAX_FAULT_RESTARTS, "fault handler livelock at {cur}");
                let proc = self.procs.get_mut(&pid).expect("checked by ensure_current");
                match self.machine.read_bytes(&mut proc.pt, cur, chunk, Mode::User) {
                    Ok(v) => {
                        out.extend_from_slice(&v);
                        break;
                    }
                    Err(fault) => self.handle_fault(pid, fault)?,
                }
            }
            off += chunk;
        }
        Ok(out)
    }

    /// The kernel page-fault handler. Dispatches on the region of the
    /// faulting address: ordinary memory (demand paging), memory proxy
    /// space (the three §6 cases plus the I3 dirty protocol) or device
    /// proxy space (grant check).
    ///
    /// # Errors
    ///
    /// A [`Trap`] when the access is genuinely illegal.
    pub fn handle_fault(&mut self, pid: Pid, fault: Fault) -> Result<(), Trap> {
        let overhead = self.machine.cost().page_fault_overhead;
        self.machine.advance(overhead);
        self.stats.bump("page_faults");
        let what = match fault {
            Fault::NotMapped { .. } => "not-mapped",
            Fault::WriteProtected { .. } => "write-protected",
            Fault::Privilege { .. } => "privilege",
        };
        self.machine.record_event(MachineEventKind::PageFault {
            pid: u64::from(pid.raw()),
            va: fault.va().raw(),
            what,
        });
        let layout = self.machine.layout();
        let va = fault.va();
        match layout.region_of_virt(va) {
            // Page-fault service is the cold path by definition:
            // steady-state hot-path accesses hit valid, resident mappings
            // and never reach the fault_* handlers below.
            // lint:allow(A1) -- cold fault path (see above).
            Region::Memory => self.fault_memory(pid, fault),
            Region::MemoryProxy => self.fault_memory_proxy(pid, fault),
            Region::DeviceProxy => self.fault_device_proxy(pid, fault),
            Region::Mmio | Region::Invalid => Err(Trap::SegFault { pid, va }),
        }
    }

    /// Demand paging for ordinary memory.
    fn fault_memory(&mut self, pid: Pid, fault: Fault) -> Result<(), Trap> {
        let va = fault.va();
        let vpn = fault.vpn();
        match fault {
            Fault::NotMapped { .. } => {
                self.ensure_resident(pid, vpn)?;
                Ok(())
            }
            // The real page is mapped writable iff its segment is, so a
            // write-protection fault here is a genuine violation.
            Fault::WriteProtected { .. } => Err(Trap::ReadOnly { pid, va }),
            Fault::Privilege { .. } => Err(Trap::SegFault { pid, va }),
        }
    }

    /// On-demand memory-proxy mappings: §6's three cases, plus the I3
    /// write-enable protocol.
    fn fault_memory_proxy(&mut self, pid: Pid, fault: Fault) -> Result<(), Trap> {
        let layout = self.machine.layout();
        let va = fault.va();
        let real_va =
            layout.virt_of_proxy(va).expect("region dispatch guarantees a memory-proxy address");
        let real_vpn = real_va.page();

        let Some(&vpage) =
            self.procs.get(&pid).ok_or(Trap::NoSuchProcess(pid))?.vpages.get(&real_vpn)
        else {
            // Case 3: "vmem_page is not accessible for the process. The
            // kernel treats this like an illegal access."
            return Err(Trap::SegFault { pid, va });
        };

        match fault {
            Fault::NotMapped { .. } => {
                // Cases 1 and 2: page the real page in if needed, then
                // create the proxy mapping.
                let pfn = self.ensure_resident(pid, real_vpn)?;
                self.map_proxy_pte(pid, real_vpn, pfn);
                self.stats.bump("proxy_mappings_created");
                Ok(())
            }
            Fault::WriteProtected { .. } => {
                // I3: enable writes to PROXY(page) and mark the page dirty.
                if !vpage.writable() {
                    // "A read-only page can be used as the source of a
                    // transfer but not as the destination."
                    return Err(Trap::ReadOnly { pid, va });
                }
                let pfn = self.ensure_resident(pid, real_vpn)?;
                let pte_cost = self.machine.cost().pte_update;
                self.machine.advance(pte_cost);
                let proc = self.procs.get_mut(&pid).expect("existence checked above");
                proc.pt.set_flags(real_vpn, PteFlags::DIRTY);
                let proxy_vpn =
                    layout.proxy_of_virt(real_va).expect("real address in memory region").page();
                proc.pt.set_flags(proxy_vpn, PteFlags::WRITABLE);
                self.machine.mmu_mut().flush_page(proxy_vpn);
                self.machine.mmu_mut().flush_page(real_vpn);
                let _ = pfn;
                self.stats.bump("i3_write_enables");
                Ok(())
            }
            Fault::Privilege { .. } => Err(Trap::SegFault { pid, va }),
        }
    }

    /// Device-proxy mappings, created on demand against recorded grants.
    fn fault_device_proxy(&mut self, pid: Pid, fault: Fault) -> Result<(), Trap> {
        let va = fault.va();
        let dev_page = (va.raw() - shrimp_mem::DEV_PROXY_BASE) >> shrimp_mem::PAGE_SHIFT;
        let proc = self.procs.get_mut(&pid).ok_or(Trap::NoSuchProcess(pid))?;
        let Some(&grant) = proc.grant_for(dev_page).map(|g| g as &DeviceGrant) else {
            return Err(Trap::DeviceNotGranted { pid, va });
        };
        match fault {
            Fault::NotMapped { .. } => {
                let mut flags =
                    PteFlags::VALID | PteFlags::USER | PteFlags::UNCACHED | PteFlags::PROXY;
                if grant.writable {
                    flags |= PteFlags::WRITABLE;
                }
                // Virtual device proxy space maps identically onto physical
                // device proxy space.
                proc.pt.map(va.page(), Pte::new(Pfn::new(va.page().raw()), flags));
                let pte_cost = self.machine.cost().pte_update;
                self.machine.advance(pte_cost);
                self.stats.bump("device_proxy_mappings_created");
                Ok(())
            }
            // A store to a read-only device grant: cannot name the device
            // as a destination.
            Fault::WriteProtected { .. } => Err(Trap::ReadOnly { pid, va }),
            Fault::Privilege { .. } => Err(Trap::SegFault { pid, va }),
        }
    }

    /// Creates the memory-proxy PTE for a resident real page, respecting
    /// invariant I3 (writable only if the real page is already dirty).
    pub(crate) fn map_proxy_pte(&mut self, pid: Pid, real_vpn: Vpn, pfn: Pfn) {
        let layout = self.machine.layout();
        let proc = self.procs.get_mut(&pid).expect("caller validated pid");
        let real_pte = *proc.pt.get(real_vpn).expect("real page must be mapped first");
        let segment_writable = proc.vpages.get(&real_vpn).map(VPage::writable).unwrap_or(false);
        let mut flags = PteFlags::VALID | PteFlags::USER | PteFlags::UNCACHED | PteFlags::PROXY;
        if segment_writable && real_pte.is_dirty() {
            flags |= PteFlags::WRITABLE;
        }
        let proxy_vpn = layout.proxy_of_virt(real_vpn.base()).expect("vpn in memory region").page();
        let proxy_pfn = layout.proxy_of_phys(pfn.base()).expect("pfn in memory region").page();
        proc.pt.map(proxy_vpn, Pte::new(proxy_pfn, flags));
        let pte_cost = self.machine.cost().pte_update;
        self.machine.advance(pte_cost);
    }

    /// Makes `(pid, vpn)` resident, paging in from swap or zero-filling,
    /// and installs the real PTE. Returns the frame.
    ///
    /// # Errors
    ///
    /// - [`Trap::SegFault`] if the page is not part of any segment,
    /// - [`Trap::OutOfMemory`] if no frame can be freed.
    pub(crate) fn ensure_resident(&mut self, pid: Pid, vpn: Vpn) -> Result<Pfn, Trap> {
        let vpage = *self
            .procs
            .get(&pid)
            .ok_or(Trap::NoSuchProcess(pid))?
            .vpages
            .get(&vpn)
            .ok_or(Trap::SegFault { pid, va: vpn.base() })?;

        let (pfn, writable) = match vpage {
            VPage::Resident { pfn, writable } => {
                // Already resident: just (re)install the PTE if missing.
                (pfn, writable)
            }
            VPage::Untouched { writable } => {
                let pfn = self.alloc_frame_evicting(pid, vpn)?;
                let zero_cost = self.machine.cost().instructions(PAGE_SIZE / 8);
                self.machine.advance(zero_cost);
                self.machine
                    .mem_mut()
                    .fill(pfn.base(), PAGE_SIZE, 0)
                    .expect("allocated frame in range");
                self.stats.bump("zero_fills");
                (pfn, writable)
            }
            VPage::Swapped { slot, writable } => {
                let pfn = self.alloc_frame_evicting(pid, vpn)?;
                let io = self.machine.cost().disk_seek
                    + self.machine.cost().disk_rotation
                    + self.machine.cost().disk_transfer(PAGE_SIZE);
                self.machine.advance(io);
                let data = self.swap.read(slot).expect("swapped page has contents").to_vec();
                self.machine.mem_mut().write_frame(pfn, &data).expect("allocated frame in range");
                self.stats.bump("page_ins");
                (pfn, writable)
            }
        };

        let proc = self.procs.get_mut(&pid).expect("validated above");
        if proc.pt.get(vpn).is_none() {
            let mut flags = PteFlags::VALID | PteFlags::USER;
            if writable {
                flags |= PteFlags::WRITABLE;
            }
            proc.pt.map(vpn, Pte::new(pfn, flags));
            let pte_cost = self.machine.cost().pte_update;
            self.machine.advance(pte_cost);
        }
        proc.vpages.insert(vpn, VPage::Resident { pfn, writable });
        if let std::collections::btree_map::Entry::Vacant(e) = self.frame_owner.entry(pfn) {
            e.insert((pid, vpn));
            self.resident_fifo.push_back(pfn);
        }
        Ok(pfn)
    }

    /// Terminates a process and reclaims everything it held: frames, swap
    /// slots, device grants, pins.
    ///
    /// The interesting case is an in-flight UDMA transfer touching the
    /// process's frames: "once started, a UDMA transfer continues
    /// regardless of whether the process that started it is de-scheduled"
    /// (§6) — and I4 forbids remapping those frames. The kernel therefore
    /// fires an Inval (clearing any latched DESTINATION) and then waits for
    /// the hardware to drain before freeing frames the hardware names.
    ///
    /// # Errors
    ///
    /// [`Trap::NoSuchProcess`] for an unknown pid.
    pub fn exit_process(&mut self, pid: Pid) -> Result<(), Trap> {
        if !self.procs.contains_key(&pid) {
            return Err(Trap::NoSuchProcess(pid));
        }
        // Clear any latched (DestLoaded) registers; queued/in-flight
        // transfers keep running.
        self.machine.kernel_inval_udma();

        // I4: wait out transfers that name this process's frames.
        let owned: Vec<Pfn> = self
            .frame_owner
            .iter()
            .filter(|&(_, &(owner, _))| owner == pid)
            .map(|(&pfn, _)| pfn)
            .collect();
        if owned.iter().any(|&pfn| self.machine.udma().frame_in_use(pfn)) {
            let drained = self.machine.udma_drained_at();
            self.machine.advance_to(drained);
        }
        debug_assert!(
            !owned.iter().any(|&pfn| self.machine.udma().frame_in_use(pfn)),
            "hardware still names an exiting process's frame after drain"
        );

        // Reclaim frames (dirty or not — the address space is gone).
        for pfn in owned {
            self.frame_owner.remove(&pfn);
            self.pinned.remove(&pfn);
            self.frames.free(pfn);
        }
        self.resident_fifo.retain(|pfn| self.frame_owner.contains_key(pfn));

        // Release backing store and the process itself.
        let slots: Vec<_> = self
            .swap_slots
            .iter()
            .filter(|&(&(owner, _), _)| owner == pid)
            .map(|(&k, &slot)| (k, slot))
            .collect();
        for (k, slot) in slots {
            self.swap.release(slot);
            self.swap_slots.remove(&k);
        }
        self.procs.remove(&pid);
        if self.current == Some(pid) {
            self.context_switch(None);
        }
        self.machine.mmu_mut().flush_all();
        let cost = self.machine.cost().syscall;
        self.machine.advance(cost);
        self.stats.bump("exits");
        Ok(())
    }

    /// Kernel-privilege page-table edit: installs `pte` for `vpn` in
    /// `pid`'s table. Used for special windows (e.g. device MMIO) that the
    /// normal paging paths do not manage.
    ///
    /// # Errors
    ///
    /// [`Trap::NoSuchProcess`] for an unknown pid.
    pub fn kernel_map_page(&mut self, pid: Pid, vpn: Vpn, pte: Pte) -> Result<(), Trap> {
        let proc = self.procs.get_mut(&pid).ok_or(Trap::NoSuchProcess(pid))?;
        proc.pt.map(vpn, pte);
        self.machine.mmu_mut().flush_page(vpn);
        let cost = self.machine.cost().pte_update;
        self.machine.advance(cost);
        Ok(())
    }

    /// Wires down a run of user pages: makes them resident, pins them and
    /// marks them dirty. Used by the SHRIMP export path — pages a receiver
    /// exposes to incoming network DMA must keep their frames (incoming
    /// packets carry *physical* addresses) and must be considered dirty
    /// (network writes bypass the MMU's dirty-bit hardware). Returns the
    /// backing frames in page order.
    ///
    /// # Errors
    ///
    /// Any paging [`Trap`].
    pub fn wire_pages(&mut self, pid: Pid, va: VirtAddr, pages: u64) -> Result<Vec<Pfn>, Trap> {
        assert!(va.is_page_aligned(), "wire_pages base must be page-aligned");
        let mut pfns = Vec::with_capacity(pages as usize);
        for i in 0..pages {
            let vpn = (va + i * PAGE_SIZE).page();
            let pfn = self.ensure_resident(pid, vpn)?;
            self.pin_frame(pfn);
            let proc = self.procs.get_mut(&pid).expect("resident page has a process");
            proc.pt.set_flags(vpn, PteFlags::DIRTY);
            pfns.push(pfn);
        }
        self.stats.bump("wired_exports");
        Ok(pfns)
    }

    /// Releases pages wired by [`Node::wire_pages`].
    pub fn unwire_pages(&mut self, pid: Pid, va: VirtAddr, pages: u64) {
        for i in 0..pages {
            let vpn = (va + i * PAGE_SIZE).page();
            if let Some(pfn) = self
                .procs
                .get(&pid)
                .and_then(|p| p.vpages.get(&vpn))
                .and_then(crate::process::VPage::pfn)
            {
                self.unpin_frame(pfn);
            }
        }
    }

    /// Verifies the §6 invariants over the whole node. Returns a
    /// description of the first violation found. Test-support API.
    ///
    /// # Errors
    ///
    /// A human-readable violation description.
    pub fn check_invariants(&self) -> Result<(), String> {
        let layout = self.machine.layout();
        for (pid, proc) in &self.procs {
            for (vpn, pte) in proc.pt.iter() {
                if !pte.flags.contains(PteFlags::PROXY) {
                    continue;
                }
                let va = vpn.base();
                if layout.region_of_virt(va) != Region::MemoryProxy {
                    continue; // device proxy entries have no paired mapping
                }
                // I2: proxy mapping valid => real mapping valid & paired.
                let real_vpn = layout
                    .virt_of_proxy(va)
                    .map_err(|e| format!("{pid}: proxy PTE at non-proxy page: {e}"))?
                    .page();
                let Some(real_pte) = proc.pt.get(real_vpn) else {
                    return Err(format!(
                        "I2 violated: {pid} maps PROXY({real_vpn}) but not {real_vpn}"
                    ));
                };
                let expect_proxy_pfn = layout
                    .proxy_of_phys(real_pte.pfn.base())
                    .map_err(|e| format!("{pid}: real PTE outside memory: {e}"))?
                    .page();
                if pte.pfn != expect_proxy_pfn {
                    return Err(format!(
                        "I2 violated: {pid} PROXY({real_vpn}) -> {} but {real_vpn} -> {}",
                        pte.pfn, real_pte.pfn
                    ));
                }
                // I3: writable proxy => dirty real page.
                if pte.is_writable() && !real_pte.is_dirty() {
                    return Err(format!(
                        "I3 violated: {pid} PROXY({real_vpn}) writable but {real_vpn} clean"
                    ));
                }
            }
        }
        // I4: every frame the hardware names is still owned and mapped.
        for pfn in self.hw_frames() {
            let Some(&(pid, vpn)) = self.frame_owner.get(&pfn) else {
                return Err(format!("I4 violated: hardware names unowned frame {pfn}"));
            };
            let proc = self.procs.get(&pid).expect("owner table consistent");
            match proc.pt.get(vpn) {
                Some(pte) if pte.pfn == pfn => {}
                _ => {
                    return Err(format!(
                        "I4 violated: hardware names {pfn} but {pid}:{vpn} no longer maps it"
                    ))
                }
            }
        }
        Ok(())
    }

    /// Frames currently named by the UDMA hardware.
    fn hw_frames(&self) -> Vec<Pfn> {
        (0..self.machine.mem().frame_count())
            .map(Pfn::new)
            .filter(|&p| self.machine.udma().frame_in_use(p))
            .collect()
    }
}

/// Restart bound for the fault-handling loops: any single reference needs
/// at most a handful of kernel interventions (real page-in + proxy mapping
/// + I3 write-enable); more indicates a kernel bug.
const MAX_FAULT_RESTARTS: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_devices::StreamSink;

    fn node() -> Node<StreamSink> {
        let config = NodeConfig {
            machine: MachineConfig { mem_bytes: 64 * PAGE_SIZE, ..MachineConfig::default() },
            user_frames: None,
        };
        Node::new(config, StreamSink::new("sink"))
    }

    #[test]
    fn spawn_and_mmap() {
        let mut n = node();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 4, true).unwrap();
        assert_eq!(n.process(pid).unwrap().vpages.len(), 4);
    }

    #[test]
    fn demand_zero_fill_on_first_touch() {
        let mut n = node();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 1, true).unwrap();
        assert_eq!(n.user_load(pid, VirtAddr::new(0x10008)).unwrap(), 0);
        assert_eq!(n.stats().get("zero_fills"), 1);
        assert_eq!(n.process(pid).unwrap().resident_pages(), 1);
    }

    #[test]
    fn store_then_load_roundtrip() {
        let mut n = node();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 1, true).unwrap();
        n.user_store(pid, VirtAddr::new(0x10010), 99).unwrap();
        assert_eq!(n.user_load(pid, VirtAddr::new(0x10010)).unwrap(), 99);
    }

    #[test]
    fn unmapped_access_is_segfault() {
        let mut n = node();
        let pid = n.spawn();
        let err = n.user_load(pid, VirtAddr::new(0x10000)).unwrap_err();
        assert_eq!(err, Trap::SegFault { pid, va: VirtAddr::new(0x10000) });
    }

    #[test]
    fn write_to_readonly_segment_traps() {
        let mut n = node();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 1, false).unwrap();
        assert_eq!(n.user_load(pid, VirtAddr::new(0x10000)).unwrap(), 0); // read ok
        let err = n.user_store(pid, VirtAddr::new(0x10000), 1).unwrap_err();
        assert!(matches!(err, Trap::ReadOnly { .. }));
    }

    #[test]
    fn bulk_write_read_user() {
        let mut n = node();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 3, true).unwrap();
        let data: Vec<u8> = (0..PAGE_SIZE as usize * 2 + 100).map(|i| i as u8).collect();
        n.write_user(pid, VirtAddr::new(0x10020), &data).unwrap();
        assert_eq!(n.read_user(pid, VirtAddr::new(0x10020), data.len() as u64).unwrap(), data);
    }

    #[test]
    fn proxy_fault_creates_mapping_on_demand() {
        let mut n = node();
        let layout = n.machine().layout();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 1, true).unwrap();
        // Touch the real page so it is resident.
        n.user_store(pid, VirtAddr::new(0x10000), 5).unwrap();
        // A load from the page's proxy address faults, then succeeds.
        let vproxy = layout.proxy_of_virt(VirtAddr::new(0x10000)).unwrap();
        let status = udma_core::UdmaStatus::unpack(n.user_load(pid, vproxy).unwrap());
        assert!(status.invalid, "idle device status expected, got {status}");
        assert_eq!(n.stats().get("proxy_mappings_created"), 1);
        n.check_invariants().unwrap();
    }

    #[test]
    fn proxy_fault_pages_in_nonresident_page() {
        // §6 case 2: "vmem_page is valid but is not currently in core".
        let mut n = node();
        let layout = n.machine().layout();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 1, true).unwrap();
        let vproxy = layout.proxy_of_virt(VirtAddr::new(0x10000)).unwrap();
        let _ = n.user_load(pid, vproxy).unwrap();
        // The real page was brought in (zero-filled) by the proxy fault.
        assert_eq!(n.process(pid).unwrap().resident_pages(), 1);
        n.check_invariants().unwrap();
    }

    #[test]
    fn proxy_fault_on_unmapped_segment_is_segfault() {
        // §6 case 3.
        let mut n = node();
        let layout = n.machine().layout();
        let pid = n.spawn();
        let vproxy = layout.proxy_of_virt(VirtAddr::new(0x7000)).unwrap();
        let err = n.user_load(pid, vproxy).unwrap_err();
        assert!(matches!(err, Trap::SegFault { .. }));
    }

    #[test]
    fn i3_proxy_starts_readonly_then_write_enables() {
        let mut n = node();
        let layout = n.machine().layout();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 1, true).unwrap();
        // Only *read* the page: it is resident but clean.
        let _ = n.user_load(pid, VirtAddr::new(0x10000)).unwrap();
        let vproxy = layout.proxy_of_virt(VirtAddr::new(0x10000)).unwrap();
        let _ = n.user_load(pid, vproxy).unwrap(); // creates read-only proxy
        n.check_invariants().unwrap();

        // Storing to the proxy (naming the page as a DMA destination)
        // faults, then the kernel write-enables and dirties (I3).
        n.user_store(pid, vproxy, 64).unwrap();
        assert_eq!(n.stats().get("i3_write_enables"), 1);
        let proc = n.process(pid).unwrap();
        assert!(proc.pt.get(VirtAddr::new(0x10000).page()).unwrap().is_dirty());
        n.check_invariants().unwrap();
    }

    #[test]
    fn i3_readonly_segment_cannot_be_dma_destination() {
        let mut n = node();
        let layout = n.machine().layout();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 1, false).unwrap();
        let _ = n.user_load(pid, VirtAddr::new(0x10000)).unwrap();
        let vproxy = layout.proxy_of_virt(VirtAddr::new(0x10000)).unwrap();
        let _ = n.user_load(pid, vproxy).unwrap(); // read-only proxy is fine
        let err = n.user_store(pid, vproxy, 64).unwrap_err();
        assert!(matches!(err, Trap::ReadOnly { .. }));
    }

    #[test]
    fn device_proxy_requires_grant() {
        let mut n = node();
        let pid = n.spawn();
        let vdev = VirtAddr::new(shrimp_mem::DEV_PROXY_BASE);
        let err = n.user_store(pid, vdev, 64).unwrap_err();
        assert!(matches!(err, Trap::DeviceNotGranted { .. }));

        n.grant_device_proxy(pid, 0, 1, true).unwrap();
        n.user_store(pid, vdev, 64).unwrap();
        assert_eq!(n.stats().get("device_proxy_mappings_created"), 1);
    }

    #[test]
    fn revoke_device_proxy_unmaps_and_faults() {
        let mut n = node();
        let pid = n.spawn();
        n.grant_device_proxy(pid, 0, 2, true).unwrap();
        let vdev = VirtAddr::new(shrimp_mem::DEV_PROXY_BASE);
        n.user_store(pid, vdev, 64).unwrap(); // demand-creates the PTE
        assert!(n.process(pid).unwrap().pt.get(vdev.page()).is_some());

        n.revoke_device_proxy(pid, 0, 2).unwrap();
        assert_eq!(n.stats().get("device_revokes"), 1);
        assert!(n.process(pid).unwrap().pt.get(vdev.page()).is_none(), "PTE must die");
        assert!(n.process(pid).unwrap().grants.is_empty(), "grant must die");
        let err = n.user_store(pid, vdev, 64).unwrap_err();
        assert!(matches!(err, Trap::DeviceNotGranted { .. }), "got {err:?}");
        n.check_invariants().unwrap();
    }

    #[test]
    fn readonly_device_grant_rejects_stores() {
        let mut n = node();
        let pid = n.spawn();
        n.grant_device_proxy(pid, 0, 1, false).unwrap();
        let vdev = VirtAddr::new(shrimp_mem::DEV_PROXY_BASE);
        let err = n.user_store(pid, vdev, 64).unwrap_err();
        assert!(matches!(err, Trap::ReadOnly { .. }));
        // Loads (status queries / naming as source) still work.
        let _ = n.user_load(pid, vdev).unwrap();
    }

    #[test]
    fn grant_beyond_device_space_rejected() {
        let mut n = node();
        let pid = n.spawn();
        // StreamSink has unbounded proxy space, so bound comes from layout.
        let pages = n.machine().layout().dev_proxy_bytes() / PAGE_SIZE;
        let err = n.grant_device_proxy(pid, pages, 1, true).unwrap_err();
        assert!(matches!(err, Trap::DeviceNotGranted { .. }));
    }

    #[test]
    fn context_switch_fires_inval() {
        let mut n = node();
        let a = n.spawn();
        let b = n.spawn();
        n.grant_device_proxy(a, 0, 1, true).unwrap();
        // Process A half-initiates.
        let vdev = VirtAddr::new(shrimp_mem::DEV_PROXY_BASE);
        n.user_store(a, vdev, 128).unwrap();
        // Scheduling B fires the I1 Inval.
        n.ensure_current(b).unwrap();
        // A's LOAD now reports a failed initiation (invalid flag).
        n.mmap(a, 0x10000, 1, true).unwrap();
        n.user_store(a, VirtAddr::new(0x10000), 1).unwrap(); // dirty page
        let vproxy = n.machine().layout().proxy_of_virt(VirtAddr::new(0x10000)).unwrap();
        let status = udma_core::UdmaStatus::unpack(n.user_load(a, vproxy).unwrap());
        assert!(status.initiation && status.invalid, "{status}");
        assert!(n.stats().get("context_switches") >= 2);
    }

    #[test]
    fn two_processes_have_isolated_address_spaces() {
        let mut n = node();
        let a = n.spawn();
        let b = n.spawn();
        n.mmap(a, 0x10000, 1, true).unwrap();
        n.mmap(b, 0x10000, 1, true).unwrap();
        n.user_store(a, VirtAddr::new(0x10000), 111).unwrap();
        n.user_store(b, VirtAddr::new(0x10000), 222).unwrap();
        assert_eq!(n.user_load(pid_of(a), VirtAddr::new(0x10000)).unwrap(), 111);
        assert_eq!(n.user_load(b, VirtAddr::new(0x10000)).unwrap(), 222);
        n.check_invariants().unwrap();
    }

    fn pid_of(p: Pid) -> Pid {
        p
    }

    #[test]
    fn exit_reclaims_every_frame() {
        let mut n = node();
        let free_before = n.frames.free_frames();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 4, true).unwrap();
        for i in 0..4u64 {
            n.user_store(pid, VirtAddr::new(0x10000 + i * PAGE_SIZE), 1).unwrap();
        }
        assert_eq!(n.frames.free_frames(), free_before - 4);
        n.exit_process(pid).unwrap();
        assert_eq!(n.frames.free_frames(), free_before);
        assert!(matches!(n.user_load(pid, VirtAddr::new(0x10000)), Err(Trap::NoSuchProcess(_))));
        assert!(n.current().is_none());
    }

    #[test]
    fn exit_waits_for_in_flight_transfer() {
        let mut n = node();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 1, true).unwrap();
        n.grant_device_proxy(pid, 0, 1, true).unwrap();
        n.user_store(pid, VirtAddr::new(0x10000), 7).unwrap();
        // Start a page-sized transfer, then exit immediately.
        let vdev = VirtAddr::new(shrimp_mem::DEV_PROXY_BASE);
        let vproxy = n.machine().layout().proxy_of_virt(VirtAddr::new(0x10000)).unwrap();
        n.user_store(pid, vdev, PAGE_SIZE as i64).unwrap();
        let status = udma_core::UdmaStatus::unpack(n.user_load(pid, vproxy).unwrap());
        assert!(status.started());
        let before_exit = n.machine().now();
        n.exit_process(pid).unwrap();
        // The exit had to wait for the drain (transfer is ~128us).
        assert!(
            (n.machine().now() - before_exit).as_micros_f64() > 100.0,
            "exit must wait for the in-flight transfer"
        );
        // The data still arrived (the transfer was never aborted).
        assert_eq!(n.machine().device().writes().len(), 1);
        n.check_invariants().unwrap();
    }

    #[test]
    fn spawn_exit_cycles_do_not_leak() {
        let mut n = node();
        let free_before = n.frames.free_frames();
        for round in 0..10 {
            let pid = n.spawn();
            n.mmap(pid, 0x10000, 3, true).unwrap();
            n.user_store(pid, VirtAddr::new(0x10000), round).unwrap();
            n.grant_device_proxy(pid, 0, 1, true).unwrap();
            n.exit_process(pid).unwrap();
        }
        assert_eq!(n.frames.free_frames(), free_before);
        assert_eq!(n.stats().get("exits"), 10);
    }

    #[test]
    fn exit_of_swapped_out_process_releases_slots() {
        let config = NodeConfig {
            machine: MachineConfig { mem_bytes: 64 * PAGE_SIZE, ..MachineConfig::default() },
            user_frames: Some(2),
        };
        let mut n = Node::new(config, StreamSink::new("sink"));
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 6, true).unwrap();
        for i in 0..6u64 {
            n.user_store(pid, VirtAddr::new(0x10000 + i * PAGE_SIZE), 1).unwrap();
        }
        assert!(n.swap().write_count() > 0);
        n.exit_process(pid).unwrap();
        // A fresh process can use the whole machine again.
        let pid2 = n.spawn();
        n.mmap(pid2, 0x10000, 2, true).unwrap();
        n.user_store(pid2, VirtAddr::new(0x10000), 9).unwrap();
        n.check_invariants().unwrap();
    }
}
