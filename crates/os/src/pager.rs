//! Page replacement and cleaning: a second-chance clock that maintains
//! invariants I2, I3 and I4.
//!
//! This is where UDMA's "no pinning" claim is honoured: before remapping a
//! frame the kernel checks the UDMA hardware's SOURCE/DESTINATION registers
//! (or reference counts on the queued device). A frame named by the
//! hardware is simply *skipped* — "the kernel must either find another page
//! to remap, or wait until the transfer finishes" (§6). If the hardware is
//! merely in the DestLoaded state, the kernel fires an Inval to clear the
//! latched DESTINATION and retries.

use shrimp_devices::Device;
use shrimp_mem::{Pfn, Vpn, PAGE_SIZE};
use shrimp_mmu::PteFlags;
use shrimp_sim::MachineEventKind;

use crate::process::{Pid, VPage};
use crate::{Node, Trap};

impl<D: Device> Node<D> {
    /// Allocates a frame for `(pid, vpn)`, evicting under memory
    /// pressure. The requester is charged one demand allocation in its
    /// per-process pager account; eviction costs land on the *victim's*
    /// account in [`Node::evict_frame`] — under tenant churn the two
    /// differ, which is exactly what the accounting exists to show.
    ///
    /// # Errors
    ///
    /// [`Trap::OutOfMemory`] when every frame is pinned, hardware-held or
    /// otherwise unreclaimable.
    pub(crate) fn alloc_frame_evicting(&mut self, pid: Pid, vpn: Vpn) -> Result<Pfn, Trap> {
        debug_assert!(
            self.procs.get(&pid).and_then(|p| p.vpages.get(&vpn)).and_then(VPage::pfn).is_none(),
            "demand alloc for a page already resident ({pid}, {vpn})"
        );
        loop {
            if let Ok(pfn) = self.frames.alloc() {
                if let Some(proc) = self.procs.get_mut(&pid) {
                    proc.pager.demand_allocs += 1;
                }
                return Ok(pfn);
            }
            self.evict_one()?;
        }
    }

    /// Evicts one page using the second-chance clock.
    ///
    /// # Errors
    ///
    /// [`Trap::OutOfMemory`] if no page is evictable.
    pub(crate) fn evict_one(&mut self) -> Result<(), Trap> {
        let mut inval_tried = false;
        // Each page can be skipped at most twice (reference bit, hardware);
        // beyond that nothing is reclaimable.
        let max_scans = self.resident_fifo.len() * 2 + 1;
        for _ in 0..max_scans {
            let Some(pfn) = self.resident_fifo.pop_front() else {
                return Err(Trap::OutOfMemory);
            };

            // Pinned by a traditional DMA transfer.
            if self.pinned.get(&pfn).copied().unwrap_or(0) > 0 {
                self.resident_fifo.push_back(pfn);
                continue;
            }

            // Invariant I4: never remap a frame the UDMA hardware names.
            if self.machine.udma().frame_in_use(pfn) {
                if !inval_tried {
                    // "If the hardware is in the DestLoaded state, the
                    // kernel may also cause an Inval event in order to
                    // clear the DESTINATION register."
                    self.machine.kernel_inval_udma();
                    inval_tried = true;
                }
                if self.machine.udma().frame_in_use(pfn) {
                    self.stats.bump("i4_skips");
                    self.resident_fifo.push_back(pfn);
                    continue;
                }
            }

            let (pid, vpn) = *self.frame_owner.get(&pfn).expect("resident frame has an owner");

            // Second chance: recently referenced pages get another lap —
            // "remapped pages are usually those which have not been
            // accessed for a long time".
            let referenced = self
                .procs
                .get(&pid)
                .and_then(|p| p.pt.get(vpn))
                .is_some_and(|pte| pte.flags.contains(PteFlags::REFERENCED));
            if referenced {
                let proc = self.procs.get_mut(&pid).expect("owner exists");
                proc.pt.clear_flags(vpn, PteFlags::REFERENCED);
                self.machine.mmu_mut().flush_page(vpn);
                self.resident_fifo.push_back(pfn);
                continue;
            }

            self.evict_frame(pfn, pid, vpn);
            return Ok(());
        }
        Err(Trap::OutOfMemory)
    }

    /// Unmaps and reclaims one frame, cleaning it first if dirty.
    fn evict_frame(&mut self, pfn: Pfn, pid: Pid, vpn: Vpn) {
        let layout = self.machine.layout();
        let proc = self.procs.get_mut(&pid).expect("owner exists");
        let pte = proc.pt.get(vpn).copied().expect("resident page is mapped");
        let writable = proc.vpages.get(&vpn).map(VPage::writable).unwrap_or(false);
        let was_dirty = pte.is_dirty();
        let has_slot = self.swap_slots.contains_key(&(pid, vpn));

        // Where do the contents go?
        let new_state = if was_dirty || has_slot {
            let slot = *self.swap_slots.entry((pid, vpn)).or_insert_with(|| self.swap.alloc());
            if was_dirty || !self.swap.contains(slot) {
                // Clean: write the frame to backing store.
                let frame =
                    self.machine.mem().frame(pfn).expect("resident frame in range").to_vec();
                self.swap.write(slot, &frame);
                let io = self.machine.cost().disk_seek
                    + self.machine.cost().disk_rotation
                    + self.machine.cost().disk_transfer(PAGE_SIZE);
                self.machine.advance(io);
                self.stats.bump("page_outs");
                if let Some(proc) = self.procs.get_mut(&pid) {
                    proc.pager.page_outs += 1;
                }
            }
            VPage::Swapped { slot, writable }
        } else {
            // Never written and never swapped: revert to zero-fill.
            VPage::Untouched { writable }
        };

        // Invariant I2: the proxy mapping dies with the real mapping.
        let proc = self.procs.get_mut(&pid).expect("owner exists");
        proc.pager.evictions += 1;
        proc.pt.unmap(vpn);
        proc.vpages.insert(vpn, new_state);
        let proxy_vpn =
            layout.proxy_of_virt(vpn.base()).expect("user pages live in the memory region").page();
        proc.pt.unmap(proxy_vpn);
        self.machine.mmu_mut().flush_page(vpn);
        self.machine.mmu_mut().flush_page(proxy_vpn);
        let pte_cost = self.machine.cost().pte_update * 2;
        self.machine.advance(pte_cost);

        self.frame_owner.remove(&pfn);
        self.frames.free(pfn);
        self.machine.record_event(MachineEventKind::Evicted {
            pid: u64::from(pid.raw()),
            vpn: vpn.raw(),
            pfn: pfn.raw(),
        });
        self.stats.bump("evictions");
    }

    /// Cleans one resident dirty page: writes it to backing store, clears
    /// its DIRTY bit and write-protects its proxy page (maintaining I3).
    ///
    /// Returns `false` without cleaning when the page is not resident, not
    /// dirty, or — the §6 race rule — currently involved in a DMA transfer
    /// ("the operating system must make sure not to clear the dirty bit if
    /// a DMA transfer to the page is in progress... the page should remain
    /// dirty").
    ///
    /// # Errors
    ///
    /// [`Trap::NoSuchProcess`] for an unknown pid.
    pub fn clean_page(&mut self, pid: Pid, vpn: Vpn) -> Result<bool, Trap> {
        let layout = self.machine.layout();
        let proc = self.procs.get(&pid).ok_or(Trap::NoSuchProcess(pid))?;
        let Some(VPage::Resident { pfn, .. }) = proc.vpages.get(&vpn).copied() else {
            return Ok(false);
        };
        let dirty = proc.pt.get(vpn).is_some_and(|pte| pte.is_dirty());
        if !dirty {
            return Ok(false);
        }
        if self.machine.udma().frame_in_use(pfn) {
            self.stats.bump("clean_deferred_dma");
            return Ok(false);
        }

        let slot = *self.swap_slots.entry((pid, vpn)).or_insert_with(|| self.swap.alloc());
        let frame = self.machine.mem().frame(pfn).expect("resident frame in range").to_vec();
        self.swap.write(slot, &frame);
        let io = self.machine.cost().disk_seek
            + self.machine.cost().disk_rotation
            + self.machine.cost().disk_transfer(PAGE_SIZE);
        self.machine.advance(io);

        let proc = self.procs.get_mut(&pid).expect("validated above");
        proc.pt.clear_flags(vpn, PteFlags::DIRTY);
        let proxy_vpn =
            layout.proxy_of_virt(vpn.base()).expect("user pages live in the memory region").page();
        proc.pt.clear_flags(proxy_vpn, PteFlags::WRITABLE);
        self.machine.mmu_mut().flush_page(vpn);
        self.machine.mmu_mut().flush_page(proxy_vpn);
        self.stats.bump("cleans");
        Ok(true)
    }

    /// Sweeps every resident page of every process through
    /// [`Node::clean_page`]; returns how many pages were cleaned.
    ///
    /// # Errors
    ///
    /// Never errs in practice (pids come from the process table) but
    /// propagates [`Trap`] for uniformity.
    pub fn clean_all(&mut self) -> Result<usize, Trap> {
        let targets: Vec<(Pid, Vpn)> = self
            .procs
            .iter()
            .flat_map(|(&pid, proc)| proc.vpages.keys().map(move |&vpn| (pid, vpn)))
            .collect();
        let mut cleaned = 0;
        for (pid, vpn) in targets {
            if self.clean_page(pid, vpn)? {
                cleaned += 1;
            }
        }
        Ok(cleaned)
    }

    /// Pins a frame (traditional DMA baseline); pinned frames are never
    /// evicted.
    pub(crate) fn pin_frame(&mut self, pfn: Pfn) {
        *self.pinned.entry(pfn).or_insert(0) += 1;
        self.stats.bump("pins");
    }

    /// Releases one pin on a frame.
    pub(crate) fn unpin_frame(&mut self, pfn: Pfn) {
        match self.pinned.get_mut(&pfn) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.pinned.remove(&pfn);
            }
            None => debug_assert!(false, "unpin of unpinned frame {pfn}"),
        }
        self.stats.bump("unpins");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeConfig;
    use shrimp_devices::StreamSink;
    use shrimp_machine::MachineConfig;
    use shrimp_mem::VirtAddr;

    /// A node with only `frames` user frames, to force eviction.
    fn tight_node(frames: u64) -> Node<StreamSink> {
        let config = NodeConfig {
            machine: MachineConfig { mem_bytes: 256 * PAGE_SIZE, ..MachineConfig::default() },
            user_frames: Some(frames),
        };
        Node::new(config, StreamSink::new("sink"))
    }

    #[test]
    fn eviction_under_pressure_preserves_contents() {
        let mut n = tight_node(4);
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 8, true).unwrap();
        // Touch 8 pages with distinct values — more than fit.
        for i in 0..8u64 {
            n.user_store(pid, VirtAddr::new(0x10000 + i * PAGE_SIZE), i as i64 + 1).unwrap();
        }
        assert!(n.stats().get("evictions") > 0);
        // Everything reads back correctly through page-ins.
        for i in 0..8u64 {
            assert_eq!(
                n.user_load(pid, VirtAddr::new(0x10000 + i * PAGE_SIZE)).unwrap(),
                i + 1,
                "page {i}"
            );
        }
        assert!(n.stats().get("page_ins") > 0);
        n.check_invariants().unwrap();
    }

    #[test]
    fn eviction_unmaps_proxy_mapping_i2() {
        let mut n = tight_node(3);
        let layout = n.machine().layout();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 6, true).unwrap();
        // Create a proxy mapping for page 0.
        n.user_store(pid, VirtAddr::new(0x10000), 7).unwrap();
        let vproxy = layout.proxy_of_virt(VirtAddr::new(0x10000)).unwrap();
        let _ = n.user_load(pid, vproxy).unwrap();
        // Force page 0 out by touching the rest.
        for i in 1..6u64 {
            n.user_store(pid, VirtAddr::new(0x10000 + i * PAGE_SIZE), 1).unwrap();
        }
        // Page 0 evicted: its proxy PTE must be gone too (I2).
        let proc = n.process(pid).unwrap();
        if proc.pt.get(VirtAddr::new(0x10000).page()).is_none() {
            assert!(proc.pt.get(vproxy.page()).is_none(), "I2: stale proxy mapping");
        }
        n.check_invariants().unwrap();
    }

    #[test]
    fn clean_write_protects_proxy_i3() {
        let mut n = tight_node(8);
        let layout = n.machine().layout();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 1, true).unwrap();
        n.user_store(pid, VirtAddr::new(0x10000), 42).unwrap(); // dirty
        let vproxy = layout.proxy_of_virt(VirtAddr::new(0x10000)).unwrap();
        n.user_store(pid, vproxy, 64).unwrap(); // writable proxy (dirty page)
        n.machine_mut().kernel_inval_udma(); // drop the latched initiation
        n.check_invariants().unwrap();

        assert!(n.clean_page(pid, VirtAddr::new(0x10000).page()).unwrap());
        // After cleaning: page clean, proxy write-protected, swap has data.
        let proc = n.process(pid).unwrap();
        assert!(!proc.pt.get(VirtAddr::new(0x10000).page()).unwrap().is_dirty());
        assert!(!proc.pt.get(vproxy.page()).unwrap().is_writable());
        assert_eq!(n.swap().write_count(), 1);
        n.check_invariants().unwrap();

        // Naming the page as a destination again re-dirties via the fault.
        n.user_store(pid, vproxy, 64).unwrap();
        assert_eq!(n.stats().get("i3_write_enables"), 1);
        n.check_invariants().unwrap();
    }

    #[test]
    fn clean_skipped_while_dma_in_flight() {
        let mut n = tight_node(8);
        let layout = n.machine().layout();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 1, true).unwrap();
        n.grant_device_proxy(pid, 0, 1, true).unwrap();
        n.user_store(pid, VirtAddr::new(0x10000), 42).unwrap();
        // Start a transfer sourcing the page.
        let vdev = VirtAddr::new(shrimp_mem::DEV_PROXY_BASE);
        let vproxy = layout.proxy_of_virt(VirtAddr::new(0x10000)).unwrap();
        n.user_store(pid, vdev, 256).unwrap();
        let status = udma_core::UdmaStatus::unpack(n.user_load(pid, vproxy).unwrap());
        assert!(status.started(), "{status}");
        // The §6 race rule: cleaning is refused mid-transfer.
        assert!(!n.clean_page(pid, VirtAddr::new(0x10000).page()).unwrap());
        assert_eq!(n.stats().get("clean_deferred_dma"), 1);
        n.check_invariants().unwrap();
    }

    #[test]
    fn i4_frame_held_by_hardware_is_not_evicted() {
        // Slow bus + fast paging disk so the in-flight transfer outlives
        // many eviction passes.
        let cost = shrimp_sim::CostModel {
            bus_mb_per_s: 0.05, // one page takes ~82 ms on the bus
            disk_seek: shrimp_sim::SimDuration::from_us(10.0),
            disk_rotation: shrimp_sim::SimDuration::from_us(10.0),
            disk_mb_per_s: 1000.0,
            ..shrimp_sim::CostModel::default()
        };
        let config = NodeConfig {
            machine: MachineConfig { mem_bytes: 256 * PAGE_SIZE, cost, ..MachineConfig::default() },
            user_frames: Some(3),
        };
        let mut n = Node::new(config, StreamSink::new("sink"));
        let layout = n.machine().layout();
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 8, true).unwrap();
        n.grant_device_proxy(pid, 0, 1, true).unwrap();
        // Start a long transfer from page 0.
        n.user_store(pid, VirtAddr::new(0x10000), 1).unwrap();
        let vdev = VirtAddr::new(shrimp_mem::DEV_PROXY_BASE);
        let vproxy = layout.proxy_of_virt(VirtAddr::new(0x10000)).unwrap();
        n.user_store(pid, vdev, PAGE_SIZE as i64).unwrap();
        let status = udma_core::UdmaStatus::unpack(n.user_load(pid, vproxy).unwrap());
        assert!(status.started());
        let held =
            n.process(pid).unwrap().vpages[&VirtAddr::new(0x10000).page()].pfn().expect("resident");

        // Thrash memory: the held frame must survive every eviction pass.
        for i in 1..8u64 {
            n.user_store(pid, VirtAddr::new(0x10000 + i * PAGE_SIZE), 1).unwrap();
        }
        assert!(n.stats().get("i4_skips") > 0, "the pager must have skipped the frame");
        assert_eq!(
            n.process(pid).unwrap().vpages[&VirtAddr::new(0x10000).page()].pfn(),
            Some(held),
            "I4: frame named by hardware was remapped"
        );
        n.check_invariants().unwrap();
    }

    #[test]
    fn pinned_frames_survive_pressure() {
        let mut n = tight_node(3);
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 6, true).unwrap();
        n.user_store(pid, VirtAddr::new(0x10000), 9).unwrap();
        let pfn = n.process(pid).unwrap().vpages[&VirtAddr::new(0x10000).page()].pfn().unwrap();
        n.pin_frame(pfn);
        for i in 1..6u64 {
            n.user_store(pid, VirtAddr::new(0x10000 + i * PAGE_SIZE), 1).unwrap();
        }
        assert_eq!(n.process(pid).unwrap().vpages[&VirtAddr::new(0x10000).page()].pfn(), Some(pfn));
        n.unpin_frame(pfn);
    }

    #[test]
    fn out_of_memory_when_everything_pinned() {
        let mut n = tight_node(2);
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 4, true).unwrap();
        for i in 0..2u64 {
            n.user_store(pid, VirtAddr::new(0x10000 + i * PAGE_SIZE), 1).unwrap();
            let pfn = n.process(pid).unwrap().vpages
                [&VirtAddr::new(0x10000 + i * PAGE_SIZE).page()]
                .pfn()
                .unwrap();
            n.pin_frame(pfn);
        }
        let err = n.user_store(pid, VirtAddr::new(0x10000 + 2 * PAGE_SIZE), 1).unwrap_err();
        assert_eq!(err, Trap::OutOfMemory);
    }

    #[test]
    fn untouched_clean_pages_revert_to_zero_fill() {
        let mut n = tight_node(2);
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 4, true).unwrap();
        // Only read pages (clean): evictions need no swap writes.
        for i in 0..4u64 {
            let _ = n.user_load(pid, VirtAddr::new(0x10000 + i * PAGE_SIZE)).unwrap();
        }
        assert!(n.stats().get("evictions") > 0);
        assert_eq!(n.stats().get("page_outs"), 0, "clean pages need no cleaning");
        assert_eq!(n.swap().write_count(), 0);
    }

    #[test]
    fn pager_accounts_are_per_process() {
        let mut n = tight_node(4);
        let a = n.spawn();
        let b = n.spawn();
        n.mmap(a, 0x10000, 4, true).unwrap();
        n.mmap(b, 0x10000, 4, true).unwrap();
        for i in 0..4u64 {
            n.user_store(a, VirtAddr::new(0x10000 + i * PAGE_SIZE), 1).unwrap();
        }
        // B's demand allocations squeeze A out: the requester and the
        // victim of the pressure are different processes.
        for i in 0..4u64 {
            n.user_store(b, VirtAddr::new(0x10000 + i * PAGE_SIZE), 2).unwrap();
        }
        let pa = n.process(a).unwrap().pager;
        let pb = n.process(b).unwrap().pager;
        assert_eq!(pa.demand_allocs, 4, "A touched 4 pages");
        assert_eq!(pb.demand_allocs, 4, "B touched 4 pages");
        assert!(pa.evictions > 0, "the victim is charged for evictions");
        assert_eq!(
            pa.evictions + pb.evictions,
            n.stats().get("evictions"),
            "per-process evictions partition the node total"
        );
        assert_eq!(
            pa.page_outs + pb.page_outs,
            n.stats().get("page_outs"),
            "per-process page-outs partition the node total"
        );
        n.check_invariants().unwrap();
    }

    #[test]
    fn clean_all_sweeps_dirty_pages() {
        let mut n = tight_node(8);
        let pid = n.spawn();
        n.mmap(pid, 0x10000, 3, true).unwrap();
        for i in 0..3u64 {
            n.user_store(pid, VirtAddr::new(0x10000 + i * PAGE_SIZE), 5).unwrap();
        }
        assert_eq!(n.clean_all().unwrap(), 3);
        assert_eq!(n.clean_all().unwrap(), 0, "second sweep finds nothing dirty");
    }
}
