//! Minimal, dependency-free property-testing shim.
//!
//! This workspace must build with **no registry access at all** (the
//! environments it grows in are fully offline), so the real `proptest`
//! crate cannot be downloaded. This crate provides the subset of its API
//! the test suite actually uses — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_oneof!`, `any`, `Just`, ranges, tuples,
//! `prop_map` and `collection::vec` — backed by a deterministic SplitMix64
//! generator. There is no shrinking: a failing case reports its case
//! number and message, and re-runs reproduce it exactly (generation is
//! seeded per test by a fixed constant).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// Deterministic generator.
// ---------------------------------------------------------------------

/// SplitMix64 — the same tiny generator the simulator uses in-tree.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------
// Failure reporting.
// ---------------------------------------------------------------------

/// A failed test case (the only variant this shim distinguishes).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Marks the current case as failed with `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }

    /// Alias used by some call sites of the real crate.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration. Only `cases` is honoured; `max_shrink_iters`
/// exists so `..ProptestConfig::default()` spreads stay meaningful (this
/// shim never shrinks).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
    /// Accepted for source compatibility with the real crate; unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

// ---------------------------------------------------------------------
// Strategies.
// ---------------------------------------------------------------------

/// A recipe for generating values of `Value`.
///
/// Unlike the real crate there is no value tree and no shrinking —
/// `generate` produces a value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between same-valued strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `arms`; must be non-empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.next_below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % width;
                (self.start as i128 + off as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % width;
                (lo as i128 + off as i128) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

// ---------------------------------------------------------------------
// `any::<T>()`.
// ---------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Produces an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Debug, Default)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

// ---------------------------------------------------------------------
// Collections.
// ---------------------------------------------------------------------

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a `vec` length specification.
    pub trait IntoSizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.next_below((self.end - self.start) as u64) as usize
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.next_below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `elem` with a length drawn from `size`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }
}

// ---------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------

/// Asserts a condition inside a property, failing the case (not
/// panicking) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(::std::boxed::Box::new($arm) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,)+
        ])
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // Fixed seed: deterministic, reproducible runs (no shrinking).
            let mut rng = $crate::TestRng::new(0x5348_5249_4d50_0001);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("property `{}` failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// The subset of the real crate's prelude that the workspace uses.
pub mod prelude {
    pub use crate::collection as prop_collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, AnyStrategy, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// Mirror of the real crate's `prelude::prop` re-export namespace.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::collection;
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (1..=4u8).generate(&mut rng);
            assert!((1..=4).contains(&w));
            let s = (-5i64..9).generate(&mut rng);
            assert!((-5..9).contains(&s));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = TestRng::new(11);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(strat.generate(&mut rng) - 1u32) as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn vec_respects_size_specs() {
        let mut rng = TestRng::new(13);
        for _ in 0..200 {
            let v = collection::vec(0u64..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let w = collection::vec(any::<bool>(), 4usize).generate(&mut rng);
            assert_eq!(w.len(), 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn macro_wires_args_and_asserts(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            if flag {
                prop_assert_eq!(x + 1, 1 + x, "addition commutes for {}", x);
            }
        }
    }

    proptest! {
        #[test]
        fn macro_defaults_to_256_cases(v in collection::vec(any::<u8>(), 0..8)) {
            prop_assert!(v.len() < 8);
        }
    }
}
