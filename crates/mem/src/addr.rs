//! Virtual/physical address and page-number newtypes.

use std::fmt;
use std::ops::{Add, Sub};

/// Page size in bytes. The paper's platform uses 4 KB x86 pages.
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Mask selecting the within-page offset bits.
pub const PAGE_MASK: u64 = PAGE_SIZE - 1;

macro_rules! addr_type {
    ($(#[$doc:meta])* $name:ident, $page:ident, $(#[$pdoc:meta])*) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw address.
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// The raw address value.
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// The page this address falls in.
            pub const fn page(self) -> $page {
                $page(self.0 >> PAGE_SHIFT)
            }

            /// The offset within the page.
            pub const fn page_offset(self) -> u64 {
                self.0 & PAGE_MASK
            }

            /// True when page-aligned.
            pub const fn is_page_aligned(self) -> bool {
                self.page_offset() == 0
            }

            /// True when aligned to `n` bytes (`n` must be a power of two).
            pub const fn is_aligned_to(self, n: u64) -> bool {
                self.0 & (n - 1) == 0
            }

            /// Bytes remaining on this address's page, counting the
            /// addressed byte itself (`PAGE_SIZE` when page-aligned).
            pub const fn bytes_to_page_end(self) -> u64 {
                PAGE_SIZE - self.page_offset()
            }

            /// Checked addition of a byte offset.
            pub fn checked_add(self, bytes: u64) -> Option<Self> {
                self.0.checked_add(bytes).map($name)
            }
        }

        impl Add<u64> for $name {
            type Output = $name;
            fn add(self, rhs: u64) -> $name {
                $name(self.0 + rhs)
            }
        }

        impl Sub<u64> for $name {
            type Output = $name;
            fn sub(self, rhs: u64) -> $name {
                $name(self.0 - rhs)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                $name(raw)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        $(#[$pdoc])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $page(u64);

        impl $page {
            /// Wraps a raw page number.
            pub const fn new(raw: u64) -> Self {
                $page(raw)
            }

            /// The raw page number.
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// The first address on this page.
            pub const fn base(self) -> $name {
                $name(self.0 << PAGE_SHIFT)
            }

            /// The address at `offset` bytes into this page.
            ///
            /// # Panics
            ///
            /// Panics if `offset >= PAGE_SIZE`.
            pub fn addr(self, offset: u64) -> $name {
                assert!(offset < PAGE_SIZE, "page offset {offset} out of range");
                $name((self.0 << PAGE_SHIFT) | offset)
            }

            /// The next page.
            pub const fn next(self) -> $page {
                $page(self.0 + 1)
            }
        }

        impl fmt::Display for $page {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}#{}", stringify!($page), self.0)
            }
        }
    };
}

addr_type!(
    /// A virtual address in some process's address space.
    VirtAddr,
    Vpn,
    /// A virtual page number.
);

addr_type!(
    /// A physical address on the simulated machine's bus.
    PhysAddr,
    Pfn,
    /// A physical page frame number.
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_decomposition() {
        let va = VirtAddr::new(0x1234);
        assert_eq!(va.page(), Vpn::new(1));
        assert_eq!(va.page_offset(), 0x234);
        assert_eq!(va.page().addr(0x234), va);
    }

    #[test]
    fn alignment_checks() {
        assert!(VirtAddr::new(0x2000).is_page_aligned());
        assert!(!VirtAddr::new(0x2001).is_page_aligned());
        assert!(PhysAddr::new(0x104).is_aligned_to(4));
        assert!(!PhysAddr::new(0x106).is_aligned_to(4));
    }

    #[test]
    fn bytes_to_page_end() {
        assert_eq!(VirtAddr::new(0x1000).bytes_to_page_end(), PAGE_SIZE);
        assert_eq!(VirtAddr::new(0x1ffe).bytes_to_page_end(), 2);
    }

    #[test]
    fn page_base_and_next() {
        let p = Pfn::new(3);
        assert_eq!(p.base(), PhysAddr::new(0x3000));
        assert_eq!(p.next(), Pfn::new(4));
    }

    #[test]
    fn arithmetic() {
        let pa = PhysAddr::new(0x100);
        assert_eq!((pa + 0x10).raw(), 0x110);
        assert_eq!((pa - 0x10).raw(), 0xf0);
        assert_eq!(pa.checked_add(u64::MAX), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn page_addr_offset_bounds() {
        let _ = Vpn::new(0).addr(PAGE_SIZE);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(PhysAddr::new(0xbeef).to_string(), "0xbeef");
        assert_eq!(format!("{:x}", VirtAddr::new(0xcafe)), "cafe");
    }
}
