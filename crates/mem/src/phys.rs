//! Simulated physical memory: a flat byte array with bounds-checked access.

use crate::{MemError, Pfn, PhysAddr, PAGE_SIZE};

/// The installed physical memory of one simulated node.
///
/// # Example
///
/// ```
/// use shrimp_mem::{PhysAddr, PhysMemory};
///
/// let mut mem = PhysMemory::new(64 * 1024);
/// mem.write(PhysAddr::new(0x100), b"hello")?;
/// assert_eq!(mem.read_vec(PhysAddr::new(0x100), 5)?, b"hello");
/// # Ok::<(), shrimp_mem::MemError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhysMemory {
    bytes: Vec<u8>,
}

impl PhysMemory {
    /// Installs `size` bytes of zeroed memory.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not page-aligned.
    pub fn new(size: u64) -> Self {
        assert_eq!(size % PAGE_SIZE, 0, "memory size must be page-aligned");
        PhysMemory { bytes: vec![0; size as usize] }
    }

    /// Installed bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Number of page frames.
    pub fn frame_count(&self) -> u64 {
        self.size() / PAGE_SIZE
    }

    fn check(&self, pa: PhysAddr, len: u64) -> Result<(usize, usize), MemError> {
        let start = pa.raw();
        let end = start
            .checked_add(len)
            .filter(|&e| e <= self.size())
            .ok_or(MemError::OutOfRange { addr: start, len })?;
        Ok((start as usize, end as usize))
    }

    /// Borrows `len` bytes starting at `pa`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range exceeds installed memory.
    pub fn read(&self, pa: PhysAddr, len: u64) -> Result<&[u8], MemError> {
        let (s, e) = self.check(pa, len)?;
        Ok(&self.bytes[s..e])
    }

    /// Copies `len` bytes starting at `pa` into a fresh `Vec`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range exceeds installed memory.
    pub fn read_vec(&self, pa: PhysAddr, len: u64) -> Result<Vec<u8>, MemError> {
        self.read(pa, len).map(<[u8]>::to_vec)
    }

    /// Mutably borrows `len` bytes starting at `pa` — the destination side
    /// of a device→memory DMA retirement, filled in place so no
    /// intermediate buffer is ever materialized.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range exceeds installed memory.
    pub fn slice_mut(&mut self, pa: PhysAddr, len: u64) -> Result<&mut [u8], MemError> {
        let (s, e) = self.check(pa, len)?;
        Ok(&mut self.bytes[s..e])
    }

    /// Writes `data` starting at `pa`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range exceeds installed memory.
    pub fn write(&mut self, pa: PhysAddr, data: &[u8]) -> Result<(), MemError> {
        let (s, e) = self.check(pa, data.len() as u64)?;
        self.bytes[s..e].copy_from_slice(data);
        Ok(())
    }

    /// Copies `len` bytes from `src` in `src_mem` to `dst` here — the
    /// slice-to-slice path for memory↔memory movement between two nodes
    /// (e.g. packet delivery), with no intermediate `Vec`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if either range exceeds its memory.
    pub fn copy_from_mem(
        &mut self,
        dst: PhysAddr,
        src_mem: &PhysMemory,
        src: PhysAddr,
        len: u64,
    ) -> Result<(), MemError> {
        let (ss, se) = src_mem.check(src, len)?;
        let (ds, de) = self.check(dst, len)?;
        self.bytes[ds..de].copy_from_slice(&src_mem.bytes[ss..se]);
        Ok(())
    }

    /// Copies `len` bytes from `src` to `dst` within this memory (ranges
    /// may overlap) — the kernel bounce-buffer copy, done in place.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if either range exceeds installed memory.
    pub fn copy_within(&mut self, src: PhysAddr, dst: PhysAddr, len: u64) -> Result<(), MemError> {
        let (ss, _) = self.check(src, len)?;
        let (ds, _) = self.check(dst, len)?;
        self.bytes.copy_within(ss..ss + len as usize, ds);
        Ok(())
    }

    /// Fills `len` bytes at `pa` with `value`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range exceeds installed memory.
    pub fn fill(&mut self, pa: PhysAddr, len: u64, value: u8) -> Result<(), MemError> {
        let (s, e) = self.check(pa, len)?;
        self.bytes[s..e].fill(value);
        Ok(())
    }

    /// Reads a little-endian `u64` at `pa`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range exceeds installed memory.
    pub fn read_u64(&self, pa: PhysAddr) -> Result<u64, MemError> {
        let b = self.read(pa, 8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("read returned 8 bytes")))
    }

    /// Writes a little-endian `u64` at `pa`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range exceeds installed memory.
    pub fn write_u64(&mut self, pa: PhysAddr, v: u64) -> Result<(), MemError> {
        self.write(pa, &v.to_le_bytes())
    }

    /// Borrows a whole page frame.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the frame exceeds installed memory.
    pub fn frame(&self, pfn: Pfn) -> Result<&[u8], MemError> {
        self.read(pfn.base(), PAGE_SIZE)
    }

    /// Overwrites a whole page frame.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the frame exceeds installed memory, and
    /// panics if `data` is not exactly one page.
    pub fn write_frame(&mut self, pfn: Pfn, data: &[u8]) -> Result<(), MemError> {
        assert_eq!(data.len() as u64, PAGE_SIZE, "frame write must be one page");
        self.write(pfn.base(), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut m = PhysMemory::new(2 * PAGE_SIZE);
        m.write(PhysAddr::new(10), &[1, 2, 3]).unwrap();
        assert_eq!(m.read_vec(PhysAddr::new(10), 3).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn zero_initialized() {
        let m = PhysMemory::new(PAGE_SIZE);
        assert!(m.read(PhysAddr::new(0), PAGE_SIZE).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut m = PhysMemory::new(PAGE_SIZE);
        assert_eq!(
            m.read(PhysAddr::new(PAGE_SIZE - 1), 2),
            Err(MemError::OutOfRange { addr: PAGE_SIZE - 1, len: 2 })
        );
        assert!(m.write(PhysAddr::new(PAGE_SIZE), &[0]).is_err());
        // Overflowing ranges are rejected, not wrapped.
        assert!(m.read(PhysAddr::new(u64::MAX), 2).is_err());
    }

    #[test]
    fn u64_accessors() {
        let mut m = PhysMemory::new(PAGE_SIZE);
        m.write_u64(PhysAddr::new(16), 0xdead_beef_0bad_cafe).unwrap();
        assert_eq!(m.read_u64(PhysAddr::new(16)).unwrap(), 0xdead_beef_0bad_cafe);
    }

    #[test]
    fn frame_accessors() {
        let mut m = PhysMemory::new(4 * PAGE_SIZE);
        let page = vec![7u8; PAGE_SIZE as usize];
        m.write_frame(Pfn::new(2), &page).unwrap();
        assert_eq!(m.frame(Pfn::new(2)).unwrap(), &page[..]);
        assert_eq!(m.frame(Pfn::new(1)).unwrap()[0], 0);
    }

    #[test]
    fn fill_region() {
        let mut m = PhysMemory::new(PAGE_SIZE);
        m.fill(PhysAddr::new(8), 4, 0xaa).unwrap();
        assert_eq!(m.read_vec(PhysAddr::new(7), 6).unwrap(), vec![0, 0xaa, 0xaa, 0xaa, 0xaa, 0]);
    }

    #[test]
    fn slice_mut_fills_in_place() {
        let mut m = PhysMemory::new(PAGE_SIZE);
        m.slice_mut(PhysAddr::new(4), 3).unwrap().copy_from_slice(&[1, 2, 3]);
        assert_eq!(m.read_vec(PhysAddr::new(4), 3).unwrap(), vec![1, 2, 3]);
        assert!(m.slice_mut(PhysAddr::new(PAGE_SIZE - 1), 2).is_err());
    }

    #[test]
    fn copy_from_mem_moves_between_nodes() {
        let mut a = PhysMemory::new(PAGE_SIZE);
        let mut b = PhysMemory::new(PAGE_SIZE);
        a.write(PhysAddr::new(0x40), b"inter-node").unwrap();
        b.copy_from_mem(PhysAddr::new(0x80), &a, PhysAddr::new(0x40), 10).unwrap();
        assert_eq!(b.read(PhysAddr::new(0x80), 10).unwrap(), b"inter-node");
        assert!(b.copy_from_mem(PhysAddr::new(0), &a, PhysAddr::new(PAGE_SIZE), 1).is_err());
        assert!(b.copy_from_mem(PhysAddr::new(PAGE_SIZE), &a, PhysAddr::new(0), 1).is_err());
    }

    #[test]
    fn copy_within_allows_overlap() {
        let mut m = PhysMemory::new(PAGE_SIZE);
        m.write(PhysAddr::new(0), &[1, 2, 3, 4]).unwrap();
        m.copy_within(PhysAddr::new(0), PhysAddr::new(2), 4).unwrap();
        assert_eq!(m.read_vec(PhysAddr::new(0), 6).unwrap(), vec![1, 2, 1, 2, 3, 4]);
        assert!(m.copy_within(PhysAddr::new(PAGE_SIZE - 1), PhysAddr::new(0), 2).is_err());
    }

    #[test]
    fn frame_count() {
        assert_eq!(PhysMemory::new(8 * PAGE_SIZE).frame_count(), 8);
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn unaligned_size_rejected() {
        let _ = PhysMemory::new(100);
    }
}
