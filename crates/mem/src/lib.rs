//! Address types, physical memory, frame allocation, backing store and the
//! proxy-space layout for the SHRIMP UDMA simulator.
//!
//! The central concept from the paper modelled here is the **proxy space**
//! bijection (§4): every real memory address has an associated *memory
//! proxy* address at a fixed offset, and devices expose a *device proxy*
//! region whose addresses name DMA sources/destinations inside the device.
//! [`Layout`] classifies raw addresses into regions and implements
//! `PROXY()` / `PROXY⁻¹()`.
//!
//! # Example
//!
//! ```
//! use shrimp_mem::{Layout, PhysAddr, Region};
//!
//! let layout = Layout::new(8 * 1024 * 1024, 1024 * 4096);
//! let pa = PhysAddr::new(0x2345);
//! let proxy = layout.proxy_of_phys(pa).unwrap();
//! assert_eq!(layout.region_of_phys(proxy), Region::MemoryProxy);
//! assert_eq!(layout.phys_of_proxy(proxy).unwrap(), pa);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod backing;
mod error;
mod frames;
mod layout;
mod phys;

pub use addr::{Pfn, PhysAddr, VirtAddr, Vpn, PAGE_MASK, PAGE_SHIFT, PAGE_SIZE};
pub use backing::{BackingStore, SwapSlot};
pub use error::MemError;
pub use frames::FrameAllocator;
pub use layout::{Layout, Region, DEV_PROXY_BASE, MMIO_BASE, PROXY_OFFSET};
pub use phys::PhysMemory;
