//! Error type for address/memory operations.

use std::error::Error;
use std::fmt;

/// Errors from address classification and memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemError {
    /// The address is not in the real-memory region.
    NotMemory(u64),
    /// The address is not in the memory-proxy region.
    NotMemoryProxy(u64),
    /// The address is not in the device-proxy region.
    NotDeviceProxy(u64),
    /// A physical access fell outside installed memory.
    OutOfRange {
        /// The faulting address.
        addr: u64,
        /// Number of bytes the access covered.
        len: u64,
    },
    /// The frame allocator is out of free frames.
    OutOfFrames,
    /// A backing-store slot was referenced but never written.
    BadSwapSlot(u64),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::NotMemory(a) => write!(f, "address {a:#x} is not in real memory space"),
            MemError::NotMemoryProxy(a) => {
                write!(f, "address {a:#x} is not in memory proxy space")
            }
            MemError::NotDeviceProxy(a) => {
                write!(f, "address {a:#x} is not in device proxy space")
            }
            MemError::OutOfRange { addr, len } => {
                write!(f, "physical access [{addr:#x}, {addr:#x}+{len}) out of range")
            }
            MemError::OutOfFrames => write!(f, "no free physical frames"),
            MemError::BadSwapSlot(s) => write!(f, "backing-store slot {s} has no contents"),
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            MemError::NotMemory(0x10).to_string(),
            "address 0x10 is not in real memory space"
        );
        assert_eq!(MemError::OutOfFrames.to_string(), "no free physical frames");
        assert!(MemError::OutOfRange { addr: 0x20, len: 4 }.to_string().contains("0x20"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: Error + Send + Sync>(_: E) {}
        takes_err(MemError::OutOfFrames);
    }
}
