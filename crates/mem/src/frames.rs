//! Physical page-frame allocator.

use crate::{MemError, Pfn};

/// A free-list allocator over the machine's page frames.
///
/// Frames are handed out lowest-numbered first from an initial pool and
/// recycled LIFO, which keeps allocation deterministic.
///
/// # Example
///
/// ```
/// use shrimp_mem::FrameAllocator;
///
/// let mut alloc = FrameAllocator::new(4);
/// let f = alloc.alloc()?;
/// alloc.free(f);
/// # Ok::<(), shrimp_mem::MemError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameAllocator {
    total: u64,
    next_fresh: u64,
    free_list: Vec<Pfn>,
    allocated: u64,
}

impl FrameAllocator {
    /// An allocator over frames `0..total`.
    pub fn new(total: u64) -> Self {
        FrameAllocator { total, next_fresh: 0, free_list: Vec::new(), allocated: 0 }
    }

    /// An allocator over frames `first..total`, reserving `0..first` (e.g.
    /// for the kernel image).
    pub fn with_reserved(total: u64, first: u64) -> Self {
        assert!(first <= total, "reserved frames exceed total");
        FrameAllocator { total, next_fresh: first, free_list: Vec::new(), allocated: 0 }
    }

    /// Total frames managed (including reserved ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Frames currently allocated.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Frames currently available.
    pub fn free_frames(&self) -> u64 {
        (self.total - self.next_fresh) + self.free_list.len() as u64
    }

    /// Allocates one frame.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfFrames`] when no frame is available; callers (the
    /// kernel pager) respond by evicting a page.
    pub fn alloc(&mut self) -> Result<Pfn, MemError> {
        let pfn = if let Some(pfn) = self.free_list.pop() {
            pfn
        } else if self.next_fresh < self.total {
            let pfn = Pfn::new(self.next_fresh);
            self.next_fresh += 1;
            pfn
        } else {
            return Err(MemError::OutOfFrames);
        };
        self.allocated += 1;
        Ok(pfn)
    }

    /// Returns a frame to the pool.
    ///
    /// # Panics
    ///
    /// Panics if the frame was never handed out (double free or foreign
    /// frame), which would indicate a kernel bug.
    pub fn free(&mut self, pfn: Pfn) {
        assert!(pfn.raw() < self.next_fresh, "freeing frame {pfn} never allocated");
        assert!(!self.free_list.contains(&pfn), "double free of frame {pfn}");
        assert!(self.allocated > 0, "free with no outstanding allocations");
        self.free_list.push(pfn);
        self.allocated -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_lowest_first() {
        let mut a = FrameAllocator::new(3);
        assert_eq!(a.alloc().unwrap(), Pfn::new(0));
        assert_eq!(a.alloc().unwrap(), Pfn::new(1));
        assert_eq!(a.allocated(), 2);
        assert_eq!(a.free_frames(), 1);
    }

    #[test]
    fn recycles_lifo() {
        let mut a = FrameAllocator::new(3);
        let f0 = a.alloc().unwrap();
        let _f1 = a.alloc().unwrap();
        a.free(f0);
        assert_eq!(a.alloc().unwrap(), f0);
    }

    #[test]
    fn exhaustion() {
        let mut a = FrameAllocator::new(1);
        let f = a.alloc().unwrap();
        assert_eq!(a.alloc(), Err(MemError::OutOfFrames));
        a.free(f);
        assert!(a.alloc().is_ok());
    }

    #[test]
    fn reserved_frames_skipped() {
        let mut a = FrameAllocator::with_reserved(4, 2);
        assert_eq!(a.alloc().unwrap(), Pfn::new(2));
        assert_eq!(a.free_frames(), 1);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = FrameAllocator::new(2);
        let f = a.alloc().unwrap();
        let _g = a.alloc().unwrap();
        a.free(f);
        a.free(f);
    }

    #[test]
    #[should_panic(expected = "never allocated")]
    fn foreign_free_panics() {
        let mut a = FrameAllocator::new(2);
        a.free(Pfn::new(1));
    }
}
