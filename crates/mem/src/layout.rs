//! Address-space layout: memory, memory proxy, device proxy and MMIO
//! regions, and the `PROXY()` / `PROXY⁻¹()` bijection (paper §4).
//!
//! The paper lays the memory proxy space out "at some fixed offset from the
//! real memory space", so that `PROXY` and `PROXY⁻¹` "amount to nothing more
//! than" adding or subtracting that offset (§4, Figure 3). We use the same
//! constants for the virtual and physical manifestations, which keeps the
//! MMU mapping for proxy pages an ordinary page mapping.

use crate::{MemError, PhysAddr, VirtAddr};

/// Fixed offset between a real memory address and its memory-proxy address.
pub const PROXY_OFFSET: u64 = 0x1_0000_0000;
/// Base of the device proxy region.
pub const DEV_PROXY_BASE: u64 = 0x2_0000_0000;
/// Base of the memory-mapped device-register (MMIO) region, used by the
/// programmed-I/O baseline NIC (§9 comparison).
pub const MMIO_BASE: u64 = 0x3_0000_0000;

/// Which architectural region an address falls in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Region {
    /// Ordinary (real) memory.
    Memory,
    /// Memory proxy space: `PROXY(real memory)`.
    MemoryProxy,
    /// Device proxy space: names DMA sources/destinations inside a device.
    DeviceProxy,
    /// Memory-mapped device registers (not part of the UDMA mechanism).
    Mmio,
    /// Not decoded by anything on the bus.
    Invalid,
}

impl Region {
    /// True for either proxy region — the address patterns recognized by
    /// the UDMA hardware.
    pub fn is_proxy(self) -> bool {
        matches!(self, Region::MemoryProxy | Region::DeviceProxy)
    }
}

/// The address-space layout of one simulated node.
///
/// The same layout governs both virtual and physical spaces: each region of
/// physical space "has a corresponding region in the virtual space which can
/// be mapped to it" (§4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layout {
    mem_bytes: u64,
    dev_proxy_bytes: u64,
}

impl Layout {
    /// A layout with `mem_bytes` of real memory and `dev_proxy_bytes` of
    /// device proxy space.
    ///
    /// # Panics
    ///
    /// Panics if `mem_bytes` exceeds [`PROXY_OFFSET`] (regions would
    /// overlap) or `dev_proxy_bytes` exceeds the device proxy region size.
    pub fn new(mem_bytes: u64, dev_proxy_bytes: u64) -> Self {
        assert!(mem_bytes <= PROXY_OFFSET, "memory overlaps proxy region");
        assert!(dev_proxy_bytes <= MMIO_BASE - DEV_PROXY_BASE, "device proxy region too large");
        Layout { mem_bytes, dev_proxy_bytes }
    }

    /// Bytes of real memory.
    pub fn mem_bytes(&self) -> u64 {
        self.mem_bytes
    }

    /// Bytes of device proxy space.
    pub fn dev_proxy_bytes(&self) -> u64 {
        self.dev_proxy_bytes
    }

    fn region_of_raw(&self, raw: u64, mem_bound: u64) -> Region {
        if raw < mem_bound {
            Region::Memory
        } else if (PROXY_OFFSET..PROXY_OFFSET + mem_bound).contains(&raw) {
            Region::MemoryProxy
        } else if (DEV_PROXY_BASE..DEV_PROXY_BASE + self.dev_proxy_bytes).contains(&raw) {
            Region::DeviceProxy
        } else if raw >= MMIO_BASE {
            Region::Mmio
        } else {
            Region::Invalid
        }
    }

    /// Region of a physical address. The memory region is bounded by
    /// *installed* memory — the bus decodes nothing between the end of
    /// memory and the proxy regions.
    pub fn region_of_phys(&self, pa: PhysAddr) -> Region {
        self.region_of_raw(pa.raw(), self.mem_bytes)
    }

    /// Region of a virtual address. The virtual memory region spans the
    /// whole space below the proxy offset — virtual addresses are not
    /// limited by installed physical memory (that is what paging is for).
    pub fn region_of_virt(&self, va: VirtAddr) -> Region {
        self.region_of_raw(va.raw(), PROXY_OFFSET)
    }

    /// `PROXY(pa)`: the memory-proxy address of real address `pa`.
    ///
    /// # Errors
    ///
    /// [`MemError::NotMemory`] if `pa` is not in the real memory region.
    pub fn proxy_of_phys(&self, pa: PhysAddr) -> Result<PhysAddr, MemError> {
        match self.region_of_phys(pa) {
            Region::Memory => Ok(PhysAddr::new(pa.raw() + PROXY_OFFSET)),
            _ => Err(MemError::NotMemory(pa.raw())),
        }
    }

    /// `PROXY⁻¹(proxy)`: the real memory address behind a memory-proxy
    /// address — the translation the UDMA hardware applies (§5).
    ///
    /// # Errors
    ///
    /// [`MemError::NotMemoryProxy`] if `proxy` is not in memory proxy space.
    pub fn phys_of_proxy(&self, proxy: PhysAddr) -> Result<PhysAddr, MemError> {
        match self.region_of_phys(proxy) {
            Region::MemoryProxy => Ok(PhysAddr::new(proxy.raw() - PROXY_OFFSET)),
            _ => Err(MemError::NotMemoryProxy(proxy.raw())),
        }
    }

    /// `PROXY(va)` in virtual space.
    ///
    /// # Errors
    ///
    /// [`MemError::NotMemory`] if `va` is not in the ordinary-memory region
    /// of virtual space.
    pub fn proxy_of_virt(&self, va: VirtAddr) -> Result<VirtAddr, MemError> {
        match self.region_of_virt(va) {
            Region::Memory => Ok(VirtAddr::new(va.raw() + PROXY_OFFSET)),
            _ => Err(MemError::NotMemory(va.raw())),
        }
    }

    /// `PROXY⁻¹(vproxy)` in virtual space.
    ///
    /// # Errors
    ///
    /// [`MemError::NotMemoryProxy`] if `vproxy` is not in the virtual
    /// memory-proxy region.
    pub fn virt_of_proxy(&self, vproxy: VirtAddr) -> Result<VirtAddr, MemError> {
        match self.region_of_virt(vproxy) {
            Region::MemoryProxy => Ok(VirtAddr::new(vproxy.raw() - PROXY_OFFSET)),
            _ => Err(MemError::NotMemoryProxy(vproxy.raw())),
        }
    }

    /// Decomposes a physical device-proxy address into `(device_page,
    /// page_offset)` — the interpretation SHRIMP uses to index the NIPT
    /// (§8: "a proxy page number and an offset on that page").
    ///
    /// # Errors
    ///
    /// [`MemError::NotDeviceProxy`] if the address is outside the device
    /// proxy region.
    pub fn dev_proxy_page(&self, pa: PhysAddr) -> Result<(u64, u64), MemError> {
        match self.region_of_phys(pa) {
            Region::DeviceProxy => {
                let rel = pa.raw() - DEV_PROXY_BASE;
                Ok((rel >> crate::PAGE_SHIFT, rel & crate::PAGE_MASK))
            }
            _ => Err(MemError::NotDeviceProxy(pa.raw())),
        }
    }

    /// The physical device-proxy address for `(device_page, offset)`.
    ///
    /// # Panics
    ///
    /// Panics if the resulting address would fall outside the device proxy
    /// region or `offset >= PAGE_SIZE`.
    pub fn dev_proxy_addr(&self, device_page: u64, offset: u64) -> PhysAddr {
        assert!(offset < crate::PAGE_SIZE, "offset {offset} out of page range");
        let rel = (device_page << crate::PAGE_SHIFT) | offset;
        assert!(rel < self.dev_proxy_bytes, "device page {device_page} out of range");
        PhysAddr::new(DEV_PROXY_BASE + rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;

    fn layout() -> Layout {
        Layout::new(16 * 1024 * 1024, 64 * PAGE_SIZE)
    }

    #[test]
    fn region_classification() {
        let l = layout();
        assert_eq!(l.region_of_phys(PhysAddr::new(0)), Region::Memory);
        assert_eq!(l.region_of_phys(PhysAddr::new(16 * 1024 * 1024 - 1)), Region::Memory);
        assert_eq!(l.region_of_phys(PhysAddr::new(16 * 1024 * 1024)), Region::Invalid);
        assert_eq!(l.region_of_phys(PhysAddr::new(PROXY_OFFSET)), Region::MemoryProxy);
        assert_eq!(l.region_of_phys(PhysAddr::new(DEV_PROXY_BASE)), Region::DeviceProxy);
        assert_eq!(
            l.region_of_phys(PhysAddr::new(DEV_PROXY_BASE + 64 * PAGE_SIZE)),
            Region::Invalid
        );
        assert_eq!(l.region_of_phys(PhysAddr::new(MMIO_BASE + 8)), Region::Mmio);
    }

    #[test]
    fn proxy_roundtrip_phys() {
        let l = layout();
        let pa = PhysAddr::new(0x1234);
        let proxy = l.proxy_of_phys(pa).unwrap();
        assert_eq!(proxy.raw(), PROXY_OFFSET + 0x1234);
        assert_eq!(l.phys_of_proxy(proxy).unwrap(), pa);
    }

    #[test]
    fn proxy_roundtrip_virt() {
        let l = layout();
        let va = VirtAddr::new(0x5678);
        let proxy = l.proxy_of_virt(va).unwrap();
        assert_eq!(l.virt_of_proxy(proxy).unwrap(), va);
    }

    #[test]
    fn proxy_of_non_memory_fails() {
        let l = layout();
        assert!(l.proxy_of_phys(PhysAddr::new(PROXY_OFFSET)).is_err());
        assert!(l.phys_of_proxy(PhysAddr::new(0x10)).is_err());
        assert!(l.proxy_of_virt(VirtAddr::new(DEV_PROXY_BASE)).is_err());
    }

    #[test]
    fn proxy_preserves_page_offset() {
        let l = layout();
        let pa = PhysAddr::new(3 * PAGE_SIZE + 17);
        let proxy = l.proxy_of_phys(pa).unwrap();
        assert_eq!(proxy.page_offset(), 17);
    }

    #[test]
    fn dev_proxy_decomposition() {
        let l = layout();
        let pa = l.dev_proxy_addr(5, 0x123);
        assert_eq!(l.dev_proxy_page(pa).unwrap(), (5, 0x123));
        assert_eq!(l.region_of_phys(pa), Region::DeviceProxy);
    }

    #[test]
    fn dev_proxy_rejects_memory_addr() {
        let l = layout();
        assert!(l.dev_proxy_page(PhysAddr::new(0x100)).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dev_proxy_addr_bounds() {
        let _ = layout().dev_proxy_addr(64, 0);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn oversized_memory_rejected() {
        let _ = Layout::new(PROXY_OFFSET + 1, PAGE_SIZE);
    }

    #[test]
    fn is_proxy_predicate() {
        assert!(Region::MemoryProxy.is_proxy());
        assert!(Region::DeviceProxy.is_proxy());
        assert!(!Region::Memory.is_proxy());
        assert!(!Region::Mmio.is_proxy());
    }
}
