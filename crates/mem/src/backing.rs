//! Backing store (swap) for the virtual memory system.
//!
//! The paper's invariant I3 is all about when page contents must reach
//! backing store; this module is the destination of those "clean" writes.

use std::collections::BTreeMap;

use crate::{MemError, PAGE_SIZE};

/// Identifier of one page-sized slot on the backing store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwapSlot(u64);

impl SwapSlot {
    /// The raw slot index.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A paging device holding evicted page contents.
///
/// # Example
///
/// ```
/// use shrimp_mem::BackingStore;
///
/// let mut swap = BackingStore::new();
/// let slot = swap.alloc();
/// swap.write(slot, &[0xab; 4096]);
/// assert_eq!(swap.read(slot)?[0], 0xab);
/// # Ok::<(), shrimp_mem::MemError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BackingStore {
    slots: BTreeMap<u64, Vec<u8>>,
    next_slot: u64,
    writes: u64,
    reads: u64,
}

impl BackingStore {
    /// An empty backing store.
    pub fn new() -> Self {
        BackingStore::default()
    }

    /// Reserves a fresh slot (contents undefined until written).
    pub fn alloc(&mut self) -> SwapSlot {
        let slot = SwapSlot(self.next_slot);
        self.next_slot += 1;
        slot
    }

    /// Writes one page of data to `slot` (a "clean" operation).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one page.
    pub fn write(&mut self, slot: SwapSlot, data: &[u8]) {
        assert_eq!(data.len() as u64, PAGE_SIZE, "swap writes are page-sized");
        self.slots.insert(slot.0, data.to_vec());
        self.writes += 1;
    }

    /// Reads the page stored in `slot`.
    ///
    /// # Errors
    ///
    /// [`MemError::BadSwapSlot`] if the slot was never written.
    pub fn read(&mut self, slot: SwapSlot) -> Result<&[u8], MemError> {
        self.reads += 1;
        self.slots.get(&slot.0).map(Vec::as_slice).ok_or(MemError::BadSwapSlot(slot.0))
    }

    /// True if `slot` holds data.
    pub fn contains(&self, slot: SwapSlot) -> bool {
        self.slots.contains_key(&slot.0)
    }

    /// Releases a slot.
    pub fn release(&mut self, slot: SwapSlot) {
        self.slots.remove(&slot.0);
    }

    /// Pages written to the store so far (clean operations).
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Pages read back so far (page-ins).
    pub fn read_count(&self) -> u64 {
        self.reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; PAGE_SIZE as usize]
    }

    #[test]
    fn write_read_roundtrip() {
        let mut s = BackingStore::new();
        let slot = s.alloc();
        s.write(slot, &page(0x5a));
        assert_eq!(s.read(slot).unwrap(), &page(0x5a)[..]);
    }

    #[test]
    fn unwritten_slot_errors() {
        let mut s = BackingStore::new();
        let slot = s.alloc();
        assert_eq!(s.read(slot).unwrap_err(), MemError::BadSwapSlot(slot.raw()));
    }

    #[test]
    fn slots_are_distinct() {
        let mut s = BackingStore::new();
        let a = s.alloc();
        let b = s.alloc();
        assert_ne!(a, b);
        s.write(a, &page(1));
        s.write(b, &page(2));
        assert_eq!(s.read(a).unwrap()[0], 1);
        assert_eq!(s.read(b).unwrap()[0], 2);
    }

    #[test]
    fn release_forgets_contents() {
        let mut s = BackingStore::new();
        let slot = s.alloc();
        s.write(slot, &page(9));
        assert!(s.contains(slot));
        s.release(slot);
        assert!(!s.contains(slot));
        assert!(s.read(slot).is_err());
    }

    #[test]
    fn traffic_counters() {
        let mut s = BackingStore::new();
        let slot = s.alloc();
        s.write(slot, &page(0));
        let _ = s.read(slot);
        let _ = s.read(slot);
        assert_eq!(s.write_count(), 1);
        assert_eq!(s.read_count(), 2);
    }

    #[test]
    #[should_panic(expected = "page-sized")]
    fn non_page_write_panics() {
        let mut s = BackingStore::new();
        let slot = s.alloc();
        s.write(slot, &[1, 2, 3]);
    }
}
