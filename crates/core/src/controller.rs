//! The basic UDMA controller (paper §5, Figure 4): the state machine wired
//! between the CPU's physical proxy accesses and the standard DMA engine.

use shrimp_dma::{DevicePort, DmaEngine, DmaTiming};
use shrimp_mem::{Layout, Pfn, PhysAddr, PhysMemory, Region};
use shrimp_sim::{Counter, SimTime, StatSet};

use crate::plan::{plan_transfer, PlanError};
use crate::state::{transition, Effect, UdmaEvent, UdmaState};
use crate::{store_value_as_count, UdmaStatus};

/// Device-specific error bit reported when the device rejects a transfer
/// (e.g. the §5 alignment example).
pub(crate) const DEV_ERR_REJECTED: u16 = 0x1;

/// The basic (non-queued) UDMA device: one latched destination, one
/// in-flight transfer.
///
/// The controller receives *physical* proxy addresses — the MMU has already
/// translated and permission-checked the user's virtual references — and
/// drives the [`DmaEngine`]. All methods take the current [`SimTime`] plus
/// mutable access to physical memory and the device port so completed
/// transfers can retire lazily ("the entire data transfer process requires
/// no CPU intervention" — data movement is attributed to the engine's
/// completion time, not to the caller).
#[derive(Debug)]
pub struct UdmaController {
    layout: Layout,
    state: UdmaState,
    /// Latched DESTINATION register (a proxy address) and COUNT.
    dest: Option<(PhysAddr, u64)>,
    /// SOURCE proxy address of the transfer in progress (for MATCH).
    active_source: Option<PhysAddr>,
    engine: DmaEngine,
    /// Per-access counts, kept as plain fields — `handle_store`/
    /// `handle_load` run once per simulated proxy reference. Rare events
    /// (errors, invals, terminations) stay in the keyed `rare` set.
    stores: Counter,
    loads: Counter,
    initiations: Counter,
    completions: Counter,
    rare: StatSet,
}

impl UdmaController {
    /// An idle controller for a node with address layout `layout`.
    pub fn new(layout: Layout, timing: DmaTiming) -> Self {
        UdmaController {
            layout,
            state: UdmaState::Idle,
            dest: None,
            active_source: None,
            engine: DmaEngine::new(timing),
            stores: Counter::new(),
            loads: Counter::new(),
            initiations: Counter::new(),
            completions: Counter::new(),
            rare: StatSet::new("udma"),
        }
    }

    /// Current hardware state (after lazy completion, pass `now` through
    /// [`UdmaController::poll`] first for an up-to-date answer).
    pub fn state(&self) -> UdmaState {
        self.state
    }

    /// The underlying DMA engine (register inspection, timing queries).
    pub fn engine(&self) -> &DmaEngine {
        &self.engine
    }

    /// Controller statistics as a reportable set.
    pub fn stats(&self) -> StatSet {
        let mut s = self.rare.clone();
        s.add("stores", self.stores.get());
        s.add("loads", self.loads.get());
        s.add("initiations", self.initiations.get());
        s.add("completions", self.completions.get());
        s
    }

    /// Retires a completed transfer, if any, and runs the TransferDone
    /// transition. Called internally by every access; exposed for the
    /// machine's event loop.
    pub fn poll(&mut self, now: SimTime, mem: &mut PhysMemory, port: &mut dyn DevicePort) {
        if self.state == UdmaState::Transferring && !self.engine.is_busy(now) {
            // Bus errors abort the transfer; either way the engine frees.
            match self.engine.retire(now, mem, port) {
                Ok(Some(_)) => self.completions.incr(),
                Ok(None) => {}
                Err(_) => self.rare.bump("bus_errors"),
            }
            let (next, effect) = transition(self.state, UdmaEvent::TransferDone);
            debug_assert_eq!(effect, Effect::Complete);
            self.state = next;
            self.active_source = None;
        }
    }

    /// A STORE of `value` to physical proxy address `proxy` — the first
    /// half of the initiation sequence, or an Inval when `value <= 0`.
    pub fn handle_store(
        &mut self,
        proxy: PhysAddr,
        value: i64,
        now: SimTime,
        mem: &mut PhysMemory,
        port: &mut dyn DevicePort,
    ) {
        debug_assert!(self.layout.region_of_phys(proxy).is_proxy());
        self.poll(now, mem, port);
        self.stores.incr();

        match store_value_as_count(value) {
            Some(nbytes) => {
                let (next, effect) = transition(self.state, UdmaEvent::Store);
                if effect == Effect::LatchDest {
                    self.dest = Some((proxy, nbytes));
                }
                self.state = next;
            }
            None => {
                self.rare.bump("invals");
                let (next, effect) = transition(self.state, UdmaEvent::Inval);
                if effect == Effect::ClearDest {
                    self.dest = None;
                }
                self.state = next;
            }
        }
    }

    /// A LOAD from physical proxy address `proxy` — the second half of the
    /// initiation sequence, or a status query. Returns the status word the
    /// LOAD deposits in the CPU register.
    pub fn handle_load(
        &mut self,
        proxy: PhysAddr,
        now: SimTime,
        mem: &mut PhysMemory,
        port: &mut dyn DevicePort,
    ) -> UdmaStatus {
        debug_assert!(self.layout.region_of_phys(proxy).is_proxy());
        self.poll(now, mem, port);
        self.loads.incr();

        match self.state {
            UdmaState::Idle => {
                UdmaStatus { initiation: true, invalid: true, ..UdmaStatus::default() }
            }
            UdmaState::Transferring => {
                let matches = self.active_source == Some(proxy);
                UdmaStatus {
                    initiation: true,
                    transferring: true,
                    matches,
                    remaining_bytes: self.engine.remaining_bytes(now),
                    ..UdmaStatus::default()
                }
            }
            UdmaState::DestLoaded => self.try_start(proxy, now, port),
        }
    }

    /// Attempts the DestLoaded → Transferring transition for source `proxy`.
    fn try_start(&mut self, proxy: PhysAddr, now: SimTime, port: &dyn DevicePort) -> UdmaStatus {
        let (dest, nbytes) = self.dest.expect("DestLoaded implies latched registers");

        let plan = match plan_transfer(&self.layout, dest, proxy, nbytes) {
            Ok(plan) => plan,
            Err(PlanError::WrongSpace) | Err(PlanError::NotProxy(_)) => {
                // BadLoad: back to Idle, report WRONG-SPACE.
                self.rare.bump("bad_loads");
                let (next, effect) = transition(self.state, UdmaEvent::BadLoad);
                debug_assert_eq!(effect, Effect::ClearDest);
                self.state = next;
                self.dest = None;
                return UdmaStatus {
                    initiation: true,
                    wrong_space: true,
                    invalid: true, // now Idle
                    ..UdmaStatus::default()
                };
            }
        };

        // Device-specific validation (§5's alignment example): the latched
        // registers are cleared and an error bit returned.
        if !port.validate(plan.dev_addr, plan.nbytes) {
            self.rare.bump("device_rejects");
            let (next, _) = transition(self.state, UdmaEvent::BadLoad);
            self.state = next;
            self.dest = None;
            return UdmaStatus {
                initiation: true,
                invalid: true,
                device_error: DEV_ERR_REJECTED,
                ..UdmaStatus::default()
            };
        }

        let (next, effect) = transition(self.state, UdmaEvent::Load);
        debug_assert_eq!(effect, Effect::StartTransfer);
        let service = port.service_time(plan.dev_addr, plan.nbytes);
        self.engine
            .start_with_service(
                plan.direction,
                plan.mem_addr,
                plan.dev_addr,
                plan.nbytes,
                now,
                service,
            )
            .expect("engine must be idle outside Transferring state");
        self.state = next;
        self.dest = None;
        self.active_source = Some(proxy);
        self.initiations.incr();

        UdmaStatus {
            initiation: false,
            transferring: true,
            matches: true, // the initiating load references the base address
            remaining_bytes: plan.nbytes,
            ..UdmaStatus::default()
        }
    }

    /// Books `count` replayed repetitions of the steady-state message
    /// cycle the machine layer verified against the event tail: one proxy
    /// STORE, three proxy LOADs (initiate, busy poll, completion poll),
    /// one initiation and one completion per message, plus the engine's
    /// own start/retire accounting. The controller must be Idle — the
    /// caller replays only after observing a completed cycle.
    pub fn replay_completed(&mut self, count: u64, nbytes: u64) {
        debug_assert_eq!(self.state, UdmaState::Idle, "replay requires an idle controller");
        self.stores.add(count);
        self.loads.add(3 * count);
        self.initiations.add(count);
        self.completions.add(count);
        self.engine.replay_retired(count, nbytes);
    }

    /// Kernel-privileged transfer termination — the extension §5 sketches:
    /// "although this design does not include a mechanism for software to
    /// terminate a transfer and force a transition from the Transferring
    /// state to the Idle state, it is not hard to imagine adding one. This
    /// could be useful for dealing with memory system errors that the DMA
    /// hardware cannot handle transparently."
    ///
    /// Drops any in-flight transfer without moving data and returns the
    /// machine to Idle. Returns `true` if a transfer was killed.
    pub fn kernel_terminate(&mut self) -> bool {
        let killed = self.engine.abort().is_some();
        self.state = UdmaState::Idle;
        self.active_source = None;
        self.dest = None;
        if killed {
            self.rare.bump("terminations");
        }
        killed
    }

    /// The page frames currently latched in the hardware SOURCE or
    /// DESTINATION registers — everything the kernel must treat as
    /// unremappable under invariant I4. Includes the DestLoaded-latched
    /// destination (the kernel may Inval to clear it, §6).
    pub fn frames_in_registers(&self) -> Vec<Pfn> {
        let mut frames = self.engine.frames_in_registers();
        if let Some((dest, nbytes)) = self.dest {
            if self.layout.region_of_phys(dest) == Region::MemoryProxy {
                let real = self.layout.phys_of_proxy(dest).expect("memory-proxy region checked");
                let first = real.page().raw();
                let last = (real.raw() + nbytes.max(1) - 1) >> shrimp_mem::PAGE_SHIFT;
                frames.extend((first..=last).map(Pfn::new));
            }
        }
        frames.sort_unstable();
        frames.dedup();
        frames
    }

    /// Kernel-visible check for invariant I4: is `pfn` named by the
    /// hardware registers?
    ///
    /// Answers directly from the latched `(base, count)` intervals — the
    /// engine's in-flight transfer and the DestLoaded destination — without
    /// materializing a frame list, so kernel sweeps over every owned frame
    /// (process exit, page-out eviction) stay O(1) per frame.
    pub fn frame_in_use(&self, pfn: Pfn) -> bool {
        if self.engine.frame_in_use(pfn) {
            return true;
        }
        let Some((dest, nbytes)) = self.dest else { return false };
        if self.layout.region_of_phys(dest) != Region::MemoryProxy {
            return false;
        }
        let real = self.layout.phys_of_proxy(dest).expect("memory-proxy region checked");
        let first = real.page().raw();
        let last = (real.raw() + nbytes.max(1) - 1) >> shrimp_mem::PAGE_SHIFT;
        (first..=last).contains(&pfn.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_dma::LoopbackPort;
    use shrimp_mem::PAGE_SIZE;
    use shrimp_sim::SimDuration;

    fn setup() -> (Layout, PhysMemory, LoopbackPort, UdmaController) {
        let layout = Layout::new(64 * PAGE_SIZE, 16 * PAGE_SIZE);
        let mem = PhysMemory::new(64 * PAGE_SIZE);
        let port = LoopbackPort::new(2 * PAGE_SIZE as usize);
        let udma = UdmaController::new(layout, DmaTiming::default());
        (layout, mem, port, udma)
    }

    #[test]
    fn two_reference_initiation_moves_data() {
        let (layout, mut mem, mut port, mut udma) = setup();
        mem.write(PhysAddr::new(0x2100), b"shrimp!").unwrap();

        let dest = layout.dev_proxy_addr(0, 0x80);
        let src = layout.proxy_of_phys(PhysAddr::new(0x2100)).unwrap();
        udma.handle_store(dest, 7, SimTime::ZERO, &mut mem, &mut port);
        assert_eq!(udma.state(), UdmaState::DestLoaded);
        let status = udma.handle_load(src, SimTime::ZERO, &mut mem, &mut port);
        assert!(status.started(), "status = {status}");
        assert!(status.matches);
        assert_eq!(status.remaining_bytes, 7);
        assert_eq!(udma.state(), UdmaState::Transferring);

        let done = SimTime::ZERO + udma.engine().duration_for(7);
        udma.poll(done, &mut mem, &mut port);
        assert_eq!(udma.state(), UdmaState::Idle);
        assert_eq!(&port.bytes()[0x80..0x87], b"shrimp!");
    }

    #[test]
    fn device_to_memory_transfer() {
        let (layout, mut mem, mut port, mut udma) = setup();
        port.dma_write(0x10, &[5, 6, 7, 8], SimTime::ZERO);

        let dest = layout.proxy_of_phys(PhysAddr::new(0x4000)).unwrap();
        let src = layout.dev_proxy_addr(0, 0x10);
        udma.handle_store(dest, 4, SimTime::ZERO, &mut mem, &mut port);
        let status = udma.handle_load(src, SimTime::ZERO, &mut mem, &mut port);
        assert!(status.started());

        let done = SimTime::ZERO + udma.engine().duration_for(4);
        udma.poll(done, &mut mem, &mut port);
        assert_eq!(mem.read_vec(PhysAddr::new(0x4000), 4).unwrap(), vec![5, 6, 7, 8]);
    }

    #[test]
    fn load_in_idle_reports_invalid() {
        let (layout, mut mem, mut port, mut udma) = setup();
        let src = layout.proxy_of_phys(PhysAddr::new(0x1000)).unwrap();
        let status = udma.handle_load(src, SimTime::ZERO, &mut mem, &mut port);
        assert!(status.initiation);
        assert!(status.invalid);
        assert!(status.should_retry());
    }

    #[test]
    fn mem_to_mem_is_bad_load() {
        let (layout, mut mem, mut port, mut udma) = setup();
        let a = layout.proxy_of_phys(PhysAddr::new(0x1000)).unwrap();
        let b = layout.proxy_of_phys(PhysAddr::new(0x2000)).unwrap();
        udma.handle_store(a, 16, SimTime::ZERO, &mut mem, &mut port);
        let status = udma.handle_load(b, SimTime::ZERO, &mut mem, &mut port);
        assert!(status.wrong_space);
        assert!(status.is_error());
        assert_eq!(udma.state(), UdmaState::Idle);
    }

    #[test]
    fn inval_cancels_partial_initiation() {
        let (layout, mut mem, mut port, mut udma) = setup();
        let dest = layout.dev_proxy_addr(0, 0);
        udma.handle_store(dest, 64, SimTime::ZERO, &mut mem, &mut port);
        assert_eq!(udma.state(), UdmaState::DestLoaded);
        // The I1 context-switch store: negative nbytes to any proxy address.
        udma.handle_store(dest, -1, SimTime::ZERO, &mut mem, &mut port);
        assert_eq!(udma.state(), UdmaState::Idle);
        // The victim's LOAD now reports a failed initiation.
        let src = layout.proxy_of_phys(PhysAddr::new(0x1000)).unwrap();
        let status = udma.handle_load(src, SimTime::ZERO, &mut mem, &mut port);
        assert!(status.initiation && status.invalid);
    }

    #[test]
    fn second_store_overwrites_registers() {
        let (layout, mut mem, mut port, mut udma) = setup();
        mem.write(PhysAddr::new(0x3000), &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let d1 = layout.dev_proxy_addr(0, 0x10);
        let d2 = layout.dev_proxy_addr(0, 0x20);
        udma.handle_store(d1, 8, SimTime::ZERO, &mut mem, &mut port);
        udma.handle_store(d2, 4, SimTime::ZERO, &mut mem, &mut port);
        let src = layout.proxy_of_phys(PhysAddr::new(0x3000)).unwrap();
        let status = udma.handle_load(src, SimTime::ZERO, &mut mem, &mut port);
        assert!(status.started());
        assert_eq!(status.remaining_bytes, 4);
        let done = SimTime::ZERO + udma.engine().duration_for(4);
        udma.poll(done, &mut mem, &mut port);
        assert_eq!(&port.bytes()[0x20..0x24], &[1, 2, 3, 4]);
        assert_eq!(&port.bytes()[0x10..0x14], &[0; 4], "first dest must be unused");
    }

    #[test]
    fn completion_polling_via_match_flag() {
        let (layout, mut mem, mut port, mut udma) = setup();
        let dest = layout.dev_proxy_addr(0, 0);
        let src = layout.proxy_of_phys(PhysAddr::new(0x1000)).unwrap();
        udma.handle_store(dest, 1024, SimTime::ZERO, &mut mem, &mut port);
        udma.handle_load(src, SimTime::ZERO, &mut mem, &mut port);

        // Mid-transfer: repeating the LOAD shows MATCH set, some remaining.
        let mid = SimTime::ZERO + udma.engine().duration_for(1024) / 2;
        let status = udma.handle_load(src, mid, &mut mem, &mut port);
        assert!(status.matches);
        assert!(status.transferring);
        assert!(status.remaining_bytes > 0 && status.remaining_bytes < 1024);

        // After completion: MATCH clear (device back in Idle).
        let done = SimTime::ZERO + udma.engine().duration_for(1024);
        let status = udma.handle_load(src, done, &mut mem, &mut port);
        assert!(!status.matches);
        assert!(status.invalid);
    }

    #[test]
    fn status_load_from_other_address_does_not_match() {
        let (layout, mut mem, mut port, mut udma) = setup();
        let dest = layout.dev_proxy_addr(0, 0);
        let src = layout.proxy_of_phys(PhysAddr::new(0x1000)).unwrap();
        let other = layout.proxy_of_phys(PhysAddr::new(0x5000)).unwrap();
        udma.handle_store(dest, 512, SimTime::ZERO, &mut mem, &mut port);
        udma.handle_load(src, SimTime::ZERO, &mut mem, &mut port);
        let status = udma.handle_load(other, SimTime::ZERO, &mut mem, &mut port);
        assert!(!status.matches);
        assert!(status.transferring);
        assert!(status.should_retry());
    }

    #[test]
    fn store_during_transfer_is_ignored() {
        let (layout, mut mem, mut port, mut udma) = setup();
        let dest = layout.dev_proxy_addr(0, 0);
        let src = layout.proxy_of_phys(PhysAddr::new(0x1000)).unwrap();
        udma.handle_store(dest, 256, SimTime::ZERO, &mut mem, &mut port);
        udma.handle_load(src, SimTime::ZERO, &mut mem, &mut port);
        // Another process's store while Transferring: no effect.
        udma.handle_store(dest, 64, SimTime::ZERO, &mut mem, &mut port);
        assert_eq!(udma.state(), UdmaState::Transferring);
        let done = SimTime::ZERO + udma.engine().duration_for(256);
        udma.poll(done, &mut mem, &mut port);
        assert_eq!(udma.state(), UdmaState::Idle);
    }

    #[test]
    fn device_rejection_sets_error_bits() {
        let (layout, mut mem, mut port, mut udma) = setup();
        // LoopbackPort validates bounds; ask for a transfer past its end.
        let dest = layout.dev_proxy_addr(1, PAGE_SIZE - 4);
        let src = layout.proxy_of_phys(PhysAddr::new(0x1000)).unwrap();
        udma.handle_store(dest, 64, SimTime::ZERO, &mut mem, &mut port);
        let status = udma.handle_load(src, SimTime::ZERO, &mut mem, &mut port);
        assert!(status.is_error());
        assert_ne!(status.device_error, 0);
        assert_eq!(udma.state(), UdmaState::Idle);
    }

    #[test]
    fn frames_in_registers_tracks_dest_and_engine() {
        let (layout, mut mem, mut port, mut udma) = setup();
        // DestLoaded with a memory-proxy destination spanning two pages.
        let dest = layout.proxy_of_phys(PhysAddr::new(2 * PAGE_SIZE - 8)).unwrap();
        udma.handle_store(dest, 16, SimTime::ZERO, &mut mem, &mut port);
        let frames = udma.frames_in_registers();
        assert_eq!(frames, vec![Pfn::new(1), Pfn::new(2)]);
        assert!(udma.frame_in_use(Pfn::new(1)));
        assert!(!udma.frame_in_use(Pfn::new(3)));

        // Start the transfer; the engine's memory side takes over.
        let src = layout.dev_proxy_addr(0, 0);
        udma.handle_load(src, SimTime::ZERO, &mut mem, &mut port);
        let frames = udma.frames_in_registers();
        assert_eq!(frames, vec![Pfn::new(1), Pfn::new(2)]);
        // The interval check agrees with the materialized list while the
        // engine holds the registers.
        for pfn in [Pfn::new(0), Pfn::new(1), Pfn::new(2), Pfn::new(3)] {
            assert_eq!(udma.frame_in_use(pfn), frames.contains(&pfn));
        }

        // After completion, nothing is in use.
        let done = SimTime::ZERO + udma.engine().duration_for(16);
        udma.poll(done, &mut mem, &mut port);
        assert!(udma.frames_in_registers().is_empty());
        assert!(!udma.frame_in_use(Pfn::new(1)));
    }

    #[test]
    fn kernel_terminate_kills_in_flight_transfer() {
        let (layout, mut mem, mut port, mut udma) = setup();
        mem.write(PhysAddr::new(0x1000), &[0xee; 64]).unwrap();
        let dest = layout.dev_proxy_addr(0, 0);
        let src = layout.proxy_of_phys(PhysAddr::new(0x1000)).unwrap();
        udma.handle_store(dest, 64, SimTime::ZERO, &mut mem, &mut port);
        udma.handle_load(src, SimTime::ZERO, &mut mem, &mut port);
        assert_eq!(udma.state(), UdmaState::Transferring);

        assert!(udma.kernel_terminate());
        assert_eq!(udma.state(), UdmaState::Idle);
        assert!(udma.frames_in_registers().is_empty(), "registers cleared");
        // The aborted transfer never delivered data.
        let done = SimTime::ZERO + udma.engine().duration_for(64);
        udma.poll(done, &mut mem, &mut port);
        assert_eq!(&port.bytes()[..4], &[0; 4]);
        // The device accepts fresh work immediately.
        udma.handle_store(dest, 4, done, &mut mem, &mut port);
        let status = udma.handle_load(src, done, &mut mem, &mut port);
        assert!(status.started());
    }

    #[test]
    fn kernel_terminate_on_idle_device_is_harmless() {
        let (_layout, _mem, _port, mut udma) = setup();
        assert!(!udma.kernel_terminate());
        assert_eq!(udma.state(), UdmaState::Idle);
    }

    #[test]
    fn kernel_terminate_clears_destloaded_latch() {
        let (layout, mut mem, mut port, mut udma) = setup();
        let dest = layout.dev_proxy_addr(0, 0);
        udma.handle_store(dest, 64, SimTime::ZERO, &mut mem, &mut port);
        assert_eq!(udma.state(), UdmaState::DestLoaded);
        assert!(!udma.kernel_terminate(), "no transfer was in flight");
        assert_eq!(udma.state(), UdmaState::Idle);
        assert!(udma.frames_in_registers().is_empty());
    }

    #[test]
    fn back_to_back_transfers() {
        let (layout, mut mem, mut port, mut udma) = setup();
        mem.write(PhysAddr::new(0x1000), &[0xaa; 8]).unwrap();
        mem.write(PhysAddr::new(0x2000), &[0xbb; 8]).unwrap();
        let mut now = SimTime::ZERO;
        for (addr, off) in [(0x1000u64, 0u64), (0x2000, 0x100)] {
            let dest = layout.dev_proxy_addr(0, off);
            let src = layout.proxy_of_phys(PhysAddr::new(addr)).unwrap();
            udma.handle_store(dest, 8, now, &mut mem, &mut port);
            let status = udma.handle_load(src, now, &mut mem, &mut port);
            assert!(status.started());
            now = now + udma.engine().duration_for(8) + SimDuration::from_nanos(1);
        }
        udma.poll(now, &mut mem, &mut port);
        assert_eq!(&port.bytes()[0..4], &[0xaa; 4]);
        assert_eq!(&port.bytes()[0x100..0x104], &[0xbb; 4]);
        assert_eq!(udma.stats().get("initiations"), 2);
        assert_eq!(udma.stats().get("completions"), 2);
    }
}
