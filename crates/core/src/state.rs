//! The UDMA hardware state machine (paper §5, Figure 5).
//!
//! The machine has three states and five transition events. Where Figure 5
//! depicts no transition for an event in a state, the event causes no state
//! change ("if no transition is depicted for a given event in a given
//! state, then that event does not cause a state transition").
//!
//! [`transition`] is a *total pure function* so it can be exhaustively and
//! property tested; the [`UdmaController`](crate::UdmaController) feeds it
//! events and executes the returned [`Effect`].

use std::fmt;

/// The three hardware states.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum UdmaState {
    /// No initiation in progress; ready for a destination STORE.
    #[default]
    Idle,
    /// Destination and count latched; waiting for the source LOAD.
    DestLoaded,
    /// The standard DMA engine is moving data.
    Transferring,
}

impl fmt::Display for UdmaState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UdmaState::Idle => "Idle",
            UdmaState::DestLoaded => "DestLoaded",
            UdmaState::Transferring => "Transferring",
        };
        f.write_str(s)
    }
}

/// Transition events recognized by the hardware.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UdmaEvent {
    /// A STORE of a positive `nbytes` value to a proxy address.
    Store,
    /// A STORE of a non-positive value to any valid proxy address — used by
    /// the kernel on every context switch (invariant I1) and by users to
    /// abandon a partial initiation.
    Inval,
    /// A LOAD from a proxy address in a *different* proxy region than the
    /// latched destination (the normal initiating/status load).
    Load,
    /// A LOAD from a proxy address in the *same* proxy region as the
    /// latched destination — a memory-to-memory or device-to-device request
    /// the basic device does not support.
    BadLoad,
    /// The standard DMA engine signalled completion.
    TransferDone,
}

/// The action the surrounding controller must take for a transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Effect {
    /// Nothing to do.
    None,
    /// Latch the stored address into DESTINATION and the value into COUNT.
    LatchDest,
    /// Clear DESTINATION/COUNT (Inval or BadLoad).
    ClearDest,
    /// Latch the loaded address into SOURCE and start the DMA engine.
    StartTransfer,
    /// The transfer finished; release the engine.
    Complete,
}

/// The total transition function of Figure 5.
///
/// Returns the next state and the controller effect. Impossible hardware
/// events (e.g. [`UdmaEvent::TransferDone`] outside
/// [`UdmaState::Transferring`]) are no-ops, keeping the function total for
/// property testing.
pub fn transition(state: UdmaState, event: UdmaEvent) -> (UdmaState, Effect) {
    use Effect as F;
    use UdmaEvent as E;
    use UdmaState as S;

    match (state, event) {
        // Idle: only a destination store leaves the state.
        (S::Idle, E::Store) => (S::DestLoaded, F::LatchDest),
        (S::Idle, _) => (S::Idle, F::None),

        // DestLoaded: the interesting state.
        (S::DestLoaded, E::Store) => (S::DestLoaded, F::LatchDest), // overwrite
        (S::DestLoaded, E::Inval) => (S::Idle, F::ClearDest),
        (S::DestLoaded, E::Load) => (S::Transferring, F::StartTransfer),
        (S::DestLoaded, E::BadLoad) => (S::Idle, F::ClearDest),
        (S::DestLoaded, E::TransferDone) => (S::DestLoaded, F::None),

        // Transferring: stores and loads are status-only; the engine runs
        // to completion regardless of scheduling (§6: "once started, a UDMA
        // transfer continues regardless of whether the process that started
        // it is de-scheduled").
        (S::Transferring, E::TransferDone) => (S::Idle, F::Complete),
        (S::Transferring, _) => (S::Transferring, F::None),
    }
}

#[cfg(test)]
mod tests {
    use super::Effect as F;
    use super::UdmaEvent as E;
    use super::UdmaState as S;
    use super::*;

    #[test]
    fn figure5_happy_path() {
        let (s, e) = transition(S::Idle, E::Store);
        assert_eq!((s, e), (S::DestLoaded, F::LatchDest));
        let (s, e) = transition(s, E::Load);
        assert_eq!((s, e), (S::Transferring, F::StartTransfer));
        let (s, e) = transition(s, E::TransferDone);
        assert_eq!((s, e), (S::Idle, F::Complete));
    }

    #[test]
    fn store_in_destloaded_overwrites() {
        assert_eq!(transition(S::DestLoaded, E::Store), (S::DestLoaded, F::LatchDest));
    }

    #[test]
    fn inval_terminates_partial_initiation() {
        assert_eq!(transition(S::DestLoaded, E::Inval), (S::Idle, F::ClearDest));
    }

    #[test]
    fn inval_in_idle_is_noop() {
        assert_eq!(transition(S::Idle, E::Inval), (S::Idle, F::None));
    }

    #[test]
    fn badload_returns_to_idle() {
        assert_eq!(transition(S::DestLoaded, E::BadLoad), (S::Idle, F::ClearDest));
    }

    #[test]
    fn load_in_idle_does_not_start() {
        assert_eq!(transition(S::Idle, E::Load), (S::Idle, F::None));
    }

    #[test]
    fn transferring_ignores_initiation_events() {
        for ev in [E::Store, E::Inval, E::Load, E::BadLoad] {
            assert_eq!(transition(S::Transferring, ev), (S::Transferring, F::None));
        }
    }

    #[test]
    fn transfer_continues_across_inval() {
        // I1's context-switch Inval must not kill an in-flight transfer.
        let (s, _) = transition(S::Transferring, E::Inval);
        assert_eq!(s, S::Transferring);
    }

    #[test]
    fn totality_no_panics() {
        for s in [S::Idle, S::DestLoaded, S::Transferring] {
            for ev in [E::Store, E::Inval, E::Load, E::BadLoad, E::TransferDone] {
                let _ = transition(s, ev);
            }
        }
    }

    #[test]
    fn only_destloaded_load_starts_a_transfer() {
        for s in [S::Idle, S::DestLoaded, S::Transferring] {
            for ev in [E::Store, E::Inval, E::Load, E::BadLoad, E::TransferDone] {
                let (_, effect) = transition(s, ev);
                if effect == F::StartTransfer {
                    assert_eq!((s, ev), (S::DestLoaded, E::Load));
                }
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(S::DestLoaded.to_string(), "DestLoaded");
    }
}
