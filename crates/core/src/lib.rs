//! **UDMA** — Protected, User-Level DMA (Blumrich, Dubnicki, Felten & Li,
//! HPCA 1996). This crate is the paper's primary contribution.
//!
//! A user process initiates a DMA transfer with two ordinary memory
//! references and no system call:
//!
//! ```text
//! STORE nbytes TO PROXY(destAddr)   ; latch destination + byte count
//! LOAD  status FROM PROXY(srcAddr)  ; latch source, start the transfer
//! ```
//!
//! Protection comes for free: both references are translated and permission
//! checked by the ordinary MMU, so a process can only name pages whose
//! *proxy pages* the kernel has mapped into it. The UDMA hardware then only
//! has to (1) apply the trivial `PROXY⁻¹` translation to the physical proxy
//! addresses it receives, and (2) run a three-state machine over the
//! initiation sequence.
//!
//! The crate provides:
//!
//! - [`state`] — the pure `Idle → DestLoaded → Transferring` state machine
//!   of Figure 5, as a total transition function,
//! - [`UdmaStatus`] — the status word returned by every proxy LOAD (§5),
//! - [`UdmaController`] — the basic single-transfer device (Figure 4),
//! - [`QueuedUdma`] — the §7 extension: a hardware request queue enabling
//!   multi-page and gather/scatter transfers at two references per page,
//!   with per-page reference counts *and* an associative queue query so the
//!   kernel can maintain invariant I4 without pinning,
//! - [`plan`] — translation of a (destination proxy, source proxy) pair
//!   into a concrete transfer, including BadLoad (WRONG-SPACE) detection.
//!
//! # Example
//!
//! ```
//! use shrimp_dma::{DmaTiming, LoopbackPort};
//! use shrimp_mem::{Layout, PhysAddr, PhysMemory, PAGE_SIZE};
//! use shrimp_sim::SimTime;
//! use udma_core::UdmaController;
//!
//! let layout = Layout::new(16 * PAGE_SIZE, 16 * PAGE_SIZE);
//! let mut mem = PhysMemory::new(16 * PAGE_SIZE);
//! mem.write(PhysAddr::new(0x100), b"payload")?;
//! let mut port = LoopbackPort::new(4096);
//! let mut udma = UdmaController::new(layout, DmaTiming::default());
//!
//! // The two-reference initiation sequence (physical proxy addresses, as
//! // they arrive at the hardware after MMU translation):
//! let dest = layout.dev_proxy_addr(0, 0x40);
//! let src = layout.proxy_of_phys(PhysAddr::new(0x100))?;
//! let now = SimTime::ZERO;
//! udma.handle_store(dest, 7, now, &mut mem, &mut port);
//! let status = udma.handle_load(src, now, &mut mem, &mut port);
//! assert!(status.started());
//!
//! // Poll for completion by repeating the LOAD: MATCH clear => done.
//! let later = now + udma.engine().duration_for(7);
//! let status = udma.handle_load(src, later, &mut mem, &mut port);
//! assert!(!status.matches);
//! assert_eq!(&port.bytes()[0x40..0x47], b"payload");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
pub mod plan;
mod queue;
pub mod state;
mod status;

pub use controller::UdmaController;
pub use plan::{PlanError, TransferPlan};
pub use queue::{Priority, QueuedRequest, QueuedUdma};
pub use state::{transition, Effect, UdmaEvent, UdmaState};
pub use status::UdmaStatus;

/// Interpreting the value written by the initiating STORE: the paper uses
/// negative values as `Inval` events ("STOREs of negative values (passing a
/// negative, and hence invalid, value of nbytes to proxy space)", §5).
///
/// Returns `None` for an Inval (non-positive) value, `Some(nbytes)` for a
/// transfer-count store.
pub fn store_value_as_count(value: i64) -> Option<u64> {
    (value > 0).then_some(value as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negative_store_is_inval() {
        assert_eq!(store_value_as_count(-1), None);
        assert_eq!(store_value_as_count(-4096), None);
    }

    #[test]
    fn zero_store_is_inval() {
        // Zero bytes cannot be a transfer; treated as invalid.
        assert_eq!(store_value_as_count(0), None);
    }

    #[test]
    fn positive_store_is_count() {
        assert_eq!(store_value_as_count(4096), Some(4096));
    }
}
