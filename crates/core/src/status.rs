//! The status word returned by every proxy LOAD (paper §5, "Status
//! Returned by Proxy LOADs").

use std::fmt;

/// The value a proxy LOAD deposits in the CPU's destination register.
///
/// Field semantics follow the paper exactly:
///
/// - `initiation` — **zero** if this access caused the DestLoaded →
///   Transferring transition (i.e. it started a transfer); one otherwise.
/// - `transferring` — one if the device is in the Transferring state.
/// - `invalid` — one if the device is in the Idle state.
/// - `matches` — one if the machine is Transferring *and* the referenced
///   address equals the base address of the transfer in progress (repeating
///   the initiating LOAD with this flag clear means the transfer is done).
/// - `wrong_space` — one if the access was a BadLoad (memory-to-memory or
///   device-to-device request).
/// - `remaining_bytes` — bytes left if DestLoaded or Transferring.
/// - `device_error` — device-specific error bits (e.g. misalignment).
///
/// [`pack`](UdmaStatus::pack)/[`unpack`](UdmaStatus::unpack) give the exact
/// 64-bit register image.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct UdmaStatus {
    /// INITIATION FLAG (1 bit): zero when the access started a transfer.
    pub initiation: bool,
    /// TRANSFERRING FLAG (1 bit).
    pub transferring: bool,
    /// INVALID FLAG (1 bit): device is Idle.
    pub invalid: bool,
    /// MATCH FLAG (1 bit).
    pub matches: bool,
    /// WRONG-SPACE FLAG (1 bit).
    pub wrong_space: bool,
    /// DEVICE-SPECIFIC ERRORS (11 bits here).
    pub device_error: u16,
    /// REMAINING-BYTES (48 bits here; "variable size, based on page size").
    pub remaining_bytes: u64,
}

/// Bit positions of the packed register image.
mod bits {
    pub const INITIATION: u64 = 1 << 0;
    pub const TRANSFERRING: u64 = 1 << 1;
    pub const INVALID: u64 = 1 << 2;
    pub const MATCH: u64 = 1 << 3;
    pub const WRONG_SPACE: u64 = 1 << 4;
    pub const DEV_ERR_SHIFT: u32 = 5;
    pub const DEV_ERR_MASK: u64 = 0x7ff; // 11 bits
    pub const REMAINING_SHIFT: u32 = 16;
    pub const REMAINING_MASK: u64 = (1 << 48) - 1;
}

impl UdmaStatus {
    /// Convenience: did this LOAD successfully initiate a transfer?
    pub fn started(&self) -> bool {
        !self.initiation && self.device_error == 0
    }

    /// Convenience: should the user retry the two-instruction sequence?
    ///
    /// Per §5: "if the transferring flag or the invalid flag is set, the
    /// user process may want to re-try"; other error bits are real errors.
    pub fn should_retry(&self) -> bool {
        self.initiation
            && (self.transferring || self.invalid)
            && !self.wrong_space
            && self.device_error == 0
    }

    /// Convenience: is this a hard (non-retryable) failure?
    pub fn is_error(&self) -> bool {
        self.wrong_space || self.device_error != 0
    }

    /// Packs the status into the 64-bit register image a LOAD returns.
    pub fn pack(&self) -> u64 {
        let mut w = 0u64;
        if self.initiation {
            w |= bits::INITIATION;
        }
        if self.transferring {
            w |= bits::TRANSFERRING;
        }
        if self.invalid {
            w |= bits::INVALID;
        }
        if self.matches {
            w |= bits::MATCH;
        }
        if self.wrong_space {
            w |= bits::WRONG_SPACE;
        }
        w |= (u64::from(self.device_error) & bits::DEV_ERR_MASK) << bits::DEV_ERR_SHIFT;
        w |= (self.remaining_bytes & bits::REMAINING_MASK) << bits::REMAINING_SHIFT;
        w
    }

    /// Decodes a packed register image.
    pub fn unpack(w: u64) -> Self {
        UdmaStatus {
            initiation: w & bits::INITIATION != 0,
            transferring: w & bits::TRANSFERRING != 0,
            invalid: w & bits::INVALID != 0,
            matches: w & bits::MATCH != 0,
            wrong_space: w & bits::WRONG_SPACE != 0,
            device_error: ((w >> bits::DEV_ERR_SHIFT) & bits::DEV_ERR_MASK) as u16,
            remaining_bytes: (w >> bits::REMAINING_SHIFT) & bits::REMAINING_MASK,
        }
    }
}

impl fmt::Display for UdmaStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "init={} xfer={} inval={} match={} wrong={} err={:#x} remaining={}",
            u8::from(self.initiation),
            u8::from(self.transferring),
            u8::from(self.invalid),
            u8::from(self.matches),
            u8::from(self.wrong_space),
            self.device_error,
            self.remaining_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successful_initiation_word() {
        let s = UdmaStatus {
            initiation: false,
            transferring: true,
            matches: true,
            remaining_bytes: 4096,
            ..UdmaStatus::default()
        };
        assert!(s.started());
        assert!(!s.should_retry());
        assert!(!s.is_error());
        assert_eq!(s.pack() & 1, 0, "INITIATION bit must be zero on success");
    }

    #[test]
    fn retry_conditions() {
        let idle = UdmaStatus { initiation: true, invalid: true, ..UdmaStatus::default() };
        assert!(idle.should_retry());
        let busy = UdmaStatus { initiation: true, transferring: true, ..UdmaStatus::default() };
        assert!(busy.should_retry());
        let bad = UdmaStatus { initiation: true, wrong_space: true, ..UdmaStatus::default() };
        assert!(!bad.should_retry());
        assert!(bad.is_error());
    }

    #[test]
    fn device_error_is_hard_failure() {
        let s = UdmaStatus {
            initiation: true,
            invalid: true,
            device_error: 0x1,
            ..UdmaStatus::default()
        };
        assert!(!s.should_retry());
        assert!(s.is_error());
        assert!(!s.started());
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let s = UdmaStatus {
            initiation: true,
            transferring: false,
            invalid: true,
            matches: true,
            wrong_space: false,
            device_error: 0x55,
            remaining_bytes: 123_456,
        };
        assert_eq!(UdmaStatus::unpack(s.pack()), s);
    }

    #[test]
    fn remaining_bytes_masked_to_48_bits() {
        let s = UdmaStatus { remaining_bytes: u64::MAX, ..UdmaStatus::default() };
        let rt = UdmaStatus::unpack(s.pack());
        assert_eq!(rt.remaining_bytes, (1 << 48) - 1);
    }

    #[test]
    fn display_renders_all_fields() {
        let s = UdmaStatus { matches: true, remaining_bytes: 7, ..UdmaStatus::default() };
        let text = s.to_string();
        assert!(text.contains("match=1"));
        assert!(text.contains("remaining=7"));
    }
}
