//! Multi-page transfers with hardware queueing (paper §7).
//!
//! The basic UDMA device refuses work while Transferring; large transfers
//! therefore cost a full round-trip per page. The §7 extension queues
//! requests in hardware: a user process starts a multi-page transfer with
//! only two instructions per page, gather/scatter falls out naturally, and
//! unrelated transfers (from separate processes) can be outstanding
//! simultaneously.
//!
//! Two mechanisms let the kernel keep invariant I4 without pinning:
//!
//! - a **reference-count register** per physical page
//!   ([`QueuedUdma::ref_count`]), and
//! - an **associative query** that searches the hardware queue for a page
//!   ([`QueuedUdma::associative_query`]).
//!
//! Both are implemented so the `pinning` bench can compare them. Two
//! priorities are provided ("implementing just two queues, with the higher
//! priority queue reserved for the system, would certainly be useful"),
//! guarding against a selfish user starving the kernel.

use std::collections::{BTreeMap, VecDeque};

use shrimp_dma::{DevicePort, DmaEngine, DmaTiming};
use shrimp_mem::{Layout, Pfn, PhysAddr, PhysMemory};
use shrimp_sim::{SimTime, StatSet};

use crate::controller::DEV_ERR_REJECTED;
use crate::plan::{plan_transfer, PlanError, TransferPlan};
use crate::{store_value_as_count, UdmaStatus};

/// Request priority: the high-priority queue is reserved for the kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Ordinary user-process transfers.
    #[default]
    User,
    /// Kernel-initiated transfers (paging I/O, etc.).
    System,
}

/// One queued transfer request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueuedRequest {
    /// The resolved transfer.
    pub plan: TransferPlan,
    /// The source proxy address that initiated it (for MATCH reporting).
    pub source_proxy: PhysAddr,
    /// Which queue it sits in.
    pub priority: Priority,
}

/// The queueing UDMA device of §7.
#[derive(Debug)]
pub struct QueuedUdma {
    layout: Layout,
    engine: DmaEngine,
    /// Latched DESTINATION/COUNT awaiting the source LOAD.
    dest: Option<(PhysAddr, u64)>,
    user_queue: VecDeque<QueuedRequest>,
    system_queue: VecDeque<QueuedRequest>,
    /// The request currently occupying the engine.
    active: Option<QueuedRequest>,
    /// When the engine becomes free (tail of the in-order schedule).
    engine_free_at: SimTime,
    capacity: usize,
    refcounts: BTreeMap<Pfn, u32>,
    stats: StatSet,
}

impl QueuedUdma {
    /// A queueing device holding up to `capacity` pending requests (not
    /// counting the one in the engine).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(layout: Layout, timing: DmaTiming, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        QueuedUdma {
            layout,
            engine: DmaEngine::new(timing),
            dest: None,
            user_queue: VecDeque::new(),
            system_queue: VecDeque::new(),
            active: None,
            engine_free_at: SimTime::ZERO,
            capacity,
            refcounts: BTreeMap::new(),
            stats: StatSet::new("udma-queued"),
        }
    }

    /// Pending requests (both priorities), excluding the active one.
    pub fn queued_len(&self) -> usize {
        self.user_queue.len() + self.system_queue.len()
    }

    /// True when nothing is queued, latched or in flight.
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.dest.is_none()
            && self.active.is_none()
            && self.queued_len() == 0
            && !self.engine.is_busy(now)
    }

    /// When all currently accepted work will have drained.
    pub fn drained_at(&self) -> SimTime {
        let queued: u64 = self
            .system_queue
            .iter()
            .chain(&self.user_queue)
            .map(|r| self.engine.duration_for(r.plan.nbytes).as_nanos())
            .sum();
        self.engine_free_at + shrimp_sim::SimDuration::from_nanos(queued)
    }

    /// The underlying engine.
    pub fn engine(&self) -> &DmaEngine {
        &self.engine
    }

    /// Device statistics.
    pub fn stats(&self) -> &StatSet {
        &self.stats
    }

    /// The §7 "reference-count register" for physical page `pfn`: how often
    /// the page appears in the engine or queue.
    pub fn ref_count(&self, pfn: Pfn) -> u32 {
        self.refcounts.get(&pfn).copied().unwrap_or(0)
    }

    /// The §7 associative alternative: searches the hardware queue (and the
    /// engine) for `pfn`. Semantically equals `ref_count(pfn) > 0`; the
    /// pinning bench models its different lookup cost.
    pub fn associative_query(&self, pfn: Pfn) -> bool {
        self.active
            .iter()
            .chain(self.system_queue.iter())
            .chain(self.user_queue.iter())
            .any(|r| Self::plan_frames(&r.plan).any(|f| f == pfn))
    }

    fn plan_frames(plan: &TransferPlan) -> impl Iterator<Item = Pfn> {
        let first = plan.mem_addr.page().raw();
        let last = (plan.mem_addr.raw() + plan.nbytes.max(1) - 1) >> shrimp_mem::PAGE_SHIFT;
        (first..=last).map(Pfn::new)
    }

    fn add_refs(&mut self, plan: &TransferPlan) {
        for f in Self::plan_frames(plan) {
            *self.refcounts.entry(f).or_insert(0) += 1;
        }
    }

    fn drop_refs(&mut self, plan: &TransferPlan) {
        for f in Self::plan_frames(plan) {
            match self.refcounts.get_mut(&f) {
                Some(c) if *c > 1 => *c -= 1,
                Some(_) => {
                    self.refcounts.remove(&f);
                }
                None => debug_assert!(false, "refcount underflow for {f}"),
            }
        }
    }

    /// Retires finished transfers and feeds the engine from the queues
    /// (system priority first). Time between queued transfers is back to
    /// back: each starts at the previous completion.
    pub fn poll(&mut self, now: SimTime, mem: &mut PhysMemory, port: &mut dyn DevicePort) {
        loop {
            // Retire the active transfer if its completion time has passed.
            if let Some(active) = self.active {
                if self.engine.is_busy(now) {
                    return;
                }
                match self.engine.retire(now, mem, port) {
                    Ok(Some(_)) => self.stats.bump("completions"),
                    Ok(None) => {}
                    Err(_) => self.stats.bump("bus_errors"),
                }
                self.drop_refs(&active.plan);
                self.active = None;
            }

            // Feed the next request, starting where the engine went free.
            let next = self.system_queue.pop_front().or_else(|| self.user_queue.pop_front());
            let Some(req) = next else { return };
            let start_at = self.engine_free_at.max(SimTime::ZERO);
            let service = port.service_time(req.plan.dev_addr, req.plan.nbytes);
            let done = self
                .engine
                .start_with_service(
                    req.plan.direction,
                    req.plan.mem_addr,
                    req.plan.dev_addr,
                    req.plan.nbytes,
                    start_at,
                    service,
                )
                .expect("engine idle after retire");
            self.engine_free_at = done;
            self.active = Some(req);
        }
    }

    /// A STORE to proxy space: latches DESTINATION/COUNT, or on a
    /// non-positive value fires Inval (clears the latch only — queued and
    /// in-flight transfers are unaffected, mirroring the basic device's
    /// behaviour in Transferring).
    pub fn handle_store(
        &mut self,
        proxy: PhysAddr,
        value: i64,
        now: SimTime,
        mem: &mut PhysMemory,
        port: &mut dyn DevicePort,
    ) {
        debug_assert!(self.layout.region_of_phys(proxy).is_proxy());
        self.poll(now, mem, port);
        self.stats.bump("stores");
        match store_value_as_count(value) {
            Some(nbytes) => self.dest = Some((proxy, nbytes)),
            None => {
                self.stats.bump("invals");
                self.dest = None;
            }
        }
    }

    /// A LOAD from proxy space at user priority.
    pub fn handle_load(
        &mut self,
        proxy: PhysAddr,
        now: SimTime,
        mem: &mut PhysMemory,
        port: &mut dyn DevicePort,
    ) -> UdmaStatus {
        self.handle_load_with_priority(proxy, Priority::User, now, mem, port)
    }

    /// A LOAD from proxy space; `priority` selects the queue (the System
    /// queue is reserved for kernel-initiated requests).
    pub fn handle_load_with_priority(
        &mut self,
        proxy: PhysAddr,
        priority: Priority,
        now: SimTime,
        mem: &mut PhysMemory,
        port: &mut dyn DevicePort,
    ) -> UdmaStatus {
        debug_assert!(self.layout.region_of_phys(proxy).is_proxy());
        self.poll(now, mem, port);
        self.stats.bump("loads");

        let Some((dest, nbytes)) = self.dest else {
            return self.status_query(proxy, now);
        };

        // Resolve the request.
        let plan = match plan_transfer(&self.layout, dest, proxy, nbytes) {
            Ok(plan) => plan,
            Err(PlanError::WrongSpace) | Err(PlanError::NotProxy(_)) => {
                self.stats.bump("bad_loads");
                self.dest = None;
                return UdmaStatus {
                    initiation: true,
                    wrong_space: true,
                    ..self.status_query(proxy, now)
                };
            }
        };

        if !port.validate(plan.dev_addr, plan.nbytes) {
            self.stats.bump("device_rejects");
            self.dest = None;
            return UdmaStatus {
                initiation: true,
                device_error: DEV_ERR_REJECTED,
                ..self.status_query(proxy, now)
            };
        }

        // "A transfer request is refused only when the queue is full" — the
        // latch is kept so the user can simply repeat the LOAD.
        if self.queued_len() >= self.capacity {
            self.stats.bump("queue_full_refusals");
            return UdmaStatus { initiation: true, transferring: true, ..UdmaStatus::default() };
        }

        let req = QueuedRequest { plan, source_proxy: proxy, priority };
        self.add_refs(&plan);
        match priority {
            Priority::User => self.user_queue.push_back(req),
            Priority::System => self.system_queue.push_back(req),
        }
        self.dest = None;
        self.stats.bump("initiations");
        // If the engine is idle the request starts immediately.
        self.engine_free_at = self.engine_free_at.max(now);
        self.poll(now, mem, port);

        UdmaStatus {
            initiation: false,
            transferring: true,
            matches: true,
            remaining_bytes: nbytes,
            ..UdmaStatus::default()
        }
    }

    /// Status for a LOAD that is not completing an initiation sequence.
    fn status_query(&self, proxy: PhysAddr, now: SimTime) -> UdmaStatus {
        let busy = self.active.is_some() || self.queued_len() > 0;
        let active_match = self.active.as_ref().is_some_and(|r| r.source_proxy == proxy);
        let queued_match =
            self.system_queue.iter().chain(&self.user_queue).find(|r| r.source_proxy == proxy);
        let remaining = if active_match {
            self.engine.remaining_bytes(now)
        } else {
            queued_match.map_or(0, |r| r.plan.nbytes)
        };
        UdmaStatus {
            initiation: true,
            transferring: busy,
            invalid: !busy,
            matches: active_match || queued_match.is_some(),
            remaining_bytes: remaining,
            ..UdmaStatus::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_dma::LoopbackPort;
    use shrimp_mem::PAGE_SIZE;

    fn setup(capacity: usize) -> (Layout, PhysMemory, LoopbackPort, QueuedUdma) {
        let layout = Layout::new(64 * PAGE_SIZE, 64 * PAGE_SIZE);
        let mem = PhysMemory::new(64 * PAGE_SIZE);
        let port = LoopbackPort::new(64 * PAGE_SIZE as usize);
        let udma = QueuedUdma::new(layout, DmaTiming::default(), capacity);
        (layout, mem, port, udma)
    }

    /// Enqueue one page-sized transfer from `page` to device offset `off`.
    fn send_page(
        layout: &Layout,
        udma: &mut QueuedUdma,
        mem: &mut PhysMemory,
        port: &mut LoopbackPort,
        page: u64,
        off: u64,
        now: SimTime,
    ) -> UdmaStatus {
        let dest =
            layout.dev_proxy_addr(off >> shrimp_mem::PAGE_SHIFT, off & shrimp_mem::PAGE_MASK);
        let src = layout.proxy_of_phys(PhysAddr::new(page * PAGE_SIZE)).unwrap();
        udma.handle_store(dest, PAGE_SIZE as i64, now, mem, port);
        udma.handle_load(src, now, mem, port)
    }

    #[test]
    fn multi_page_transfer_two_refs_per_page() {
        let (layout, mut mem, mut port, mut udma) = setup(8);
        for p in 0..4u64 {
            mem.fill(PhysAddr::new(p * PAGE_SIZE), PAGE_SIZE, 0x10 + p as u8).unwrap();
        }
        let now = SimTime::ZERO;
        for p in 0..4u64 {
            let status = send_page(&layout, &mut udma, &mut mem, &mut port, p, p * PAGE_SIZE, now);
            assert!(status.started(), "page {p}: {status}");
        }
        // All four accepted instantly; drain them.
        let done = udma.drained_at();
        udma.poll(done, &mut mem, &mut port);
        assert!(udma.is_idle(done));
        for p in 0..4u64 {
            assert_eq!(port.bytes()[(p * PAGE_SIZE) as usize], 0x10 + p as u8);
        }
        assert_eq!(udma.stats().get("initiations"), 4);
        assert_eq!(udma.stats().get("completions"), 4);
    }

    #[test]
    fn queue_full_refusal_keeps_latch() {
        let (layout, mut mem, mut port, mut udma) = setup(1);
        let now = SimTime::ZERO;
        // First fills the engine, second fills the queue, third refused.
        assert!(send_page(&layout, &mut udma, &mut mem, &mut port, 0, 0, now).started());
        assert!(send_page(&layout, &mut udma, &mut mem, &mut port, 1, PAGE_SIZE, now).started());
        let refused = send_page(&layout, &mut udma, &mut mem, &mut port, 2, 2 * PAGE_SIZE, now);
        assert!(refused.initiation && refused.transferring);
        assert!(refused.should_retry());
        assert_eq!(udma.stats().get("queue_full_refusals"), 1);

        // Retrying just the LOAD after the first transfer drains succeeds.
        let after_first = now + udma.engine().duration_for(PAGE_SIZE);
        let src = layout.proxy_of_phys(PhysAddr::new(2 * PAGE_SIZE)).unwrap();
        let retry = udma.handle_load(src, after_first, &mut mem, &mut port);
        assert!(retry.started(), "{retry}");
    }

    #[test]
    fn refcounts_track_queue_membership() {
        let (layout, mut mem, mut port, mut udma) = setup(8);
        let now = SimTime::ZERO;
        send_page(&layout, &mut udma, &mut mem, &mut port, 3, 0, now);
        send_page(&layout, &mut udma, &mut mem, &mut port, 3, PAGE_SIZE, now);
        send_page(&layout, &mut udma, &mut mem, &mut port, 5, 2 * PAGE_SIZE, now);
        assert_eq!(udma.ref_count(Pfn::new(3)), 2);
        assert_eq!(udma.ref_count(Pfn::new(5)), 1);
        assert_eq!(udma.ref_count(Pfn::new(7)), 0);
        assert!(udma.associative_query(Pfn::new(3)));
        assert!(udma.associative_query(Pfn::new(5)));
        assert!(!udma.associative_query(Pfn::new(7)));

        let done = udma.drained_at();
        udma.poll(done, &mut mem, &mut port);
        assert_eq!(udma.ref_count(Pfn::new(3)), 0);
        assert!(!udma.associative_query(Pfn::new(5)));
    }

    #[test]
    fn system_priority_jumps_queue() {
        let (layout, mut mem, mut port, mut udma) = setup(8);
        let now = SimTime::ZERO;
        mem.fill(PhysAddr::new(0), PAGE_SIZE, 1).unwrap();
        mem.fill(PhysAddr::new(PAGE_SIZE), PAGE_SIZE, 2).unwrap();
        mem.fill(PhysAddr::new(2 * PAGE_SIZE), PAGE_SIZE, 3).unwrap();

        // Page 0 occupies the engine; pages 1 (user) then 2 (system) queue.
        send_page(&layout, &mut udma, &mut mem, &mut port, 0, 0, now);
        send_page(&layout, &mut udma, &mut mem, &mut port, 1, PAGE_SIZE, now);
        let dest = layout.dev_proxy_addr(2, 0);
        let src = layout.proxy_of_phys(PhysAddr::new(2 * PAGE_SIZE)).unwrap();
        udma.handle_store(dest, PAGE_SIZE as i64, now, &mut mem, &mut port);
        let status =
            udma.handle_load_with_priority(src, Priority::System, now, &mut mem, &mut port);
        assert!(status.started());

        // After two transfer durations, pages 0 and 2 are done; page 1 is not.
        let two = now + udma.engine().duration_for(PAGE_SIZE) * 2;
        udma.poll(two, &mut mem, &mut port);
        assert_eq!(port.bytes()[0], 1, "first transfer done");
        assert_eq!(port.bytes()[(2 * PAGE_SIZE) as usize], 3, "system jumped ahead");
        assert_eq!(port.bytes()[PAGE_SIZE as usize], 0, "user transfer still pending");
    }

    #[test]
    fn gather_scatter_from_discontiguous_pages() {
        let (layout, mut mem, mut port, mut udma) = setup(8);
        let now = SimTime::ZERO;
        // Gather three discontiguous source pages into one contiguous
        // device region.
        for (i, p) in [2u64, 9, 5].iter().enumerate() {
            mem.fill(PhysAddr::new(p * PAGE_SIZE), PAGE_SIZE, 0xa0 + *p as u8).unwrap();
            let status =
                send_page(&layout, &mut udma, &mut mem, &mut port, *p, i as u64 * PAGE_SIZE, now);
            assert!(status.started());
        }
        let done = udma.drained_at();
        udma.poll(done, &mut mem, &mut port);
        assert_eq!(port.bytes()[0], 0xa2);
        assert_eq!(port.bytes()[PAGE_SIZE as usize], 0xa9);
        assert_eq!(port.bytes()[2 * PAGE_SIZE as usize], 0xa5);
    }

    #[test]
    fn inval_clears_latch_but_not_queue() {
        let (layout, mut mem, mut port, mut udma) = setup(8);
        let now = SimTime::ZERO;
        send_page(&layout, &mut udma, &mut mem, &mut port, 0, 0, now);
        // Latch a second destination, then context-switch Inval.
        let dest = layout.dev_proxy_addr(1, 0);
        udma.handle_store(dest, 64, now, &mut mem, &mut port);
        udma.handle_store(dest, -1, now, &mut mem, &mut port);
        // The queued/in-flight transfer still completes.
        let done = udma.drained_at();
        udma.poll(done, &mut mem, &mut port);
        assert_eq!(udma.stats().get("completions"), 1);
        // But the latched initiation is gone: a LOAD is a status query now.
        let src = layout.proxy_of_phys(PhysAddr::new(PAGE_SIZE)).unwrap();
        let status = udma.handle_load(src, done, &mut mem, &mut port);
        assert!(status.initiation && status.invalid);
    }

    #[test]
    fn completion_polling_per_request() {
        let (layout, mut mem, mut port, mut udma) = setup(8);
        let now = SimTime::ZERO;
        send_page(&layout, &mut udma, &mut mem, &mut port, 0, 0, now);
        let last = send_page(&layout, &mut udma, &mut mem, &mut port, 1, PAGE_SIZE, now);
        assert!(last.started());

        // Wait for the last transfer only (§7: "the user process need only
        // wait for the completion of the last transfer").
        let src1 = layout.proxy_of_phys(PhysAddr::new(PAGE_SIZE)).unwrap();
        let mid = now + udma.engine().duration_for(PAGE_SIZE); // first done
        let status = udma.handle_load(src1, mid, &mut mem, &mut port);
        assert!(status.matches, "second transfer still pending: {status}");
        let done = udma.drained_at();
        let status = udma.handle_load(src1, done, &mut mem, &mut port);
        assert!(!status.matches);
        assert!(status.invalid);
    }

    #[test]
    fn wrong_space_still_detected() {
        let (layout, mut mem, mut port, mut udma) = setup(4);
        let a = layout.proxy_of_phys(PhysAddr::new(0x1000)).unwrap();
        let b = layout.proxy_of_phys(PhysAddr::new(0x2000)).unwrap();
        udma.handle_store(a, 8, SimTime::ZERO, &mut mem, &mut port);
        let status = udma.handle_load(b, SimTime::ZERO, &mut mem, &mut port);
        assert!(status.wrong_space);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let layout = Layout::new(PAGE_SIZE, PAGE_SIZE);
        let _ = QueuedUdma::new(layout, DmaTiming::default(), 0);
    }
}
