//! Translating a (destination proxy, source proxy) pair into a concrete
//! transfer — the `PROXY⁻¹` hardware translation plus BadLoad detection.

use std::error::Error;
use std::fmt;

use shrimp_dma::Direction;
use shrimp_mem::{Layout, PhysAddr, Region, DEV_PROXY_BASE};

/// A fully resolved transfer: direction, real memory address and
/// device-relative address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransferPlan {
    /// Direction relative to main memory.
    pub direction: Direction,
    /// The real (non-proxy) memory-side physical address.
    pub mem_addr: PhysAddr,
    /// The device-side address, relative to the device proxy base (the
    /// device interprets it; for SHRIMP it is `NIPT index ‖ page offset`).
    pub dev_addr: u64,
    /// Bytes to move.
    pub nbytes: u64,
}

/// Why a (dest, source) pair cannot become a transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// Source and destination are in the same proxy region: a
    /// memory-to-memory or device-to-device request — the BadLoad event
    /// (§5); reported to the user as the WRONG-SPACE flag.
    WrongSpace,
    /// An address is not in a proxy region at all. Cannot normally happen:
    /// only proxy-region physical addresses reach the UDMA hardware.
    NotProxy(u64),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::WrongSpace => {
                write!(f, "source and destination are in the same proxy space")
            }
            PlanError::NotProxy(a) => write!(f, "address {a:#x} is not a proxy address"),
        }
    }
}

impl Error for PlanError {}

/// Resolves the latched destination proxy address and the initiating
/// source proxy address into a [`TransferPlan`].
///
/// # Errors
///
/// - [`PlanError::WrongSpace`] when both addresses are memory proxies or
///   both are device proxies,
/// - [`PlanError::NotProxy`] when either address is outside proxy space.
pub fn plan_transfer(
    layout: &Layout,
    dest_proxy: PhysAddr,
    source_proxy: PhysAddr,
    nbytes: u64,
) -> Result<TransferPlan, PlanError> {
    let dest_region = layout.region_of_phys(dest_proxy);
    let source_region = layout.region_of_phys(source_proxy);

    match (source_region, dest_region) {
        (Region::MemoryProxy, Region::DeviceProxy) => Ok(TransferPlan {
            direction: Direction::MemToDev,
            mem_addr: layout
                .phys_of_proxy(source_proxy)
                .expect("region pre-checked as memory proxy"),
            dev_addr: dest_proxy.raw() - DEV_PROXY_BASE,
            nbytes,
        }),
        (Region::DeviceProxy, Region::MemoryProxy) => Ok(TransferPlan {
            direction: Direction::DevToMem,
            mem_addr: layout.phys_of_proxy(dest_proxy).expect("region pre-checked as memory proxy"),
            dev_addr: source_proxy.raw() - DEV_PROXY_BASE,
            nbytes,
        }),
        (Region::MemoryProxy, Region::MemoryProxy) | (Region::DeviceProxy, Region::DeviceProxy) => {
            Err(PlanError::WrongSpace)
        }
        (Region::MemoryProxy | Region::DeviceProxy, _) => {
            Err(PlanError::NotProxy(dest_proxy.raw()))
        }
        (_, _) => Err(PlanError::NotProxy(source_proxy.raw())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_mem::PAGE_SIZE;

    fn layout() -> Layout {
        Layout::new(64 * PAGE_SIZE, 32 * PAGE_SIZE)
    }

    #[test]
    fn mem_to_dev() {
        let l = layout();
        let src = l.proxy_of_phys(PhysAddr::new(0x3123)).unwrap();
        let dst = l.dev_proxy_addr(2, 0x40);
        let plan = plan_transfer(&l, dst, src, 128).unwrap();
        assert_eq!(plan.direction, Direction::MemToDev);
        assert_eq!(plan.mem_addr, PhysAddr::new(0x3123));
        assert_eq!(plan.dev_addr, 2 * PAGE_SIZE + 0x40);
        assert_eq!(plan.nbytes, 128);
    }

    #[test]
    fn dev_to_mem() {
        let l = layout();
        let src = l.dev_proxy_addr(1, 0);
        let dst = l.proxy_of_phys(PhysAddr::new(0x5000)).unwrap();
        let plan = plan_transfer(&l, dst, src, 64).unwrap();
        assert_eq!(plan.direction, Direction::DevToMem);
        assert_eq!(plan.mem_addr, PhysAddr::new(0x5000));
        assert_eq!(plan.dev_addr, PAGE_SIZE);
    }

    #[test]
    fn mem_to_mem_is_wrong_space() {
        let l = layout();
        let a = l.proxy_of_phys(PhysAddr::new(0x1000)).unwrap();
        let b = l.proxy_of_phys(PhysAddr::new(0x2000)).unwrap();
        assert_eq!(plan_transfer(&l, a, b, 4), Err(PlanError::WrongSpace));
    }

    #[test]
    fn dev_to_dev_is_wrong_space() {
        let l = layout();
        let a = l.dev_proxy_addr(0, 0);
        let b = l.dev_proxy_addr(1, 0);
        assert_eq!(plan_transfer(&l, a, b, 4), Err(PlanError::WrongSpace));
    }

    #[test]
    fn non_proxy_addresses_rejected() {
        let l = layout();
        let mem = PhysAddr::new(0x1000); // real memory, not proxy
        let dev = l.dev_proxy_addr(0, 0);
        assert!(matches!(plan_transfer(&l, dev, mem, 4), Err(PlanError::NotProxy(_))));
        assert!(matches!(plan_transfer(&l, mem, dev, 4), Err(PlanError::NotProxy(_))));
    }

    #[test]
    fn display_messages() {
        assert!(PlanError::WrongSpace.to_string().contains("same proxy space"));
        assert!(PlanError::NotProxy(0x10).to_string().contains("0x10"));
    }
}
