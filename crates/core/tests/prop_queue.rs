//! Property tests of the §7 queueing engine: reference-count registers
//! always agree with the associative query, capacity is honoured, and all
//! accepted work drains.

use proptest::prelude::*;

use shrimp_dma::{DmaTiming, LoopbackPort};
use shrimp_mem::{Layout, Pfn, PhysAddr, PhysMemory, PAGE_SIZE};
use shrimp_sim::{SimDuration, SimTime};
use udma_core::QueuedUdma;

const PAGES: u64 = 16;

#[derive(Clone, Debug)]
enum QOp {
    /// Latch a destination: device page + count.
    StoreDev { dev_page: u64, nbytes: u16 },
    /// Initiating load from a memory page's proxy.
    LoadMem { page: u64 },
    /// Latch a memory destination (device-to-memory direction).
    StoreMem { page: u64, nbytes: u16 },
    /// Initiating load from a device proxy page.
    LoadDev { dev_page: u64 },
    /// The kernel's context-switch Inval.
    Inval,
    /// Let time pass (fraction of a page transfer).
    Advance(u8),
}

fn arb_op() -> impl Strategy<Value = QOp> {
    prop_oneof![
        (0..4u64, 1..2048u16).prop_map(|(dev_page, nbytes)| QOp::StoreDev { dev_page, nbytes }),
        (0..PAGES).prop_map(|page| QOp::LoadMem { page }),
        (0..PAGES, 1..2048u16).prop_map(|(page, nbytes)| QOp::StoreMem { page, nbytes }),
        (0..4u64).prop_map(|dev_page| QOp::LoadDev { dev_page }),
        Just(QOp::Inval),
        (1..=16u8).prop_map(QOp::Advance),
    ]
}

/// Recomputes what every page's reference count should be by querying the
/// associative port, and cross-checks the refcount registers.
fn check_consistency(udma: &QueuedUdma) -> Result<(), TestCaseError> {
    for p in 0..PAGES {
        let pfn = Pfn::new(p);
        let associative = udma.associative_query(pfn);
        let counted = udma.ref_count(pfn) > 0;
        prop_assert_eq!(
            associative,
            counted,
            "page {}: associative={} refcount={}",
            p,
            associative,
            udma.ref_count(pfn)
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn queue_invariants_under_random_ops(
        ops in proptest::collection::vec(arb_op(), 1..120),
        capacity in 1usize..8,
    ) {
        let layout = Layout::new(PAGES * PAGE_SIZE, 8 * PAGE_SIZE);
        let mut mem = PhysMemory::new(PAGES * PAGE_SIZE);
        let mut port = LoopbackPort::new((8 * PAGE_SIZE) as usize);
        let mut udma = QueuedUdma::new(layout, DmaTiming::default(), capacity);
        let mut now = SimTime::ZERO;
        let page_time = SimDuration::from_us(130.0);

        for op in ops {
            match op {
                QOp::StoreDev { dev_page, nbytes } => {
                    let proxy = layout.dev_proxy_addr(dev_page, 0);
                    udma.handle_store(proxy, i64::from(nbytes), now, &mut mem, &mut port);
                }
                QOp::StoreMem { page, nbytes } => {
                    let proxy = layout.proxy_of_phys(PhysAddr::new(page * PAGE_SIZE)).unwrap();
                    udma.handle_store(proxy, i64::from(nbytes), now, &mut mem, &mut port);
                }
                QOp::LoadMem { page } => {
                    let proxy = layout.proxy_of_phys(PhysAddr::new(page * PAGE_SIZE)).unwrap();
                    let _ = udma.handle_load(proxy, now, &mut mem, &mut port);
                }
                QOp::LoadDev { dev_page } => {
                    let proxy = layout.dev_proxy_addr(dev_page, 0);
                    let _ = udma.handle_load(proxy, now, &mut mem, &mut port);
                }
                QOp::Inval => {
                    let proxy = layout.proxy_of_phys(PhysAddr::new(0)).unwrap();
                    udma.handle_store(proxy, -1, now, &mut mem, &mut port);
                }
                QOp::Advance(f) => {
                    now += page_time * u64::from(f) / 4;
                    udma.poll(now, &mut mem, &mut port);
                }
            }
            // Capacity is a hard bound.
            prop_assert!(udma.queued_len() <= capacity);
            // The two I4 mechanisms always agree.
            check_consistency(&udma)?;
        }

        // Everything accepted eventually drains, releasing every count.
        let drained = udma.drained_at() + SimDuration::from_us(1.0);
        udma.poll(drained, &mut mem, &mut port);
        // One more Inval clears any dangling latch.
        let proxy = layout.proxy_of_phys(PhysAddr::new(0)).unwrap();
        udma.handle_store(proxy, -1, drained, &mut mem, &mut port);
        prop_assert!(udma.is_idle(drained), "device must drain");
        for p in 0..PAGES {
            prop_assert_eq!(udma.ref_count(Pfn::new(p)), 0, "page {} leaked a count", p);
        }
    }

    /// Initiations and completions balance for any accepted stream.
    #[test]
    fn completions_match_initiations(pages in proptest::collection::vec(0..PAGES, 1..24)) {
        let layout = Layout::new(PAGES * PAGE_SIZE, 8 * PAGE_SIZE);
        let mut mem = PhysMemory::new(PAGES * PAGE_SIZE);
        let mut port = LoopbackPort::new((8 * PAGE_SIZE) as usize);
        let mut udma = QueuedUdma::new(layout, DmaTiming::default(), 64);
        let mut now = SimTime::ZERO;
        let mut accepted = 0u64;
        for (i, &page) in pages.iter().enumerate() {
            let dest = layout.dev_proxy_addr(i as u64 % 4, 0);
            udma.handle_store(dest, 256, now, &mut mem, &mut port);
            let src = layout.proxy_of_phys(PhysAddr::new(page * PAGE_SIZE)).unwrap();
            let status = udma.handle_load(src, now, &mut mem, &mut port);
            if status.started() {
                accepted += 1;
            }
            now += SimDuration::from_us(3.0);
        }
        let drained = udma.drained_at() + SimDuration::from_us(1.0);
        udma.poll(drained, &mut mem, &mut port);
        prop_assert_eq!(udma.stats().get("completions"), accepted);
    }
}
