//! Pooled, recyclable payload buffers for the simulator's data plane.
//!
//! A streaming workload sends millions of packets whose payloads are all
//! the same size. Allocating a fresh `Vec<u8>` per packet makes the host
//! allocator the hot spot; instead, a [`BufPool`] hands out [`Payload`]s
//! whose backing storage returns to the pool on drop, so a steady-state
//! send→deliver cycle reuses the same few buffers and performs **zero**
//! heap allocations per message.
//!
//! The pool is an `Arc<Mutex<…>>` so payloads are `Send`: the parallel
//! execution layer moves packets between shard threads, and a payload
//! dropped at the receiving shard returns its storage to the sending
//! NIC's pool across threads. The lock is uncontended in the serial
//! engine and touched only on allocate/drop in the parallel one, so the
//! hot path stays a pointer swap either way.
//!
//! # Example
//!
//! ```
//! use shrimp_sim::BufPool;
//!
//! let pool = BufPool::new();
//! let first = pool.filled_from(b"hello");
//! let cap = first.capacity();
//! drop(first); // storage returns to the pool…
//! let second = pool.filled_from(b"world");
//! assert_eq!(&second[..], b"world");
//! assert_eq!(second.capacity(), cap); // …and is recycled, not reallocated
//! ```

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex};

use crate::metrics::Gauge;

/// Shared pool state behind the shelf lock: the free-list plus the
/// metrics that must stay transactional with it.
#[derive(Debug, Default)]
struct ShelfInner {
    /// Cleared `Vec`s whose capacity is ready for reuse.
    bufs: Vec<Vec<u8>>,
    /// Live payloads checked out of this pool, with a high-water mark
    /// (metrics plane: peak buffer demand of the workload).
    in_use: Gauge,
    /// `filled_from`/`clone` calls that found the shelf empty and had to
    /// heap-allocate — includes cold-start fills, so a steady-state run
    /// shows this settle at the warmup value.
    exhaustion: u64,
}

/// Shared free-list handle.
type Shelf = Arc<Mutex<ShelfInner>>;

/// Maximum buffers the pool retains; beyond this, dropped payloads free
/// their storage. Bounds worst-case memory for bursty workloads while
/// keeping every steady-state pipeline (a handful of in-flight packets
/// per node) fully recycled.
const MAX_POOLED: usize = 1024;

/// A recycling pool of byte buffers (cheaply cloneable handle).
#[derive(Clone, Debug, Default)]
pub struct BufPool {
    shelf: Shelf,
}

impl BufPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufPool::default()
    }

    /// A payload containing a copy of `bytes`, backed by a recycled buffer
    /// when one is available (the data plane's single sender-side copy).
    // lint:hot_path
    pub fn filled_from(&self, bytes: &[u8]) -> Payload {
        // INVARIANT: shelf-lock holders never panic while holding the
        // lock, so the mutex cannot be poisoned.
        let mut data = {
            let mut inner = self.shelf.lock().expect("buffer shelf poisoned");
            inner.in_use.incr();
            match inner.bufs.pop() {
                Some(buf) => buf,
                None => {
                    inner.exhaustion += 1;
                    Vec::default()
                }
            }
        };
        data.clear();
        data.extend_from_slice(bytes);
        Payload { data, home: Some(self.shelf.clone()) }
    }

    /// Number of idle buffers currently shelved (test observability).
    pub fn free_buffers(&self) -> usize {
        // INVARIANT: shelf-lock holders never panic while holding the
        // lock, so the mutex cannot be poisoned.
        self.shelf.lock().expect("buffer shelf poisoned").bufs.len()
    }

    /// Payloads currently checked out of this pool.
    pub fn in_use(&self) -> u64 {
        // INVARIANT: shelf-lock holders never panic while holding the
        // lock, so the mutex cannot be poisoned.
        self.shelf.lock().expect("buffer shelf poisoned").in_use.get()
    }

    /// Peak simultaneous checked-out payloads over the pool's lifetime.
    pub fn in_use_high_water(&self) -> u64 {
        // INVARIANT: shelf-lock holders never panic while holding the
        // lock, so the mutex cannot be poisoned.
        self.shelf.lock().expect("buffer shelf poisoned").in_use.high_water()
    }

    /// The in-use gauge itself (level + high water), for registering in a
    /// metrics snapshot.
    pub fn in_use_gauge(&self) -> Gauge {
        // INVARIANT: shelf-lock holders never panic while holding the
        // lock, so the mutex cannot be poisoned.
        self.shelf.lock().expect("buffer shelf poisoned").in_use
    }

    /// Requests that found the shelf empty and heap-allocated (includes
    /// cold-start fills; steady state keeps this flat).
    pub fn exhaustion_stalls(&self) -> u64 {
        // INVARIANT: shelf-lock holders never panic while holding the
        // lock, so the mutex cannot be poisoned.
        self.shelf.lock().expect("buffer shelf poisoned").exhaustion
    }
}

/// A packet payload: owned bytes that return to their [`BufPool`] on drop.
///
/// Unpooled payloads (built with [`From`]`<Vec<u8>>`) behave like a plain
/// `Vec<u8>` and simply free their storage. Equality, ordering and hashing
/// consider only the bytes, never the provenance.
pub struct Payload {
    data: Vec<u8>,
    home: Option<Shelf>,
}

impl Payload {
    /// Capacity of the backing buffer (pool-recycling observability).
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Whether this payload will return to a pool when dropped.
    pub fn is_pooled(&self) -> bool {
        self.home.is_some()
    }
}

impl Drop for Payload {
    // lint:hot_path
    fn drop(&mut self) {
        if let Some(home) = self.home.take() {
            // INVARIANT: shelf-lock holders never panic while holding the
            // lock, so the mutex cannot be poisoned.
            let mut shelf = home.lock().expect("buffer shelf poisoned");
            shelf.in_use.decr();
            if shelf.bufs.len() < MAX_POOLED {
                let mut data = std::mem::take(&mut self.data);
                data.clear();
                // lint:allow(A1) -- pushes an already-allocated buffer
                // back onto the shelf; the shelf vector's own capacity is
                // amortized over the pool's bounded size.
                shelf.bufs.push(data);
            }
        }
    }
}

impl Clone for Payload {
    /// Deep-copies the bytes; the clone shares the original's pool so both
    /// buffers are recycled. Cloning is a cold-path operation.
    fn clone(&self) -> Self {
        match &self.home {
            Some(shelf) => {
                // INVARIANT: shelf-lock holders never panic while holding
                // the lock, so the mutex cannot be poisoned.
                let mut data = {
                    let mut inner = shelf.lock().expect("buffer shelf poisoned");
                    inner.in_use.incr();
                    match inner.bufs.pop() {
                        Some(buf) => buf,
                        None => {
                            inner.exhaustion += 1;
                            Vec::default()
                        }
                    }
                };
                data.clear();
                data.extend_from_slice(&self.data);
                Payload { data, home: Some(shelf.clone()) }
            }
            None => Payload { data: self.data.clone(), home: None },
        }
    }
}

impl From<Vec<u8>> for Payload {
    /// Wraps an existing allocation as an unpooled payload.
    fn from(data: Vec<u8>) -> Self {
        Payload { data, home: None }
    }
}

impl From<&[u8]> for Payload {
    /// Copies `bytes` into a fresh, unpooled payload.
    fn from(bytes: &[u8]) -> Self {
        Payload { data: bytes.to_vec(), home: None }
    }
}

impl Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for Payload {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Payload")
            .field("len", &self.data.len())
            .field("pooled", &self.home.is_some())
            .field("data", &self.data)
            .finish()
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Payload {}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.data == other
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.data == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Payload {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.data == *other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_returns_storage_to_pool() {
        let pool = BufPool::new();
        assert_eq!(pool.free_buffers(), 0);
        let p = pool.filled_from(&[1, 2, 3]);
        assert!(p.is_pooled());
        drop(p);
        assert_eq!(pool.free_buffers(), 1);
    }

    #[test]
    fn recycled_buffer_keeps_capacity() {
        let pool = BufPool::new();
        let p = pool.filled_from(&[0u8; 4096]);
        let cap = p.capacity();
        drop(p);
        let q = pool.filled_from(&[7u8; 100]);
        assert_eq!(q.capacity(), cap, "storage must be recycled");
        assert_eq!(&q[..], &[7u8; 100][..]);
    }

    #[test]
    fn two_live_payloads_never_alias() {
        let pool = BufPool::new();
        let mut a = pool.filled_from(&[0xaa; 16]);
        let mut b = pool.filled_from(&[0xbb; 16]);
        a[0] = 1;
        b[0] = 2;
        assert_eq!(a[0], 1);
        assert_eq!(b[0], 2);
        assert_eq!(&a[1..], &[0xaa; 15][..]);
        assert_eq!(&b[1..], &[0xbb; 15][..]);
    }

    #[test]
    fn unpooled_payload_from_vec() {
        let p = Payload::from(vec![9, 9, 9]);
        assert!(!p.is_pooled());
        assert_eq!(p, [9u8, 9, 9]);
    }

    #[test]
    fn equality_ignores_provenance() {
        let pool = BufPool::new();
        let pooled = pool.filled_from(b"same");
        let plain = Payload::from(b"same".as_slice());
        assert_eq!(pooled, plain);
        assert_eq!(pooled, b"same");
        assert_eq!(pooled, vec![b's', b'a', b'm', b'e']);
    }

    #[test]
    fn clone_is_independent() {
        let pool = BufPool::new();
        let a = pool.filled_from(&[1, 2, 3]);
        let mut b = a.clone();
        b[0] = 99;
        assert_eq!(a[0], 1);
        drop(a);
        drop(b);
        assert_eq!(pool.free_buffers(), 2, "clone shares the pool");
    }

    #[test]
    fn pool_metrics_track_in_use_and_exhaustion() {
        let pool = BufPool::new();
        let a = pool.filled_from(&[1]); // cold start: exhaustion 1
        let b = pool.filled_from(&[2]); // cold start: exhaustion 2
        assert_eq!(pool.in_use(), 2);
        assert_eq!(pool.in_use_high_water(), 2);
        assert_eq!(pool.exhaustion_stalls(), 2);
        drop(a);
        assert_eq!(pool.in_use(), 1);
        // Recycled fill: no new exhaustion, high water unchanged.
        let c = pool.filled_from(&[3]);
        assert_eq!(pool.exhaustion_stalls(), 2);
        assert_eq!(pool.in_use(), 2);
        assert_eq!(pool.in_use_high_water(), 2);
        // A pooled clone checks out a third buffer (shelf empty again).
        let d = c.clone();
        assert_eq!(pool.in_use(), 3);
        assert_eq!(pool.in_use_high_water(), 3);
        assert_eq!(pool.exhaustion_stalls(), 3);
        drop((b, c, d));
        assert_eq!(pool.in_use(), 0);
        assert_eq!(pool.in_use_high_water(), 3);
    }

    #[test]
    fn pool_retention_is_bounded() {
        let pool = BufPool::new();
        let burst: Vec<Payload> = (0..MAX_POOLED + 10).map(|_| pool.filled_from(&[0; 8])).collect();
        drop(burst);
        assert_eq!(pool.free_buffers(), MAX_POOLED);
    }
}
