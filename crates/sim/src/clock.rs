//! A monotonically advancing simulated clock.

use crate::{SimDuration, SimTime};

/// A per-node simulated clock.
///
/// The clock only moves forward: components account for work by calling
/// [`Clock::advance`], and cross-node synchronization uses
/// [`Clock::advance_to`] with an absolute timestamp (e.g. a packet delivery
/// time computed by the interconnect).
///
/// # Example
///
/// ```
/// use shrimp_sim::{Clock, SimDuration};
///
/// let mut clock = Clock::new();
/// clock.advance(SimDuration::from_us(1.5));
/// assert_eq!(clock.now().as_nanos(), 1_500);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// A clock starting at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Clock::default()
    }

    /// The current instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Moves the clock forward by `d` and returns the new instant.
    pub fn advance(&mut self, d: SimDuration) -> SimTime {
        self.now += d;
        self.now
    }

    /// Moves the clock forward to the absolute instant `t`.
    ///
    /// A no-op when `t` is in the past — the clock never runs backwards.
    /// Returns the (possibly unchanged) current instant.
    pub fn advance_to(&mut self, t: SimTime) -> SimTime {
        self.now = self.now.max(t);
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(Clock::new().now(), SimTime::ZERO);
    }

    #[test]
    fn advance_accumulates() {
        let mut c = Clock::new();
        c.advance(SimDuration::from_nanos(10));
        c.advance(SimDuration::from_nanos(5));
        assert_eq!(c.now().as_nanos(), 15);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let mut c = Clock::new();
        c.advance_to(SimTime::from_nanos(100));
        assert_eq!(c.now().as_nanos(), 100);
        // Past timestamps do not rewind the clock.
        c.advance_to(SimTime::from_nanos(40));
        assert_eq!(c.now().as_nanos(), 100);
    }
}
