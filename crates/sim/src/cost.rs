//! The calibrated timing model for the simulated SHRIMP node.
//!
//! Every timing constant used anywhere in the simulator lives here, with its
//! calibration source. The defaults model the paper's platform: a 60 MHz
//! Pentium Xpress PC with an EISA expansion bus (Blumrich et al., §8 and
//! [12]); see `DESIGN.md` §4 for the derivation of the tuned values.

use crate::SimDuration;

/// Timing constants for a simulated node.
///
/// Construct with [`CostModel::default`] (the calibrated SHRIMP platform) or
/// [`CostModel::paragon_hippi`] (the §1 motivation platform), then override
/// individual fields through the builder-style `with_*` methods.
///
/// # Example
///
/// ```
/// use shrimp_sim::CostModel;
///
/// let m = CostModel::default();
/// // The two-reference initiation sequence plus the user-level alignment
/// // check costs ~2.8us, matching Section 8 of the paper.
/// let init = m.proxy_store + m.proxy_load + m.udma_user_check;
/// assert!((init.as_micros_f64() - 2.8).abs() < 0.05);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// CPU clock frequency in MHz. Pentium Xpress PC: 60 MHz \[12\].
    pub cpu_mhz: f64,
    /// A cached user-level memory reference (L1 hit).
    pub cached_ref: SimDuration,
    /// An uncached reference to proxy space over the I/O bus. EISA I/O
    /// cycles on period hardware cost on the order of a microsecond; tuned
    /// with `udma_user_check` so two references + check = 2.8 µs (§8).
    pub proxy_store: SimDuration,
    /// An uncached proxy LOAD (same bus path as `proxy_store`).
    pub proxy_load: SimDuration,
    /// User-level software around the two-instruction sequence: computing
    /// the proxy addresses and the page-boundary/alignment check §8 says is
    /// included in the 2.8 µs figure (~36 instructions).
    pub udma_user_check: SimDuration,
    /// Per-message user-library overhead outside initiation: argument
    /// marshalling, splitting loop setup, final completion poll. Tuned so
    /// the Figure 8 curve reaches ~94% of peak at 4 KB (DESIGN.md §4).
    pub udma_per_message_sw: SimDuration,
    /// DMA engine start: bus arbitration + control-register write after the
    /// initiating LOAD returns.
    pub dma_start: SimDuration,
    /// Building a packet header (NIPT lookup + header assembly) on the NIC.
    pub packet_header: SimDuration,
    /// I/O bus burst bandwidth in MB/s. EISA burst mode: 33 MB/s.
    pub bus_mb_per_s: f64,
    /// Bandwidth of a CPU doing programmed I/O: one uncached 4-byte store
    /// per word, no burst mode (§9 memory-mapped FIFO comparison).
    pub pio_word_store: SimDuration,
    /// Syscall trap + dispatch + return ("hundreds of instructions" \[2\]).
    pub syscall: SimDuration,
    /// Kernel work to translate and pin one page for traditional DMA.
    pub pin_page: SimDuration,
    /// Kernel work to unpin one page and retire the completion interrupt.
    pub unpin_page: SimDuration,
    /// Kernel copy between a user page and a pre-pinned bounce buffer,
    /// per byte (used by the copy-through variant of traditional DMA).
    pub kernel_copy_mb_per_s: f64,
    /// Building one DMA descriptor in the kernel.
    pub build_descriptor: SimDuration,
    /// A full context switch (register save/restore, scheduler), excluding
    /// the single proxy STORE that I1 adds.
    pub context_switch: SimDuration,
    /// Hardware page-table walk on a TLB miss.
    pub tlb_miss: SimDuration,
    /// Kernel page-fault entry/exit overhead (on top of the work done).
    pub page_fault_overhead: SimDuration,
    /// Creating or updating one PTE (including proxy PTEs).
    pub pte_update: SimDuration,
    /// Disk I/O: average seek.
    pub disk_seek: SimDuration,
    /// Disk I/O: average rotational delay.
    pub disk_rotation: SimDuration,
    /// Disk media transfer rate in MB/s.
    pub disk_mb_per_s: f64,
    /// Network: per-hop router latency on the backplane.
    pub net_hop: SimDuration,
    /// Network: link bandwidth in MB/s (Paragon backplane links are much
    /// faster than EISA, so the sender's bus is the bottleneck).
    pub net_mb_per_s: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cpu_mhz: 60.0,
            cached_ref: SimDuration::from_nanos(17), // one 60 MHz cycle
            proxy_store: SimDuration::from_us(1.1),
            proxy_load: SimDuration::from_us(1.1),
            udma_user_check: SimDuration::from_us(0.6),
            udma_per_message_sw: SimDuration::from_us(8.5),
            dma_start: SimDuration::from_us(4.2),
            packet_header: SimDuration::from_us(1.2),
            bus_mb_per_s: 33.0,
            pio_word_store: SimDuration::from_us(1.0),
            syscall: SimDuration::from_us(5.0),
            pin_page: SimDuration::from_us(8.0),
            unpin_page: SimDuration::from_us(6.0),
            kernel_copy_mb_per_s: 40.0,
            build_descriptor: SimDuration::from_us(2.0),
            context_switch: SimDuration::from_us(10.0),
            tlb_miss: SimDuration::from_nanos(400),
            page_fault_overhead: SimDuration::from_us(20.0),
            pte_update: SimDuration::from_us(1.0),
            disk_seek: SimDuration::from_us(9_000.0),
            disk_rotation: SimDuration::from_us(4_200.0),
            disk_mb_per_s: 5.0,
            net_hop: SimDuration::from_us(0.5),
            net_mb_per_s: 175.0,
        }
    }
}

impl CostModel {
    /// The Paragon/HIPPI platform of the §1 motivation example: a 100 MB/s
    /// channel whose kernel-mediated send overhead is ~350 µs \[13\].
    ///
    /// With this model a 1 KB transfer achieves ~2.7 MB/s (<2% of raw) and
    /// 80 MB/s requires blocks larger than 64 KB, as the paper reports.
    pub fn paragon_hippi() -> Self {
        CostModel {
            cpu_mhz: 50.0,
            bus_mb_per_s: 100.0,
            // Fold the ~350us software overhead \[13\] into the syscall path:
            // trap/dispatch dominates (the Paragon NX path), per-page costs
            // are small because the interface uses pre-set-up buffers. With
            // the completion interrupt at syscall/2, fixed overhead is
            // ~373us: 1 KB ==> ~2.7 MB/s, and 80 MB/s needs >64 KB blocks,
            // both as §1 reports.
            syscall: SimDuration::from_us(240.0),
            pin_page: SimDuration::from_us(2.0),
            unpin_page: SimDuration::from_us(0.5),
            build_descriptor: SimDuration::from_us(10.0),
            dma_start: SimDuration::from_us(1.0),
            ..CostModel::default()
        }
    }

    /// Time for the I/O bus to burst `bytes` bytes.
    pub fn bus_transfer(&self, bytes: u64) -> SimDuration {
        SimDuration::from_bytes_at_rate(bytes, self.bus_mb_per_s)
    }

    /// Time for the kernel to copy `bytes` through a bounce buffer.
    pub fn kernel_copy(&self, bytes: u64) -> SimDuration {
        SimDuration::from_bytes_at_rate(bytes, self.kernel_copy_mb_per_s)
    }

    /// Time for the disk to transfer `bytes` off the media (excluding seek
    /// and rotation).
    pub fn disk_transfer(&self, bytes: u64) -> SimDuration {
        SimDuration::from_bytes_at_rate(bytes, self.disk_mb_per_s)
    }

    /// Time on a network link for `bytes` bytes.
    pub fn net_transfer(&self, bytes: u64) -> SimDuration {
        SimDuration::from_bytes_at_rate(bytes, self.net_mb_per_s)
    }

    /// Cost of `n` straight-line CPU instructions (one per cycle).
    pub fn instructions(&self, n: u64) -> SimDuration {
        SimDuration::from_cycles(n, self.cpu_mhz)
    }

    /// The full user-level two-instruction initiation sequence: proxy STORE,
    /// proxy LOAD and the §8 alignment/page-boundary check.
    pub fn udma_initiation(&self) -> SimDuration {
        self.proxy_store + self.proxy_load + self.udma_user_check
    }

    /// Returns a copy with a different bus bandwidth (used by sweeps).
    pub fn with_bus_mb_per_s(mut self, mb: f64) -> Self {
        assert!(mb > 0.0, "bandwidth must be positive");
        self.bus_mb_per_s = mb;
        self
    }

    /// Returns a copy with a different context-switch cost.
    pub fn with_context_switch(mut self, d: SimDuration) -> Self {
        self.context_switch = d;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initiation_matches_paper_2_8_us() {
        let m = CostModel::default();
        let us = m.udma_initiation().as_micros_f64();
        assert!((us - 2.8).abs() < 0.05, "initiation = {us}us, expected ~2.8us");
    }

    #[test]
    fn bus_transfer_rate() {
        let m = CostModel::default();
        // 33 bytes at 33 MB/s take 1us.
        assert_eq!(m.bus_transfer(33).as_nanos(), 1_000);
        // A 4KB page takes ~124.1us.
        let page = m.bus_transfer(4096).as_micros_f64();
        assert!((page - 124.12).abs() < 0.1, "page = {page}us");
    }

    #[test]
    fn hippi_model_reproduces_motivation_numbers() {
        let m = CostModel::paragon_hippi();
        // Overhead of a one-page traditional send: syscall + pin + descriptor
        // + unpin ~= 220us fixed, plus per-transfer interrupt work; the §1
        // figure of "more than 350us" of overhead emerges from the full
        // syscall path in shrimp-os, but the channel itself must be 100 MB/s.
        assert_eq!(m.bus_mb_per_s, 100.0);
        assert!(m.syscall.as_micros_f64() >= 100.0);
    }

    #[test]
    fn instructions_scale_with_clock() {
        let m = CostModel::default();
        assert_eq!(m.instructions(60).as_nanos(), 1_000); // 60 instr @ 60MHz = 1us
    }

    #[test]
    fn builder_overrides() {
        let m = CostModel::default()
            .with_bus_mb_per_s(10.0)
            .with_context_switch(SimDuration::from_us(3.0));
        assert_eq!(m.bus_mb_per_s, 10.0);
        assert_eq!(m.context_switch, SimDuration::from_us(3.0));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = CostModel::default().with_bus_mb_per_s(0.0);
    }
}
