//! Discrete-event simulation kernel for the SHRIMP UDMA reproduction.
//!
//! This crate provides the substrate every other crate in the workspace is
//! built on:
//!
//! - [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time,
//! - [`BufPool`] / [`Payload`] — recyclable packet buffers for the
//!   allocation-free data plane,
//! - [`Clock`] — a monotonically advancing per-node clock,
//! - [`EventQueue`] — a deterministic time-ordered event queue,
//! - [`parallel`] — conservative parallel-execution primitives (epoch
//!   barrier, sharded exchange, deterministic merge, commit horizon),
//! - [`SplitMix64`] — a tiny, dependency-free deterministic RNG,
//! - [`Counter`] / [`Histogram`] / [`StatSet`] — measurement plumbing,
//! - [`MetricSet`] / [`Gauge`] / [`SampleRing`] — the metrics plane:
//!   typed-id registry with deterministic sorted rendering, high-water
//!   gauges, and fixed-ring gauge timeseries (see `DESIGN.md` §10),
//! - [`FlightRecorder`] / [`SpanRecord`] / [`XferId`] — the transfer-level
//!   flight recorder: typed five-stage spans with cross-node correlation
//!   IDs and a deterministic merge for the parallel engine,
//! - [`MachineEvent`] / [`EventRing`] — typed, allocation-free machine
//!   event records; [`TraceBuffer`] remains as the debug formatter
//!   rendered from them on demand,
//! - [`CostModel`] — every timing constant used by the simulated machine,
//!   documented with its calibration source (see `DESIGN.md` §4).
//!
//! # Example
//!
//! ```
//! use shrimp_sim::{Clock, EventQueue, SimDuration, SimTime};
//!
//! let mut clock = Clock::new();
//! let mut queue: EventQueue<&str> = EventQueue::new();
//! queue.schedule(SimTime::ZERO + SimDuration::from_us(5.0), "dma-done");
//! clock.advance(SimDuration::from_us(10.0));
//! let fired: Vec<_> = queue.pop_until(clock.now()).collect();
//! assert_eq!(fired.len(), 1);
//! assert_eq!(fired[0].payload, "dma-done");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buf;
mod clock;
mod cost;
mod event;
pub mod metrics;
pub mod parallel;
mod rng;
mod span;
mod stats;
mod time;
mod trace;

pub use buf::{BufPool, Payload};
pub use clock::Clock;
pub use cost::CostModel;
pub use event::{Event, EventQueue, PopUntil};
pub use metrics::{CounterId, Gauge, GaugeId, HistId, MetricId, MetricSet, SampleRing};
pub use parallel::{merge_tag, ExchangeGrid, MergeQueue, SpinBarrier, TimeFrontier};
pub use rng::SplitMix64;
pub use span::{
    EventRing, FlightRecorder, MachineEvent, MachineEventKind, SpanRecord, Stage, XferId, XferMeta,
    STAGE_COUNT,
};
pub use stats::{Counter, Histogram, StatSet};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceBuffer, TraceEvent};
