//! A tiny deterministic RNG for simulator-internal randomness.
//!
//! Workload generators in the bench crate use the `rand` crate; simulator
//! internals use this dependency-free SplitMix64 so that crates low in the
//! dependency graph stay free of external dependencies and all runs replay
//! bit-for-bit from a seed.

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood, 2014).
///
/// Passes BigCrush when used as a 64-bit stream; ample quality for workload
/// shuffling and placement decisions in a simulator.
///
/// # Example
///
/// ```
/// use shrimp_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Every seed, including 0, is valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded generation (Lemire); bias is negligible for
        // the simulator's purposes and the method is branch-free.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..1000 {
            assert!(rng.next_below(10) < 10);
        }
    }

    #[test]
    fn next_below_covers_all_residues() {
        let mut rng = SplitMix64::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SplitMix64::new(11);
        assert!(!rng.next_bool(0.0));
        assert!(rng.next_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SplitMix64::new(13);
        let mut v: Vec<u32> = (0..32).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }
}
