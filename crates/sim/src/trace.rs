//! A bounded, zero-cost-when-disabled event transcript.
//!
//! The simulator's components record noteworthy events (proxy references,
//! state-machine transitions, faults, evictions, packets) into a
//! [`TraceBuffer`]. Tracing is off by default — `record` is a branch and a
//! return — and bounded when on, so it can stay wired into hot paths.

use std::collections::VecDeque;
use std::fmt;

use crate::SimTime;

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// Component label (`"udma"`, `"kernel"`, `"mmu"`, ...).
    pub category: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12}] {:<8} {}", self.at.to_string(), self.category, self.message)
    }
}

/// A ring buffer of [`TraceEvent`]s.
///
/// # Example
///
/// ```
/// use shrimp_sim::{SimTime, TraceBuffer};
///
/// let mut trace = TraceBuffer::new(64);
/// trace.set_enabled(true);
/// trace.record(SimTime::from_nanos(100), "udma", || "initiation".to_string());
/// assert_eq!(trace.len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl TraceBuffer {
    /// A disabled buffer holding up to `capacity` events once enabled.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceBuffer { events: VecDeque::new(), capacity, enabled: false, dropped: 0 }
    }

    /// Turns recording on or off.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event. The message closure only runs when tracing is
    /// enabled, so hot paths pay one branch when it is off.
    pub fn record(
        &mut self,
        at: SimTime,
        category: &'static str,
        message: impl FnOnce() -> String,
    ) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent { at, category, message: message() });
    }

    /// Recorded events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter()
    }

    /// Events in `category`, oldest first.
    pub fn in_category<'a>(
        &'a self,
        category: &'static str,
    ) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.category == category)
    }

    /// The most recent `n` events, oldest first.
    pub fn recent(&self, n: usize) -> impl Iterator<Item = &TraceEvent> + '_ {
        let skip = self.events.len().saturating_sub(n);
        self.events.iter().skip(skip)
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted from the ring since the last clear.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Forgets everything recorded so far.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let mut b = TraceBuffer::new(4);
        let mut ran = false;
        b.record(t(1), "x", || {
            ran = true;
            String::new()
        });
        assert!(b.is_empty());
        assert!(!ran, "message closure must not run while disabled");
    }

    #[test]
    fn bounded_with_drop_accounting() {
        let mut b = TraceBuffer::new(2);
        b.set_enabled(true);
        for i in 0..5 {
            b.record(t(i), "x", || format!("e{i}"));
        }
        assert_eq!(b.len(), 2);
        assert_eq!(b.dropped(), 3);
        let msgs: Vec<_> = b.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, ["e3", "e4"]);
    }

    #[test]
    fn category_filter_and_recent() {
        let mut b = TraceBuffer::new(8);
        b.set_enabled(true);
        b.record(t(1), "udma", || "a".into());
        b.record(t(2), "kernel", || "b".into());
        b.record(t(3), "udma", || "c".into());
        assert_eq!(b.in_category("udma").count(), 2);
        let recent: Vec<_> = b.recent(2).map(|e| e.message.as_str()).collect();
        assert_eq!(recent, ["b", "c"]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut b = TraceBuffer::new(1);
        b.set_enabled(true);
        b.record(t(1), "x", || "a".into());
        b.record(t(2), "x", || "b".into());
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.dropped(), 0);
    }

    #[test]
    fn display_format() {
        let e = TraceEvent { at: t(2800), category: "udma", message: "started".into() };
        let text = e.to_string();
        assert!(text.contains("udma") && text.contains("started"), "{text}");
    }
}
