//! A deterministic, time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A scheduled event: a payload due at an absolute instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event<P> {
    /// When the event fires.
    pub at: SimTime,
    /// Tie-break sequence number; events scheduled earlier fire first among
    /// equal timestamps, making the queue fully deterministic.
    pub seq: u64,
    /// The event payload.
    pub payload: P,
}

/// Internal heap entry ordered as a min-heap on `(at, seq)`.
#[derive(Debug)]
struct HeapEntry<P>(Event<P>);

impl<P> PartialEq for HeapEntry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<P> Eq for HeapEntry<P> {}
impl<P> PartialOrd for HeapEntry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for HeapEntry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap (a max-heap) pops the earliest event.
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// Events with equal timestamps pop in scheduling order, so simulations that
/// share a seed replay identically.
///
/// # Example
///
/// ```
/// use shrimp_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "b");
/// q.schedule(SimTime::from_nanos(10), "a");
/// let order: Vec<_> = q.pop_until(SimTime::from_nanos(30)).map(|e| e.payload).collect();
/// assert_eq!(order, ["a", "b"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<P> {
    heap: BinaryHeap<HeapEntry<P>>,
    next_seq: u64,
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }
}

impl<P> EventQueue<P> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` to fire at instant `at`; returns its sequence
    /// number (useful for correlating with later pops in tests).
    pub fn schedule(&mut self, at: SimTime, payload: P) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(Event { at, seq, payload }));
        seq
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pops the earliest event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<Event<P>> {
        if self.next_deadline()? <= now {
            Some(self.heap.pop().expect("peeked entry must exist").0)
        } else {
            None
        }
    }

    /// Draining iterator over all events due at or before `deadline`,
    /// earliest first.
    pub fn pop_until(&mut self, deadline: SimTime) -> PopUntil<'_, P> {
        PopUntil { queue: self, deadline }
    }

    /// Removes every pending event, returning them in firing order.
    pub fn drain_all(&mut self) -> Vec<Event<P>> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(entry) = self.heap.pop() {
            out.push(entry.0);
        }
        out
    }
}

/// Draining iterator returned by [`EventQueue::pop_until`].
#[derive(Debug)]
pub struct PopUntil<'a, P> {
    queue: &'a mut EventQueue<P>,
    deadline: SimTime,
}

impl<P> Iterator for PopUntil<'_, P> {
    type Item = Event<P>;

    fn next(&mut self) -> Option<Event<P>> {
        self.queue.pop_due(self.deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        let order: Vec<_> = q.pop_until(t(100)).map(|e| e.payload).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn equal_timestamps_pop_in_schedule_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), "first");
        q.schedule(t(5), "second");
        q.schedule(t(5), "third");
        let order: Vec<_> = q.pop_until(t(5)).map(|e| e.payload).collect();
        assert_eq!(order, ["first", "second", "third"]);
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(t(10), ());
        q.schedule(t(20), ());
        assert_eq!(q.pop_until(t(15)).count(), 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_deadline(), Some(t(20)));
    }

    #[test]
    fn pop_due_returns_none_for_future_events() {
        let mut q = EventQueue::new();
        q.schedule(t(50), ());
        assert!(q.pop_due(t(49)).is_none());
        assert!(q.pop_due(t(50)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn drain_all_returns_firing_order() {
        let mut q = EventQueue::new();
        q.schedule(t(9), 'b');
        q.schedule(t(3), 'a');
        let drained: Vec<_> = q.drain_all().into_iter().map(|e| e.payload).collect();
        assert_eq!(drained, ['a', 'b']);
        assert!(q.is_empty());
    }
}
