//! Measurement plumbing: counters, log-scaled histograms, named stat sets.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use shrimp_sim::Counter;
///
/// let mut tlb_misses = Counter::new();
/// tlb_misses.add(3);
/// tlb_misses.incr();
/// assert_eq!(tlb_misses.get(), 4);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Adds `n`, clamping at `u64::MAX` instead of overflowing (the merge
    /// path, where two near-saturated counters may meet).
    pub fn saturating_add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Resets to zero, returning the previous value.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.0)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Number of power-of-two histogram buckets (`2^0` through `2^64`).
const HIST_BUCKETS: usize = 65;

/// A power-of-two bucketed histogram of `u64` samples.
///
/// Bucket `i` holds samples whose value `v` satisfies `2^(i-1) < v <= 2^i`
/// (bucket 0 holds `v == 0` and `v == 1`). Tracks count, sum, min and max
/// exactly, so means are not subject to bucketing error.
///
/// Storage is a fixed inline array, so `record` is allocation-free — the
/// flight recorder keeps these on the data-plane hot path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: Option<u64>,
    max: Option<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, min: None, max: None }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample. Never allocates.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let bucket = if value <= 1 { 0 } else { 64 - (value - 1).leading_zeros() };
        self.buckets[bucket as usize] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Folds `other` into `self`: bucketwise saturating sum, combined
    /// count/sum/min/max. The union of two histograms of the same metric
    /// is exactly the histogram of the combined sample stream.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact mean of all samples, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Smallest recorded sample.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// The value at quantile `q` (`0.0..=1.0`), resolved by walking the
    /// log-scaled buckets: the reported value is the upper bound of the
    /// bucket where the cumulative count first reaches `ceil(q·count)`,
    /// clamped into the exact `[min, max]` range — so `quantile(0.0)` is
    /// the true minimum and `quantile(1.0)` the true maximum, and every
    /// other quantile is correct to within one power-of-two bucket.
    /// `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let (min, max) = (self.min?, self.max?);
        // INVARIANT: count > 0 whenever min is Some.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let bound = 1u64.checked_shl(b as u32).unwrap_or(u64::MAX);
                return Some(bound.clamp(min, max));
            }
        }
        Some(max)
    }

    /// The bucketwise difference `self − base` (saturating), for interval
    /// reports over two cumulative snapshots of the same metric: bucket
    /// counts, total count and sum subtract; min/max keep `self`'s
    /// lifetime extremes (exact interval extremes are not recoverable
    /// from cumulative snapshots). Subtracting a snapshot from itself
    /// yields an empty-count histogram.
    pub fn subtract(&self, base: &Histogram) -> Histogram {
        let mut out = self.clone();
        for (mine, theirs) in out.buckets.iter_mut().zip(base.buckets.iter()) {
            *mine = mine.saturating_sub(*theirs);
        }
        out.count = self.count.saturating_sub(base.count);
        out.sum = self.sum.saturating_sub(base.sum);
        if out.count == 0 {
            out.min = None;
            out.max = None;
        }
        out
    }

    /// Iterates `(bucket_upper_bound, count)` over non-empty buckets.
    /// The last bucket's bound (`2^64`) is reported as `u64::MAX`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| (1u64.checked_shl(b as u32).unwrap_or(u64::MAX), c))
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(mean) => write!(
                f,
                "n={} mean={:.1} min={} max={}",
                self.count,
                mean,
                self.min.unwrap_or(0),
                self.max.unwrap_or(0)
            ),
            None => write!(f, "n=0"),
        }
    }
}

/// A named collection of counters, for component-level reporting.
///
/// Counters live in a flat vector and `bump`/`add` resolve keys by
/// fat-pointer identity first (the same `&'static str` literal at a call
/// site keeps the same address), falling back to a content compare only
/// for a key's first appearance from a new call site. This keeps the
/// per-event cost to a short scan of machine-word compares — cheap enough
/// to stay wired into per-reference hot paths — while `get`/`iter` remain
/// content-addressed and key-ordered.
///
/// # Example
///
/// ```
/// use shrimp_sim::StatSet;
///
/// let mut stats = StatSet::new("mmu");
/// stats.bump("tlb_hit");
/// stats.bump("tlb_hit");
/// stats.bump("tlb_miss");
/// assert_eq!(stats.get("tlb_hit"), 2);
/// assert_eq!(stats.get("not_recorded"), 0);
/// ```
#[derive(Clone, Debug, Eq)]
pub struct StatSet {
    name: String,
    counters: Vec<(&'static str, Counter)>,
}

impl StatSet {
    /// A stat set labelled `name`.
    pub fn new(name: impl Into<String>) -> Self {
        StatSet { name: name.into(), counters: Vec::new() }
    }

    /// The set's label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Index of `key`'s counter, inserting a zeroed one if absent.
    ///
    /// Self-organizing: a hit swaps the entry one slot toward the front
    /// (the classic transpose heuristic), so the handful of hot keys
    /// settle into the first cache line and a hot `bump` is a compare or
    /// two plus an increment.
    #[inline]
    fn slot(&mut self, key: &'static str) -> usize {
        // Fat-pointer identity: one word-sized compare per entry, no
        // byte-wise string walk.
        if let Some(i) = self.counters.iter().position(|&(k, _)| std::ptr::eq(k, key)) {
            if i == 0 {
                return 0;
            }
            self.counters.swap(i, i - 1);
            return i - 1;
        }
        self.slot_slow(key)
    }

    /// Content-compare fallback and first-use insertion.
    #[cold]
    fn slot_slow(&mut self, key: &'static str) -> usize {
        // A codegen unit may hold its own copy of the same literal, which
        // must land on the same counter: match by content before
        // concluding the key is new.
        if let Some(i) = self.counters.iter().position(|&(k, _)| k == key) {
            return i;
        }
        // lint:allow(A1) -- first-use insertion of a static counter key;
        // the set is bounded by the distinct keys in the program and
        // steady-state bumps hit the identity fast path in slot().
        self.counters.push((key, Counter::new()));
        self.counters.len() - 1
    }

    /// Increments counter `key` by one.
    #[inline]
    pub fn bump(&mut self, key: &'static str) {
        let i = self.slot(key);
        self.counters[i].1.incr();
    }

    /// Adds `n` to counter `key`.
    #[inline]
    pub fn add(&mut self, key: &'static str, n: u64) {
        let i = self.slot(key);
        self.counters[i].1.add(n);
    }

    /// Current value of counter `key` (zero if never touched).
    pub fn get(&self, key: &str) -> u64 {
        self.counters.iter().find(|&&(k, _)| k == key).map_or(0, |&(_, c)| c.get())
    }

    /// Iterates `(key, value)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        let mut sorted: Vec<(&'static str, u64)> =
            self.counters.iter().map(|&(k, c)| (k, c.get())).collect();
        sorted.sort_unstable_by_key(|&(k, _)| k);
        sorted.into_iter()
    }

    /// Folds `other`'s counters into `self` with saturating addition,
    /// keyed by counter name; `other`'s set name is ignored.
    ///
    /// This is how the sharded parallel engine (and the multicomputer's
    /// combined stats view) unions per-component stat sets: merging the
    /// per-shard sets in any grouping yields the same counters the serial
    /// engine would have produced.
    pub fn merge(&mut self, other: &StatSet) {
        for (key, value) in other.iter() {
            let i = self.slot(key);
            self.counters[i].1.saturating_add(value);
        }
    }

    /// Zeroes every counter.
    pub fn reset(&mut self) {
        self.counters.clear();
    }
}

impl Default for StatSet {
    fn default() -> Self {
        StatSet::new(String::new())
    }
}

impl PartialEq for StatSet {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.iter().eq(other.iter())
    }
}

impl fmt::Display for StatSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:", self.name)?;
        for (k, v) in self.iter() {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_tracks_exact_moments() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.mean(), Some(26.5));
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.to_string(), "n=0");
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        let buckets: Vec<_> = h.iter().collect();
        // 0 and 1 in bucket <=1; 2 in <=2; 3,4 in <=4.
        assert_eq!(buckets, vec![(1, 2), (2, 1), (4, 2)]);
    }

    #[test]
    fn histogram_quantiles_walk_buckets_and_clamp_to_exact_extremes() {
        let mut h = Histogram::new();
        for v in 1u64..=100 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(1), "p0 is the exact minimum");
        assert_eq!(h.quantile(1.0), Some(100), "p100 is the exact maximum");
        // p50: rank 50 lands in the 33..=64 bucket, upper bound 64.
        assert_eq!(h.quantile(0.5), Some(64));
        // p99: rank 99 lands in the 65..=128 bucket, clamped to max=100.
        assert_eq!(h.quantile(0.99), Some(100));

        // One-sample histogram: every quantile is that sample.
        let mut one = Histogram::new();
        one.record(42);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(one.quantile(q), Some(42));
        }
        assert_eq!(Histogram::new().quantile(0.5), None, "empty has no quantiles");
    }

    #[test]
    fn histogram_merge_is_the_union_of_sample_streams() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [1u64, 2, 3] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 100, 7] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        // Merging an empty histogram is the identity.
        a.merge(&Histogram::new());
        assert_eq!(a, both);
    }

    #[test]
    fn histogram_merge_saturates() {
        let mut a = Histogram::new();
        a.record(u64::MAX);
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), u64::MAX);
        assert_eq!(a.max(), Some(u64::MAX));
    }

    #[test]
    fn statset_merge_unions_by_key_and_saturates() {
        let mut a = StatSet::new("machine");
        a.bump("loads");
        a.add("stores", 2);
        let mut b = StatSet::new("other-name");
        b.add("loads", 10);
        b.bump("faults");
        b.add("big", u64::MAX);
        a.merge(&b);
        assert_eq!(a.get("loads"), 11);
        assert_eq!(a.get("stores"), 2);
        assert_eq!(a.get("faults"), 1);
        assert_eq!(a.name(), "machine", "merge keeps the receiver's name");
        a.merge(&b);
        assert_eq!(a.get("big"), u64::MAX, "saturates instead of overflowing");
    }

    #[test]
    fn statset_accumulates_and_resets() {
        let mut s = StatSet::new("dma");
        s.bump("starts");
        s.add("bytes", 4096);
        assert_eq!(s.get("starts"), 1);
        assert_eq!(s.get("bytes"), 4096);
        assert_eq!(s.name(), "dma");
        let rendered = s.to_string();
        assert!(rendered.contains("bytes=4096"), "got {rendered}");
        s.reset();
        assert_eq!(s.get("starts"), 0);
    }
}
