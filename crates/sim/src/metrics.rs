//! Machine-wide metrics plane: a fixed-capacity registry of counters,
//! gauges (with high-water marks) and [`Histogram`]s, identified by typed
//! [`MetricId`]s (subsystem × name × optional node/link index), with
//! deterministic sorted text/JSON rendering.
//!
//! Two usage modes, by design (DESIGN.md §10):
//!
//! - **Hot paths embed the primitives.** Subsystems keep plain
//!   [`Counter`](crate::Counter)/[`Gauge`] fields inline and bump them with
//!   plain stores (`// lint:hot_path`, A1-clean) — no registry lookup, no
//!   indirection, no allocation on the data plane.
//! - **Snapshots build the registry.** At export time (off the hot path) a
//!   [`MetricSet`] is populated in a fixed deterministic order — node by
//!   node, link by link — then rendered sorted by [`MetricId`], so two
//!   snapshots of the same simulated timeline are byte-identical however
//!   many threads produced it.
//!
//! Pre-registered ids ([`CounterId`]/[`GaugeId`]/[`HistId`]) turn updates
//! into plain indexed stores for callers that want to drive the registry
//! directly (the engine's per-epoch sampler does); both modes meet in the
//! same render path.

use crate::stats::Histogram;
use std::fmt::Write as _;

/// Identity of one metric: which subsystem owns it, its name, and an
/// optional per-node/per-link index. Ordering is the render order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct MetricId {
    /// Owning subsystem, e.g. `"nipt"`, `"link"`, `"wheel"`.
    pub subsystem: &'static str,
    /// Metric name within the subsystem, e.g. `"evictions"`.
    pub name: &'static str,
    /// Node or link index for per-instance metrics; `None` for
    /// machine-wide scalars.
    pub index: Option<u32>,
}

impl MetricId {
    /// A machine-wide metric with no per-instance index.
    pub const fn scalar(subsystem: &'static str, name: &'static str) -> Self {
        MetricId { subsystem, name, index: None }
    }

    /// A per-node/per-link metric.
    pub const fn indexed(subsystem: &'static str, name: &'static str, index: u32) -> Self {
        MetricId { subsystem, name, index: Some(index) }
    }
}

/// An instantaneous level with a high-water mark — queue depth, table
/// occupancy, buffers in flight. Updates are plain stores so gauges can
/// sit directly on data-plane structures.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Gauge {
    value: u64,
    high: u64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge { value: 0, high: 0 }
    }

    /// Sets the level, advancing the high-water mark. Never allocates.
    // lint:hot_path
    #[inline]
    pub fn set(&mut self, value: u64) {
        self.value = value;
        if value > self.high {
            self.high = value;
        }
    }

    /// Raises the level by `n`. Never allocates.
    // lint:hot_path
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.set(self.value.saturating_add(n));
    }

    /// Raises the level by one. Never allocates.
    // lint:hot_path
    #[inline]
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Lowers the level by `n` (saturating — a stray extra release keeps
    /// the gauge well-defined). The high-water mark is unaffected.
    // lint:hot_path
    #[inline]
    pub fn sub(&mut self, n: u64) {
        self.value = self.value.saturating_sub(n);
    }

    /// Lowers the level by one.
    // lint:hot_path
    #[inline]
    pub fn decr(&mut self) {
        self.sub(1);
    }

    /// Current level.
    pub fn get(self) -> u64 {
        self.value
    }

    /// Highest level ever set.
    pub fn high_water(self) -> u64 {
        self.high
    }

    /// Folds another instance of the same gauge in: levels sum (total
    /// across shards), high-water marks take the max.
    pub fn merge(&mut self, other: Gauge) {
        self.value = self.value.saturating_add(other.value);
        if other.high > self.high {
            self.high = other.high;
        }
    }
}

/// One registered metric's payload. The histogram variant dominates the
/// size, deliberately: sets hold at most a few thousand entries, and
/// inlining keeps snapshot assembly free of per-entry heap boxes.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
enum MetricValue {
    Counter(u64),
    Gauge(Gauge),
    Hist(Histogram),
}

/// Typed handle to a registered counter: updates are plain indexed stores.
#[derive(Clone, Copy, Debug)]
pub struct CounterId(usize);

/// Typed handle to a registered gauge.
#[derive(Clone, Copy, Debug)]
pub struct GaugeId(usize);

/// Typed handle to a registered histogram.
#[derive(Clone, Copy, Debug)]
pub struct HistId(usize);

/// A fixed-capacity registry of metrics with deterministic rendering.
///
/// Capacity is fixed at construction ([`MetricSet::with_capacity`]);
/// registration past it panics, so all registration belongs in setup
/// code. Rendering sorts by [`MetricId`], making the output a pure
/// function of the registered values — byte-identical across thread
/// counts whenever the values are.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricSet {
    entries: Vec<(MetricId, MetricValue)>,
}

impl MetricSet {
    /// An empty registry that will hold up to `capacity` metrics without
    /// reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        MetricSet { entries: Vec::with_capacity(capacity) }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn register(&mut self, id: MetricId, value: MetricValue) -> usize {
        assert!(
            self.entries.len() < self.entries.capacity() || self.entries.capacity() == 0,
            "MetricSet capacity exceeded: register all metrics at construction"
        );
        self.entries.push((id, value));
        self.entries.len() - 1
    }

    /// Registers a counter at `initial`; returns its update handle.
    pub fn counter(&mut self, id: MetricId, initial: u64) -> CounterId {
        CounterId(self.register(id, MetricValue::Counter(initial)))
    }

    /// Registers a gauge; returns its update handle.
    pub fn gauge(&mut self, id: MetricId, initial: Gauge) -> GaugeId {
        GaugeId(self.register(id, MetricValue::Gauge(initial)))
    }

    /// Registers a histogram; returns its update handle.
    pub fn hist(&mut self, id: MetricId, initial: Histogram) -> HistId {
        HistId(self.register(id, MetricValue::Hist(initial)))
    }

    /// Bumps a pre-registered counter — a plain indexed store.
    // lint:hot_path
    #[inline]
    pub fn counter_add(&mut self, id: CounterId, n: u64) {
        // INVARIANT: CounterId is only minted by `counter`, which pushed
        // a Counter entry at that index; entries are never removed.
        match &mut self.entries[id.0].1 {
            MetricValue::Counter(v) => *v = v.saturating_add(n),
            _ => unreachable!("CounterId points at a counter"),
        }
    }

    /// Mutable access to a pre-registered gauge — a plain indexed load.
    // lint:hot_path
    #[inline]
    pub fn gauge_mut(&mut self, id: GaugeId) -> &mut Gauge {
        // INVARIANT: GaugeId is only minted by `gauge`; see counter_add.
        match &mut self.entries[id.0].1 {
            MetricValue::Gauge(g) => g,
            _ => unreachable!("GaugeId points at a gauge"),
        }
    }

    /// Mutable access to a pre-registered histogram.
    // lint:hot_path
    #[inline]
    pub fn hist_mut(&mut self, id: HistId) -> &mut Histogram {
        // INVARIANT: HistId is only minted by `hist`; see counter_add.
        match &mut self.entries[id.0].1 {
            MetricValue::Hist(h) => h,
            _ => unreachable!("HistId points at a histogram"),
        }
    }

    /// The scalar view of a metric by identity: a counter's value or a
    /// gauge's current level. `None` for histograms and unknown ids.
    pub fn get(&self, subsystem: &str, name: &str, index: Option<u32>) -> Option<u64> {
        self.find(subsystem, name, index).and_then(|v| match v {
            MetricValue::Counter(c) => Some(*c),
            MetricValue::Gauge(g) => Some(g.get()),
            MetricValue::Hist(_) => None,
        })
    }

    /// A gauge's high-water mark by identity.
    pub fn get_high_water(&self, subsystem: &str, name: &str, index: Option<u32>) -> Option<u64> {
        self.find(subsystem, name, index).and_then(|v| match v {
            MetricValue::Gauge(g) => Some(g.high_water()),
            _ => None,
        })
    }

    /// A registered histogram by identity.
    pub fn get_hist(&self, subsystem: &str, name: &str, index: Option<u32>) -> Option<&Histogram> {
        self.find(subsystem, name, index).and_then(|v| match v {
            MetricValue::Hist(h) => Some(h),
            _ => None,
        })
    }

    fn find(&self, subsystem: &str, name: &str, index: Option<u32>) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|(id, _)| id.subsystem == subsystem && id.name == name && id.index == index)
            .map(|(_, v)| v)
    }

    /// Folds `other` into `self` by metric identity: counters and gauge
    /// levels sum, gauge high-water marks take the max, histograms merge.
    /// Metrics present only in `other` are appended (allocating — merging
    /// belongs off the hot path).
    pub fn merge_from(&mut self, other: &MetricSet) {
        for (id, theirs) in &other.entries {
            match self.entries.iter_mut().find(|(mine, _)| mine == id) {
                Some((_, mine)) => match (mine, theirs) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a = a.saturating_add(*b),
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => a.merge(*b),
                    (MetricValue::Hist(a), MetricValue::Hist(b)) => a.merge(b),
                    _ => panic!("metric {id:?} registered with two different kinds"),
                },
                None => {
                    self.entries.push((*id, theirs.clone()));
                }
            }
        }
    }

    /// The interval view `self − base`: counters subtract (saturating, so
    /// a restarted counter reads 0 rather than wrapping), gauges keep the
    /// current level and high-water (levels are instantaneous — they have
    /// no meaningful difference), histograms subtract bucketwise with
    /// count/sum and keep the current extremes.
    pub fn delta(&self, base: &MetricSet) -> MetricSet {
        let mut out = MetricSet::with_capacity(self.entries.len());
        for (id, now) in &self.entries {
            let then = base.entries.iter().find(|(b, _)| b == id).map(|(_, v)| v);
            let value = match (now, then) {
                (MetricValue::Counter(n), Some(MetricValue::Counter(t))) => {
                    MetricValue::Counter(n.saturating_sub(*t))
                }
                (MetricValue::Hist(n), Some(MetricValue::Hist(t))) => {
                    MetricValue::Hist(n.subtract(t))
                }
                (v, _) => v.clone(),
            };
            out.entries.push((*id, value));
        }
        out
    }

    /// Entries sorted by [`MetricId`] — the render order.
    fn sorted(&self) -> Vec<&(MetricId, MetricValue)> {
        let mut rows: Vec<_> = self.entries.iter().collect();
        rows.sort_by_key(|(id, _)| *id);
        rows
    }

    /// Renders the stable sorted text report. One line per metric:
    ///
    /// ```text
    /// delivery/delivered 400
    /// link/wire_bytes[1] 1654400
    /// nipt/occupancy[0] 3 high 3
    /// ```
    ///
    /// Counters render `value`; gauges `value high <mark>`; histograms
    /// `count/sum/min/max/p50/p90/p99`. All integers — the bytes are a
    /// pure function of the metric values.
    pub fn render_text(&self) -> String {
        let mut out = String::from("# shrimp-metrics v1\n");
        for (id, value) in self.sorted() {
            match id.index {
                Some(i) => {
                    let _ = write!(out, "{}/{}[{}]", id.subsystem, id.name, i);
                }
                None => {
                    let _ = write!(out, "{}/{}", id.subsystem, id.name);
                }
            }
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, " {v}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, " {} high {}", g.get(), g.high_water());
                }
                MetricValue::Hist(h) => {
                    let _ = writeln!(
                        out,
                        " count {} sum {} min {} max {} p50 {} p90 {} p99 {}",
                        h.count(),
                        h.sum(),
                        h.min().unwrap_or(0),
                        h.max().unwrap_or(0),
                        h.quantile(0.50).unwrap_or(0),
                        h.quantile(0.90).unwrap_or(0),
                        h.quantile(0.99).unwrap_or(0),
                    );
                }
            }
        }
        out
    }

    /// Renders the same sorted report as a JSON array of flat objects
    /// (hand-built, integers only — byte-identical whenever
    /// [`render_text`](Self::render_text) is).
    pub fn render_json(&self) -> String {
        let mut out = String::from("[\n");
        let rows = self.sorted();
        for (n, (id, value)) in rows.iter().enumerate() {
            let _ = write!(out, "  {{\"subsystem\":\"{}\",\"name\":\"{}\"", id.subsystem, id.name);
            if let Some(i) = id.index {
                let _ = write!(out, ",\"index\":{i}");
            }
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, ",\"kind\":\"counter\",\"value\":{v}");
                }
                MetricValue::Gauge(g) => {
                    let _ = write!(
                        out,
                        ",\"kind\":\"gauge\",\"value\":{},\"high\":{}",
                        g.get(),
                        g.high_water()
                    );
                }
                MetricValue::Hist(h) => {
                    let _ = write!(
                        out,
                        ",\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                         \"p50\":{},\"p90\":{},\"p99\":{}",
                        h.count(),
                        h.sum(),
                        h.min().unwrap_or(0),
                        h.max().unwrap_or(0),
                        h.quantile(0.50).unwrap_or(0),
                        h.quantile(0.90).unwrap_or(0),
                        h.quantile(0.99).unwrap_or(0),
                    );
                }
            }
            let _ = writeln!(out, "}}{}", if n + 1 < rows.len() { "," } else { "" });
        }
        out.push(']');
        out
    }
}

/// A fixed-capacity overwrite ring of `(epoch, value)` gauge samples —
/// queue-depth-over-time without unbounded storage. Recording is a plain
/// indexed store; the one allocation happens at construction.
#[derive(Clone, Debug, Default)]
pub struct SampleRing {
    samples: Vec<(u32, u64)>,
    next: usize,
    len: usize,
}

impl SampleRing {
    /// A ring holding the newest `capacity` samples.
    pub fn with_capacity(capacity: usize) -> Self {
        SampleRing { samples: vec![(0, 0); capacity.max(1)], next: 0, len: 0 }
    }

    /// Records one sample, overwriting the oldest when full. Never
    /// allocates.
    // lint:hot_path
    #[inline]
    pub fn record(&mut self, epoch: u32, value: u64) {
        self.samples[self.next] = (epoch, value);
        self.next = (self.next + 1) % self.samples.len();
        if self.len < self.samples.len() {
            self.len += 1;
        }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum retained samples.
    pub fn capacity(&self) -> usize {
        self.samples.len()
    }

    /// Iterates retained samples oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        let start = (self.next + self.samples.len() - self.len) % self.samples.len();
        (0..self.len).map(move |i| self.samples[(start + i) % self.samples.len()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_tracks_level_and_high_water() {
        let mut g = Gauge::new();
        g.add(3);
        g.incr();
        assert_eq!((g.get(), g.high_water()), (4, 4));
        g.sub(2);
        assert_eq!((g.get(), g.high_water()), (2, 4));
        g.decr();
        g.decr();
        g.decr(); // saturates at zero
        assert_eq!((g.get(), g.high_water()), (0, 4));
        let mut other = Gauge::new();
        other.add(7);
        other.sub(6);
        g.merge(other);
        assert_eq!((g.get(), g.high_water()), (1, 7), "levels sum, highs max");
    }

    #[test]
    fn metric_set_registers_updates_and_renders_sorted() {
        let mut m = MetricSet::with_capacity(4);
        let c = m.counter(MetricId::scalar("zeta", "count"), 0);
        let g = m.gauge(MetricId::indexed("alpha", "depth", 1), Gauge::new());
        m.gauge(MetricId::indexed("alpha", "depth", 0), Gauge::new());
        let h = m.hist(MetricId::scalar("mid", "lat"), Histogram::new());
        m.counter_add(c, 5);
        m.gauge_mut(g).add(9);
        m.hist_mut(h).record(100);
        assert_eq!(m.get("zeta", "count", None), Some(5));
        assert_eq!(m.get("alpha", "depth", Some(1)), Some(9));
        assert_eq!(m.get_high_water("alpha", "depth", Some(1)), Some(9));
        assert_eq!(m.get_hist("mid", "lat", None).unwrap().count(), 1);

        let text = m.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "# shrimp-metrics v1");
        assert_eq!(lines[1], "alpha/depth[0] 0 high 0");
        assert_eq!(lines[2], "alpha/depth[1] 9 high 9");
        assert!(lines[3].starts_with("mid/lat count 1 sum 100"), "got {}", lines[3]);
        assert_eq!(lines[4], "zeta/count 5");

        let json = m.render_json();
        assert!(json.contains(
            "\"subsystem\":\"zeta\",\"name\":\"count\",\"kind\":\"counter\",\"value\":5"
        ));
        assert!(json.contains("\"index\":1"));
    }

    #[test]
    fn merge_sums_counters_maxes_highs_and_appends_unknowns() {
        let mut a = MetricSet::with_capacity(2);
        let ca = a.counter(MetricId::scalar("s", "c"), 3);
        a.gauge(MetricId::scalar("s", "g"), Gauge::new());
        let _ = ca;
        let mut b = MetricSet::with_capacity(3);
        b.counter(MetricId::scalar("s", "c"), 4);
        let gb = b.gauge(MetricId::scalar("s", "g"), Gauge::new());
        b.gauge_mut(gb).add(11);
        b.counter(MetricId::scalar("s", "only_b"), 1);
        a.merge_from(&b);
        assert_eq!(a.get("s", "c", None), Some(7));
        assert_eq!(a.get("s", "g", None), Some(11));
        assert_eq!(a.get_high_water("s", "g", None), Some(11));
        assert_eq!(a.get("s", "only_b", None), Some(1));
    }

    #[test]
    fn delta_subtracts_counters_and_keeps_gauge_levels() {
        let mut before = MetricSet::with_capacity(3);
        before.counter(MetricId::scalar("s", "c"), 10);
        let g0 = before.gauge(MetricId::scalar("s", "g"), Gauge::new());
        before.gauge_mut(g0).add(2);
        let h0 = before.hist(MetricId::scalar("s", "h"), Histogram::new());
        before.hist_mut(h0).record(8);

        let mut after = before.clone();
        after.counter_add(CounterId(0), 5);
        after.gauge_mut(GaugeId(1)).add(1);
        after.hist_mut(HistId(2)).record(8);
        after.hist_mut(HistId(2)).record(32);

        let d = after.delta(&before);
        assert_eq!(d.get("s", "c", None), Some(5));
        assert_eq!(d.get("s", "g", None), Some(3), "gauges keep the current level");
        let dh = d.get_hist("s", "h", None).unwrap();
        assert_eq!((dh.count(), dh.sum()), (2, 40));
        // Identical snapshots delta to all-zero counters.
        let z = after.delta(&after);
        assert_eq!(z.get("s", "c", None), Some(0));
        assert_eq!(z.get_hist("s", "h", None).unwrap().count(), 0);
    }

    #[test]
    fn sample_ring_overwrites_oldest() {
        let mut r = SampleRing::with_capacity(3);
        assert!(r.is_empty());
        for e in 0..5u32 {
            r.record(e, u64::from(e) * 10);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
        let got: Vec<_> = r.iter().collect();
        assert_eq!(got, vec![(2, 20), (3, 30), (4, 40)]);
    }
}
