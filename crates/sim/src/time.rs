//! Simulated time: absolute instants and durations at nanosecond resolution.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of simulated time, in nanoseconds since simulation
/// start.
///
/// `SimTime` is a newtype over `u64`; arithmetic with [`SimDuration`] is
/// checked in debug builds via the underlying integer operations.
///
/// # Example
///
/// ```
/// use shrimp_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_us(2.8);
/// assert_eq!(t.as_nanos(), 2_800);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from a raw nanosecond count.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` (simulated time cannot run
    /// backwards).
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is in the future"),
        )
    }

    /// Saturating duration since `earlier`; zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("instant underflow"))
    }
}

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use shrimp_sim::SimDuration;
///
/// let page_xfer = SimDuration::from_bytes_at_rate(4096, 33.0);
/// assert!((page_xfer.as_micros_f64() - 124.12).abs() < 0.1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from a raw nanosecond count.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from fractional microseconds (rounded to ns).
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_us(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "duration must be non-negative");
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// Builds a duration from whole cycles at a clock frequency in MHz.
    pub fn from_cycles(cycles: u64, mhz: f64) -> Self {
        assert!(mhz > 0.0, "clock frequency must be positive");
        SimDuration(((cycles as f64) * 1_000.0 / mhz).round() as u64)
    }

    /// Time to move `bytes` at `mb_per_s` megabytes per second
    /// (1 MB = 10^6 bytes, matching the paper's bandwidth units).
    pub fn from_bytes_at_rate(bytes: u64, mb_per_s: f64) -> Self {
        assert!(mb_per_s > 0.0, "rate must be positive");
        SimDuration(((bytes as f64) * 1_000.0 / mb_per_s).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration subtraction underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_plus_duration() {
        let t = SimTime::from_nanos(100) + SimDuration::from_nanos(50);
        assert_eq!(t.as_nanos(), 150);
    }

    #[test]
    fn duration_since_ordered() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(35);
        assert_eq!(b.duration_since(a).as_nanos(), 25);
        assert_eq!(b - a, SimDuration::from_nanos(25));
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn duration_since_panics_on_backwards_time() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(35);
        let _ = a.duration_since(b);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(35);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
    }

    #[test]
    fn from_us_rounds_to_nanos() {
        assert_eq!(SimDuration::from_us(2.8).as_nanos(), 2_800);
        assert_eq!(SimDuration::from_us(0.0005).as_nanos(), 1);
    }

    #[test]
    fn from_cycles_at_60mhz() {
        // One 60 MHz cycle is 16.67ns.
        assert_eq!(SimDuration::from_cycles(1, 60.0).as_nanos(), 17);
        assert_eq!(SimDuration::from_cycles(60_000_000, 60.0).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn bytes_at_rate_matches_bandwidth() {
        // 33 MB/s moves 33 bytes per microsecond.
        let d = SimDuration::from_bytes_at_rate(33, 33.0);
        assert_eq!(d.as_nanos(), 1_000);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_nanos(100);
        let b = SimDuration::from_nanos(40);
        assert_eq!((a + b).as_nanos(), 140);
        assert_eq!((a - b).as_nanos(), 60);
        assert_eq!((a * 3).as_nanos(), 300);
        assert_eq!((a / 4).as_nanos(), 25);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    #[test]
    fn display_formats_in_microseconds() {
        assert_eq!(SimTime::from_nanos(2_800).to_string(), "2.800us");
        assert_eq!(SimDuration::from_nanos(150).to_string(), "0.150us");
    }
}
