//! Primitives for conservative parallel discrete-event execution.
//!
//! The simulator's nodes only interact through fabric packets with a
//! known minimum latency (the fabric's lookahead: at least one router
//! hop plus wire time), so shards of the machine can advance
//! independently in bounded epochs and exchange packets at epoch
//! boundaries — classic conservative (Chandy–Misra–Bryant style)
//! synchronization, with the lookahead standing in for null messages.
//!
//! This module provides the engine-agnostic pieces:
//!
//! - [`SpinBarrier`] — a sense-reversing barrier that spins briefly and
//!   then yields, so oversubscribed hosts (more shards than cores) make
//!   progress instead of burning a timeslice,
//! - [`ExchangeGrid`] — per-(source, destination) shard mailboxes whose
//!   slots are only ever touched by one producer and one consumer in
//!   barrier-separated phases, so the locks are uncontended,
//! - [`MergeQueue`] — a priority queue keyed `(SimTime, tag)` whose pop
//!   order is a pure function of its *contents*, never of insertion
//!   order, making cross-shard merges deterministic at any thread count,
//! - [`TimeFrontier`] — published per-shard lower bounds on future event
//!   times, whose minimum is the safe commit horizon for an epoch.
//!
//! Determinism contract: give every item a globally unique [`merge_tag`]
//! (source id ‖ per-source sequence number) and pop strictly by
//! `(time, tag)`. Two runs that insert the same item *sets* — however
//! the insertions were interleaved by threads — then pop identical
//! sequences. The simulated timeline therefore cannot observe the
//! thread count.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::SimTime;

/// Spin iterations before a waiting thread starts yielding its timeslice.
/// Short: with more shards than cores (the common case on small hosts)
/// the peer we wait for cannot run until we yield.
const SPINS_BEFORE_YIELD: u32 = 64;

/// A sense-reversing barrier for a fixed party count.
///
/// `wait` returns once all parties have arrived. Waiters spin briefly,
/// then `yield_now` so an oversubscribed host schedules the stragglers.
#[derive(Debug)]
pub struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// A barrier for `parties` threads.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        SpinBarrier { parties, arrived: AtomicUsize::new(0), generation: AtomicUsize::new(0) }
    }

    /// Blocks until all parties have called `wait` for the current
    /// generation. The last arrival resets the barrier for reuse.
    pub fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Leader: reset the arrival count *before* releasing the
            // generation, so early arrivals of the next epoch count from
            // zero.
            self.arrived.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::AcqRel);
            return;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == generation {
            spins = spins.saturating_add(1);
            if spins < SPINS_BEFORE_YIELD {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// Per-(source, destination) mailboxes for cross-shard item exchange.
///
/// Slot `(src, dst)` is written only by shard `src` during an execute
/// phase and drained only by shard `dst` during the following commit
/// phase; a barrier separates the phases, so every lock acquisition is
/// uncontended and the drained item set is a deterministic function of
/// the epoch, not of thread scheduling.
#[derive(Debug)]
pub struct ExchangeGrid<T> {
    shards: usize,
    /// Flat `(dst, src)` lanes: lane `(src, dst)` lives at
    /// `dst * shards + src`, so a destination's inbound lanes are
    /// contiguous and a drain walks one cache-linear stripe.
    lanes: Vec<Mutex<Vec<T>>>,
}

impl<T> ExchangeGrid<T> {
    /// A grid for `shards` shards with empty (lazily growing) lanes.
    pub fn new(shards: usize) -> Self {
        Self::with_lane_capacity(shards, 0)
    }

    /// A grid for `shards` shards whose every lane pre-reserves room for
    /// `capacity` items, so steady-state batch posts never grow a lane.
    pub fn with_lane_capacity(shards: usize, capacity: usize) -> Self {
        let lanes =
            (0..shards * shards).map(|_| Mutex::new(Vec::with_capacity(capacity))).collect();
        ExchangeGrid { shards, lanes }
    }

    /// Number of shards the grid connects.
    pub fn shards(&self) -> usize {
        self.shards
    }

    fn lane(&self, src: usize, dst: usize) -> &Mutex<Vec<T>> {
        &self.lanes[dst * self.shards + src]
    }

    /// Posts one item from shard `src` to shard `dst`.
    pub fn post(&self, src: usize, dst: usize, item: T) {
        // INVARIANT: mailbox-lock holders never panic while holding the
        // lock, so the mutex cannot be poisoned.
        self.lane(src, dst).lock().expect("mailbox poisoned").push(item);
    }

    /// Moves every item out of `batch` into the `(src, dst)` lane,
    /// keeping `batch`'s capacity — one lock per batch instead of one
    /// per item.
    // lint:hot_path
    pub fn post_batch(&self, src: usize, dst: usize, batch: &mut Vec<T>) {
        if batch.is_empty() {
            return;
        }
        // INVARIANT: mailbox-lock holders never panic while holding the
        // lock, so the mutex cannot be poisoned.
        self.lane(src, dst).lock().expect("mailbox poisoned").append(batch);
    }

    /// Drains every lane addressed to `dst` (in source-shard order)
    /// into `out`.
    // lint:hot_path
    pub fn drain_to(&self, dst: usize, out: &mut Vec<T>) {
        for lane in &self.lanes[dst * self.shards..(dst + 1) * self.shards] {
            // INVARIANT: mailbox-lock holders never panic while holding
            // the lock, so the mutex cannot be poisoned.
            out.append(&mut lane.lock().expect("mailbox poisoned"));
        }
    }

    /// Whether every lane in the grid is empty.
    pub fn is_empty(&self) -> bool {
        // INVARIANT: mailbox-lock holders never panic while holding
        // the lock, so the mutex cannot be poisoned.
        self.lanes.iter().all(|lane| lane.lock().expect("mailbox poisoned").is_empty())
    }
}

/// Builds the unique merge key for an item from source `src` with
/// per-source sequence number `seq` (the source's items must be numbered
/// in their generation order). `seq` must stay below 2^48.
///
/// The layout **is** [`XferId`](crate::XferId): one constructor
/// owns the `(source << 48) | sequence` packing, so a transfer's
/// correlation ID and its merge tag can never drift apart — the parallel
/// engine commits packets keyed by `id.raw()` directly.
pub const fn merge_tag(src: u16, seq: u64) -> u64 {
    debug_assert!(seq < 1 << 48);
    crate::span::XferId::new(src, seq).raw()
}

/// One entry of a [`MergeQueue`]. Ordered by key alone so `T` needs no
/// ordering of its own (packets aren't comparable).
#[derive(Debug)]
struct MergeEntry<T> {
    at: SimTime,
    tag: u64,
    item: T,
}

impl<T> MergeEntry<T> {
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.tag)
    }

    fn raw_at(&self) -> u64 {
        self.at.as_nanos()
    }
}

/// Buckets in one calendar rung.
const WHEEL_BUCKETS: usize = 64;
/// Fixed per-bucket slab capacity; a bucket's excess spills to the
/// sorted spill lane.
const BUCKET_CAP: usize = 32;
/// Minimum bucket width in nanoseconds (power of two). One rung then
/// spans at least 64 µs — several fabric lookaheads — so steady-state
/// pushes land inside the rung.
const MIN_BUCKET_WIDTH: u64 = 1024;

/// A deterministic min-queue keyed `(SimTime, tag)`.
///
/// Unlike [`EventQueue`](crate::EventQueue), which breaks time ties by
/// *insertion* order (correct for a single-threaded scheduler, undefined
/// across threads), `MergeQueue` orders purely by the caller-supplied
/// key, so its pop sequence is a function of the inserted set alone.
///
/// Layout: a calendar wheel instead of a binary heap. Keys below
/// `cur_end` live in `cur`, sorted descending so the minimum pops from
/// the back in O(1). Keys inside the current rung `[base, base +
/// 64·width)` drop into one of 64 fixed-capacity slab buckets by
/// `(time - base) / width` — an O(1), cache-linear append; a full
/// bucket spills to the sorted `spill` lane. Keys beyond the rung go to
/// the unsorted `overflow` lane. When `cur` drains, the next non-empty
/// bucket (plus any spill due in its range) is sorted into `cur`; when
/// the whole rung drains, the rung re-seeds from `overflow`, re-basing
/// at the overflow minimum and re-widening so the span fits 64 buckets.
/// Steady-state stride-encoded keys (PR 6's run batching) walk the rung
/// bucket by bucket, so pushes and pops never touch heap-churn paths,
/// and all storage is retained across rungs.
#[derive(Debug)]
pub struct MergeQueue<T> {
    /// Entries with keys below `cur_end`, sorted descending by
    /// `(time, tag)`; the global minimum is `cur.last()`.
    cur: Vec<MergeEntry<T>>,
    /// Slab of `WHEEL_BUCKETS * BUCKET_CAP` slots; bucket `k` owns
    /// `slab[k*BUCKET_CAP..][..counts[k]]`.
    slab: Vec<Option<MergeEntry<T>>>,
    /// Live entries per bucket.
    counts: [usize; WHEEL_BUCKETS],
    /// In-rung entries whose bucket was full, sorted descending by key.
    spill: Vec<MergeEntry<T>>,
    /// Entries at or beyond the rung end, unsorted.
    overflow: Vec<MergeEntry<T>>,
    /// First instant covered by the rung.
    base: u64,
    /// Bucket span in nanoseconds (power of two, ≥ `MIN_BUCKET_WIDTH`).
    width: u64,
    /// Exclusive upper bound of the consumed region: always
    /// `base + k·width` for the next unconsumed bucket `k`.
    cur_end: u64,
    len: usize,
    /// Entries that missed their slab bucket and took the sorted spill
    /// lane (metrics plane: wheel pressure; O(n) inserts instead of O(1)).
    spills: u64,
    /// Rung re-seeds from the overflow lane (metrics plane: how often the
    /// wheel re-bases and re-widens).
    reseeds: u64,
    /// Peak entries resident at once (metrics plane: staged-queue depth).
    len_high: u64,
}

impl<T> Default for MergeQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MergeQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        MergeQueue {
            cur: Vec::with_capacity(BUCKET_CAP * 2),
            slab: (0..WHEEL_BUCKETS * BUCKET_CAP).map(|_| None).collect(),
            counts: [0; WHEEL_BUCKETS],
            spill: Vec::with_capacity(BUCKET_CAP),
            overflow: Vec::with_capacity(BUCKET_CAP),
            base: 0,
            width: MIN_BUCKET_WIDTH,
            cur_end: 0,
            len: 0,
            spills: 0,
            reseeds: 0,
            len_high: 0,
        }
    }

    /// Exclusive upper bound of the current rung.
    fn rung_end(&self) -> u64 {
        self.base.saturating_add(self.width.saturating_mul(WHEEL_BUCKETS as u64))
    }

    /// Inserts `item` keyed `(at, tag)`. Tags must be unique per queue
    /// (see [`merge_tag`]); entries are ordered by key alone, so
    /// duplicate keys would pop in unspecified relative order.
    // lint:hot_path
    pub fn push(&mut self, at: SimTime, tag: u64, item: T) {
        let entry = MergeEntry { at, tag, item };
        self.len += 1;
        self.len_high = self.len_high.max(self.len as u64);
        if entry.raw_at() < self.cur_end {
            // Already-consumed region (restaged run tails land here):
            // keep `cur` sorted descending so the minimum stays at the
            // back. Near-past keys insert near the back — a short move.
            let idx = self.cur.partition_point(|e| e.key() > entry.key());
            // lint:allow(A1) -- Vec::insert shifts within `cur`'s retained
            // capacity; the refill pass reserves it and pops shrink in place.
            self.cur.insert(idx, entry);
        } else if entry.raw_at() < self.rung_end() {
            self.place_in_rung(entry);
        } else {
            // lint:allow(A1) -- the overflow lane retains its capacity
            // across rung re-seeds; steady-state pushes reuse it.
            self.overflow.push(entry);
        }
    }

    /// Files an in-rung entry into its slab bucket, or into the sorted
    /// spill lane when the bucket is full.
    // lint:hot_path
    fn place_in_rung(&mut self, entry: MergeEntry<T>) {
        let bucket = ((entry.raw_at() - self.base) / self.width) as usize;
        debug_assert!(bucket < WHEEL_BUCKETS);
        let count = self.counts[bucket];
        if count < BUCKET_CAP {
            self.slab[bucket * BUCKET_CAP + count] = Some(entry);
            self.counts[bucket] = count + 1;
        } else {
            self.spills += 1;
            let idx = self.spill.partition_point(|e| e.key() > entry.key());
            // lint:allow(A1) -- Vec::insert into the spill lane, which keeps
            // its capacity across rung re-seeds (drained in place).
            self.spill.insert(idx, entry);
        }
    }

    /// Refills `cur` from the wheel: steps bucket by bucket (taking each
    /// bucket's slab slots plus the spill entries due in its range) until
    /// `cur` is non-empty, re-seeding the rung from `overflow` when the
    /// current rung is exhausted.
    fn advance(&mut self) {
        while self.cur.is_empty() {
            let bucket = ((self.cur_end - self.base) / self.width) as usize;
            if bucket >= WHEEL_BUCKETS {
                if self.overflow.is_empty() {
                    return;
                }
                self.reseed();
                continue;
            }
            let next_end = self.cur_end.saturating_add(self.width);
            let count = self.counts[bucket];
            for slot in bucket * BUCKET_CAP..bucket * BUCKET_CAP + count {
                // INVARIANT: `counts[bucket]` slots are always filled
                // contiguously from the bucket's start, so each indexed
                // slot holds an entry.
                let entry = self.slab[slot].take().expect("bucket slot must be filled");
                // lint:allow(A1) -- `cur`'s storage is retained across
                // refills; steady-state refills reuse its capacity.
                self.cur.push(entry);
            }
            self.counts[bucket] = 0;
            // Spill is sorted descending, so due entries sit at the back.
            while self.spill.last().is_some_and(|e| e.raw_at() < next_end) {
                // INVARIANT: the loop condition just observed a last
                // element, and nothing was removed since.
                let entry = self.spill.pop().expect("checked spill entry must pop");
                // lint:allow(A1) -- `cur`'s storage is retained across
                // refills; steady-state refills reuse its capacity.
                self.cur.push(entry);
            }
            self.cur_end = next_end;
            if !self.cur.is_empty() {
                // Descending: the minimum key pops from the back.
                self.cur.sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
            }
        }
    }

    /// Re-bases the rung at the overflow minimum and re-widens so the
    /// whole overflow span fits one rung, then redistributes overflow
    /// into the wheel. Only called with the rung fully consumed, so
    /// every resident overflow key is at or past the old rung end and
    /// `cur_end` stays monotone.
    fn reseed(&mut self) {
        debug_assert!(!self.overflow.is_empty());
        self.reseeds += 1;
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for entry in &self.overflow {
            lo = lo.min(entry.raw_at());
            hi = hi.max(entry.raw_at());
        }
        self.base = lo;
        self.cur_end = lo;
        self.width =
            ((hi - lo) / WHEEL_BUCKETS as u64 + 1).next_power_of_two().max(MIN_BUCKET_WIDTH);
        while let Some(entry) = self.overflow.pop() {
            // The new rung covers `hi`, so every entry lands in a bucket
            // (or the spill lane) — never back in overflow.
            self.place_in_rung(entry);
        }
    }

    /// Earliest `(raw time, tag)` over the wheel lanes (everything not
    /// yet in `cur`): first non-empty bucket min, its spill companion,
    /// else the overflow min.
    fn wheel_min(&self) -> Option<(u64, u64)> {
        let first = ((self.cur_end.max(self.base) - self.base) / self.width) as usize;
        for bucket in first..WHEEL_BUCKETS {
            let count = self.counts[bucket];
            if count == 0 {
                continue;
            }
            let slots = &self.slab[bucket * BUCKET_CAP..bucket * BUCKET_CAP + count];
            let mut min: Option<(u64, u64)> = None;
            for slot in slots {
                // INVARIANT: `counts[bucket]` slots are always filled
                // contiguously from the bucket's start.
                let e = slot.as_ref().expect("bucket slot must be filled");
                let key = (e.raw_at(), e.tag);
                if min.is_none_or(|m| key < m) {
                    min = Some(key);
                }
            }
            // A spill entry can undercut the bucket minimum only if it
            // spilled from this same (still-full) bucket.
            if let Some(s) = self.spill.last() {
                let key = (s.raw_at(), s.tag);
                if min.is_none_or(|m| key < m) {
                    min = Some(key);
                }
            }
            return min;
        }
        if let Some(s) = self.spill.last() {
            return Some((s.raw_at(), s.tag));
        }
        let mut min: Option<(u64, u64)> = None;
        for e in &self.overflow {
            let key = (e.raw_at(), e.tag);
            if min.is_none_or(|m| key < m) {
                min = Some(key);
            }
        }
        min
    }

    /// Removes and returns the earliest entry with `at <= horizon`
    /// (`None` horizon = no bound).
    // lint:hot_path
    pub fn pop_within(&mut self, horizon: Option<SimTime>) -> Option<(SimTime, T)> {
        if self.cur.is_empty() {
            self.advance();
        }
        let head = self.cur.last()?;
        if let Some(h) = horizon {
            if head.at > h {
                return None;
            }
        }
        // INVARIANT: `last` above returned `Some`, and no entry was
        // removed since, so `cur` is non-empty here.
        let entry = self.cur.pop().expect("peeked entry must pop");
        self.len -= 1;
        Some((entry.at, entry.item))
    }

    /// Earliest key time, if any.
    pub fn next_at(&self) -> Option<SimTime> {
        self.next_key().map(|(at, _)| at)
    }

    /// Earliest full `(time, tag)` key, if any. Run-commit uses this to
    /// decide how many members of a contiguous run stay ahead of every
    /// other staged entry.
    // lint:hot_path
    pub fn next_key(&self) -> Option<(SimTime, u64)> {
        // `cur` holds the minimum whenever it is non-empty: every wheel
        // lane only stores keys at or past `cur_end`.
        if let Some(e) = self.cur.last() {
            return Some(e.key());
        }
        self.wheel_min().map(|(raw, tag)| (SimTime::from_nanos(raw), tag))
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pushes that missed their slab bucket and took the sorted spill
    /// lane (O(n) insert instead of an O(1) slab append).
    pub fn spill_count(&self) -> u64 {
        self.spills
    }

    /// Rung re-seeds from the overflow lane so far.
    pub fn reseed_count(&self) -> u64 {
        self.reseeds
    }

    /// Peak entries resident at once over the queue's lifetime.
    pub fn len_high_water(&self) -> u64 {
        self.len_high
    }

    /// Folds another queue's lifetime metrics into this one (spills and
    /// reseeds sum; the high-water mark is the max over the queues, i.e.
    /// the deepest any single queue ever got). A parallel engine calls
    /// this when reassembling per-shard queues so machine-wide totals
    /// survive the shards' destruction.
    pub fn absorb_metrics<U>(&mut self, other: &MergeQueue<U>) {
        self.spills += other.spills;
        self.reseeds += other.reseeds;
        self.len_high = self.len_high.max(other.len_high);
    }
}

/// Raw nanosecond value standing for "this shard has no future events".
const FRONTIER_EXHAUSTED: u64 = u64::MAX;

/// Published per-shard lower bounds on future event times.
///
/// During an execute phase each shard publishes a lower bound on the
/// time of any event it may still produce (its minimum unfinished node
/// clock; every future packet leaves at or after that clock and arrives
/// strictly later thanks to the fabric lookahead). After a barrier,
/// [`TimeFrontier::horizon`] — the minimum over shards — bounds what any
/// shard may safely commit: all packets at or before it have already
/// been exchanged.
#[derive(Debug)]
pub struct TimeFrontier {
    bounds: Vec<AtomicU64>,
}

impl TimeFrontier {
    /// A frontier for `shards` shards, initially all at time zero.
    pub fn new(shards: usize) -> Self {
        TimeFrontier { bounds: (0..shards).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Publishes shard `shard`'s bound: `Some(t)` = no future event
    /// before `t`; `None` = the shard is exhausted (no future events at
    /// all).
    pub fn publish(&self, shard: usize, bound: Option<SimTime>) {
        let raw = bound.map_or(FRONTIER_EXHAUSTED, SimTime::as_nanos);
        self.bounds[shard].store(raw, Ordering::Release);
    }

    /// The commit horizon: the minimum published bound, or `None` when
    /// every shard is exhausted (commit everything). Only meaningful
    /// between the barrier that ends an execute phase and the barrier
    /// that ends the commit phase.
    pub fn horizon(&self) -> Option<SimTime> {
        let min = self.bounds.iter().map(|b| b.load(Ordering::Acquire)).min().unwrap_or(0);
        if min == FRONTIER_EXHAUSTED {
            None
        } else {
            Some(SimTime::from_nanos(min))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;
    use std::sync::Arc;

    #[test]
    fn barrier_releases_all_parties_each_generation() {
        let parties = 4;
        let barrier = Arc::new(SpinBarrier::new(parties));
        let passed = Arc::new(TestCounter::new(0));
        let epochs = 50;
        std::thread::scope(|s| {
            for _ in 0..parties {
                let barrier = Arc::clone(&barrier);
                let passed = Arc::clone(&passed);
                s.spawn(move || {
                    for e in 0..epochs {
                        barrier.wait();
                        // Everyone from epoch e has arrived: the count
                        // must be a multiple of the party count by the
                        // time anyone passes.
                        let seen = passed.fetch_add(1, Ordering::AcqRel);
                        assert!(seen / parties as u64 <= e + 1);
                    }
                });
            }
        });
        assert_eq!(passed.load(Ordering::Acquire), parties as u64 * epochs);
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..3 {
            b.wait();
        }
    }

    #[test]
    fn grid_routes_by_destination_in_source_order() {
        let grid: ExchangeGrid<u32> = ExchangeGrid::new(3);
        grid.post(0, 2, 10);
        grid.post(1, 2, 20);
        grid.post(0, 2, 11);
        grid.post(2, 0, 30);
        let mut out = Vec::new();
        grid.drain_to(2, &mut out);
        assert_eq!(out, [10, 11, 20], "source-major, generation order within a source");
        out.clear();
        grid.drain_to(0, &mut out);
        assert_eq!(out, [30]);
        assert!(grid.is_empty());
    }

    #[test]
    fn grid_post_batch_moves_and_keeps_capacity() {
        let grid: ExchangeGrid<u32> = ExchangeGrid::new(2);
        let mut batch = Vec::with_capacity(8);
        batch.extend([1, 2, 3]);
        grid.post_batch(0, 1, &mut batch);
        assert!(batch.is_empty());
        assert!(batch.capacity() >= 8, "batch keeps its allocation");
        let mut out = Vec::new();
        grid.drain_to(1, &mut out);
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    fn merge_queue_pops_by_time_then_tag_regardless_of_insertion_order() {
        let t = SimTime::from_nanos;
        // Two insertion orders of the same set.
        let orders: [&[(u64, u16, u64)]; 2] = [
            &[(50, 1, 0), (50, 0, 0), (10, 3, 7), (50, 0, 1)],
            &[(50, 0, 1), (10, 3, 7), (50, 0, 0), (50, 1, 0)],
        ];
        let mut pops = Vec::new();
        for order in orders {
            let mut q = MergeQueue::new();
            for &(at, src, seq) in order {
                q.push(t(at), merge_tag(src, seq), (src, seq));
            }
            let mut seq = Vec::new();
            while let Some((at, item)) = q.pop_within(None) {
                seq.push((at, item));
            }
            pops.push(seq);
        }
        assert_eq!(pops[0], pops[1], "pop order must not depend on insertion order");
        assert_eq!(
            pops[0],
            [(t(10), (3, 7)), (t(50), (0, 0)), (t(50), (0, 1)), (t(50), (1, 0))],
            "ties break by (source, sequence)"
        );
    }

    #[test]
    fn merge_queue_respects_horizon() {
        let mut q = MergeQueue::new();
        q.push(SimTime::from_nanos(5), merge_tag(0, 0), "early");
        q.push(SimTime::from_nanos(15), merge_tag(0, 1), "late");
        assert_eq!(q.pop_within(Some(SimTime::from_nanos(10))).map(|(_, i)| i), Some("early"));
        assert_eq!(q.pop_within(Some(SimTime::from_nanos(10))), None, "late item is beyond");
        assert_eq!(q.next_at(), Some(SimTime::from_nanos(15)));
        assert_eq!(q.pop_within(None).map(|(_, i)| i), Some("late"));
        assert!(q.is_empty());
    }

    #[test]
    fn merge_queue_handles_far_future_keys_across_rungs() {
        // Keys spanning many rungs (the initial rung covers 64 µs) force
        // the wheel through bucket refills and overflow re-seeds; pops
        // must still come out in strict key order.
        let mut q = MergeQueue::new();
        let mut expect = Vec::new();
        for i in 0..200u64 {
            // Deterministic scatter over ~13 ms: far past the first rung.
            let at = (i * 7919) % 13_000_000;
            q.push(SimTime::from_nanos(at), merge_tag(0, i), i);
            expect.push((at, i));
        }
        expect.sort_unstable();
        let mut got = Vec::new();
        while let Some((at, item)) = q.pop_within(None) {
            got.push((at.as_nanos(), item));
        }
        assert_eq!(got, expect);
        assert!(q.is_empty());
    }

    #[test]
    fn merge_queue_bucket_overflow_spills_in_order() {
        // More same-bucket entries than a slab bucket holds: the excess
        // takes the spill lane and must interleave back by key.
        let mut q = MergeQueue::new();
        let n = 3 * super::BUCKET_CAP as u64;
        for i in (0..n).rev() {
            q.push(SimTime::from_nanos(100 + i), merge_tag(1, i), i);
        }
        for i in 0..n {
            let (at, item) = q.pop_within(None).expect("entry present");
            assert_eq!((at.as_nanos(), item), (100 + i, i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn merge_queue_accepts_keys_below_the_consumed_region() {
        // Restaged run tails re-enter with keys near (or below) already
        // popped times; they must sort into the current lane, not get
        // lost behind it.
        let mut q = MergeQueue::new();
        q.push(SimTime::from_nanos(10_000), merge_tag(0, 0), "first");
        q.push(SimTime::from_nanos(90_000), merge_tag(0, 1), "far");
        assert_eq!(q.pop_within(None).map(|(_, i)| i), Some("first"));
        // The consumed region has moved past 10 µs; push below it.
        q.push(SimTime::from_nanos(9_500), merge_tag(0, 2), "late-arrival");
        q.push(SimTime::from_nanos(40_000), merge_tag(0, 3), "mid");
        assert_eq!(q.next_at(), Some(SimTime::from_nanos(9_500)));
        assert_eq!(q.pop_within(None).map(|(_, i)| i), Some("late-arrival"));
        assert_eq!(q.pop_within(None).map(|(_, i)| i), Some("mid"));
        assert_eq!(q.pop_within(None).map(|(_, i)| i), Some("far"));
        assert!(q.is_empty());
    }

    #[test]
    fn merge_queue_next_key_sees_every_lane() {
        let mut q = MergeQueue::new();
        // Overflow only (beyond the initial 64 µs rung).
        q.push(SimTime::from_nanos(1_000_000), merge_tag(2, 0), ());
        assert_eq!(q.next_key(), Some((SimTime::from_nanos(1_000_000), merge_tag(2, 0))));
        // A rung entry undercuts it.
        q.push(SimTime::from_nanos(5_000), merge_tag(2, 1), ());
        assert_eq!(q.next_key(), Some((SimTime::from_nanos(5_000), merge_tag(2, 1))));
        // After a pop fills `cur`, the peek is O(1) off its back.
        assert!(q.pop_within(None).is_some());
        assert_eq!(q.next_key(), Some((SimTime::from_nanos(1_000_000), merge_tag(2, 0))));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn merge_queue_metrics_count_spills_reseeds_and_depth() {
        let mut q = MergeQueue::new();
        // Overfill one bucket: BUCKET_CAP slab slots, the rest spill.
        for i in 0..(BUCKET_CAP as u64 + 5) {
            q.push(SimTime::from_nanos(100), merge_tag(0, i), i);
        }
        assert_eq!(q.spill_count(), 5);
        assert_eq!(q.len_high_water(), BUCKET_CAP as u64 + 5);
        // Park one entry far beyond the rung, drain, and pop into it:
        // the wheel must re-seed from overflow exactly once.
        q.push(SimTime::from_nanos(100_000_000), merge_tag(0, 99), 99);
        assert_eq!(q.reseed_count(), 0);
        while q.pop_within(None).is_some() {}
        assert_eq!(q.reseed_count(), 1);
        assert_eq!(q.len_high_water(), BUCKET_CAP as u64 + 6);
        assert!(q.is_empty());
    }

    #[test]
    fn frontier_horizon_is_min_bound() {
        let f = TimeFrontier::new(3);
        f.publish(0, Some(SimTime::from_nanos(100)));
        f.publish(1, Some(SimTime::from_nanos(40)));
        f.publish(2, None);
        assert_eq!(f.horizon(), Some(SimTime::from_nanos(40)));
        f.publish(1, None);
        assert_eq!(f.horizon(), Some(SimTime::from_nanos(100)));
        f.publish(0, None);
        assert_eq!(f.horizon(), None, "all exhausted: commit everything");
    }

    #[test]
    fn merge_tag_orders_by_source_then_sequence() {
        assert!(merge_tag(0, 5) < merge_tag(1, 0));
        assert!(merge_tag(2, 3) < merge_tag(2, 4));
    }

    #[test]
    fn merge_tag_is_the_xfer_id_layout_and_cannot_drift() {
        use crate::span::XferId;
        // Boundary and representative values: the packed tag must equal
        // the correlation ID bit-for-bit, and the ID must round-trip the
        // fields, so both views of "(source, sequence)" are one layout.
        for (src, seq) in
            [(0u16, 0u64), (0, 1), (1, 0), (7, 123), (u16::MAX, 0), (u16::MAX, (1 << 48) - 1)]
        {
            let id = XferId::new(src, seq);
            assert_eq!(merge_tag(src, seq), id.raw(), "tag != id for {src}:{seq}");
            assert_eq!(id.node(), src);
            assert_eq!(id.seq(), seq);
        }
    }
}
