//! Primitives for conservative parallel discrete-event execution.
//!
//! The simulator's nodes only interact through fabric packets with a
//! known minimum latency (the fabric's lookahead: at least one router
//! hop plus wire time), so shards of the machine can advance
//! independently in bounded epochs and exchange packets at epoch
//! boundaries — classic conservative (Chandy–Misra–Bryant style)
//! synchronization, with the lookahead standing in for null messages.
//!
//! This module provides the engine-agnostic pieces:
//!
//! - [`SpinBarrier`] — a sense-reversing barrier that spins briefly and
//!   then yields, so oversubscribed hosts (more shards than cores) make
//!   progress instead of burning a timeslice,
//! - [`ExchangeGrid`] — per-(source, destination) shard mailboxes whose
//!   slots are only ever touched by one producer and one consumer in
//!   barrier-separated phases, so the locks are uncontended,
//! - [`MergeQueue`] — a priority queue keyed `(SimTime, tag)` whose pop
//!   order is a pure function of its *contents*, never of insertion
//!   order, making cross-shard merges deterministic at any thread count,
//! - [`TimeFrontier`] — published per-shard lower bounds on future event
//!   times, whose minimum is the safe commit horizon for an epoch.
//!
//! Determinism contract: give every item a globally unique [`merge_tag`]
//! (source id ‖ per-source sequence number) and pop strictly by
//! `(time, tag)`. Two runs that insert the same item *sets* — however
//! the insertions were interleaved by threads — then pop identical
//! sequences. The simulated timeline therefore cannot observe the
//! thread count.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::SimTime;

/// Spin iterations before a waiting thread starts yielding its timeslice.
/// Short: with more shards than cores (the common case on small hosts)
/// the peer we wait for cannot run until we yield.
const SPINS_BEFORE_YIELD: u32 = 64;

/// A sense-reversing barrier for a fixed party count.
///
/// `wait` returns once all parties have arrived. Waiters spin briefly,
/// then `yield_now` so an oversubscribed host schedules the stragglers.
#[derive(Debug)]
pub struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// A barrier for `parties` threads.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        SpinBarrier { parties, arrived: AtomicUsize::new(0), generation: AtomicUsize::new(0) }
    }

    /// Blocks until all parties have called `wait` for the current
    /// generation. The last arrival resets the barrier for reuse.
    pub fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Leader: reset the arrival count *before* releasing the
            // generation, so early arrivals of the next epoch count from
            // zero.
            self.arrived.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::AcqRel);
            return;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == generation {
            spins = spins.saturating_add(1);
            if spins < SPINS_BEFORE_YIELD {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// Per-(source, destination) mailboxes for cross-shard item exchange.
///
/// Slot `(src, dst)` is written only by shard `src` during an execute
/// phase and drained only by shard `dst` during the following commit
/// phase; a barrier separates the phases, so every lock acquisition is
/// uncontended and the drained item set is a deterministic function of
/// the epoch, not of thread scheduling.
#[derive(Debug)]
pub struct ExchangeGrid<T> {
    /// `slots[dst][src]`.
    slots: Vec<Vec<Mutex<Vec<T>>>>,
}

impl<T> ExchangeGrid<T> {
    /// A grid for `shards` shards.
    pub fn new(shards: usize) -> Self {
        let slots =
            (0..shards).map(|_| (0..shards).map(|_| Mutex::new(Vec::new())).collect()).collect();
        ExchangeGrid { slots }
    }

    /// Number of shards the grid connects.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// Posts one item from shard `src` to shard `dst`.
    pub fn post(&self, src: usize, dst: usize, item: T) {
        // INVARIANT: mailbox-lock holders never panic while holding the
        // lock, so the mutex cannot be poisoned.
        self.slots[dst][src].lock().expect("mailbox poisoned").push(item);
    }

    /// Moves every item out of `batch` into the `(src, dst)` mailbox,
    /// keeping `batch`'s capacity — one lock per batch instead of one
    /// per item.
    pub fn post_batch(&self, src: usize, dst: usize, batch: &mut Vec<T>) {
        if batch.is_empty() {
            return;
        }
        // INVARIANT: mailbox-lock holders never panic while holding the
        // lock, so the mutex cannot be poisoned.
        self.slots[dst][src].lock().expect("mailbox poisoned").append(batch);
    }

    /// Drains every mailbox addressed to `dst` (in source-shard order)
    /// into `out`.
    pub fn drain_to(&self, dst: usize, out: &mut Vec<T>) {
        for slot in &self.slots[dst] {
            // INVARIANT: mailbox-lock holders never panic while holding
            // the lock, so the mutex cannot be poisoned.
            out.append(&mut slot.lock().expect("mailbox poisoned"));
        }
    }

    /// Whether every mailbox in the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.slots
            .iter()
            // INVARIANT: mailbox-lock holders never panic while holding
            // the lock, so the mutex cannot be poisoned.
            .all(|row| row.iter().all(|s| s.lock().expect("mailbox poisoned").is_empty()))
    }
}

/// Builds the unique merge key for an item from source `src` with
/// per-source sequence number `seq` (the source's items must be numbered
/// in their generation order). `seq` must stay below 2^48.
///
/// The layout **is** [`XferId`](crate::XferId): one constructor
/// owns the `(source << 48) | sequence` packing, so a transfer's
/// correlation ID and its merge tag can never drift apart — the parallel
/// engine commits packets keyed by `id.raw()` directly.
pub const fn merge_tag(src: u16, seq: u64) -> u64 {
    debug_assert!(seq < 1 << 48);
    crate::span::XferId::new(src, seq).raw()
}

/// One entry of a [`MergeQueue`]. Ordered by key alone so `T` needs no
/// ordering of its own (packets aren't comparable).
#[derive(Debug)]
struct MergeEntry<T> {
    at: SimTime,
    tag: u64,
    item: T,
}

impl<T> MergeEntry<T> {
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.tag)
    }
}

impl<T> PartialEq for MergeEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<T> Eq for MergeEntry<T> {}

impl<T> PartialOrd for MergeEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for MergeEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// A deterministic min-queue keyed `(SimTime, tag)`.
///
/// Unlike [`EventQueue`](crate::EventQueue), which breaks time ties by
/// *insertion* order (correct for a single-threaded scheduler, undefined
/// across threads), `MergeQueue` orders purely by the caller-supplied
/// key, so its pop sequence is a function of the inserted set alone.
#[derive(Debug, Default)]
pub struct MergeQueue<T> {
    heap: BinaryHeap<Reverse<MergeEntry<T>>>,
}

impl<T> MergeQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        MergeQueue { heap: BinaryHeap::new() }
    }

    /// Inserts `item` keyed `(at, tag)`. Tags must be unique per queue
    /// (see [`merge_tag`]); entries are ordered by key alone, so
    /// duplicate keys would pop in unspecified relative order.
    // lint:hot_path
    pub fn push(&mut self, at: SimTime, tag: u64, item: T) {
        // lint:allow(A1) -- the heap's backing storage is retained across
        // pops; steady-state pushes reuse capacity and never allocate.
        self.heap.push(Reverse(MergeEntry { at, tag, item }));
    }

    /// Removes and returns the earliest entry with `at <= horizon`
    /// (`None` horizon = no bound).
    pub fn pop_within(&mut self, horizon: Option<SimTime>) -> Option<(SimTime, T)> {
        let head = self.heap.peek()?;
        if let Some(h) = horizon {
            if head.0.at > h {
                return None;
            }
        }
        // INVARIANT: `peek` above returned `Some`, and no entry was
        // removed since, so the heap is non-empty here.
        let Reverse(entry) = self.heap.pop().expect("peeked entry must pop");
        Some((entry.at, entry.item))
    }

    /// Earliest key time, if any.
    pub fn next_at(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.at)
    }

    /// Earliest full `(time, tag)` key, if any. Run-commit uses this to
    /// decide how many members of a contiguous run stay ahead of every
    /// other staged entry.
    pub fn next_key(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|e| e.0.key())
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Raw nanosecond value standing for "this shard has no future events".
const FRONTIER_EXHAUSTED: u64 = u64::MAX;

/// Published per-shard lower bounds on future event times.
///
/// During an execute phase each shard publishes a lower bound on the
/// time of any event it may still produce (its minimum unfinished node
/// clock; every future packet leaves at or after that clock and arrives
/// strictly later thanks to the fabric lookahead). After a barrier,
/// [`TimeFrontier::horizon`] — the minimum over shards — bounds what any
/// shard may safely commit: all packets at or before it have already
/// been exchanged.
#[derive(Debug)]
pub struct TimeFrontier {
    bounds: Vec<AtomicU64>,
}

impl TimeFrontier {
    /// A frontier for `shards` shards, initially all at time zero.
    pub fn new(shards: usize) -> Self {
        TimeFrontier { bounds: (0..shards).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Publishes shard `shard`'s bound: `Some(t)` = no future event
    /// before `t`; `None` = the shard is exhausted (no future events at
    /// all).
    pub fn publish(&self, shard: usize, bound: Option<SimTime>) {
        let raw = bound.map_or(FRONTIER_EXHAUSTED, SimTime::as_nanos);
        self.bounds[shard].store(raw, Ordering::Release);
    }

    /// The commit horizon: the minimum published bound, or `None` when
    /// every shard is exhausted (commit everything). Only meaningful
    /// between the barrier that ends an execute phase and the barrier
    /// that ends the commit phase.
    pub fn horizon(&self) -> Option<SimTime> {
        let min = self.bounds.iter().map(|b| b.load(Ordering::Acquire)).min().unwrap_or(0);
        if min == FRONTIER_EXHAUSTED {
            None
        } else {
            Some(SimTime::from_nanos(min))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;
    use std::sync::Arc;

    #[test]
    fn barrier_releases_all_parties_each_generation() {
        let parties = 4;
        let barrier = Arc::new(SpinBarrier::new(parties));
        let passed = Arc::new(TestCounter::new(0));
        let epochs = 50;
        std::thread::scope(|s| {
            for _ in 0..parties {
                let barrier = Arc::clone(&barrier);
                let passed = Arc::clone(&passed);
                s.spawn(move || {
                    for e in 0..epochs {
                        barrier.wait();
                        // Everyone from epoch e has arrived: the count
                        // must be a multiple of the party count by the
                        // time anyone passes.
                        let seen = passed.fetch_add(1, Ordering::AcqRel);
                        assert!(seen / parties as u64 <= e + 1);
                    }
                });
            }
        });
        assert_eq!(passed.load(Ordering::Acquire), parties as u64 * epochs);
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..3 {
            b.wait();
        }
    }

    #[test]
    fn grid_routes_by_destination_in_source_order() {
        let grid: ExchangeGrid<u32> = ExchangeGrid::new(3);
        grid.post(0, 2, 10);
        grid.post(1, 2, 20);
        grid.post(0, 2, 11);
        grid.post(2, 0, 30);
        let mut out = Vec::new();
        grid.drain_to(2, &mut out);
        assert_eq!(out, [10, 11, 20], "source-major, generation order within a source");
        out.clear();
        grid.drain_to(0, &mut out);
        assert_eq!(out, [30]);
        assert!(grid.is_empty());
    }

    #[test]
    fn grid_post_batch_moves_and_keeps_capacity() {
        let grid: ExchangeGrid<u32> = ExchangeGrid::new(2);
        let mut batch = Vec::with_capacity(8);
        batch.extend([1, 2, 3]);
        grid.post_batch(0, 1, &mut batch);
        assert!(batch.is_empty());
        assert!(batch.capacity() >= 8, "batch keeps its allocation");
        let mut out = Vec::new();
        grid.drain_to(1, &mut out);
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    fn merge_queue_pops_by_time_then_tag_regardless_of_insertion_order() {
        let t = SimTime::from_nanos;
        // Two insertion orders of the same set.
        let orders: [&[(u64, u16, u64)]; 2] = [
            &[(50, 1, 0), (50, 0, 0), (10, 3, 7), (50, 0, 1)],
            &[(50, 0, 1), (10, 3, 7), (50, 0, 0), (50, 1, 0)],
        ];
        let mut pops = Vec::new();
        for order in orders {
            let mut q = MergeQueue::new();
            for &(at, src, seq) in order {
                q.push(t(at), merge_tag(src, seq), (src, seq));
            }
            let mut seq = Vec::new();
            while let Some((at, item)) = q.pop_within(None) {
                seq.push((at, item));
            }
            pops.push(seq);
        }
        assert_eq!(pops[0], pops[1], "pop order must not depend on insertion order");
        assert_eq!(
            pops[0],
            [(t(10), (3, 7)), (t(50), (0, 0)), (t(50), (0, 1)), (t(50), (1, 0))],
            "ties break by (source, sequence)"
        );
    }

    #[test]
    fn merge_queue_respects_horizon() {
        let mut q = MergeQueue::new();
        q.push(SimTime::from_nanos(5), merge_tag(0, 0), "early");
        q.push(SimTime::from_nanos(15), merge_tag(0, 1), "late");
        assert_eq!(q.pop_within(Some(SimTime::from_nanos(10))).map(|(_, i)| i), Some("early"));
        assert_eq!(q.pop_within(Some(SimTime::from_nanos(10))), None, "late item is beyond");
        assert_eq!(q.next_at(), Some(SimTime::from_nanos(15)));
        assert_eq!(q.pop_within(None).map(|(_, i)| i), Some("late"));
        assert!(q.is_empty());
    }

    #[test]
    fn frontier_horizon_is_min_bound() {
        let f = TimeFrontier::new(3);
        f.publish(0, Some(SimTime::from_nanos(100)));
        f.publish(1, Some(SimTime::from_nanos(40)));
        f.publish(2, None);
        assert_eq!(f.horizon(), Some(SimTime::from_nanos(40)));
        f.publish(1, None);
        assert_eq!(f.horizon(), Some(SimTime::from_nanos(100)));
        f.publish(0, None);
        assert_eq!(f.horizon(), None, "all exhausted: commit everything");
    }

    #[test]
    fn merge_tag_orders_by_source_then_sequence() {
        assert!(merge_tag(0, 5) < merge_tag(1, 0));
        assert!(merge_tag(2, 3) < merge_tag(2, 4));
    }

    #[test]
    fn merge_tag_is_the_xfer_id_layout_and_cannot_drift() {
        use crate::span::XferId;
        // Boundary and representative values: the packed tag must equal
        // the correlation ID bit-for-bit, and the ID must round-trip the
        // fields, so both views of "(source, sequence)" are one layout.
        for (src, seq) in
            [(0u16, 0u64), (0, 1), (1, 0), (7, 123), (u16::MAX, 0), (u16::MAX, (1 << 48) - 1)]
        {
            let id = XferId::new(src, seq);
            assert_eq!(merge_tag(src, seq), id.raw(), "tag != id for {src}:{seq}");
            assert_eq!(id.node(), src);
            assert_eq!(id.seq(), seq);
        }
    }
}
