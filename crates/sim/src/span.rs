//! Transfer-level flight recorder: typed spans with cross-node correlation.
//!
//! The UDMA fast path is invisible by design — two memory references and
//! no kernel entry — so the simulator needs its own black box. This module
//! provides one:
//!
//! - [`XferId`] — a correlation ID minted by the NIC when a transfer is
//!   packetized, carried inside every fabric packet ([`XferMeta`]),
//! - [`SpanRecord`] — the completed five-stage span of one packet
//!   (initiation → queued → wire → delivered → status-observed), assembled
//!   at delivery time from the timestamps the meta block accumulated,
//! - [`EventRing`] — a fixed-capacity, allocation-free ring buffer for
//!   `Copy` records (the hot path never touches the heap once the ring's
//!   storage is reserved),
//! - [`FlightRecorder`] — a span ring plus per-stage latency
//!   [`Histogram`]s, with a deterministic merge for the sharded parallel
//!   engine,
//! - [`MachineEvent`] / [`MachineEventKind`] — the typed replacement for
//!   the old string-based machine trace; the legacy `TraceBuffer` is now a
//!   debug *formatter* rendered on demand from these events.
//!
//! Determinism contract: per-shard recorders merge in the same
//! `(link_ready, src‖seq)` order the parallel engine commits packets, so
//! the merged trace is bit-identical at any thread count.

use std::fmt;

use crate::stats::Histogram;
use crate::time::SimTime;

/// Correlation ID for one UDMA/PIO transfer packet.
///
/// Layout is `(source node) << 48 | per-NIC sequence number` — the same
/// shape as the parallel engine's merge tag, so sorting span records by
/// `(link_ready, id)` reproduces the engine's packet commit order exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct XferId(u64);

impl XferId {
    /// Mints the ID for `seq`-th packet sent by `node`.
    ///
    /// `seq` must fit in 48 bits; the simulator would need ~10^14 packets
    /// from one NIC to overflow.
    pub const fn new(node: u16, seq: u64) -> Self {
        XferId(((node as u64) << 48) | (seq & ((1 << 48) - 1)))
    }

    /// The minting (source) node.
    pub const fn node(self) -> u16 {
        (self.0 >> 48) as u16
    }

    /// The per-NIC sequence number.
    pub const fn seq(self) -> u64 {
        self.0 & ((1 << 48) - 1)
    }

    /// The packed 64-bit form (sorts as `(node, seq)`).
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for XferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node(), self.seq())
    }
}

/// Per-packet correlation block carried inside every fabric packet.
///
/// The NIC fills `id`, `initiated_at` and `queued_at` when it packetizes;
/// the fabric stamps `link_ready` on injection; the sending driver stamps
/// `status_observed` (the sender's clock after its completion LOAD
/// returned) when it drains the NIC. The receiver combines these with its
/// own arrival/deposit times into a [`SpanRecord`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct XferMeta {
    /// Correlation ID minted by the sending NIC.
    pub id: XferId,
    /// When the user's STORE kicked off the DMA transfer that produced
    /// this packet (the transfer's `started_at`).
    pub initiated_at: SimTime,
    /// When the NIC finished packetizing (DMA retire + header build).
    pub queued_at: SimTime,
    /// When the packet reached the head of the source link (routing done,
    /// before link serialization).
    pub link_ready: SimTime,
    /// The sender's clock when the packet left the node — by then the
    /// completion-status LOAD for the owning message has been observed.
    pub status_observed: SimTime,
}

/// Number of stages in a transfer span.
pub const STAGE_COUNT: usize = 5;

/// One stage of a transfer span, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// User STORE → NIC packetize: DMA engine service time.
    Initiation,
    /// Packetize → head of the source link: header build + routing.
    Queued,
    /// Head of link → last byte off the wire: serialization + contention.
    Wire,
    /// Wire → data deposited in destination physical memory: EISA DMA.
    Delivered,
    /// Deposit → sender's completion status observed.
    StatusObserved,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] =
        [Stage::Initiation, Stage::Queued, Stage::Wire, Stage::Delivered, Stage::StatusObserved];

    /// Stable display name (used in the Perfetto export).
    pub const fn name(self) -> &'static str {
        match self {
            Stage::Initiation => "initiation",
            Stage::Queued => "queued",
            Stage::Wire => "wire",
            Stage::Delivered => "delivered",
            Stage::StatusObserved => "status-observed",
        }
    }

    /// Index into [`Stage::ALL`].
    pub const fn index(self) -> usize {
        match self {
            Stage::Initiation => 0,
            Stage::Queued => 1,
            Stage::Wire => 2,
            Stage::Delivered => 3,
            Stage::StatusObserved => 4,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The completed span of one packet: six timestamps bounding five stages.
///
/// `Copy` and fixed-size by construction — recording one is a handful of
/// word moves into a pre-sized ring, never a heap allocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanRecord {
    /// Correlation ID (also encodes the source node and NIC sequence).
    pub id: XferId,
    /// Sending node index.
    pub src: u16,
    /// Receiving node index.
    pub dst: u16,
    /// Payload bytes carried.
    pub bytes: u32,
    /// User STORE that started the owning DMA transfer.
    pub initiated_at: SimTime,
    /// NIC packetize complete.
    pub queued_at: SimTime,
    /// Head of the source link (routing done).
    pub link_ready: SimTime,
    /// Last byte off the wire at the receiver.
    pub wire_done: SimTime,
    /// Data deposited into destination physical memory.
    pub delivered_at: SimTime,
    /// Sender's completion status observed (clamped to `delivered_at`).
    pub status_at: SimTime,
}

impl SpanRecord {
    /// The `[start, end]` bounds of `stage`.
    pub fn stage_bounds(&self, stage: Stage) -> (SimTime, SimTime) {
        match stage {
            Stage::Initiation => (self.initiated_at, self.queued_at),
            Stage::Queued => (self.queued_at, self.link_ready),
            Stage::Wire => (self.link_ready, self.wire_done),
            Stage::Delivered => (self.wire_done, self.delivered_at),
            Stage::StatusObserved => (self.delivered_at, self.status_at),
        }
    }

    /// `true` when the six timestamps are non-decreasing in stage order.
    pub fn is_monotonic(&self) -> bool {
        self.initiated_at <= self.queued_at
            && self.queued_at <= self.link_ready
            && self.link_ready <= self.wire_done
            && self.wire_done <= self.delivered_at
            && self.delivered_at <= self.status_at
    }

    /// The deterministic merge key: `(link_ready, id)` — identical to the
    /// parallel engine's `(link_ready, src‖seq)` packet commit order.
    pub fn merge_key(&self) -> (SimTime, u64) {
        (self.link_ready, self.id.raw())
    }
}

/// Fixed-capacity ring buffer for `Copy` records.
///
/// Construction is free: storage is reserved only when the ring is
/// enabled, so disabled recorders cost nothing and enabled ones allocate
/// once, *before* the measured region. Recording into an enabled ring
/// never allocates; when full, the oldest record is overwritten.
#[derive(Clone, Debug)]
pub struct EventRing<T> {
    buf: Vec<T>,
    head: usize,
    cap: usize,
    enabled: bool,
    total: u64,
}

impl<T: Copy> EventRing<T> {
    /// A disabled ring that will hold up to `capacity` records.
    ///
    /// # Panics
    ///
    /// If `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "EventRing capacity must be non-zero");
        EventRing { buf: Vec::new(), head: 0, cap: capacity, enabled: false, total: 0 }
    }

    /// Enables or disables recording. Enabling reserves the ring's full
    /// storage up front (the one and only allocation).
    pub fn set_enabled(&mut self, enabled: bool) {
        if enabled && self.buf.capacity() < self.cap {
            self.buf.reserve_exact(self.cap - self.buf.len());
        }
        self.enabled = enabled;
    }

    /// Whether [`EventRing::record`] currently stores anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records `value` if enabled; returns whether it was stored.
    #[inline]
    pub fn record(&mut self, value: T) -> bool {
        if !self.enabled {
            return false;
        }
        // lint:allow(A1) -- EventRing::push, not Vec::push: the ring is
        // checked on its own below.
        self.push(value);
        true
    }

    /// Stores `value` unconditionally (merge path; ignores `enabled`).
    pub fn push(&mut self, value: T) {
        self.total += 1;
        if self.buf.len() < self.cap {
            // lint:allow(A1) -- fills the capacity reserved up front by
            // set_enabled exactly once, then overwrites in place.
            self.buf.push(value);
        } else {
            self.buf[self.head] = value;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Accounts for `n` records dropped elsewhere (e.g. overwritten in a
    /// per-shard ring before a merge): they raise `total` — and therefore
    /// [`EventRing::dropped`] — without storing anything.
    pub fn note_external_drops(&mut self, n: u64) {
        self.total = self.total.saturating_add(n);
    }

    /// Records currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing is held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum records held at once.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records ever offered to the ring (stored or overwritten).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records lost to overwriting (`total - len`).
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }

    /// Empties the ring and resets the drop accounting.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.total = 0;
    }
}

/// The flight recorder: a span ring plus per-stage latency histograms.
///
/// Histograms and the `total` count see *every* recorded span even after
/// the ring starts overwriting, so summary statistics are exact while the
/// ring keeps only the newest `capacity` spans for inspection/export.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    ring: EventRing<SpanRecord>,
    stages: [Histogram; STAGE_COUNT],
}

impl FlightRecorder {
    /// A disabled recorder holding up to `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder { ring: EventRing::new(capacity), stages: Default::default() }
    }

    /// Enables or disables recording; enabling reserves the span ring.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.ring.set_enabled(enabled);
    }

    /// Whether spans are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.ring.is_enabled()
    }

    /// Records one completed span (no-op while disabled, alloc-free
    /// while enabled).
    #[inline]
    pub fn record(&mut self, span: SpanRecord) {
        if !self.ring.is_enabled() {
            return;
        }
        for stage in Stage::ALL {
            let (start, end) = span.stage_bounds(stage);
            self.stages[stage.index()].record(end.saturating_duration_since(start).as_nanos());
        }
        self.ring.push(span);
    }

    /// Deterministically merges per-shard recorders into this one.
    ///
    /// Span records are concatenated and sorted by [`SpanRecord::merge_key`]
    /// — the parallel engine's packet commit order — so the result is
    /// bit-identical regardless of how work was sharded. Stage histograms
    /// are summed (not re-recorded), so summary statistics stay exact even
    /// when a shard's ring overflowed.
    pub fn absorb(&mut self, parts: Vec<FlightRecorder>) {
        let mut records: Vec<SpanRecord> = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
        let mut shed = 0u64;
        for part in &parts {
            for (i, h) in part.stages.iter().enumerate() {
                self.stages[i].merge(h);
            }
            shed += part.ring.dropped();
            records.extend(part.iter().copied());
        }
        records.sort_unstable_by_key(SpanRecord::merge_key);
        self.ring.note_external_drops(shed);
        for record in records {
            self.ring.push(record);
        }
    }

    /// Latency histogram (nanoseconds) for one stage.
    pub fn stage_histogram(&self, stage: Stage) -> &Histogram {
        &self.stages[stage.index()]
    }

    /// Spans currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when no spans are held.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Maximum spans held at once.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Spans ever recorded (including those overwritten since).
    pub fn total_recorded(&self) -> u64 {
        self.ring.total()
    }

    /// Spans lost to ring overwriting.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Iterates held spans, oldest → newest (commit order).
    pub fn iter(&self) -> impl Iterator<Item = &SpanRecord> {
        self.ring.iter()
    }

    /// Empties the ring and zeroes the histograms.
    pub fn clear(&mut self) {
        self.ring.clear();
        self.stages = Default::default();
    }
}

/// One typed machine-level event: what the old string trace recorded,
/// minus the strings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineEvent {
    /// When the event happened.
    pub at: SimTime,
    /// What happened.
    pub kind: MachineEventKind,
}

/// The typed event vocabulary of the machine/OS layers.
///
/// Every variant is plain `Copy` data; the human-readable strings the old
/// `TraceBuffer` stored are now produced on demand by the `Display` impl,
/// off the hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachineEventKind {
    /// A user STORE hit device proxy space (UDMA initiation, first half).
    ProxyStore {
        /// Proxy physical address stored to.
        pa: u64,
        /// The value stored (transfer size, or negative control values).
        value: i64,
    },
    /// A user LOAD hit memory proxy space (UDMA initiation second half, or
    /// a completion poll).
    ProxyLoad {
        /// Proxy physical address loaded from.
        pa: u64,
        /// The packed status word the load observed.
        status: u64,
    },
    /// The kernel stored the invalidation value to proxy space on a
    /// context switch (invariant I1).
    Inval,
    /// A user-level message completed (`udma_transfer` returned).
    MsgDone {
        /// Message payload bytes.
        bytes: u64,
        /// DMA transfers (chunks) the message needed.
        transfers: u64,
        /// Busy/invalidation retries across those chunks.
        retries: u64,
    },
    /// The pager evicted a frame.
    Evicted {
        /// Owning process.
        pid: u64,
        /// Evicted virtual page.
        vpn: u64,
        /// Freed physical frame.
        pfn: u64,
    },
    /// The kernel switched address spaces (`-1` encodes "idle").
    ContextSwitch {
        /// Outgoing pid, or -1 for idle.
        from: i64,
        /// Incoming pid, or -1 for idle.
        to: i64,
    },
    /// The kernel fault handler ran.
    PageFault {
        /// Faulting process.
        pid: u64,
        /// Faulting virtual address.
        va: u64,
        /// Static fault label ("not-mapped", "write-protected", ...).
        what: &'static str,
    },
}

impl MachineEventKind {
    /// The trace category the old string trace filed this under.
    pub const fn category(self) -> &'static str {
        match self {
            MachineEventKind::ProxyStore { .. }
            | MachineEventKind::ProxyLoad { .. }
            | MachineEventKind::Inval => "udma",
            MachineEventKind::MsgDone { .. } => "msg",
            MachineEventKind::Evicted { .. } => "pager",
            MachineEventKind::ContextSwitch { .. } | MachineEventKind::PageFault { .. } => "kernel",
        }
    }
}

/// Renders an `Option<pid>` encoded as `-1 = idle`.
struct PidOrIdle(i64);

impl fmt::Display for PidOrIdle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 0 {
            f.write_str("idle")
        } else {
            write!(f, "pid{}", self.0)
        }
    }
}

impl fmt::Display for MachineEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MachineEventKind::ProxyStore { pa, value } => {
                write!(f, "STORE {value} TO pa=0x{pa:x}")
            }
            MachineEventKind::ProxyLoad { pa, status } => {
                write!(f, "LOAD pa=0x{pa:x} -> status=0x{status:x}")
            }
            MachineEventKind::Inval => f.write_str("INVAL (context switch)"),
            MachineEventKind::MsgDone { bytes, transfers, retries } => {
                write!(
                    f,
                    "message done: {bytes} bytes in {transfers} transfers ({retries} retries)"
                )
            }
            MachineEventKind::Evicted { pid, vpn, pfn } => {
                write!(f, "evicted pid{pid}:vpn{vpn} from pfn{pfn}")
            }
            MachineEventKind::ContextSwitch { from, to } => {
                write!(f, "context switch {} -> {}", PidOrIdle(from), PidOrIdle(to))
            }
            MachineEventKind::PageFault { pid, va, what } => {
                write!(f, "pid{pid}: {what} fault at va=0x{va:x}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn span(seq: u64, link_ready: u64) -> SpanRecord {
        SpanRecord {
            id: XferId::new(0, seq),
            src: 0,
            dst: 1,
            bytes: 64,
            initiated_at: t(10),
            queued_at: t(20),
            link_ready: t(link_ready),
            wire_done: t(link_ready + 5),
            delivered_at: t(link_ready + 9),
            status_at: t(link_ready + 9),
        }
    }

    #[test]
    fn xfer_id_packs_node_and_sequence() {
        let id = XferId::new(3, 17);
        assert_eq!(id.node(), 3);
        assert_eq!(id.seq(), 17);
        assert_eq!(id.raw(), (3u64 << 48) | 17);
        assert_eq!(id.to_string(), "3:17");
    }

    #[test]
    fn span_monotonicity_and_bounds() {
        let s = span(0, 30);
        assert!(s.is_monotonic());
        assert_eq!(s.stage_bounds(Stage::Initiation), (t(10), t(20)));
        assert_eq!(s.stage_bounds(Stage::StatusObserved), (t(39), t(39)));
        let mut bad = s;
        bad.wire_done = t(5);
        assert!(!bad.is_monotonic());
    }

    #[test]
    fn ring_is_disabled_by_default_and_overwrites_when_full() {
        let mut ring: EventRing<u64> = EventRing::new(3);
        assert!(!ring.record(1));
        assert!(ring.is_empty());
        ring.set_enabled(true);
        for v in 0..5 {
            assert!(ring.record(v));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total(), 5);
        assert_eq!(ring.dropped(), 2);
        let held: Vec<u64> = ring.iter().copied().collect();
        assert_eq!(held, vec![2, 3, 4]);
    }

    #[test]
    fn enabling_reserves_storage_once() {
        let mut ring: EventRing<u64> = EventRing::new(128);
        assert_eq!(ring.buf.capacity(), 0);
        ring.set_enabled(true);
        let cap = ring.buf.capacity();
        assert!(cap >= 128);
        for v in 0..1000 {
            ring.record(v);
        }
        assert_eq!(ring.buf.capacity(), cap, "recording must never reallocate");
    }

    #[test]
    fn recorder_tracks_stage_histograms() {
        let mut fr = FlightRecorder::new(8);
        fr.set_enabled(true);
        fr.record(span(0, 30));
        let h = fr.stage_histogram(Stage::Initiation);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), Some(SimDuration::from_nanos(10).as_nanos()));
        assert_eq!(fr.stage_histogram(Stage::StatusObserved).max(), Some(0));
    }

    #[test]
    fn absorb_merges_in_commit_order_regardless_of_sharding() {
        // Shard A holds seq 0 (link_ready 40) and seq 2 (link_ready 30);
        // shard B holds seq 1 (link_ready 30). Commit order sorts by
        // (link_ready, id): seq1 ties seq2 on time, loses on id? No —
        // XferId::new(0, 1) < XferId::new(0, 2), so order is 1, 2, 0.
        let mut a = FlightRecorder::new(8);
        let mut b = FlightRecorder::new(8);
        a.set_enabled(true);
        b.set_enabled(true);
        a.record(span(0, 40));
        a.record(span(2, 30));
        b.record(span(1, 30));

        let mut merged = FlightRecorder::new(8);
        merged.absorb(vec![a, b]);
        let seqs: Vec<u64> = merged.iter().map(|s| s.id.seq()).collect();
        assert_eq!(seqs, vec![1, 2, 0]);
        assert_eq!(merged.total_recorded(), 3);
        assert_eq!(merged.stage_histogram(Stage::Wire).count(), 3);
    }

    #[test]
    fn event_kinds_render_the_legacy_trace_text() {
        assert_eq!(
            MachineEventKind::ProxyStore { pa: 0x40, value: 64 }.to_string(),
            "STORE 64 TO pa=0x40"
        );
        assert_eq!(MachineEventKind::Inval.to_string(), "INVAL (context switch)");
        assert_eq!(MachineEventKind::Inval.category(), "udma");
        assert_eq!(MachineEventKind::Evicted { pid: 1, vpn: 2, pfn: 3 }.category(), "pager");
        assert_eq!(
            MachineEventKind::ContextSwitch { from: -1, to: 2 }.to_string(),
            "context switch idle -> pid2"
        );
    }
}
