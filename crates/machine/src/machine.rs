//! The machine proper: reference path, bus decode, cost accounting.

use shrimp_devices::Device;
use shrimp_dma::DmaTiming;
use shrimp_mem::{Layout, PhysMemory, Region, VirtAddr, MMIO_BASE, PAGE_SIZE};
use shrimp_mmu::{AccessKind, Fault, Mmu, Mode, PageTable};
use shrimp_sim::{
    Clock, CostModel, Counter, EventRing, MachineEvent, MachineEventKind, SimDuration, SimTime,
    StatSet, TraceBuffer,
};

use crate::{UdmaHw, UdmaMode};

/// Hardware configuration of a simulated node.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Calibrated timing constants.
    pub cost: CostModel,
    /// Installed physical memory in bytes.
    pub mem_bytes: u64,
    /// Size of the device proxy region in bytes.
    pub dev_proxy_bytes: u64,
    /// TLB capacity in entries.
    pub tlb_entries: usize,
    /// UDMA hardware variant.
    pub udma: UdmaMode,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cost: CostModel::default(),
            mem_bytes: 8 * 1024 * 1024,
            // SHRIMP's NIPT has 32K entries; default to a generous window.
            dev_proxy_bytes: 32 * 1024 * PAGE_SIZE,
            tlb_entries: 64,
            udma: UdmaMode::Basic,
        }
    }
}

/// Capacity of the typed machine event ring (events kept for rendering;
/// older ones are overwritten).
const TRACE_EVENTS: usize = 4096;

/// Per-region reference counters.
///
/// Plain fields rather than a keyed [`StatSet`]: `load`/`store` run once
/// per simulated reference, so the bookkeeping must be a single inlined
/// increment. [`Machine::stats`] folds them into a reportable set.
#[derive(Clone, Copy, Debug, Default)]
struct RefCounters {
    mem_loads: Counter,
    mem_stores: Counter,
    proxy_loads: Counter,
    proxy_stores: Counter,
    mmio_loads: Counter,
    mmio_stores: Counter,
    inval_stores: Counter,
    kernel_dmas: Counter,
}

/// One simulated SHRIMP node's hardware.
///
/// Generic over its UDMA-capable device `D` so examples and the SHRIMP
/// network interface keep concrete access to their device.
#[derive(Debug)]
pub struct Machine<D> {
    clock: Clock,
    cost: CostModel,
    layout: Layout,
    mem: PhysMemory,
    mmu: Mmu,
    udma: UdmaHw,
    device: D,
    refs: RefCounters,
    events: EventRing<MachineEvent>,
}

impl<D: Device> Machine<D> {
    /// Builds a machine from `config` with `device` on its I/O bus.
    pub fn new(config: MachineConfig, device: D) -> Self {
        let layout = Layout::new(config.mem_bytes, config.dev_proxy_bytes);
        let timing = DmaTiming {
            start_overhead: config.cost.dma_start,
            bus_mb_per_s: config.cost.bus_mb_per_s,
        };
        Machine {
            clock: Clock::new(),
            mmu: Mmu::new(config.tlb_entries).with_tlb_miss_cost(config.cost.tlb_miss),
            udma: UdmaHw::new(config.udma, layout, timing),
            mem: PhysMemory::new(config.mem_bytes),
            layout,
            cost: config.cost,
            device,
            refs: RefCounters::default(),
            events: EventRing::new(TRACE_EVENTS),
        }
    }

    /// The node clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Current simulated instant.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The calibrated cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The address-space layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Physical memory.
    pub fn mem(&self) -> &PhysMemory {
        &self.mem
    }

    /// Mutable physical memory (kernel use: paging I/O, zeroing frames).
    pub fn mem_mut(&mut self) -> &mut PhysMemory {
        &mut self.mem
    }

    /// The MMU.
    pub fn mmu(&self) -> &Mmu {
        &self.mmu
    }

    /// Mutable MMU (kernel use: TLB shootdowns).
    pub fn mmu_mut(&mut self) -> &mut Mmu {
        &mut self.mmu
    }

    /// The UDMA hardware.
    pub fn udma(&self) -> &UdmaHw {
        &self.udma
    }

    /// The device on the I/O bus.
    pub fn device(&self) -> &D {
        &self.device
    }

    /// Mutable device access (setup and inspection).
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.device
    }

    /// Machine statistics (reference counts by region) as a reportable
    /// set. Built on demand; the counters themselves are plain fields so
    /// the reference path stays a single increment.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new("machine");
        for (key, c) in [
            ("mem_loads", self.refs.mem_loads),
            ("mem_stores", self.refs.mem_stores),
            ("proxy_loads", self.refs.proxy_loads),
            ("proxy_stores", self.refs.proxy_stores),
            ("mmio_loads", self.refs.mmio_loads),
            ("mmio_stores", self.refs.mmio_stores),
            ("inval_stores", self.refs.inval_stores),
            ("kernel_dmas", self.refs.kernel_dmas),
        ] {
            s.add(key, c.get());
        }
        s
    }

    /// Enables or disables the typed event transcript (disabled by
    /// default; enabling reserves the ring's storage once, up front).
    pub fn set_tracing(&mut self, enabled: bool) {
        self.events.set_enabled(enabled);
    }

    /// Whether typed events are currently recorded.
    pub fn tracing(&self) -> bool {
        self.events.is_enabled()
    }

    /// The typed event transcript, oldest → newest.
    pub fn events(&self) -> &EventRing<MachineEvent> {
        &self.events
    }

    /// Records one typed event at the current instant (no-op while
    /// tracing is disabled; never allocates). The kernel layers use this
    /// for events the machine itself cannot see (evictions, context
    /// switches, message completion).
    #[inline]
    pub fn record_event(&mut self, kind: MachineEventKind) {
        let at = self.clock.now();
        self.events.record(MachineEvent { at, kind });
    }

    /// Renders the typed event transcript as a legacy string
    /// [`TraceBuffer`] — the debug formatter. Built on demand and owned by
    /// the caller; the hot path records only typed events.
    pub fn trace(&self) -> TraceBuffer {
        let mut buf = TraceBuffer::new(self.events.capacity());
        buf.set_enabled(true);
        for e in self.events.iter() {
            buf.record(e.at, e.kind.category(), || e.kind.to_string());
        }
        buf.set_enabled(self.events.is_enabled());
        buf
    }

    /// Lets autonomous hardware (UDMA engine, device) catch up to the
    /// current instant.
    pub fn poll(&mut self) {
        let now = self.clock.now();
        self.udma.poll(now, &mut self.mem, &mut self.device);
        self.device.tick(now);
    }

    /// Models `d` of CPU work, then lets the hardware catch up.
    pub fn advance(&mut self, d: SimDuration) {
        self.clock.advance(d);
        self.poll();
    }

    /// Advances to absolute instant `t` (monotonic), then polls.
    pub fn advance_to(&mut self, t: SimTime) {
        self.clock.advance_to(t);
        self.poll();
    }

    /// Models `n` straight-line instructions of CPU work.
    pub fn compute(&mut self, n: u64) {
        let d = self.cost.instructions(n);
        self.advance(d);
    }

    /// When the UDMA hardware's currently accepted work will have drained.
    pub fn udma_drained_at(&self) -> SimTime {
        self.udma.drained_at(self.clock.now())
    }

    /// Replays `count` further repetitions of the just-completed
    /// steady-state UDMA message cycle, each `stride` later than the last.
    ///
    /// The caller (the send-burst driver) has executed two literal
    /// messages, verified they were single-transfer/zero-retry and exactly
    /// `stride` apart, and asks the machine to advance as if the same
    /// cycle ran `count` more times. The machine checks that the hardware
    /// is in the replayable state (idle basic controller, last transfer
    /// memory→device) and — when tracing — that the event tail has the
    /// canonical five-event shape, then books every counter, event and
    /// device write the literal path would have produced, in one pass.
    ///
    /// Returns `false` without changing any state when the situation is
    /// not replayable; the caller falls back to literal sends.
    // lint:hot_path
    pub fn udma_replay_messages(&mut self, count: u64, stride: SimDuration) -> bool {
        if count == 0 {
            return true;
        }
        let Some(t) = self.udma.replay_template() else { return false };
        // With tracing on, the replay must reproduce the exact event tail
        // the literal path records per message: STORE, three LOADs, done.
        let mut tail = [MachineEvent { at: SimTime::ZERO, kind: MachineEventKind::Inval }; 5];
        let traced = self.events.is_enabled();
        if traced {
            let held = self.events.len();
            if held < tail.len() {
                return false;
            }
            let skip = held - tail.len();
            for (slot, e) in tail.iter_mut().zip(self.events.iter().skip(skip)) {
                *slot = *e;
            }
            let shape_ok = matches!(tail[0].kind, MachineEventKind::ProxyStore { .. })
                && matches!(tail[1].kind, MachineEventKind::ProxyLoad { .. })
                && matches!(tail[2].kind, MachineEventKind::ProxyLoad { .. })
                && matches!(tail[3].kind, MachineEventKind::ProxyLoad { .. })
                && matches!(tail[4].kind, MachineEventKind::MsgDone { .. });
            if !shape_ok {
                return false;
            }
        }
        self.udma.replay_completed(count, t.nbytes);
        self.refs.proxy_stores.add(count);
        self.refs.proxy_loads.add(3 * count);
        if traced {
            for k in 1..=count {
                for e in tail {
                    // lint:allow(A1) -- EventRing::push writes into the
                    // ring's pre-reserved storage (overwriting when full);
                    // it never allocates after set_enabled.
                    self.events.push(MachineEvent { at: e.at + stride * k, kind: e.kind });
                }
            }
        }
        let status_base = self.clock.now() + stride;
        // INVARIANT: the template transfer read this range when it retired,
        // and physical memory cannot shrink.
        let data =
            self.mem.read(t.mem_addr, t.nbytes).expect("replay template was readable at retire");
        self.device.dma_write_run(
            t.dev_addr,
            data,
            count,
            shrimp_dma::RunTiming {
                started_at: t.started_at + stride,
                completes_at: t.completes_at + stride,
                stride,
                status_base,
            },
        );
        self.clock.advance(stride * count);
        self.poll();
        true
    }

    /// Translates `va` through the MMU without performing an access (used
    /// by the kernel's traditional-DMA path to build descriptors).
    ///
    /// # Errors
    ///
    /// Any translation [`Fault`].
    pub fn translate(
        &mut self,
        pt: &mut PageTable,
        va: VirtAddr,
        access: AccessKind,
        mode: Mode,
    ) -> Result<(shrimp_mem::PhysAddr, SimDuration), Fault> {
        self.mmu.translate(pt, va, access, mode)
    }

    /// One CPU load from virtual address `va` under page table `pt`.
    ///
    /// Routed by physical region: ordinary memory returns the 8 bytes at
    /// the address; proxy regions return the packed
    /// [`UdmaStatus`](udma_core::UdmaStatus) word; the MMIO window calls
    /// the device. The clock advances by the reference's calibrated cost.
    ///
    /// # Errors
    ///
    /// Any translation [`Fault`]; the kernel's fault handler decides what
    /// happens next.
    ///
    /// # Panics
    ///
    /// Panics on a physical bus error (a mapping pointing at no device),
    /// which indicates a kernel bug, and on loads wider than the mapped
    /// region's end.
    pub fn load(&mut self, pt: &mut PageTable, va: VirtAddr, mode: Mode) -> Result<u64, Fault> {
        let (pa, tlb_cost) = self.mmu.translate(pt, va, AccessKind::Read, mode)?;
        match self.layout.region_of_phys(pa) {
            Region::Memory => {
                self.clock.advance(self.cost.cached_ref + tlb_cost);
                self.refs.mem_loads.incr();
                Ok(self.mem.read_u64(pa).expect("mapped frame must be in range"))
            }
            Region::MemoryProxy | Region::DeviceProxy => {
                self.clock.advance(self.cost.proxy_load + tlb_cost);
                self.refs.proxy_loads.incr();
                let now = self.clock.now();
                let status = if mode == Mode::Kernel {
                    self.udma.handle_load_system(pa, now, &mut self.mem, &mut self.device)
                } else {
                    self.udma.handle_load(pa, now, &mut self.mem, &mut self.device)
                };
                self.events.record(MachineEvent {
                    at: now,
                    kind: MachineEventKind::ProxyLoad { pa: pa.raw(), status: status.pack() },
                });
                Ok(status.pack())
            }
            Region::Mmio => {
                self.clock.advance(self.cost.pio_word_store + tlb_cost);
                self.refs.mmio_loads.incr();
                let now = self.clock.now();
                Ok(self.device.mmio_load(pa.raw() - MMIO_BASE, now))
            }
            Region::Invalid => panic!("bus error: load from undecoded address {pa}"),
        }
    }

    /// One CPU store of `value` to virtual address `va` under `pt`.
    ///
    /// Stores to proxy regions carry the signed `nbytes` interpretation
    /// (negative = Inval); stores to ordinary memory write 8 bytes.
    ///
    /// # Errors
    ///
    /// Any translation [`Fault`] — including the write-protection fault on
    /// a clean page's proxy that invariant I3 relies on.
    ///
    /// # Panics
    ///
    /// Panics on a physical bus error (kernel bug).
    pub fn store(
        &mut self,
        pt: &mut PageTable,
        va: VirtAddr,
        value: i64,
        mode: Mode,
    ) -> Result<(), Fault> {
        let (pa, tlb_cost) = self.mmu.translate(pt, va, AccessKind::Write, mode)?;
        match self.layout.region_of_phys(pa) {
            Region::Memory => {
                self.clock.advance(self.cost.cached_ref + tlb_cost);
                self.refs.mem_stores.incr();
                self.mem.write_u64(pa, value as u64).expect("mapped frame must be in range");
                // The device snoops the memory bus (automatic update).
                let now = self.clock.now();
                self.device.snoop_store(pa, value as u64, now);
                Ok(())
            }
            Region::MemoryProxy | Region::DeviceProxy => {
                self.clock.advance(self.cost.proxy_store + tlb_cost);
                self.refs.proxy_stores.incr();
                let now = self.clock.now();
                self.udma.handle_store(pa, value, now, &mut self.mem, &mut self.device);
                self.events.record(MachineEvent {
                    at: now,
                    kind: MachineEventKind::ProxyStore { pa: pa.raw(), value },
                });
                Ok(())
            }
            Region::Mmio => {
                self.clock.advance(self.cost.pio_word_store + tlb_cost);
                self.refs.mmio_stores.incr();
                let now = self.clock.now();
                self.device.mmio_store(pa.raw() - MMIO_BASE, value as u64, now);
                Ok(())
            }
            Region::Invalid => panic!("bus error: store to undecoded address {pa}"),
        }
    }

    /// Copies `data` into the process's memory at `va` (page-chunked,
    /// charged at cache-line granularity — models a user `memcpy` into a
    /// mapped buffer).
    ///
    /// # Errors
    ///
    /// Faults like [`Machine::store`]; partial progress is possible (the
    /// kernel resolves the fault and the caller retries the remainder).
    pub fn write_bytes(
        &mut self,
        pt: &mut PageTable,
        va: VirtAddr,
        data: &[u8],
        mode: Mode,
    ) -> Result<(), Fault> {
        let mut off = 0u64;
        while off < data.len() as u64 {
            let cur = va + off;
            let chunk = cur.bytes_to_page_end().min(data.len() as u64 - off);
            let (pa, tlb_cost) = self.mmu.translate(pt, cur, AccessKind::Write, mode)?;
            debug_assert_eq!(self.layout.region_of_phys(pa), Region::Memory);
            self.mem
                .write(pa, &data[off as usize..(off + chunk) as usize])
                .expect("mapped frame must be in range");
            self.clock.advance(tlb_cost + self.cost.instructions(chunk / 8 + 1));
            let now = self.clock.now();
            self.device.snoop_write(pa, &data[off as usize..(off + chunk) as usize], now);
            off += chunk;
        }
        self.poll();
        Ok(())
    }

    /// Reads `len` bytes of the process's memory at `va`.
    ///
    /// # Errors
    ///
    /// Faults like [`Machine::load`].
    pub fn read_bytes(
        &mut self,
        pt: &mut PageTable,
        va: VirtAddr,
        len: u64,
        mode: Mode,
    ) -> Result<Vec<u8>, Fault> {
        let mut out = Vec::with_capacity(len as usize);
        let mut off = 0u64;
        while off < len {
            let cur = va + off;
            let chunk = cur.bytes_to_page_end().min(len - off);
            let (pa, tlb_cost) = self.mmu.translate(pt, cur, AccessKind::Read, mode)?;
            debug_assert_eq!(self.layout.region_of_phys(pa), Region::Memory);
            out.extend_from_slice(self.mem.read(pa, chunk).expect("mapped frame must be in range"));
            self.clock.advance(tlb_cost + self.cost.instructions(chunk / 8 + 1));
            off += chunk;
        }
        Ok(out)
    }

    /// The kernel's I1 action: a single STORE of a negative value to a
    /// valid proxy address, firing the hardware Inval event. Costs one
    /// uncached proxy store.
    pub fn kernel_inval_udma(&mut self) {
        self.clock.advance(self.cost.proxy_store);
        let proxy = self
            .layout
            .proxy_of_phys(shrimp_mem::PhysAddr::new(0))
            .expect("address 0 is always real memory");
        let now = self.clock.now();
        self.udma.handle_store(proxy, -1, now, &mut self.mem, &mut self.device);
        self.events.record(MachineEvent { at: now, kind: MachineEventKind::Inval });
        self.refs.inval_stores.incr();
    }

    /// Splits the machine into (UDMA hardware, memory, device) for direct
    /// hardware-level access in tests and the SHRIMP receive path.
    pub fn hw_parts(&mut self) -> (&mut UdmaHw, &mut PhysMemory, &mut D) {
        (&mut self.udma, &mut self.mem, &mut self.device)
    }

    /// A kernel-driven (traditional) DMA transfer: the CPU blocks while the
    /// engine moves `nbytes` between physical memory at `mem_addr` and the
    /// device at `dev_addr`. Returns the transfer's duration. This is the
    /// data-movement step of the paper's baseline; the syscall, pinning and
    /// interrupt costs around it live in `shrimp-os`.
    ///
    /// # Panics
    ///
    /// Panics if the memory side is out of range (kernel bug: the caller
    /// translated and pinned the pages).
    pub fn kernel_dma(
        &mut self,
        direction: shrimp_dma::Direction,
        mem_addr: shrimp_mem::PhysAddr,
        dev_addr: u64,
        nbytes: u64,
    ) -> SimDuration {
        use shrimp_dma::Direction;
        let service = self.device.service_time(dev_addr, nbytes);
        let d = self.cost.dma_start + self.cost.bus_transfer(nbytes) + service;
        self.clock.advance(d);
        let now = self.clock.now();
        match direction {
            Direction::MemToDev => {
                let data = self
                    .mem
                    .read(mem_addr, nbytes)
                    .expect("kernel DMA source must be translated and resident");
                self.device.dma_write(dev_addr, data, now);
            }
            Direction::DevToMem => {
                let buf = self
                    .mem
                    .slice_mut(mem_addr, nbytes)
                    .expect("kernel DMA destination must be translated and resident");
                self.device.dma_read(dev_addr, buf, now);
            }
        }
        self.refs.kernel_dmas.incr();
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_devices::StreamSink;
    use shrimp_mem::{Pfn, Vpn};
    use shrimp_mmu::{Pte, PteFlags};
    use udma_core::UdmaStatus;

    fn machine() -> Machine<StreamSink> {
        Machine::new(
            MachineConfig { mem_bytes: 64 * PAGE_SIZE, ..MachineConfig::default() },
            StreamSink::new("sink"),
        )
    }

    fn user_rw() -> PteFlags {
        PteFlags::VALID | PteFlags::USER | PteFlags::WRITABLE
    }

    #[test]
    fn memory_load_store_roundtrip() {
        let mut m = machine();
        let mut pt = PageTable::new();
        pt.map(Vpn::new(1), Pte::new(Pfn::new(5), user_rw()));
        m.store(&mut pt, VirtAddr::new(0x1010), 0x1234_5678, Mode::User).unwrap();
        let v = m.load(&mut pt, VirtAddr::new(0x1010), Mode::User).unwrap();
        assert_eq!(v, 0x1234_5678);
        assert!(m.now() > SimTime::ZERO, "references must cost time");
    }

    #[test]
    fn unmapped_reference_faults_without_time_skew() {
        let mut m = machine();
        let mut pt = PageTable::new();
        let err = m.load(&mut pt, VirtAddr::new(0x9000), Mode::User).unwrap_err();
        assert!(matches!(err, Fault::NotMapped { .. }));
    }

    #[test]
    fn full_udma_initiation_through_virtual_addresses() {
        let mut m = machine();
        let layout = m.layout();
        let mut pt = PageTable::new();

        // Map a user data page at VPN 1 -> PFN 2, its memory proxy page,
        // and a device proxy page at the matching virtual proxy location.
        pt.map(Vpn::new(1), Pte::new(Pfn::new(2), user_rw()));
        let vproxy = layout.proxy_of_virt(VirtAddr::new(0x1000)).unwrap();
        let pproxy = layout.proxy_of_phys(shrimp_mem::PhysAddr::new(2 * PAGE_SIZE)).unwrap();
        pt.map(
            vproxy.page(),
            Pte::new(pproxy.page(), user_rw() | PteFlags::UNCACHED | PteFlags::PROXY),
        );
        let vdev = VirtAddr::new(shrimp_mem::DEV_PROXY_BASE); // identity-map dev proxy page 0
        pt.map(
            vdev.page(),
            Pte::new(
                shrimp_mem::PhysAddr::new(shrimp_mem::DEV_PROXY_BASE).page(),
                user_rw() | PteFlags::UNCACHED | PteFlags::PROXY,
            ),
        );

        // Fill the user buffer, then the two-instruction sequence.
        m.write_bytes(&mut pt, VirtAddr::new(0x1000), b"hello udma", Mode::User).unwrap();
        m.store(&mut pt, vdev, 10, Mode::User).unwrap();
        let status = UdmaStatus::unpack(m.load(&mut pt, vproxy, Mode::User).unwrap());
        assert!(status.started(), "{status}");

        // Drain the transfer and check arrival at the device.
        let done = m.udma().drained_at(m.now());
        m.advance_to(done);
        assert_eq!(m.device().writes().len(), 1);
        assert_eq!(m.device().writes()[0].1, b"hello udma");
    }

    #[test]
    fn initiation_cost_is_two_proxy_references() {
        let mut m = machine();
        let layout = m.layout();
        let mut pt = PageTable::new();
        pt.map(Vpn::new(1), Pte::new(Pfn::new(2), user_rw()));
        let vproxy = layout.proxy_of_virt(VirtAddr::new(0x1000)).unwrap();
        let pproxy = layout.proxy_of_phys(shrimp_mem::PhysAddr::new(2 * PAGE_SIZE)).unwrap();
        pt.map(vproxy.page(), Pte::new(pproxy.page(), user_rw() | PteFlags::PROXY));
        let vdev = VirtAddr::new(shrimp_mem::DEV_PROXY_BASE);
        pt.map(
            vdev.page(),
            Pte::new(
                shrimp_mem::PhysAddr::new(shrimp_mem::DEV_PROXY_BASE).page(),
                user_rw() | PteFlags::PROXY,
            ),
        );

        // Warm the TLB so we measure the steady-state initiation cost.
        m.store(&mut pt, vdev, 8, Mode::User).unwrap();
        let _ = m.load(&mut pt, vproxy, Mode::User).unwrap();
        m.kernel_inval_udma();

        let t0 = m.now();
        m.store(&mut pt, vdev, 8, Mode::User).unwrap();
        let _ = m.load(&mut pt, vproxy, Mode::User).unwrap();
        let elapsed = m.now() - t0;
        let expected = m.cost().proxy_store + m.cost().proxy_load;
        assert_eq!(elapsed, expected, "two uncached references, nothing else");
    }

    #[test]
    fn mmio_routes_to_device() {
        let mut m = machine();
        let mut pt = PageTable::new();
        let vmmio = VirtAddr::new(MMIO_BASE);
        pt.map(
            vmmio.page(),
            Pte::new(shrimp_mem::PhysAddr::new(MMIO_BASE).page(), user_rw() | PteFlags::UNCACHED),
        );
        // StreamSink's default MMIO ignores stores and loads return 0.
        m.store(&mut pt, vmmio, 42, Mode::User).unwrap();
        assert_eq!(m.load(&mut pt, vmmio, Mode::User).unwrap(), 0);
        assert_eq!(m.stats().get("mmio_stores"), 1);
        assert_eq!(m.stats().get("mmio_loads"), 1);
    }

    #[test]
    fn write_read_bytes_cross_page_boundary() {
        let mut m = machine();
        let mut pt = PageTable::new();
        pt.map(Vpn::new(1), Pte::new(Pfn::new(7), user_rw()));
        pt.map(Vpn::new(2), Pte::new(Pfn::new(3), user_rw())); // discontiguous frames
        let data: Vec<u8> = (0..=255).collect();
        let va = VirtAddr::new(0x2000 - 100);
        m.write_bytes(&mut pt, va, &data, Mode::User).unwrap();
        assert_eq!(m.read_bytes(&mut pt, va, 256, Mode::User).unwrap(), data);
    }

    #[test]
    fn trace_records_proxy_traffic_when_enabled() {
        let mut m = machine();
        let layout = m.layout();
        let mut pt = PageTable::new();
        let vdev = VirtAddr::new(shrimp_mem::DEV_PROXY_BASE);
        pt.map(
            vdev.page(),
            Pte::new(
                shrimp_mem::PhysAddr::new(shrimp_mem::DEV_PROXY_BASE).page(),
                user_rw() | PteFlags::PROXY,
            ),
        );
        // Disabled by default: nothing recorded.
        m.store(&mut pt, vdev, 64, Mode::User).unwrap();
        assert!(m.trace().is_empty());

        m.set_tracing(true);
        m.store(&mut pt, vdev, 64, Mode::User).unwrap();
        m.kernel_inval_udma();
        assert_eq!(m.events().len(), 2);
        // The debug formatter renders the typed events as legacy text.
        let rendered = m.trace();
        assert_eq!(rendered.in_category("udma").count(), 2);
        let messages: Vec<_> = rendered.iter().map(|e| e.message.clone()).collect();
        assert!(messages[0].contains("STORE 64"), "{messages:?}");
        assert!(messages[1].contains("INVAL"), "{messages:?}");
        let _ = layout;
    }

    #[test]
    fn kernel_inval_clears_partial_initiation() {
        let mut m = machine();
        let layout = m.layout();
        let mut pt = PageTable::new();
        let vdev = VirtAddr::new(shrimp_mem::DEV_PROXY_BASE);
        pt.map(
            vdev.page(),
            Pte::new(
                shrimp_mem::PhysAddr::new(shrimp_mem::DEV_PROXY_BASE).page(),
                user_rw() | PteFlags::PROXY,
            ),
        );
        m.store(&mut pt, vdev, 100, Mode::User).unwrap();
        m.kernel_inval_udma();
        // A victim's LOAD reports invalid + failed initiation.
        let vproxy = layout.proxy_of_virt(VirtAddr::new(0)).unwrap();
        let pproxy = layout.proxy_of_phys(shrimp_mem::PhysAddr::new(0)).unwrap();
        pt.map(vproxy.page(), Pte::new(pproxy.page(), user_rw() | PteFlags::PROXY));
        let status = UdmaStatus::unpack(m.load(&mut pt, vproxy, Mode::User).unwrap());
        assert!(status.initiation && status.invalid);
    }
}
