//! The simulated machine: CPU reference path, bus decoding, memory, MMU,
//! the UDMA hardware and one UDMA-capable device, with cycle accounting.
//!
//! A [`Machine`] is the hardware of one SHRIMP node. Software (the
//! `shrimp-os` kernel and the user programs driven by tests/benches) issues
//! memory operations through [`Machine::load`] / [`Machine::store`]; the
//! machine translates them through the MMU, decodes the physical address,
//! and routes it to memory, the UDMA hardware (proxy regions) or the
//! device's MMIO window — advancing the simulated clock by the calibrated
//! cost of each step.
//!
//! # Example
//!
//! ```
//! use shrimp_devices::StreamSink;
//! use shrimp_machine::{Machine, MachineConfig};
//! use shrimp_mmu::Mode;
//!
//! let machine = Machine::new(MachineConfig::default(), StreamSink::new("sink"));
//! assert_eq!(machine.clock().now().as_nanos(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod machine;
mod udma_hw;

pub use machine::{Machine, MachineConfig};
pub use udma_hw::{UdmaHw, UdmaMode};
