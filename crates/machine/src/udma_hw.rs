//! Unified front end over the basic and queued UDMA hardware variants.

use shrimp_dma::{DevicePort, Direction, DmaEngine, DmaTiming, Transfer};
use shrimp_mem::{Layout, Pfn, PhysAddr, PhysMemory};
use shrimp_sim::SimTime;
use udma_core::{Priority, QueuedUdma, UdmaController, UdmaState, UdmaStatus};

/// Which UDMA hardware variant a machine is built with.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum UdmaMode {
    /// The basic single-transfer device of §5 (what the SHRIMP board
    /// implements: "this device does not support multi-page transfers").
    #[default]
    Basic,
    /// The §7 queueing extension with the given queue capacity.
    Queued(usize),
}

/// The UDMA hardware of one machine: either variant behind one interface.
#[derive(Debug)]
pub enum UdmaHw {
    /// Basic controller.
    Basic(UdmaController),
    /// Queued controller.
    Queued(QueuedUdma),
}

impl UdmaHw {
    /// Builds the hardware for `mode`.
    pub fn new(mode: UdmaMode, layout: Layout, timing: DmaTiming) -> Self {
        match mode {
            UdmaMode::Basic => UdmaHw::Basic(UdmaController::new(layout, timing)),
            UdmaMode::Queued(cap) => UdmaHw::Queued(QueuedUdma::new(layout, timing, cap)),
        }
    }

    /// Routes a proxy STORE to the hardware.
    pub fn handle_store(
        &mut self,
        proxy: PhysAddr,
        value: i64,
        now: SimTime,
        mem: &mut PhysMemory,
        port: &mut dyn DevicePort,
    ) {
        match self {
            UdmaHw::Basic(c) => c.handle_store(proxy, value, now, mem, port),
            UdmaHw::Queued(q) => q.handle_store(proxy, value, now, mem, port),
        }
    }

    /// Routes a proxy LOAD to the hardware (user priority).
    pub fn handle_load(
        &mut self,
        proxy: PhysAddr,
        now: SimTime,
        mem: &mut PhysMemory,
        port: &mut dyn DevicePort,
    ) -> UdmaStatus {
        match self {
            UdmaHw::Basic(c) => c.handle_load(proxy, now, mem, port),
            UdmaHw::Queued(q) => q.handle_load(proxy, now, mem, port),
        }
    }

    /// Routes a proxy LOAD at system priority (kernel-initiated transfers
    /// on the queued variant; identical to [`UdmaHw::handle_load`] on the
    /// basic one).
    pub fn handle_load_system(
        &mut self,
        proxy: PhysAddr,
        now: SimTime,
        mem: &mut PhysMemory,
        port: &mut dyn DevicePort,
    ) -> UdmaStatus {
        match self {
            UdmaHw::Basic(c) => c.handle_load(proxy, now, mem, port),
            UdmaHw::Queued(q) => {
                q.handle_load_with_priority(proxy, Priority::System, now, mem, port)
            }
        }
    }

    /// Retires completed transfers (and feeds the queue, if any).
    pub fn poll(&mut self, now: SimTime, mem: &mut PhysMemory, port: &mut dyn DevicePort) {
        match self {
            UdmaHw::Basic(c) => c.poll(now, mem, port),
            UdmaHw::Queued(q) => q.poll(now, mem, port),
        }
    }

    /// Invariant-I4 check: is frame `pfn` named by the hardware (registers
    /// on the basic device; reference counts on the queued one)?
    pub fn frame_in_use(&self, pfn: Pfn) -> bool {
        match self {
            UdmaHw::Basic(c) => c.frame_in_use(pfn),
            UdmaHw::Queued(q) => q.ref_count(pfn) > 0,
        }
    }

    /// The underlying DMA engine.
    pub fn engine(&self) -> &DmaEngine {
        match self {
            UdmaHw::Basic(c) => c.engine(),
            UdmaHw::Queued(q) => q.engine(),
        }
    }

    /// When all accepted work will have drained (now for an idle device).
    pub fn drained_at(&self, now: SimTime) -> SimTime {
        match self {
            UdmaHw::Basic(c) => c.engine().active().map(|t| t.completes_at).unwrap_or(now).max(now),
            UdmaHw::Queued(q) => q.drained_at().max(now),
        }
    }

    /// The template for a steady-state message replay: the last retired
    /// memory→device transfer of an otherwise idle *basic* controller.
    /// Queued hardware keeps per-request state a replay cannot stride, so
    /// it never offers a template.
    pub fn replay_template(&self) -> Option<Transfer> {
        match self {
            UdmaHw::Basic(c) if c.state() == UdmaState::Idle && c.engine().active().is_none() => {
                c.engine().last_retired().copied().filter(|t| t.direction == Direction::MemToDev)
            }
            _ => None,
        }
    }

    /// Books `count` replayed steady-state cycles on the basic controller.
    /// No-op on queued hardware (which never offers a replay template).
    pub fn replay_completed(&mut self, count: u64, nbytes: u64) {
        if let UdmaHw::Basic(c) = self {
            c.replay_completed(count, nbytes);
        }
    }

    /// Access to the basic controller (panics on the queued variant); used
    /// by tests asserting on state-machine internals.
    pub fn as_basic(&self) -> &UdmaController {
        match self {
            UdmaHw::Basic(c) => c,
            UdmaHw::Queued(_) => panic!("machine was built with queued UDMA hardware"),
        }
    }

    /// Access to the queued controller (panics on the basic variant).
    pub fn as_queued(&self) -> &QueuedUdma {
        match self {
            UdmaHw::Queued(q) => q,
            UdmaHw::Basic(_) => panic!("machine was built with basic UDMA hardware"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_dma::LoopbackPort;
    use shrimp_mem::PAGE_SIZE;

    fn layout() -> Layout {
        Layout::new(16 * PAGE_SIZE, 16 * PAGE_SIZE)
    }

    #[test]
    fn builds_both_variants() {
        let basic = UdmaHw::new(UdmaMode::Basic, layout(), DmaTiming::default());
        assert!(matches!(basic, UdmaHw::Basic(_)));
        let queued = UdmaHw::new(UdmaMode::Queued(4), layout(), DmaTiming::default());
        assert!(matches!(queued, UdmaHw::Queued(_)));
    }

    #[test]
    fn unified_interface_drives_either_variant() {
        for mode in [UdmaMode::Basic, UdmaMode::Queued(4)] {
            let l = layout();
            let mut hw = UdmaHw::new(mode, l, DmaTiming::default());
            let mut mem = PhysMemory::new(16 * PAGE_SIZE);
            mem.write(PhysAddr::new(0x100), b"xy").unwrap();
            let mut port = LoopbackPort::new(64);

            let dest = l.dev_proxy_addr(0, 0);
            let src = l.proxy_of_phys(PhysAddr::new(0x100)).unwrap();
            hw.handle_store(dest, 2, SimTime::ZERO, &mut mem, &mut port);
            let status = hw.handle_load(src, SimTime::ZERO, &mut mem, &mut port);
            assert!(status.started(), "mode {mode:?}: {status}");
            assert!(hw.frame_in_use(Pfn::new(0)));

            let done = hw.drained_at(SimTime::ZERO);
            hw.poll(done, &mut mem, &mut port);
            assert_eq!(&port.bytes()[..2], b"xy", "mode {mode:?}");
            assert!(!hw.frame_in_use(Pfn::new(0)));
        }
    }

    #[test]
    #[should_panic(expected = "queued UDMA hardware")]
    fn as_basic_panics_on_queued() {
        let hw = UdmaHw::new(UdmaMode::Queued(2), layout(), DmaTiming::default());
        let _ = hw.as_basic();
    }

    #[test]
    #[should_panic(expected = "basic UDMA hardware")]
    fn as_queued_panics_on_basic() {
        let hw = UdmaHw::new(UdmaMode::Basic, layout(), DmaTiming::default());
        let _ = hw.as_queued();
    }

    #[test]
    fn system_priority_load_works_on_both_variants() {
        for mode in [UdmaMode::Basic, UdmaMode::Queued(4)] {
            let l = layout();
            let mut hw = UdmaHw::new(mode, l, DmaTiming::default());
            let mut mem = PhysMemory::new(16 * PAGE_SIZE);
            let mut port = LoopbackPort::new(64);
            let dest = l.dev_proxy_addr(0, 0);
            let src = l.proxy_of_phys(PhysAddr::new(0x80)).unwrap();
            hw.handle_store(dest, 8, SimTime::ZERO, &mut mem, &mut port);
            let status = hw.handle_load_system(src, SimTime::ZERO, &mut mem, &mut port);
            assert!(status.started(), "mode {mode:?}: {status}");
        }
    }

    #[test]
    fn drained_at_is_monotone() {
        let l = layout();
        let mut hw = UdmaHw::new(UdmaMode::Basic, l, DmaTiming::default());
        let mut mem = PhysMemory::new(16 * PAGE_SIZE);
        let mut port = LoopbackPort::new(4096);
        let now = SimTime::from_nanos(1000);
        assert_eq!(hw.drained_at(now), now, "idle device drains immediately");
        let dest = l.dev_proxy_addr(0, 0);
        let src = l.proxy_of_phys(PhysAddr::new(0)).unwrap();
        hw.handle_store(dest, 2048, now, &mut mem, &mut port);
        hw.handle_load(src, now, &mut mem, &mut port);
        assert!(hw.drained_at(now) > now, "busy device drains later");
    }
}
