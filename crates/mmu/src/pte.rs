//! Page-table entries and their permission/status bits.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

use shrimp_mem::Pfn;

/// Permission and status bits of a [`Pte`].
///
/// A hand-rolled bitflag type (the workspace avoids external dependencies in
/// the substrate crates). Supports `|` composition and containment queries.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct PteFlags(u16);

impl PteFlags {
    /// No bits set.
    pub const NONE: PteFlags = PteFlags(0);
    /// The mapping is valid (present).
    pub const VALID: PteFlags = PteFlags(1 << 0);
    /// Writes are permitted.
    pub const WRITABLE: PteFlags = PteFlags(1 << 1);
    /// User-mode access is permitted.
    pub const USER: PteFlags = PteFlags(1 << 2);
    /// Hardware-set: the page has been written since the bit was cleared.
    pub const DIRTY: PteFlags = PteFlags(1 << 3);
    /// Hardware-set: the page has been accessed since the bit was cleared.
    pub const REFERENCED: PteFlags = PteFlags(1 << 4);
    /// Accesses bypass the cache (all proxy pages are uncachable, §4).
    pub const UNCACHED: PteFlags = PteFlags(1 << 5);
    /// Bookkeeping: this entry maps a proxy page (memory or device proxy).
    pub const PROXY: PteFlags = PteFlags(1 << 6);

    /// True if every bit of `other` is set in `self`.
    pub const fn contains(self, other: PteFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if any bit of `other` is set in `self`.
    pub const fn intersects(self, other: PteFlags) -> bool {
        self.0 & other.0 != 0
    }

    /// Returns `self` with the bits of `other` set.
    #[must_use]
    pub const fn with(self, other: PteFlags) -> PteFlags {
        PteFlags(self.0 | other.0)
    }

    /// Returns `self` with the bits of `other` cleared.
    #[must_use]
    pub const fn without(self, other: PteFlags) -> PteFlags {
        PteFlags(self.0 & !other.0)
    }
}

impl BitOr for PteFlags {
    type Output = PteFlags;
    fn bitor(self, rhs: PteFlags) -> PteFlags {
        self.with(rhs)
    }
}

impl BitOrAssign for PteFlags {
    fn bitor_assign(&mut self, rhs: PteFlags) {
        *self = self.with(rhs);
    }
}

impl fmt::Debug for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [(PteFlags, &str); 7] = [
            (PteFlags::VALID, "VALID"),
            (PteFlags::WRITABLE, "WRITABLE"),
            (PteFlags::USER, "USER"),
            (PteFlags::DIRTY, "DIRTY"),
            (PteFlags::REFERENCED, "REFERENCED"),
            (PteFlags::UNCACHED, "UNCACHED"),
            (PteFlags::PROXY, "PROXY"),
        ];
        let mut first = true;
        for (flag, name) in NAMES {
            if self.contains(flag) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "NONE")?;
        }
        Ok(())
    }
}

impl fmt::Binary for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

/// One page-table entry: a frame number plus [`PteFlags`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pte {
    /// The physical frame this virtual page maps to.
    pub pfn: Pfn,
    /// Permission and status bits.
    pub flags: PteFlags,
}

impl Pte {
    /// Builds an entry.
    pub fn new(pfn: Pfn, flags: PteFlags) -> Self {
        Pte { pfn, flags }
    }

    /// True if the entry is valid (present).
    pub fn is_valid(&self) -> bool {
        self.flags.contains(PteFlags::VALID)
    }

    /// True if user-mode writes are permitted.
    pub fn is_writable(&self) -> bool {
        self.flags.contains(PteFlags::WRITABLE)
    }

    /// True if the page has been written since DIRTY was last cleared.
    pub fn is_dirty(&self) -> bool {
        self.flags.contains(PteFlags::DIRTY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_intersects() {
        let f = PteFlags::VALID | PteFlags::USER;
        assert!(f.contains(PteFlags::VALID));
        assert!(f.contains(PteFlags::VALID | PteFlags::USER));
        assert!(!f.contains(PteFlags::VALID | PteFlags::WRITABLE));
        assert!(f.intersects(PteFlags::WRITABLE | PteFlags::USER));
        assert!(!f.intersects(PteFlags::DIRTY));
    }

    #[test]
    fn with_and_without() {
        let f = PteFlags::VALID.with(PteFlags::DIRTY).without(PteFlags::VALID);
        assert_eq!(f, PteFlags::DIRTY);
    }

    #[test]
    fn or_assign() {
        let mut f = PteFlags::NONE;
        f |= PteFlags::REFERENCED;
        assert!(f.contains(PteFlags::REFERENCED));
    }

    #[test]
    fn debug_lists_names() {
        let f = PteFlags::VALID | PteFlags::PROXY;
        assert_eq!(format!("{f:?}"), "VALID|PROXY");
        assert_eq!(format!("{:?}", PteFlags::NONE), "NONE");
    }

    #[test]
    fn pte_predicates() {
        let pte = Pte::new(Pfn::new(1), PteFlags::VALID | PteFlags::WRITABLE);
        assert!(pte.is_valid());
        assert!(pte.is_writable());
        assert!(!pte.is_dirty());
    }
}
