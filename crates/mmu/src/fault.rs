//! Access kinds, privilege modes and the translation fault taxonomy.

use std::error::Error;
use std::fmt;

use shrimp_mem::{VirtAddr, Vpn};

/// What kind of memory access is being translated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Privilege mode of the access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Unprivileged user code (all UDMA initiation runs here).
    User,
    /// Kernel code (fault handlers, the pager, syscalls).
    Kernel,
}

/// A translation fault raised by the MMU.
///
/// The kernel's fault handler distinguishes these to implement the three
/// demand cases of §6 ("Maintaining I2") and the dirty-bit protocol of I3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// No valid mapping for the page.
    NotMapped {
        /// The faulting virtual address.
        va: VirtAddr,
        /// The faulting page.
        vpn: Vpn,
        /// The access that faulted.
        access: AccessKind,
    },
    /// A store hit a page mapped read-only.
    WriteProtected {
        /// The faulting virtual address.
        va: VirtAddr,
        /// The faulting page.
        vpn: Vpn,
    },
    /// A user-mode access hit a kernel-only page.
    Privilege {
        /// The faulting virtual address.
        va: VirtAddr,
        /// The faulting page.
        vpn: Vpn,
    },
}

impl Fault {
    /// The faulting virtual address.
    pub fn va(&self) -> VirtAddr {
        match *self {
            Fault::NotMapped { va, .. }
            | Fault::WriteProtected { va, .. }
            | Fault::Privilege { va, .. } => va,
        }
    }

    /// The faulting virtual page.
    pub fn vpn(&self) -> Vpn {
        match *self {
            Fault::NotMapped { vpn, .. }
            | Fault::WriteProtected { vpn, .. }
            | Fault::Privilege { vpn, .. } => vpn,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::NotMapped { va, access, .. } => {
                write!(f, "page fault ({access:?}) at unmapped address {va}")
            }
            Fault::WriteProtected { va, .. } => {
                write!(f, "write-protection fault at {va}")
            }
            Fault::Privilege { va, .. } => {
                write!(f, "privilege violation at {va}")
            }
        }
    }
}

impl Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let f = Fault::NotMapped {
            va: VirtAddr::new(0x1234),
            vpn: Vpn::new(1),
            access: AccessKind::Write,
        };
        assert_eq!(f.va(), VirtAddr::new(0x1234));
        assert_eq!(f.vpn(), Vpn::new(1));
    }

    #[test]
    fn display() {
        let f = Fault::WriteProtected { va: VirtAddr::new(0x2000), vpn: Vpn::new(2) };
        assert_eq!(f.to_string(), "write-protection fault at 0x2000");
    }
}
