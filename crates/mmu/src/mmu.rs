//! The MMU translation and protection path.

use shrimp_mem::{PhysAddr, VirtAddr};
use shrimp_sim::{Counter, SimDuration, StatSet};

use crate::{AccessKind, Fault, Mode, PageTable, Pte, PteFlags};

/// The memory-management unit: translation, permission checking, and
/// hardware maintenance of the REFERENCED/DIRTY bits.
///
/// This is the hardware UDMA reuses for protection: a user reference to a
/// proxy page goes through [`Mmu::translate`] like any other reference, so
/// an unmapped or write-protected proxy page faults before the UDMA
/// hardware ever sees the access.
#[derive(Clone, Debug)]
pub struct Mmu {
    tlb: crate::Tlb,
    /// Successful translations: one increment per reference, so a plain
    /// field rather than a keyed stat (this is the hottest line in the
    /// simulator). Fault-path counts stay in `faults` — they are rare.
    translations: Counter,
    faults: StatSet,
    tlb_miss_cost: SimDuration,
}

impl Mmu {
    /// An MMU with a `tlb_entries`-entry TLB and the default 400 ns
    /// table-walk cost.
    pub fn new(tlb_entries: usize) -> Self {
        Mmu {
            tlb: crate::Tlb::new(tlb_entries),
            translations: Counter::new(),
            faults: StatSet::new("mmu"),
            tlb_miss_cost: SimDuration::from_nanos(400),
        }
    }

    /// Overrides the TLB miss (table walk) cost.
    pub fn with_tlb_miss_cost(mut self, cost: SimDuration) -> Self {
        self.tlb_miss_cost = cost;
        self
    }

    /// Translates `va` for an `access` in `mode` against page table `pt`.
    ///
    /// On success returns the physical address and the extra time spent on
    /// translation (zero on a TLB hit, the table-walk cost on a miss), and
    /// updates the REFERENCED bit (always) and DIRTY bit (on writes) in both
    /// the PTE and any cached TLB copy.
    ///
    /// # Errors
    ///
    /// - [`Fault::NotMapped`] — no valid entry for the page,
    /// - [`Fault::Privilege`] — user access to a kernel-only page,
    /// - [`Fault::WriteProtected`] — store to a read-only page.
    // lint:checks(F1) -- translate is the protection boundary: it yields a
    // physical address only after the mapping, privilege, and write checks
    // all pass, so its result is safe to index physical memory with.
    pub fn translate(
        &mut self,
        pt: &mut PageTable,
        va: VirtAddr,
        access: AccessKind,
        mode: Mode,
    ) -> Result<(PhysAddr, SimDuration), Fault> {
        let vpn = va.page();

        let (pte, cost) = match self.tlb.lookup(vpn) {
            Some(pte) => (pte, SimDuration::ZERO),
            None => {
                self.faults.bump("tlb_miss");
                let pte = *pt.get(vpn).ok_or(Fault::NotMapped { va, vpn, access })?;
                if !pte.is_valid() {
                    return Err(Fault::NotMapped { va, vpn, access });
                }
                // lint:allow(A1) -- Tlb::insert writes a fixed-capacity
                // entry list (evict-oldest on overflow); refill reuses the
                // Vec's retained capacity once the TLB has filled.
                self.tlb.insert(vpn, pte);
                (pte, self.tlb_miss_cost)
            }
        };

        if mode == Mode::User && !pte.flags.contains(PteFlags::USER) {
            self.faults.bump("privilege_fault");
            return Err(Fault::Privilege { va, vpn });
        }
        if access == AccessKind::Write && !pte.is_writable() {
            self.faults.bump("write_fault");
            return Err(Fault::WriteProtected { va, vpn });
        }

        // Hardware status-bit maintenance, written through to PTE and TLB.
        let mut new_flags = pte.flags | PteFlags::REFERENCED;
        if access == AccessKind::Write {
            new_flags |= PteFlags::DIRTY;
        }
        if new_flags != pte.flags {
            pt.set_flags(vpn, new_flags);
            self.tlb.update(vpn, Pte::new(pte.pfn, new_flags));
        }

        self.translations.incr();
        Ok((pte.pfn.base() + va.page_offset(), cost))
    }

    /// Single-page TLB shootdown; must accompany any PTE change.
    pub fn flush_page(&mut self, vpn: shrimp_mem::Vpn) {
        self.tlb.flush_page(vpn);
    }

    /// Full TLB flush (context switch).
    pub fn flush_all(&mut self) {
        self.tlb.flush_all();
    }

    /// Translation and fault statistics as a reportable set.
    pub fn stats(&self) -> StatSet {
        let mut s = self.faults.clone();
        s.add("translations", self.translations.get());
        s
    }

    /// The TLB model (for inspection in tests and benches).
    pub fn tlb(&self) -> &crate::Tlb {
        &self.tlb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_mem::{Pfn, Vpn};

    fn setup() -> (PageTable, Mmu) {
        let mut pt = PageTable::new();
        pt.map(
            Vpn::new(1),
            Pte::new(Pfn::new(10), PteFlags::VALID | PteFlags::USER | PteFlags::WRITABLE),
        );
        pt.map(Vpn::new(2), Pte::new(Pfn::new(11), PteFlags::VALID | PteFlags::USER));
        pt.map(Vpn::new(3), Pte::new(Pfn::new(12), PteFlags::VALID)); // kernel-only
        (pt, Mmu::new(8))
    }

    #[test]
    fn translates_with_offset() {
        let (mut pt, mut mmu) = setup();
        let (pa, _) =
            mmu.translate(&mut pt, VirtAddr::new(0x1abc), AccessKind::Read, Mode::User).unwrap();
        assert_eq!(pa, PhysAddr::new(0xaabc));
    }

    #[test]
    fn miss_then_hit_costs() {
        let (mut pt, mut mmu) = setup();
        let (_, c1) =
            mmu.translate(&mut pt, VirtAddr::new(0x1000), AccessKind::Read, Mode::User).unwrap();
        let (_, c2) =
            mmu.translate(&mut pt, VirtAddr::new(0x1004), AccessKind::Read, Mode::User).unwrap();
        assert!(c1 > SimDuration::ZERO);
        assert_eq!(c2, SimDuration::ZERO);
        assert_eq!(mmu.tlb().hits(), 1);
        assert_eq!(mmu.tlb().misses(), 1);
    }

    #[test]
    fn unmapped_page_faults() {
        let (mut pt, mut mmu) = setup();
        let err = mmu
            .translate(&mut pt, VirtAddr::new(0x9000), AccessKind::Read, Mode::User)
            .unwrap_err();
        assert!(matches!(err, Fault::NotMapped { .. }));
        assert_eq!(err.vpn(), Vpn::new(9));
    }

    #[test]
    fn write_to_readonly_faults() {
        let (mut pt, mut mmu) = setup();
        let err = mmu
            .translate(&mut pt, VirtAddr::new(0x2000), AccessKind::Write, Mode::User)
            .unwrap_err();
        assert!(matches!(err, Fault::WriteProtected { .. }));
        // Reads still succeed.
        assert!(mmu
            .translate(&mut pt, VirtAddr::new(0x2000), AccessKind::Read, Mode::User)
            .is_ok());
    }

    #[test]
    fn user_access_to_kernel_page_faults() {
        let (mut pt, mut mmu) = setup();
        let err = mmu
            .translate(&mut pt, VirtAddr::new(0x3000), AccessKind::Read, Mode::User)
            .unwrap_err();
        assert!(matches!(err, Fault::Privilege { .. }));
        // Kernel mode is allowed.
        assert!(mmu
            .translate(&mut pt, VirtAddr::new(0x3000), AccessKind::Read, Mode::Kernel)
            .is_ok());
    }

    #[test]
    fn sets_referenced_and_dirty_bits() {
        let (mut pt, mut mmu) = setup();
        mmu.translate(&mut pt, VirtAddr::new(0x1000), AccessKind::Read, Mode::User).unwrap();
        let pte = pt.get(Vpn::new(1)).unwrap();
        assert!(pte.flags.contains(PteFlags::REFERENCED));
        assert!(!pte.is_dirty());
        mmu.translate(&mut pt, VirtAddr::new(0x1000), AccessKind::Write, Mode::User).unwrap();
        assert!(pt.get(Vpn::new(1)).unwrap().is_dirty());
    }

    #[test]
    fn dirty_bit_set_even_on_tlb_hit() {
        let (mut pt, mut mmu) = setup();
        // Load caches the translation without DIRTY.
        mmu.translate(&mut pt, VirtAddr::new(0x1000), AccessKind::Read, Mode::User).unwrap();
        // Store hits the TLB but must still set DIRTY in the page table.
        mmu.translate(&mut pt, VirtAddr::new(0x1008), AccessKind::Write, Mode::User).unwrap();
        assert!(pt.get(Vpn::new(1)).unwrap().is_dirty());
    }

    #[test]
    fn write_protect_enforced_after_flag_change_and_shootdown() {
        let (mut pt, mut mmu) = setup();
        mmu.translate(&mut pt, VirtAddr::new(0x1000), AccessKind::Write, Mode::User).unwrap();
        // Kernel write-protects the page (e.g. cleaning for I3) + shootdown.
        pt.clear_flags(Vpn::new(1), PteFlags::WRITABLE);
        mmu.flush_page(Vpn::new(1));
        let err = mmu
            .translate(&mut pt, VirtAddr::new(0x1000), AccessKind::Write, Mode::User)
            .unwrap_err();
        assert!(matches!(err, Fault::WriteProtected { .. }));
    }

    #[test]
    fn invalid_pte_faults() {
        let mut pt = PageTable::new();
        pt.map(Vpn::new(4), Pte::new(Pfn::new(1), PteFlags::USER)); // VALID not set
        let mut mmu = Mmu::new(4);
        let err = mmu
            .translate(&mut pt, VirtAddr::new(0x4000), AccessKind::Read, Mode::User)
            .unwrap_err();
        assert!(matches!(err, Fault::NotMapped { .. }));
    }
}
