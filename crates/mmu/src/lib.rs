//! Virtual-memory hardware model: page tables, a TLB and the MMU
//! translation/protection path.
//!
//! UDMA's whole point is to reuse this hardware: "UDMA uses the existing
//! virtual memory mechanisms — address translation and permission checking —
//! to provide the same degree of protection as the traditional DMA
//! operations" (§1). The [`Mmu`] here performs exactly that translation and
//! permission check for every user reference, including references to proxy
//! pages, and maintains the referenced/dirty PTE bits the OS invariants
//! (I2/I3) depend on.
//!
//! # Example
//!
//! ```
//! use shrimp_mem::{Pfn, VirtAddr, Vpn};
//! use shrimp_mmu::{AccessKind, Mmu, Mode, PageTable, Pte, PteFlags};
//!
//! let mut pt = PageTable::new();
//! pt.map(Vpn::new(4), Pte::new(Pfn::new(9), PteFlags::VALID | PteFlags::USER));
//! let mut mmu = Mmu::new(16);
//! let (pa, _cost) = mmu
//!     .translate(&mut pt, VirtAddr::new(0x4018), AccessKind::Read, Mode::User)
//!     .unwrap();
//! assert_eq!(pa.raw(), 0x9018);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod mmu;
mod page_table;
mod pte;
mod tlb;

pub use fault::{AccessKind, Fault, Mode};
pub use mmu::Mmu;
pub use page_table::PageTable;
pub use pte::{Pte, PteFlags};
pub use tlb::Tlb;
