//! A per-process page table.

use std::collections::BTreeMap;

use shrimp_mem::Vpn;

use crate::{Pte, PteFlags};

/// A sparse per-process page table mapping [`Vpn`]s to [`Pte`]s.
///
/// A real x86 table is a radix tree; a sorted map models the same contents
/// with deterministic iteration, which the pager relies on.
///
/// # Example
///
/// ```
/// use shrimp_mem::{Pfn, Vpn};
/// use shrimp_mmu::{PageTable, Pte, PteFlags};
///
/// let mut pt = PageTable::new();
/// pt.map(Vpn::new(1), Pte::new(Pfn::new(7), PteFlags::VALID | PteFlags::USER));
/// assert!(pt.get(Vpn::new(1)).is_some());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PageTable {
    entries: BTreeMap<Vpn, Pte>,
}

impl PageTable {
    /// An empty table.
    pub fn new() -> Self {
        PageTable::default()
    }

    /// Installs (or replaces) the entry for `vpn`, returning any previous
    /// entry.
    pub fn map(&mut self, vpn: Vpn, pte: Pte) -> Option<Pte> {
        self.entries.insert(vpn, pte)
    }

    /// Removes the entry for `vpn`.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Pte> {
        self.entries.remove(&vpn)
    }

    /// The entry for `vpn`, if present.
    pub fn get(&self, vpn: Vpn) -> Option<&Pte> {
        self.entries.get(&vpn)
    }

    /// Mutable access to the entry for `vpn`.
    pub fn get_mut(&mut self, vpn: Vpn) -> Option<&mut Pte> {
        self.entries.get_mut(&vpn)
    }

    /// Sets `flags` bits on the entry for `vpn`. Returns `false` when the
    /// page is unmapped.
    pub fn set_flags(&mut self, vpn: Vpn, flags: PteFlags) -> bool {
        match self.entries.get_mut(&vpn) {
            Some(pte) => {
                pte.flags |= flags;
                true
            }
            None => false,
        }
    }

    /// Clears `flags` bits on the entry for `vpn`. Returns `false` when the
    /// page is unmapped.
    pub fn clear_flags(&mut self, vpn: Vpn, flags: PteFlags) -> bool {
        match self.entries.get_mut(&vpn) {
            Some(pte) => {
                pte.flags = pte.flags.without(flags);
                true
            }
            None => false,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(vpn, pte)` in ascending page order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, &Pte)> + '_ {
        self.entries.iter().map(|(&vpn, pte)| (vpn, pte))
    }

    /// Iterates mutably over entries in ascending page order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Vpn, &mut Pte)> + '_ {
        self.entries.iter_mut().map(|(&vpn, pte)| (vpn, pte))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_mem::Pfn;

    fn pte(pfn: u64) -> Pte {
        Pte::new(Pfn::new(pfn), PteFlags::VALID | PteFlags::USER)
    }

    #[test]
    fn map_get_unmap() {
        let mut pt = PageTable::new();
        assert!(pt.map(Vpn::new(1), pte(7)).is_none());
        assert_eq!(pt.get(Vpn::new(1)).unwrap().pfn, Pfn::new(7));
        assert_eq!(pt.unmap(Vpn::new(1)).unwrap().pfn, Pfn::new(7));
        assert!(pt.get(Vpn::new(1)).is_none());
        assert!(pt.is_empty());
    }

    #[test]
    fn remap_returns_previous() {
        let mut pt = PageTable::new();
        pt.map(Vpn::new(1), pte(7));
        let old = pt.map(Vpn::new(1), pte(8)).unwrap();
        assert_eq!(old.pfn, Pfn::new(7));
        assert_eq!(pt.len(), 1);
    }

    #[test]
    fn flag_manipulation() {
        let mut pt = PageTable::new();
        pt.map(Vpn::new(2), pte(3));
        assert!(pt.set_flags(Vpn::new(2), PteFlags::DIRTY));
        assert!(pt.get(Vpn::new(2)).unwrap().is_dirty());
        assert!(pt.clear_flags(Vpn::new(2), PteFlags::DIRTY));
        assert!(!pt.get(Vpn::new(2)).unwrap().is_dirty());
        assert!(!pt.set_flags(Vpn::new(9), PteFlags::DIRTY));
    }

    #[test]
    fn iteration_is_ordered() {
        let mut pt = PageTable::new();
        pt.map(Vpn::new(5), pte(0));
        pt.map(Vpn::new(1), pte(0));
        pt.map(Vpn::new(3), pte(0));
        let order: Vec<u64> = pt.iter().map(|(v, _)| v.raw()).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }
}
