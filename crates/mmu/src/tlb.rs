//! A translation lookaside buffer model.

use shrimp_mem::Vpn;
use shrimp_sim::Counter;

use crate::Pte;

/// A fully associative TLB with FIFO replacement.
///
/// Caches recently used `(Vpn, Pte)` pairs. The MMU is responsible for
/// keeping cached copies coherent with PTE status-bit updates (it writes
/// through to both). The kernel must [`Tlb::flush_page`] on any remap and
/// [`Tlb::flush_all`] on context switch — exactly the shootdown points the
/// paper's invariants require.
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<(Vpn, Pte)>,
    capacity: usize,
    /// Index of the most recent hit — a host-side shortcut for the
    /// associative scan, since machine references run in page-local
    /// bursts. Never trusted blindly: a lookup re-checks the VPN, so a
    /// stale index after eviction or flush just falls back to the scan.
    /// Purely an implementation detail of the host simulation: hit/miss
    /// counts and simulated timing are unchanged.
    last: usize,
    hits: Counter,
    misses: Counter,
    /// Hits answered by the `last` shortcut without an associative scan —
    /// how often the page-local-burst assumption actually pays.
    last_hits: Counter,
}

impl Tlb {
    /// A TLB holding up to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            last: 0,
            hits: Counter::new(),
            misses: Counter::new(),
            last_hits: Counter::new(),
        }
    }

    /// Looks up `vpn`, recording a hit or miss.
    pub fn lookup(&mut self, vpn: Vpn) -> Option<Pte> {
        if let Some(&(v, pte)) = self.entries.get(self.last) {
            if v == vpn {
                self.hits.incr();
                self.last_hits.incr();
                return Some(pte);
            }
        }
        match self.entries.iter().position(|(v, _)| *v == vpn) {
            Some(i) => {
                self.last = i;
                self.hits.incr();
                Some(self.entries[i].1)
            }
            None => {
                self.misses.incr();
                None
            }
        }
    }

    /// Inserts (or refreshes) a translation, evicting the oldest entry when
    /// full.
    pub fn insert(&mut self, vpn: Vpn, pte: Pte) {
        if let Some(slot) = self.entries.iter_mut().find(|(v, _)| *v == vpn) {
            slot.1 = pte;
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((vpn, pte));
    }

    /// Updates the cached copy of `vpn` if present (write-through of PTE
    /// status bits).
    pub fn update(&mut self, vpn: Vpn, pte: Pte) {
        if let Some(slot) = self.entries.iter_mut().find(|(v, _)| *v == vpn) {
            slot.1 = pte;
        }
    }

    /// Invalidates the entry for `vpn` (single-page shootdown).
    pub fn flush_page(&mut self, vpn: Vpn) {
        self.entries.retain(|(v, _)| *v != vpn);
    }

    /// Invalidates everything (context switch).
    pub fn flush_all(&mut self) {
        self.entries.clear();
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Hits served by the last-hit index shortcut, without the
    /// associative scan. Always `<= hits()`.
    pub fn last_hits(&self) -> u64 {
        self.last_hits.get()
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no translations are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PteFlags;
    use shrimp_mem::Pfn;

    fn pte(pfn: u64) -> Pte {
        Pte::new(Pfn::new(pfn), PteFlags::VALID)
    }

    #[test]
    fn hit_after_insert() {
        let mut tlb = Tlb::new(4);
        assert!(tlb.lookup(Vpn::new(1)).is_none());
        tlb.insert(Vpn::new(1), pte(5));
        assert_eq!(tlb.lookup(Vpn::new(1)).unwrap().pfn, Pfn::new(5));
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 1);
        // Slot 0 is where the shortcut already points, so both hits are
        // shortcut hits; a hit on a different slot goes through the scan.
        assert_eq!(tlb.last_hits(), 1);
        tlb.insert(Vpn::new(2), pte(6));
        assert!(tlb.lookup(Vpn::new(2)).is_some());
        assert_eq!(tlb.hits(), 2);
        assert_eq!(tlb.last_hits(), 1, "scan hit must not count as a shortcut hit");
    }

    #[test]
    fn fifo_eviction() {
        let mut tlb = Tlb::new(2);
        tlb.insert(Vpn::new(1), pte(1));
        tlb.insert(Vpn::new(2), pte(2));
        tlb.insert(Vpn::new(3), pte(3)); // evicts vpn 1
        assert!(tlb.lookup(Vpn::new(1)).is_none());
        assert!(tlb.lookup(Vpn::new(2)).is_some());
        assert!(tlb.lookup(Vpn::new(3)).is_some());
    }

    #[test]
    fn reinsert_refreshes_in_place() {
        let mut tlb = Tlb::new(2);
        tlb.insert(Vpn::new(1), pte(1));
        tlb.insert(Vpn::new(2), pte(2));
        tlb.insert(Vpn::new(1), pte(9)); // refresh, no eviction
        assert_eq!(tlb.len(), 2);
        assert_eq!(tlb.lookup(Vpn::new(1)).unwrap().pfn, Pfn::new(9));
    }

    #[test]
    fn update_only_touches_resident() {
        let mut tlb = Tlb::new(2);
        tlb.update(Vpn::new(7), pte(7));
        assert!(tlb.is_empty());
        tlb.insert(Vpn::new(7), pte(7));
        tlb.update(Vpn::new(7), pte(8));
        assert_eq!(tlb.lookup(Vpn::new(7)).unwrap().pfn, Pfn::new(8));
    }

    #[test]
    fn stale_last_hit_index_is_harmless() {
        let mut tlb = Tlb::new(2);
        tlb.insert(Vpn::new(1), pte(1));
        tlb.insert(Vpn::new(2), pte(2));
        // Prime the shortcut on vpn 2 (index 1)…
        assert!(tlb.lookup(Vpn::new(2)).is_some());
        // …then shrink the table under it.
        tlb.flush_page(Vpn::new(1));
        assert_eq!(tlb.lookup(Vpn::new(2)).unwrap().pfn, Pfn::new(2));
        tlb.flush_all();
        assert!(tlb.lookup(Vpn::new(2)).is_none());
        // Refill: the shortcut must re-verify, not resurrect old entries.
        tlb.insert(Vpn::new(3), pte(3));
        assert_eq!(tlb.lookup(Vpn::new(3)).unwrap().pfn, Pfn::new(3));
        // Write-through lands in the slot the shortcut points at.
        tlb.update(Vpn::new(3), pte(9));
        assert_eq!(tlb.lookup(Vpn::new(3)).unwrap().pfn, Pfn::new(9));
    }

    #[test]
    fn flushes() {
        let mut tlb = Tlb::new(4);
        tlb.insert(Vpn::new(1), pte(1));
        tlb.insert(Vpn::new(2), pte(2));
        tlb.flush_page(Vpn::new(1));
        assert!(tlb.lookup(Vpn::new(1)).is_none());
        assert!(tlb.lookup(Vpn::new(2)).is_some());
        tlb.flush_all();
        assert!(tlb.is_empty());
    }
}
