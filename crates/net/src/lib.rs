//! The interconnect fabric: a routing backplane connecting SHRIMP nodes.
//!
//! SHRIMP's interconnect is "an Intel Paragon routing backplane" (§8) — a
//! 2-D mesh of wormhole routers. The model here captures what matters for
//! reproducing the paper's measurements: per-hop routing latency, per-link
//! bandwidth with serialization at the destination link, and in-order
//! delivery between any pair of nodes. Backplane links are much faster than
//! the EISA bus, so end-to-end bandwidth is sender-limited — exactly the
//! regime of Figure 8.
//!
//! # Example
//!
//! ```
//! use shrimp_mem::PhysAddr;
//! use shrimp_net::{Interconnect, LinkParams, NodeId, Packet};
//! use shrimp_sim::SimTime;
//!
//! let mut net = Interconnect::new(4, LinkParams::default());
//! let p = Packet::new(NodeId::new(0), NodeId::new(3), PhysAddr::new(0x1000), vec![1, 2, 3]);
//! let link_ready = net.send(p, SimTime::ZERO);
//! let Some(shrimp_net::Commit::One { link_ready: ready, arrival, packet }) =
//!     net.shard_mut().commit_next(None)
//! else {
//!     panic!("one packet staged");
//! };
//! assert_eq!(ready, link_ready);
//! assert!(arrival > link_ready, "wire time follows routing");
//! assert_eq!(packet.payload, [1, 2, 3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fabric;
mod packet;

pub use fabric::{Commit, FabricShard, Interconnect, LinkParams, PacketRun, Staged};
pub use packet::{NodeId, Packet, PacketClass};
