//! The mesh fabric: routing, link occupancy and in-order delivery.

use shrimp_sim::{Counter, EventQueue, SimDuration, SimTime, StatSet};

use crate::{NodeId, Packet};

/// Link and router parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkParams {
    /// Per-hop router latency.
    pub hop_latency: SimDuration,
    /// Link bandwidth, MB/s (Paragon backplane links: far faster than the
    /// node's EISA bus, keeping the sender the bottleneck).
    pub mb_per_s: f64,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams { hop_latency: SimDuration::from_us(0.5), mb_per_s: 175.0 }
    }
}

/// Columns of the near-square grid holding `nodes` nodes: the integer
/// ceiling square root (smallest `c` with `c * c >= nodes`), computed
/// without an `f64` round-trip.
fn grid_cols(nodes: u16) -> u16 {
    let mut c: u16 = 1;
    while u32::from(c) * u32::from(c) < u32::from(nodes) {
        c += 1;
    }
    c
}

/// A 2-D mesh interconnect with dimension-order routing distances.
///
/// Nodes are arranged on a near-square grid. A packet's latency is
/// `hops × hop_latency + wire_bytes / bandwidth`, serialized on the
/// destination's inbound link, which preserves point-to-point ordering —
/// the property SHRIMP's deliberate update relies on.
#[derive(Debug)]
pub struct Interconnect {
    nodes: u16,
    cols: u16,
    params: LinkParams,
    in_flight: EventQueue<Packet>,
    /// Inbound-link occupancy per destination node.
    link_busy_until: Vec<SimTime>,
    /// Per-packet counts: plain fields, bumped once per injected packet.
    packets: Counter,
    payload_bytes: Counter,
}

impl Interconnect {
    /// A fabric connecting `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: u16, params: LinkParams) -> Self {
        assert!(nodes > 0, "a fabric needs at least one node");
        let cols = grid_cols(nodes);
        Interconnect {
            nodes,
            cols,
            params,
            in_flight: EventQueue::new(),
            link_busy_until: vec![SimTime::ZERO; nodes as usize],
            packets: Counter::new(),
            payload_bytes: Counter::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u16 {
        self.nodes
    }

    /// Mesh hop count between two nodes (Manhattan distance + 1 for the
    /// ejection router; 1 for self-sends, which still traverse the NI).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u64 {
        let (ar, ac) = (a.raw() / self.cols, a.raw() % self.cols);
        let (br, bc) = (b.raw() / self.cols, b.raw() % self.cols);
        u64::from(ar.abs_diff(br)) + u64::from(ac.abs_diff(bc)) + 1
    }

    /// Injects `packet` at instant `now`; returns its delivery time.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is outside the fabric.
    pub fn send(&mut self, mut packet: Packet, now: SimTime) -> SimTime {
        assert!(packet.src.raw() < self.nodes, "source {} not in fabric", packet.src);
        assert!(packet.dst.raw() < self.nodes, "destination {} not in fabric", packet.dst);
        packet.sent_at = now;

        let route = self.params.hop_latency * self.hops(packet.src, packet.dst);
        let wire = SimDuration::from_bytes_at_rate(packet.wire_bytes(), self.params.mb_per_s);
        // Flight recorder: routing done, head of the destination link.
        packet.meta.link_ready = now + route;

        // Serialize on the destination's inbound link.
        let link = &mut self.link_busy_until[packet.dst.raw() as usize];
        let start = (now + route).max(*link);
        let arrives = start + wire;
        *link = arrives;

        self.packets.incr();
        self.payload_bytes.add(packet.payload.len() as u64);
        self.in_flight.schedule(arrives, packet);
        arrives
    }

    /// Removes the earliest packet that has arrived by `deadline`, if any.
    /// Allocation-free; the receive loop drains one packet at a time.
    pub fn deliver_due(&mut self, deadline: SimTime) -> Option<(SimTime, Packet)> {
        self.in_flight.pop_due(deadline).map(|e| (e.at, e.payload))
    }

    /// Earliest pending arrival, if any.
    pub fn next_arrival(&self) -> Option<SimTime> {
        self.in_flight.next_deadline()
    }

    /// Packets still in flight.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Fabric statistics.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new("net");
        s.add("packets", self.packets.get());
        s.add("payload_bytes", self.payload_bytes.get());
        s
    }

    /// Splits the fabric into `shards` independent shards for conservative
    /// parallel execution. Each shard can compute routes for any pair (the
    /// topology is immutable) and carries a copy of the per-destination
    /// inbound-link state; a parallel engine must ensure each destination
    /// node's link is driven by exactly one shard, then give the state back
    /// with [`Interconnect::merge`].
    ///
    /// # Panics
    ///
    /// Panics with packets still in flight (the engine must start from a
    /// quiet fabric) or a zero shard count.
    pub fn split(&mut self, shards: usize) -> Vec<FabricShard> {
        assert!(shards > 0, "need at least one shard");
        assert!(self.in_flight.is_empty(), "cannot split a fabric with packets in flight");
        (0..shards)
            .map(|_| FabricShard {
                nodes: self.nodes,
                cols: self.cols,
                params: self.params,
                link_busy_until: self.link_busy_until.clone(),
                packets: Counter::new(),
                payload_bytes: Counter::new(),
            })
            .collect()
    }

    /// Reabsorbs shard state after a parallel run: node `i`'s inbound-link
    /// occupancy is taken from shard `owner[i]`, and shard traffic counters
    /// fold into the fabric's, so [`Interconnect::stats`] reports the same
    /// totals a serial run would.
    ///
    /// # Panics
    ///
    /// Panics if `owner` names a missing shard or is the wrong length.
    pub fn merge(&mut self, shards: Vec<FabricShard>, owner: &[usize]) {
        assert_eq!(owner.len(), self.nodes as usize, "one owner per node");
        for (node, &shard) in owner.iter().enumerate() {
            self.link_busy_until[node] = shards[shard].link_busy_until[node];
        }
        for shard in shards {
            self.packets.add(shard.packets.get());
            self.payload_bytes.add(shard.payload_bytes.get());
        }
    }
}

/// One shard's slice of the [`Interconnect`] for parallel execution.
///
/// A shard plays both fabric roles without touching shared state:
///
/// - **sender side** — [`FabricShard::inject`] stamps a packet and returns
///   when it reaches its destination's inbound link (routing latency only;
///   no shared queue),
/// - **receiver side** — [`FabricShard::admit`] serializes an incoming
///   packet on the destination's inbound link and returns its arrival.
///
/// Splitting the fabric this way moves every mutable per-destination
/// structure (`link_busy_until`, the delivery queue) to the shard that
/// owns the destination node, which is what lets shards run on separate
/// threads with packets exchanged only at epoch boundaries.
#[derive(Debug)]
pub struct FabricShard {
    nodes: u16,
    cols: u16,
    params: LinkParams,
    /// Inbound-link occupancy; only indices this shard owns are meaningful.
    link_busy_until: Vec<SimTime>,
    packets: Counter,
    payload_bytes: Counter,
}

impl FabricShard {
    /// Mesh hop count between two nodes (same topology as the parent
    /// [`Interconnect::hops`]).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u64 {
        let (ar, ac) = (a.raw() / self.cols, a.raw() % self.cols);
        let (br, bc) = (b.raw() / self.cols, b.raw() % self.cols);
        u64::from(ar.abs_diff(br)) + u64::from(ac.abs_diff(bc)) + 1
    }

    /// Sender side: stamps `packet` as sent at `now`, counts it, and
    /// returns the instant it reaches the destination's inbound link
    /// (`now` + routing latency, **before** link serialization).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is outside the fabric.
    pub fn inject(&mut self, packet: &mut Packet, now: SimTime) -> SimTime {
        assert!(packet.src.raw() < self.nodes, "source {} not in fabric", packet.src);
        assert!(packet.dst.raw() < self.nodes, "destination {} not in fabric", packet.dst);
        packet.sent_at = now;
        self.packets.incr();
        self.payload_bytes.add(packet.payload.len() as u64);
        let link_ready = now + self.params.hop_latency * self.hops(packet.src, packet.dst);
        packet.meta.link_ready = link_ready;
        link_ready
    }

    /// Receiver side: serializes a packet that reached the destination's
    /// inbound link at `link_ready` and returns its arrival instant.
    /// Identical arithmetic to the serial [`Interconnect::send`], so a
    /// parallel run admitting packets in the serial injection order
    /// reproduces the serial timeline bit for bit.
    pub fn admit(&mut self, packet: &Packet, link_ready: SimTime) -> SimTime {
        let wire = SimDuration::from_bytes_at_rate(packet.wire_bytes(), self.params.mb_per_s);
        let link = &mut self.link_busy_until[packet.dst.raw() as usize];
        let start = link_ready.max(*link);
        let arrives = start + wire;
        *link = arrives;
        arrives
    }

    /// The shard's minimum cross-node latency (one router hop): the
    /// conservative engine's lookahead. Any packet injected at or after
    /// instant `t` reaches its destination's inbound link strictly after
    /// `t` as long as this is positive.
    pub fn lookahead(&self) -> SimDuration {
        self.params.hop_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_mem::PhysAddr;

    fn pkt(src: u16, dst: u16, bytes: usize) -> Packet {
        Packet::new(NodeId::new(src), NodeId::new(dst), PhysAddr::new(0), vec![0; bytes])
    }

    #[test]
    fn hops_on_2x2_mesh() {
        let net = Interconnect::new(4, LinkParams::default());
        assert_eq!(net.hops(NodeId::new(0), NodeId::new(0)), 1);
        assert_eq!(net.hops(NodeId::new(0), NodeId::new(1)), 2);
        assert_eq!(net.hops(NodeId::new(0), NodeId::new(3)), 3); // diagonal
    }

    #[test]
    fn delivery_time_scales_with_distance() {
        let mut net = Interconnect::new(4, LinkParams::default());
        let near = net.send(pkt(0, 1, 64), SimTime::ZERO);
        let far = net.send(pkt(0, 3, 64), SimTime::ZERO);
        assert!(far > near);
        assert_eq!(far - near, LinkParams::default().hop_latency);
    }

    #[test]
    fn destination_link_serializes() {
        let mut net = Interconnect::new(4, LinkParams::default());
        let first = net.send(pkt(0, 1, 1000), SimTime::ZERO);
        let second = net.send(pkt(2, 1, 1000), SimTime::ZERO);
        assert!(second > first, "second packet must queue behind the first");
    }

    #[test]
    fn point_to_point_ordering_preserved() {
        let mut net = Interconnect::new(2, LinkParams::default());
        let mut expected = Vec::new();
        for i in 0..5u8 {
            let mut p = pkt(0, 1, 32);
            p.payload[0] = i;
            net.send(p, SimTime::from_nanos(u64::from(i)));
            expected.push(i);
        }
        let mut got = Vec::new();
        while let Some((_, p)) = net.deliver_due(SimTime::from_nanos(u64::MAX / 2)) {
            got.push(p.payload[0]);
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn deliver_due_respects_deadline() {
        let mut net = Interconnect::new(2, LinkParams::default());
        let arrives = net.send(pkt(0, 1, 64), SimTime::ZERO);
        assert!(net.deliver_due(arrives - SimDuration::from_nanos(1)).is_none());
        assert_eq!(net.in_flight_count(), 1);
        assert!(net.deliver_due(arrives).is_some());
        assert_eq!(net.in_flight_count(), 0);
    }

    #[test]
    fn deliver_due_pops_one_at_a_time() {
        let mut net = Interconnect::new(2, LinkParams::default());
        let a = net.send(pkt(0, 1, 64), SimTime::ZERO);
        let b = net.send(pkt(0, 1, 64), SimTime::ZERO);
        assert!(net.deliver_due(a - SimDuration::from_nanos(1)).is_none());
        assert_eq!(net.deliver_due(b).map(|(at, _)| at), Some(a));
        assert_eq!(net.deliver_due(b).map(|(at, _)| at), Some(b));
        assert!(net.deliver_due(b).is_none());
    }

    #[test]
    fn stats_count_traffic() {
        let mut net = Interconnect::new(2, LinkParams::default());
        net.send(pkt(0, 1, 10), SimTime::ZERO);
        net.send(pkt(1, 0, 20), SimTime::ZERO);
        assert_eq!(net.stats().get("packets"), 2);
        assert_eq!(net.stats().get("payload_bytes"), 30);
    }

    #[test]
    #[should_panic(expected = "not in fabric")]
    fn out_of_fabric_send_panics() {
        let mut net = Interconnect::new(2, LinkParams::default());
        net.send(pkt(0, 5, 1), SimTime::ZERO);
    }

    #[test]
    fn grid_cols_handles_non_square_node_counts() {
        // (nodes, expected columns): ceil(sqrt(n)) by pure integers.
        for (nodes, cols) in [(1, 1), (2, 2), (3, 2), (4, 2), (5, 3), (7, 3), (9, 3), (10, 4)] {
            assert_eq!(grid_cols(nodes), cols, "{nodes} nodes");
        }
    }

    #[test]
    fn non_square_meshes_route_consistently() {
        // 3, 5 and 7 nodes: every pair has a positive hop count, symmetric
        // in both directions, and self-sends still cross the ejection
        // router once.
        for nodes in [3u16, 5, 7] {
            let net = Interconnect::new(nodes, LinkParams::default());
            for a in 0..nodes {
                for b in 0..nodes {
                    let ab = net.hops(NodeId::new(a), NodeId::new(b));
                    let ba = net.hops(NodeId::new(b), NodeId::new(a));
                    assert_eq!(ab, ba, "{nodes} nodes: hops must be symmetric");
                    assert!(ab >= 1, "{nodes} nodes: {a}->{b} must cross the ejection router");
                }
            }
        }
    }

    #[test]
    fn shard_inject_admit_reproduces_serial_send_times() {
        // The same packet sequence through the serial fabric and through
        // split shards (admitted in injection order) must produce
        // identical arrival times and identical post-run link state.
        let sequence: [(u16, u16, usize, u64); 5] =
            [(0, 1, 1000, 0), (2, 1, 1000, 0), (3, 1, 64, 100), (0, 3, 256, 200), (1, 3, 64, 200)];

        let mut serial = Interconnect::new(4, LinkParams::default());
        let serial_times: Vec<SimTime> = sequence
            .iter()
            .map(|&(s, d, bytes, at)| serial.send(pkt(s, d, bytes), SimTime::from_nanos(at)))
            .collect();

        let mut net = Interconnect::new(4, LinkParams::default());
        // Nodes 0..2 on shard 0, nodes 2..4 on shard 1.
        let owner = [0usize, 0, 1, 1];
        let mut shards = net.split(2);
        let shard_times: Vec<SimTime> = sequence
            .iter()
            .map(|&(s, d, bytes, at)| {
                let mut p = pkt(s, d, bytes);
                let ready = shards[owner[s as usize]].inject(&mut p, SimTime::from_nanos(at));
                shards[owner[d as usize]].admit(&p, ready)
            })
            .collect();
        net.merge(shards, &owner);

        assert_eq!(shard_times, serial_times);
        assert_eq!(net.stats().get("packets"), serial.stats().get("packets"));
        assert_eq!(net.stats().get("payload_bytes"), serial.stats().get("payload_bytes"));
        // Follow-up traffic sees identical link occupancy.
        let a = serial.send(pkt(0, 1, 64), SimTime::from_nanos(300));
        let b = net.send(pkt(0, 1, 64), SimTime::from_nanos(300));
        assert_eq!(a, b, "merged link state must match the serial fabric");
    }

    #[test]
    #[should_panic(expected = "packets in flight")]
    fn split_requires_quiet_fabric() {
        let mut net = Interconnect::new(2, LinkParams::default());
        net.send(pkt(0, 1, 64), SimTime::ZERO);
        let _ = net.split(2);
    }

    #[test]
    fn shard_lookahead_is_hop_latency() {
        let mut net = Interconnect::new(2, LinkParams::default());
        let shards = net.split(1);
        assert_eq!(shards[0].lookahead(), LinkParams::default().hop_latency);
        assert!(shards[0].lookahead() > SimDuration::ZERO, "conservative sync needs lookahead");
    }
}
