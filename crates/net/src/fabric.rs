//! The mesh fabric: routing, link occupancy and in-order delivery.

use shrimp_sim::{Counter, EventQueue, SimDuration, SimTime, StatSet};

use crate::{NodeId, Packet};

/// Link and router parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkParams {
    /// Per-hop router latency.
    pub hop_latency: SimDuration,
    /// Link bandwidth, MB/s (Paragon backplane links: far faster than the
    /// node's EISA bus, keeping the sender the bottleneck).
    pub mb_per_s: f64,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams { hop_latency: SimDuration::from_us(0.5), mb_per_s: 175.0 }
    }
}

/// A 2-D mesh interconnect with dimension-order routing distances.
///
/// Nodes are arranged on a near-square grid. A packet's latency is
/// `hops × hop_latency + wire_bytes / bandwidth`, serialized on the
/// destination's inbound link, which preserves point-to-point ordering —
/// the property SHRIMP's deliberate update relies on.
#[derive(Debug)]
pub struct Interconnect {
    nodes: u16,
    cols: u16,
    params: LinkParams,
    in_flight: EventQueue<Packet>,
    /// Inbound-link occupancy per destination node.
    link_busy_until: Vec<SimTime>,
    /// Per-packet counts: plain fields, bumped once per injected packet.
    packets: Counter,
    payload_bytes: Counter,
}

impl Interconnect {
    /// A fabric connecting `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: u16, params: LinkParams) -> Self {
        assert!(nodes > 0, "a fabric needs at least one node");
        let cols = (f64::from(nodes)).sqrt().ceil() as u16;
        Interconnect {
            nodes,
            cols,
            params,
            in_flight: EventQueue::new(),
            link_busy_until: vec![SimTime::ZERO; nodes as usize],
            packets: Counter::new(),
            payload_bytes: Counter::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u16 {
        self.nodes
    }

    /// Mesh hop count between two nodes (Manhattan distance + 1 for the
    /// ejection router; 1 for self-sends, which still traverse the NI).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u64 {
        let (ar, ac) = (a.raw() / self.cols, a.raw() % self.cols);
        let (br, bc) = (b.raw() / self.cols, b.raw() % self.cols);
        u64::from(ar.abs_diff(br)) + u64::from(ac.abs_diff(bc)) + 1
    }

    /// Injects `packet` at instant `now`; returns its delivery time.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is outside the fabric.
    pub fn send(&mut self, mut packet: Packet, now: SimTime) -> SimTime {
        assert!(packet.src.raw() < self.nodes, "source {} not in fabric", packet.src);
        assert!(packet.dst.raw() < self.nodes, "destination {} not in fabric", packet.dst);
        packet.sent_at = now;

        let route = self.params.hop_latency * self.hops(packet.src, packet.dst);
        let wire = SimDuration::from_bytes_at_rate(packet.wire_bytes(), self.params.mb_per_s);

        // Serialize on the destination's inbound link.
        let link = &mut self.link_busy_until[packet.dst.raw() as usize];
        let start = (now + route).max(*link);
        let arrives = start + wire;
        *link = arrives;

        self.packets.incr();
        self.payload_bytes.add(packet.payload.len() as u64);
        self.in_flight.schedule(arrives, packet);
        arrives
    }

    /// Removes and returns every packet that has arrived by `deadline`, as
    /// `(arrival_time, packet)` in arrival order.
    pub fn deliver_until(&mut self, deadline: SimTime) -> Vec<(SimTime, Packet)> {
        self.in_flight.pop_until(deadline).map(|e| (e.at, e.payload)).collect()
    }

    /// Removes the earliest packet that has arrived by `deadline`, if any —
    /// the allocation-free form of [`Interconnect::deliver_until`] the
    /// receive loop drains one packet at a time.
    pub fn deliver_due(&mut self, deadline: SimTime) -> Option<(SimTime, Packet)> {
        self.in_flight.pop_due(deadline).map(|e| (e.at, e.payload))
    }

    /// Earliest pending arrival, if any.
    pub fn next_arrival(&self) -> Option<SimTime> {
        self.in_flight.next_deadline()
    }

    /// Packets still in flight.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Fabric statistics.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new("net");
        s.add("packets", self.packets.get());
        s.add("payload_bytes", self.payload_bytes.get());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_mem::PhysAddr;

    fn pkt(src: u16, dst: u16, bytes: usize) -> Packet {
        Packet::new(NodeId::new(src), NodeId::new(dst), PhysAddr::new(0), vec![0; bytes])
    }

    #[test]
    fn hops_on_2x2_mesh() {
        let net = Interconnect::new(4, LinkParams::default());
        assert_eq!(net.hops(NodeId::new(0), NodeId::new(0)), 1);
        assert_eq!(net.hops(NodeId::new(0), NodeId::new(1)), 2);
        assert_eq!(net.hops(NodeId::new(0), NodeId::new(3)), 3); // diagonal
    }

    #[test]
    fn delivery_time_scales_with_distance() {
        let mut net = Interconnect::new(4, LinkParams::default());
        let near = net.send(pkt(0, 1, 64), SimTime::ZERO);
        let far = net.send(pkt(0, 3, 64), SimTime::ZERO);
        assert!(far > near);
        assert_eq!(far - near, LinkParams::default().hop_latency);
    }

    #[test]
    fn destination_link_serializes() {
        let mut net = Interconnect::new(4, LinkParams::default());
        let first = net.send(pkt(0, 1, 1000), SimTime::ZERO);
        let second = net.send(pkt(2, 1, 1000), SimTime::ZERO);
        assert!(second > first, "second packet must queue behind the first");
    }

    #[test]
    fn point_to_point_ordering_preserved() {
        let mut net = Interconnect::new(2, LinkParams::default());
        let mut expected = Vec::new();
        for i in 0..5u8 {
            let mut p = pkt(0, 1, 32);
            p.payload[0] = i;
            net.send(p, SimTime::from_nanos(u64::from(i)));
            expected.push(i);
        }
        let got: Vec<u8> = net
            .deliver_until(SimTime::from_nanos(u64::MAX / 2))
            .into_iter()
            .map(|(_, p)| p.payload[0])
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn deliver_until_respects_deadline() {
        let mut net = Interconnect::new(2, LinkParams::default());
        let arrives = net.send(pkt(0, 1, 64), SimTime::ZERO);
        assert!(net.deliver_until(arrives - SimDuration::from_nanos(1)).is_empty());
        assert_eq!(net.in_flight_count(), 1);
        assert_eq!(net.deliver_until(arrives).len(), 1);
        assert_eq!(net.in_flight_count(), 0);
    }

    #[test]
    fn deliver_due_pops_one_at_a_time() {
        let mut net = Interconnect::new(2, LinkParams::default());
        let a = net.send(pkt(0, 1, 64), SimTime::ZERO);
        let b = net.send(pkt(0, 1, 64), SimTime::ZERO);
        assert!(net.deliver_due(a - SimDuration::from_nanos(1)).is_none());
        assert_eq!(net.deliver_due(b).map(|(at, _)| at), Some(a));
        assert_eq!(net.deliver_due(b).map(|(at, _)| at), Some(b));
        assert!(net.deliver_due(b).is_none());
    }

    #[test]
    fn stats_count_traffic() {
        let mut net = Interconnect::new(2, LinkParams::default());
        net.send(pkt(0, 1, 10), SimTime::ZERO);
        net.send(pkt(1, 0, 20), SimTime::ZERO);
        assert_eq!(net.stats().get("packets"), 2);
        assert_eq!(net.stats().get("payload_bytes"), 30);
    }

    #[test]
    #[should_panic(expected = "not in fabric")]
    fn out_of_fabric_send_panics() {
        let mut net = Interconnect::new(2, LinkParams::default());
        net.send(pkt(0, 5, 1), SimTime::ZERO);
    }
}
